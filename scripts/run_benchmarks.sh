#!/usr/bin/env sh
# Build and run the performance benchmarks, writing BENCH_gemm.json,
# BENCH_infer.json, BENCH_plan.json, BENCH_serve_batch.json, and
# BENCH_serve_shard.json at the repo root. bench_infer_latency also writes
# METRICS_infer.json (a yollo::obs metrics snapshot: serve counters and
# latency histograms, plus kernel counters when profiling is on) next to
# BENCH_infer.json, and TRACE_infer.json (chrome://tracing spans) when the
# run is invoked with YOLLO_OBS=1.
#
#   scripts/run_benchmarks.sh [build-dir]
#
# The acceptance baseline for each perf PR is the previous PR's inference
# path. Because these PRs also rewrite the shared tensor kernels, the
# current binary cannot measure that baseline — it already benefits from
# the kernel work. So this script extracts the previous revision from git
# (YOLLO_BASELINE_REV, default the preceding perf PR's merge commit),
# builds bench/bench_infer_baseline.cpp inside that tree, measures the same
# workload there, and passes the numbers to bench_infer_latency, which
# embeds them in BENCH_infer.json as "baseline_prev". Set
# YOLLO_BASELINE_REV= (empty) to skip the baseline.
#
# YOLLO_BENCH_SCALE=quick shrinks the run for smoke testing.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BASELINE_REV="${YOLLO_BASELINE_REV-05c8f6177aaa74578863d644996955595649245e}"

# Pin Release: latency numbers from a Debug/RelWithDebInfo tree are noise.
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "$BUILD" -j --target bench_infer_latency --target bench_gemm \
  --target bench_serve_shard --target bench_serve_batch \
  --target bench_plan > /dev/null

# GEMM kernel throughput (naive vs blocked vs fused, 1 vs N threads).
"$BUILD/bench/bench_gemm" "$ROOT/BENCH_gemm.json"

# Static forward plans (DESIGN.md §14): planned vs dynamic predict/infer
# latency and the arena-vs-pool memory trade, same binary, same kernels.
"$BUILD/bench/bench_plan" "$ROOT/BENCH_plan.json"

BASELINE_ARGS=""
if [ -n "$BASELINE_REV" ] && git -C "$ROOT" rev-parse --verify \
    "$BASELINE_REV^{commit}" > /dev/null 2>&1; then
  BASE_DIR="$BUILD/baseline-$(git -C "$ROOT" rev-parse --short "$BASELINE_REV")"
  BASE_SRC="$BASE_DIR/src-tree"
  BASE_BUILD="$BASE_DIR/build"
  if [ ! -x "$BASE_BUILD/bench/bench_infer_baseline" ]; then
    echo "building previous-revision baseline at $BASELINE_REV ..."
    rm -rf "$BASE_SRC"
    mkdir -p "$BASE_SRC"
    git -C "$ROOT" archive "$BASELINE_REV" | tar -x -C "$BASE_SRC"
    cp "$ROOT/bench/bench_infer_baseline.cpp" "$BASE_SRC/bench/"
    printf '\nyollo_add_bench(bench_infer_baseline yollo_serve)\n' \
      >> "$BASE_SRC/bench/CMakeLists.txt"
    cmake -B "$BASE_BUILD" -S "$BASE_SRC" -DCMAKE_BUILD_TYPE=Release \
      > /dev/null
    cmake --build "$BASE_BUILD" -j --target bench_infer_baseline > /dev/null
  fi
  "$BASE_BUILD/bench/bench_infer_baseline" "$BASE_DIR/BENCH_baseline.json"
  json_field() {
    sed -n "s/.*\"$1\": \\([0-9.]*\\).*/\\1/p" "$BASE_DIR/BENCH_baseline.json"
  }
  BASELINE_ARGS="--baseline_predict_p50_ms=$(json_field predict_p50_ms) \
--baseline_predict_p95_ms=$(json_field predict_p95_ms) \
--baseline_serve_rps=$(json_field serve_throughput_rps) \
--baseline_rev=$(git -C "$ROOT" rev-parse --short "$BASELINE_REV")"
else
  echo "no baseline revision available; writing BENCH_infer.json without it"
fi

# shellcheck disable=SC2086  # word-splitting of BASELINE_ARGS is intended
"$BUILD/bench/bench_infer_latency" "$ROOT/BENCH_infer.json" $BASELINE_ARGS

# Continuous batching + feature cache (DESIGN.md §15): burst throughput at
# batch_max 1 vs 8 (single worker, warm-waited, interleaved best-of-3) and
# the smart-gallery cold/warm cache comparison. Exits non-zero if the
# five-term accounting invariant breaks in any snapshot.
"$BUILD/bench/bench_serve_batch" "$ROOT/BENCH_serve_batch.json"

# Sharded serving: open-loop Poisson sweep (latency knee + SLO line, 1 vs 3
# shards) and the chaos legs (kill / poison / slow one shard mid-run; zero
# lost requests, post-failure throughput floor). Exits non-zero if a chaos
# leg loses a request or the throughput floor is violated.
"$BUILD/bench/bench_serve_shard" "$ROOT/BENCH_serve_shard.json"
