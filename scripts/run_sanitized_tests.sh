#!/usr/bin/env sh
# Extra ctest configurations: build in separate trees with sanitizers on and
# run the tier-1 suite under them.
#
#   scripts/run_sanitized_tests.sh [mode] [build-dir]
#
#   mode: address (default)  AddressSanitizer + UndefinedBehaviorSanitizer
#         thread             ThreadSanitizer (races in yollo::serve and the
#                            intra-op parallel_for pool; the kernel-heavy
#                            suites are re-run with YOLLO_NUM_THREADS=4 so
#                            the pool actually partitions work, and the obs
#                            suites with YOLLO_OBS=1 so the profiling hooks
#                            are live rather than compiled-out branches)
#         both               address tree, then thread tree
set -eu

MODE="${1:-address}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

run_mode() {
  mode="$1"
  dir="$2"
  case "$mode" in
    address) sanitize="address;undefined" ;;
    thread) sanitize="thread" ;;
    *)
      echo "unknown mode '$mode' (expected address, thread, or both)" >&2
      exit 2
      ;;
  esac
  cmake -B "$dir" -S "$SRC_DIR" \
    -DYOLLO_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j"$(nproc)"
  if [ "$mode" = thread ]; then
    # Default YOLLO_NUM_THREADS is 1, which makes parallel_for a direct
    # call; re-run the suites that drive the GEMM/conv/elementwise kernels
    # with a real worker pool so TSan watches the job hand-off and the
    # disjoint-range writes.
    echo "re-running kernel suites with YOLLO_NUM_THREADS=4 under TSan ..."
    for t in tensor_test gemm_test nn_test infer_engine_test plan_test; do
      echo "  YOLLO_NUM_THREADS=4 $t"
      YOLLO_NUM_THREADS=4 "$dir/tests/$t"
    done
    # Observability: the metrics registry and the trace ring buffers are
    # written from every worker thread, and the serve counters now live on
    # the registry. Re-run those suites with the profiling hooks live so
    # TSan watches the span records and counter merges, not no-ops.
    echo "re-running obs suites with YOLLO_NUM_THREADS=4 YOLLO_OBS=1 ..."
    for t in obs_test serve_test router_test; do
      echo "  YOLLO_NUM_THREADS=4 YOLLO_OBS=1 $t"
      YOLLO_NUM_THREADS=4 YOLLO_OBS=1 "$dir/tests/$t"
    done
    # Continuous batching + feature cache: batch formation mutates scheduler
    # state under the service lock while workers note forward outcomes, and
    # the shared cache is hit/inserted/evicted from every worker (plus an
    # invalidating thread). Re-run both suites with a real worker pool so
    # TSan watches the EWMA updates, the LRU splices, and the pinned-view
    # handoff between eviction and a concurrent reader.
    echo "re-running batching + cache suites with YOLLO_NUM_THREADS=4 ..."
    for t in serve_batch_test feature_cache_test; do
      echo "  YOLLO_NUM_THREADS=4 YOLLO_OBS=1 $t"
      YOLLO_NUM_THREADS=4 YOLLO_OBS=1 "$dir/tests/$t"
    done
    # Cancellation + supervision: checkpoints fire from pool workers while
    # arm()/cancel()/the watchdog write from other threads, and the
    # watchdog reap races worker settlement. Re-run with a real worker
    # pool so TSan watches every edge of that protocol (the ExecContext
    # atomics, the CancelToken attach/detach handshake, the settled
    # exchange, and the reap/replace path).
    echo "re-running supervision suite with YOLLO_NUM_THREADS=4 under TSan ..."
    YOLLO_NUM_THREADS=4 YOLLO_OBS=1 "$dir/tests/supervision_test"
    # Router chaos under TSan, fault-injecting configuration: the
    # RouterChaosTest suite arms per-shard *scoped* FaultInjector instances
    # itself (kill / poison a shard mid-run) — the YOLLO_FAULT_* env vars
    # arm only the process-global injector, which sharded routers
    # deliberately bypass. YOLLO_ROUTER_CHAOS_PER_THREAD raises the
    # injected-fault load well past the default so TSan watches routing,
    # hedging, failover, and drain/probe under sustained concurrent faults.
    echo "re-running router chaos suite with heavier injected faults ..."
    YOLLO_NUM_THREADS=4 YOLLO_OBS=1 YOLLO_ROUTER_CHAOS_PER_THREAD=60 \
      "$dir/tests/router_test" --gtest_filter='RouterChaosTest.*'
  fi
}

case "$MODE" in
  both)
    run_mode address "${2:-build-asan}"
    run_mode thread "${3:-build-tsan}"
    ;;
  address)
    run_mode address "${2:-build-asan}"
    ;;
  thread)
    run_mode thread "${2:-build-tsan}"
    ;;
  *)
    echo "usage: $0 [address|thread|both] [build-dir]" >&2
    exit 2
    ;;
esac
