#!/usr/bin/env sh
# Second ctest configuration: build in a separate tree with
# AddressSanitizer + UndefinedBehaviorSanitizer and run the tier-1 suite.
#
#   scripts/run_sanitized_tests.sh [build-dir]
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DYOLLO_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
