// Residual CNN backbone producing the stride-8 "C4"-style feature map the
// paper extracts image features from (§3.1, §4.2).
//
// The paper uses ImageNet-pretrained ResNet-50/ResNet-101 C4; this machine
// has neither ImageNet nor a GPU, so the backbone is a proportionally-scaled
// residual network trained end-to-end with the rest of the model. Two depth
// presets mirror the paper's backbone comparison in Table 5:
//   r50_lite()  — one residual block per stage   (ResNet-50 stand-in)
//   r101_lite() — three residual blocks per stage (ResNet-101 stand-in)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace yollo::vision {

struct BackboneConfig {
  int64_t in_channels = 3;
  // Channel widths: stem, stage1, stage2, stage3. Three stride-2 stages give
  // the overall stride of 8.
  std::vector<int64_t> channels = {12, 16, 24, 48};
  int64_t blocks_per_stage = 1;
  // Residual (ResNet-style) vs plain (VGG-style) blocks; the paper's
  // footnote 1 reports "no big drop" with a VGG backbone, reproduced by the
  // backbone-ablation bench.
  bool residual = true;
  std::string name = "r50-lite";

  static BackboneConfig r50_lite();
  static BackboneConfig r101_lite();
  static BackboneConfig vgg_lite();

  int64_t out_channels() const { return channels.back(); }
  int64_t stride() const { return 8; }
};

// Identity-skip residual block x + F(x), F = conv-bn-relu-conv-bn; with
// residual=false it degrades to a plain VGG-style conv-bn-relu pair.
class ResidualBlock : public nn::Module {
 public:
  ResidualBlock(int64_t channels, Rng& rng, bool residual = true);

  ag::Variable forward(const ag::Variable& x);

 private:
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  nn::Conv2d conv2_;
  nn::BatchNorm2d bn2_;
  bool residual_;
};

// Stride-2 block with a projection (1x1, stride-2) skip; plain stride-2
// convs when residual=false.
class DownsampleBlock : public nn::Module {
 public:
  DownsampleBlock(int64_t in_channels, int64_t out_channels, Rng& rng,
                  bool residual = true);

  ag::Variable forward(const ag::Variable& x);

 private:
  nn::Conv2d conv1_;
  nn::BatchNorm2d bn1_;
  nn::Conv2d conv2_;
  nn::BatchNorm2d bn2_;
  nn::Conv2d proj_;
  nn::BatchNorm2d bn_proj_;
  bool residual_;
};

class Backbone : public nn::Module {
 public:
  Backbone(const BackboneConfig& config, Rng& rng);

  // [N, 3, H, W] -> [N, C, H/8, W/8]
  ag::Variable forward(const ag::Variable& image);

  const BackboneConfig& config() const { return config_; }

 private:
  BackboneConfig config_;
  nn::Conv2d stem_;
  nn::BatchNorm2d stem_bn_;
  std::vector<std::unique_ptr<DownsampleBlock>> downsamples_;
  std::vector<std::unique_ptr<ResidualBlock>> blocks_;  // grouped by stage
};

}  // namespace yollo::vision
