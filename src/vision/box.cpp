#include "vision/box.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace yollo::vision {

float intersection_area(const Box& a, const Box& b) {
  const float ix = std::max(0.0f, std::min(a.x2(), b.x2()) - std::max(a.x, b.x));
  const float iy = std::max(0.0f, std::min(a.y2(), b.y2()) - std::max(a.y, b.y));
  return ix * iy;
}

float iou(const Box& a, const Box& b) {
  if (a.w <= 0.0f || a.h <= 0.0f || b.w <= 0.0f || b.h <= 0.0f) return 0.0f;
  const float inter = intersection_area(a, b);
  const float uni = a.area() + b.area() - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

Box clip_box(const Box& b, float img_w, float img_h) {
  const float x1 = std::clamp(b.x, 0.0f, img_w);
  const float y1 = std::clamp(b.y, 0.0f, img_h);
  const float x2 = std::clamp(b.x2(), 0.0f, img_w);
  const float y2 = std::clamp(b.y2(), 0.0f, img_h);
  return Box{x1, y1, std::max(0.0f, x2 - x1), std::max(0.0f, y2 - y1)};
}

BoxDelta encode_delta(const Box& anchor, const Box& target) {
  BoxDelta d;
  d.dx = (target.cx() - anchor.cx()) / anchor.w;
  d.dy = (target.cy() - anchor.cy()) / anchor.h;
  d.dw = std::log(std::max(target.w, 1e-3f) / anchor.w);
  d.dh = std::log(std::max(target.h, 1e-3f) / anchor.h);
  return d;
}

Box decode_delta(const Box& anchor, const BoxDelta& delta) {
  // Clamp the log-size offsets so an untrained head cannot explode to inf.
  const float dw = std::clamp(delta.dw, -4.0f, 4.0f);
  const float dh = std::clamp(delta.dh, -4.0f, 4.0f);
  const float cx = anchor.cx() + delta.dx * anchor.w;
  const float cy = anchor.cy() + delta.dy * anchor.h;
  const float w = anchor.w * std::exp(dw);
  const float h = anchor.h * std::exp(dh);
  return Box::from_center(cx, cy, w, h);
}

std::vector<int64_t> nms(const std::vector<Box>& boxes,
                         const std::vector<float>& scores,
                         float iou_threshold, int64_t max_keep) {
  std::vector<int64_t> order(boxes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  std::vector<int64_t> keep;
  std::vector<bool> suppressed(boxes.size(), false);
  for (int64_t idx : order) {
    if (suppressed[static_cast<size_t>(idx)]) continue;
    keep.push_back(idx);
    if (max_keep > 0 && static_cast<int64_t>(keep.size()) >= max_keep) break;
    for (int64_t other : order) {
      if (other == idx || suppressed[static_cast<size_t>(other)]) continue;
      if (iou(boxes[static_cast<size_t>(idx)],
              boxes[static_cast<size_t>(other)]) > iou_threshold) {
        suppressed[static_cast<size_t>(other)] = true;
      }
    }
  }
  return keep;
}

}  // namespace yollo::vision
