// Axis-aligned bounding boxes, IoU, NMS, and the RPN box parameterisation.
//
// Boxes are stored as top-left corner + size in continuous pixel
// coordinates, matching the paper's B = {x, y, w, h} notation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace yollo::vision {

struct Box {
  float x = 0.0f;  // left
  float y = 0.0f;  // top
  float w = 0.0f;
  float h = 0.0f;

  float cx() const { return x + 0.5f * w; }
  float cy() const { return y + 0.5f * h; }
  float x2() const { return x + w; }
  float y2() const { return y + h; }
  float area() const { return w * h; }

  static Box from_center(float cx, float cy, float w, float h) {
    return Box{cx - 0.5f * w, cy - 0.5f * h, w, h};
  }
};

// Intersection-over-union of two boxes; 0 when either is degenerate.
float iou(const Box& a, const Box& b);

// Intersection area only.
float intersection_area(const Box& a, const Box& b);

// Clip a box to the image rectangle [0,W)x[0,H).
Box clip_box(const Box& b, float img_w, float img_h);

// The Faster-RCNN offset parameterisation used by the paper's RPN-like
// target detection network (section 3.3):
//   tx = (cx - cxa) / wa,  ty = (cy - cya) / ha,
//   tw = log(w / wa),      th = log(h / ha).
struct BoxDelta {
  float dx = 0.0f;
  float dy = 0.0f;
  float dw = 0.0f;
  float dh = 0.0f;
};

BoxDelta encode_delta(const Box& anchor, const Box& target);
Box decode_delta(const Box& anchor, const BoxDelta& delta);

// Greedy non-maximum suppression: returns indices of kept boxes, ordered by
// descending score, suppressing any box with IoU > threshold to a kept one.
std::vector<int64_t> nms(const std::vector<Box>& boxes,
                         const std::vector<float>& scores,
                         float iou_threshold, int64_t max_keep = -1);

}  // namespace yollo::vision
