#include "vision/anchors.h"

#include <cmath>

namespace yollo::vision {

std::vector<Box> generate_anchors(const AnchorConfig& config, int64_t grid_h,
                                  int64_t grid_w) {
  std::vector<Box> anchors;
  anchors.reserve(static_cast<size_t>(grid_h * grid_w *
                                      config.anchors_per_cell()));
  const float stride = static_cast<float>(config.stride);
  for (int64_t gy = 0; gy < grid_h; ++gy) {
    for (int64_t gx = 0; gx < grid_w; ++gx) {
      const float cx = (static_cast<float>(gx) + 0.5f) * stride;
      const float cy = (static_cast<float>(gy) + 0.5f) * stride;
      for (float scale : config.scales) {
        for (float ratio : config.ratios) {
          // Preserve area scale^2 while applying the aspect ratio.
          const float w = scale / std::sqrt(ratio);
          const float h = scale * std::sqrt(ratio);
          anchors.push_back(Box::from_center(cx, cy, w, h));
        }
      }
    }
  }
  return anchors;
}

AnchorLabels label_anchors(const std::vector<Box>& anchors, const Box& target,
                           float rho_high, float rho_low) {
  AnchorLabels labels;
  float best_iou = -1.0f;
  int64_t best_idx = -1;
  for (size_t i = 0; i < anchors.size(); ++i) {
    const float overlap = iou(anchors[i], target);
    if (overlap > best_iou) {
      best_iou = overlap;
      best_idx = static_cast<int64_t>(i);
    }
    if (overlap >= rho_high) {
      labels.positive.push_back(static_cast<int64_t>(i));
    } else if (overlap <= rho_low) {
      labels.negative.push_back(static_cast<int64_t>(i));
    }
  }
  if (labels.positive.empty() && best_idx >= 0) {
    labels.positive.push_back(best_idx);
    // The forced positive might also sit in the negative list when its IoU
    // is below rho_low (tiny targets); remove it so the two sets stay
    // disjoint.
    std::erase(labels.negative, best_idx);
  }
  return labels;
}

}  // namespace yollo::vision
