// Anchor generation for the RPN-like target detection network (paper §3.3).
//
// K anchors (scales x aspect ratios) are planted at the centre of every cell
// of the stride-S feature map, exactly as in Faster R-CNN. Anchor layout is
// row-major over (cell_y, cell_x, anchor_k), which must match the detection
// head's output ordering.
#pragma once

#include <vector>

#include "vision/box.h"

namespace yollo::vision {

struct AnchorConfig {
  int64_t stride = 8;                          // feature-map stride in pixels
  std::vector<float> scales = {12.0f, 24.0f, 40.0f};   // anchor side lengths
  std::vector<float> ratios = {0.5f, 1.0f, 2.0f};      // h/w aspect ratios

  int64_t anchors_per_cell() const {
    return static_cast<int64_t>(scales.size() * ratios.size());
  }
};

// All anchors for a feature map of (grid_h x grid_w) cells, in
// (cell_y, cell_x, k) order; size = grid_h * grid_w * K.
std::vector<Box> generate_anchors(const AnchorConfig& config, int64_t grid_h,
                                  int64_t grid_w);

// Anchor-to-target assignment for training (paper §3.3): positives have
// IoU >= rho_high with the target box, negatives have IoU <= rho_low,
// anchors in between are ignored. If no anchor clears rho_high, the single
// best-IoU anchor is forced positive so every sample has a learning signal
// (standard RPN practice).
struct AnchorLabels {
  std::vector<int64_t> positive;  // anchor indices
  std::vector<int64_t> negative;  // anchor indices
};
AnchorLabels label_anchors(const std::vector<Box>& anchors, const Box& target,
                           float rho_high, float rho_low);

}  // namespace yollo::vision
