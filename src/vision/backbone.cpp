#include "vision/backbone.h"

namespace yollo::vision {

BackboneConfig BackboneConfig::r50_lite() {
  BackboneConfig cfg;
  cfg.blocks_per_stage = 1;
  cfg.name = "r50-lite";
  return cfg;
}

BackboneConfig BackboneConfig::r101_lite() {
  BackboneConfig cfg;
  cfg.blocks_per_stage = 3;
  cfg.name = "r101-lite";
  return cfg;
}

BackboneConfig BackboneConfig::vgg_lite() {
  BackboneConfig cfg;
  cfg.blocks_per_stage = 1;
  cfg.residual = false;
  cfg.name = "vgg-lite";
  return cfg;
}

ResidualBlock::ResidualBlock(int64_t channels, Rng& rng, bool residual)
    : conv1_(channels, channels, 3, 1, 1, rng, /*bias=*/false),
      bn1_(channels),
      conv2_(channels, channels, 3, 1, 1, rng, /*bias=*/false),
      bn2_(channels),
      residual_(residual) {
  register_module("conv1", conv1_);
  register_module("bn1", bn1_);
  register_module("conv2", conv2_);
  register_module("bn2", bn2_);
}

ag::Variable ResidualBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1_.forward(conv1_.forward(x)));
  h = bn2_.forward(conv2_.forward(h));
  if (residual_) h = ag::add(h, x);
  return ag::relu(h);
}

DownsampleBlock::DownsampleBlock(int64_t in_channels, int64_t out_channels,
                                 Rng& rng, bool residual)
    : conv1_(in_channels, out_channels, 3, 2, 1, rng, /*bias=*/false),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng, /*bias=*/false),
      bn2_(out_channels),
      proj_(in_channels, out_channels, 1, 2, 0, rng, /*bias=*/false),
      bn_proj_(out_channels),
      residual_(residual) {
  register_module("conv1", conv1_);
  register_module("bn1", bn1_);
  register_module("conv2", conv2_);
  register_module("bn2", bn2_);
  if (residual_) {
    register_module("proj", proj_);
    register_module("bn_proj", bn_proj_);
  }
}

ag::Variable DownsampleBlock::forward(const ag::Variable& x) {
  ag::Variable h = ag::relu(bn1_.forward(conv1_.forward(x)));
  h = bn2_.forward(conv2_.forward(h));
  if (residual_) {
    h = ag::add(h, bn_proj_.forward(proj_.forward(x)));
  }
  return ag::relu(h);
}

Backbone::Backbone(const BackboneConfig& config, Rng& rng)
    : config_(config),
      stem_(config.in_channels, config.channels[0], 3, 1, 1, rng,
            /*bias=*/false),
      stem_bn_(config.channels[0]) {
  register_module("stem", stem_);
  register_module("stem_bn", stem_bn_);
  for (size_t stage = 1; stage < config.channels.size(); ++stage) {
    downsamples_.push_back(std::make_unique<DownsampleBlock>(
        config.channels[stage - 1], config.channels[stage], rng,
        config.residual));
    register_module("down" + std::to_string(stage), *downsamples_.back());
    for (int64_t b = 1; b < config.blocks_per_stage; ++b) {
      blocks_.push_back(std::make_unique<ResidualBlock>(
          config.channels[stage], rng, config.residual));
      register_module(
          "stage" + std::to_string(stage) + "_block" + std::to_string(b),
          *blocks_.back());
    }
  }
}

ag::Variable Backbone::forward(const ag::Variable& image) {
  ag::Variable h = ag::relu(stem_bn_.forward(stem_.forward(image)));
  size_t block_idx = 0;
  for (size_t stage = 0; stage < downsamples_.size(); ++stage) {
    h = downsamples_[stage]->forward(h);
    for (int64_t b = 1; b < config_.blocks_per_stage; ++b) {
      h = blocks_[block_idx++]->forward(h);
    }
  }
  return h;
}

}  // namespace yollo::vision
