// Intra-op parallelism: a lazily-spawned thread pool driving parallel_for.
//
// Design (DESIGN.md §10):
//  - The pool is process-global and spawned on the first parallel_for that
//    can use it. Worker count comes from YOLLO_NUM_THREADS (default 1);
//    set_num_threads() overrides it at runtime (tests, benchmarks).
//  - At 1 thread parallel_for is a direct call of the body on the calling
//    thread — one integer compare of overhead — so single-core builds and
//    benchmarks measure the kernels themselves, not the runtime.
//  - Deterministic by construction: chunk boundaries depend only on
//    (begin, end, grain), never on the thread count, and every kernel
//    parallelised with it writes disjoint output ranges per chunk. 1 thread
//    and N threads therefore produce bitwise-identical tensors.
//  - TSan-clean: job hand-off uses one mutex + two condition variables;
//    chunk claiming is a single atomic counter. A parallel_for issued from
//    inside a worker (nested parallelism) runs serially on that worker.
//  - Allocation-free dispatch: the body is passed as a non-owning
//    {context, trampoline} pair (parallel_for blocks until the job drains,
//    so the caller's stack frame outlives every use). Capturing lambdas
//    therefore never round-trip through std::function's heap storage —
//    a requirement of the zero-allocation planned forward (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace yollo {

// Worker count parallel_for may use (>= 1). First call reads
// YOLLO_NUM_THREADS; invalid or missing values mean 1.
int num_threads();

// Override the worker count (n < 1 is clamped to 1). Growing the count
// spawns the missing workers on the next parallel_for; shrinking just stops
// handing chunks to the extras.
void set_num_threads(int n);

namespace detail {

// Non-owning reference to the loop body. Valid only while the issuing
// parallel_for is blocked in parallel_for_impl.
struct ParallelBody {
  void* ctx;
  void (*invoke)(void* ctx, int64_t lo, int64_t hi);
};

void parallel_for_impl(int64_t begin, int64_t end, int64_t grain,
                       ParallelBody body);

}  // namespace detail

// Run fn(chunk_begin, chunk_end) over a disjoint cover of [begin, end).
// Chunks are at least `grain` long (the last may be shorter) and are fixed
// by (begin, end, grain) alone. Blocks until every chunk has run. The body
// must not throw and must write only to ranges derived from its chunk.
//
// Cancellation: when the dispatching thread has an ExecContext installed,
// unclaimed chunks are abandoned once the context reports cancelled — the
// output is then garbage and the caller must discard it (DESIGN.md §13).
template <typename F>
inline void parallel_for(int64_t begin, int64_t end, int64_t grain, F&& fn) {
  using Body = std::remove_reference_t<F>;
  detail::ParallelBody body{
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
      [](void* ctx, int64_t lo, int64_t hi) {
        (*static_cast<Body*>(ctx))(lo, hi);
      }};
  detail::parallel_for_impl(begin, end, grain, body);
}

// True while the calling thread is executing a parallel_for body — on a
// pool worker, or on the dispatching thread while it drains chunks. Used
// to confine exception-raising slow paths (pool budget enforcement) to
// code that is never inside a must-not-throw body.
bool in_parallel_region();

}  // namespace yollo
