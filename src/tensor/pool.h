// StoragePool: a thread-local free-list that recycles same-size tensor
// storage buffers behind the Tensor factories.
//
// Repeated inference forwards allocate and free the same set of temporary
// shapes on every call (every transpose/permute/slice/elementwise kernel
// materialises a fresh buffer). With a PoolScope active on the thread,
// those buffers are returned to a per-size free list when their last
// reference drops and handed back on the next same-size allocation, so the
// hot path stops hitting the allocator entirely after the first forward.
//
// Rules (DESIGN.md §9):
//  - Opt-in: pooling only happens inside an active PoolScope; without one,
//    Tensor allocation behaviour is byte-for-byte the pre-pool behaviour.
//  - Indistinguishable: a pooled buffer is re-zeroed on reuse, so callers
//    cannot tell pooled and unpooled tensors apart (Tensor(Shape) stays
//    zero-filled). Tensors may safely outlive the scope: their storage
//    simply falls back to a plain free once the scope is gone.
//  - Thread-local: the pool is owned by the thread that opened the scope.
//    A buffer released on another thread (or after the scope died) is freed
//    normally — never pushed onto a foreign free list — so the pool needs
//    no locks and is ThreadSanitizer-clean by construction.
//  - Nesting joins: opening a PoolScope while one is already active on the
//    thread is a no-op passthrough, so an outer long-lived scope (e.g. a
//    serve worker) keeps recycling across the inner scopes that
//    YolloModel::predict/infer install internally.
//  - Budgeted: a scope may set a byte budget. A fresh allocation that
//    would push the pool's outstanding bytes (live + parked) past it
//    throws PoolBudgetExceeded instead of growing — the serving layer
//    converts that into kResourceExhausted and degrades, rather than
//    letting the process OOM. Enforcement is skipped inside parallel_for
//    bodies (they must not throw); pool-worker allocations bypass the
//    thread-local pool entirely and are never affected.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace yollo {

// Thrown by the Tensor storage factory when an allocation would exceed the
// active PoolScope's byte budget. Raised only at op-dispatch level (never
// from inside a parallel_for body); YolloModel::infer reports it as a
// typed kResourceExhausted outcome.
class PoolBudgetExceeded : public std::runtime_error {
 public:
  PoolBudgetExceeded(int64_t requested, int64_t outstanding, int64_t budget);
  int64_t requested_bytes;
  int64_t outstanding_bytes;
  int64_t budget_bytes;
};

namespace detail {
struct PoolState;

// Storage factory used by the Tensor constructors: pooled when a PoolScope
// is active on this thread, a plain allocation otherwise. Returns a buffer
// of `n` floats, zero-filled unless `zeroed` is false (then a recycled
// buffer keeps its stale contents — only for callers that overwrite every
// element before the tensor escapes; fresh allocations are zeroed either
// way).
std::shared_ptr<std::vector<float>> acquire_storage(int64_t n,
                                                    bool zeroed = true);

// Charge `bytes` of externally-owned memory (the plan arena,
// tensor/arena.h) against the calling thread's active pool budget, exactly
// once: the returned handle releases the charge when destroyed, so a plan
// rebuild that drops the old arena before allocating the new one never
// double-counts. Returns a null handle when no PoolScope is active (nothing
// to charge against). Throws PoolBudgetExceeded when the charge would push
// outstanding bytes past the budget.
std::shared_ptr<void> charge_external_bytes(int64_t bytes);
}  // namespace detail

struct PoolStats {
  int64_t hits = 0;      // acquisitions served from the free list
  int64_t misses = 0;    // acquisitions that went to the allocator
  int64_t recycled = 0;  // buffers returned to the free list
  int64_t dropped = 0;   // buffers freed instead (full list / foreign thread)
  int64_t budget_rejected = 0;  // allocations refused by the byte budget
};

class PoolScope {
 public:
  PoolScope();
  ~PoolScope();
  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;

  // True when any PoolScope is active on the calling thread.
  static bool active();

  // Counters of the scope this object manages (the joined outer scope's
  // counters when this scope was a passthrough). Call from the owning
  // thread only.
  PoolStats stats() const;

  // Drop every cached buffer of the active pool back to the allocator
  // (and release their bytes from the budget accounting).
  void trim();

  // Cap the pool's outstanding bytes (live tensors + parked buffers
  // attributed to this pool). 0 disables enforcement (the default). Call
  // from the owning thread; applies to the joined scope when this one was
  // a passthrough.
  void set_budget_bytes(int64_t budget);
  int64_t budget_bytes() const;

  // Bytes currently attributed to the pool: allocations handed out minus
  // buffers actually freed (parked buffers stay counted until trimmed).
  int64_t outstanding_bytes() const;

 private:
  std::shared_ptr<detail::PoolState> state_;  // null when passthrough
};

}  // namespace yollo
