#include "tensor/exec.h"

namespace yollo {
namespace {

thread_local ExecContext* t_current = nullptr;

}  // namespace

const char* cancel_cause_name(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone:
      return "NONE";
    case CancelCause::kCancelled:
      return "CANCELLED";
    case CancelCause::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

ExecCancelled::ExecCancelled(CancelCause cause)
    : std::runtime_error(std::string("execution cancelled: ") +
                         cancel_cause_name(cause)),
      cause_(cause) {}

void ExecContext::arm(Clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  deadline_ = deadline;
  has_deadline_ = deadline != Clock::time_point::max();
  cancel_ns_.store(0, std::memory_order_release);
  cause_.store(static_cast<int>(CancelCause::kNone),
               std::memory_order_release);
  // Advance the generation last: once a canceller can no longer match the
  // old generation, the cause it would have set has already been cleared.
  generation_.fetch_add(1, std::memory_order_release);
}

bool ExecContext::cancel(CancelCause cause) {
  if (cause == CancelCause::kNone) return false;
  int expected = static_cast<int>(CancelCause::kNone);
  if (cause_.compare_exchange_strong(expected, static_cast<int>(cause),
                                     std::memory_order_acq_rel)) {
    cancel_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now().time_since_epoch())
                         .count(),
                     std::memory_order_release);
    return true;
  }
  return false;
}

bool ExecContext::cancel_if_generation(uint64_t gen, CancelCause cause) {
  // The lock makes the generation check atomic with the cause CAS: arm()
  // holds the same lock, so a context re-armed after the caller read `gen`
  // either bumps the generation before we check (we decline) or after we
  // return (arm clears the cause we just set — also correct, the old unit
  // of work is gone).
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_.load(std::memory_order_acquire) != gen) return false;
  return cancel(cause);
}

ExecContext* ExecContext::current() { return t_current; }

ExecContext::Scope::Scope(ExecContext* ctx) : previous_(t_current) {
  t_current = ctx;
}

ExecContext::Scope::~Scope() { t_current = previous_; }

}  // namespace yollo
