// Reductions, softmax, concatenation and broadcast-adjoint kernels.
#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/tensor.h"

namespace yollo {
namespace {

// Outer-slice count below which an axis kernel is not worth the pool; each
// outer slice owns a disjoint output range, so partitioning over `outer`
// is deterministic at any thread count.
constexpr int64_t kOuterGrain = 8;

// Decompose a shape around `axis` into (outer, extent, inner) so an axis
// reduction is three nested loops over contiguous memory.
struct AxisSplit {
  int64_t outer = 1;
  int64_t extent = 1;
  int64_t inner = 1;
};

AxisSplit split_axis(const Shape& shape, int64_t axis) {
  AxisSplit s;
  s.extent = shape[static_cast<size_t>(axis)];
  for (int64_t i = 0; i < axis; ++i) s.outer *= shape[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(axis) + 1; i < shape.size(); ++i) {
    s.inner *= shape[i];
  }
  return s;
}

Shape reduced_shape(const Shape& shape, int64_t axis, bool keepdim) {
  Shape out = shape;
  if (keepdim) {
    out[static_cast<size_t>(axis)] = 1;
  } else {
    out.erase(out.begin() + axis);
  }
  return out;
}

}  // namespace

Tensor sum(const Tensor& a) {
  const float* p = a.data();
  double acc = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) acc += p[i];
  return Tensor::scalar(static_cast<float>(acc));
}

Tensor sum(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const AxisSplit s = split_axis(a.shape(), ax);
  // The shared kernel zeroes each output row itself (ascending-e
  // accumulation order preserved), so the output skips the pool's zero-fill.
  Tensor out = Tensor::uninitialized(reduced_shape(a.shape(), ax, keepdim));
  kernels::sum_axis_into(a.data(), out.data(), s.outer, s.extent, s.inner);
  return out;
}

Tensor mean(const Tensor& a) {
  return sum(a) * (1.0f / static_cast<float>(std::max<int64_t>(a.numel(), 1)));
}

Tensor mean(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const float inv = 1.0f / static_cast<float>(a.size(ax));
  return sum(a, ax, keepdim) * inv;
}

Tensor max(const Tensor& a, int64_t axis, bool keepdim) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const AxisSplit s = split_axis(a.shape(), ax);
  Tensor out(reduced_shape(a.shape(), ax, keepdim));
  out.fill(-std::numeric_limits<float>::infinity());
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t e = 0; e < s.extent; ++e) {
      const float* row = src + (o * s.extent + e) * s.inner;
      float* orow = dst + o * s.inner;
      for (int64_t i = 0; i < s.inner; ++i) orow[i] = std::max(orow[i], row[i]);
    }
  }
  return out;
}

float max_value(const Tensor& a) {
  const float* p = a.data();
  float best = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < a.numel(); ++i) best = std::max(best, p[i]);
  return best;
}

float min_value(const Tensor& a) {
  const float* p = a.data();
  float best = std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < a.numel(); ++i) best = std::min(best, p[i]);
  return best;
}

Tensor argmax(const Tensor& a, int64_t axis) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const AxisSplit s = split_axis(a.shape(), ax);
  Tensor out(reduced_shape(a.shape(), ax, /*keepdim=*/false));
  const float* src = a.data();
  float* dst = out.data();
  for (int64_t o = 0; o < s.outer; ++o) {
    for (int64_t i = 0; i < s.inner; ++i) {
      float best = -std::numeric_limits<float>::infinity();
      int64_t best_idx = 0;
      for (int64_t e = 0; e < s.extent; ++e) {
        const float v = src[(o * s.extent + e) * s.inner + i];
        if (v > best) {
          best = v;
          best_idx = e;
        }
      }
      dst[o * s.inner + i] = static_cast<float>(best_idx);
    }
  }
  return out;
}

int64_t argmax_flat(const Tensor& a) {
  const float* p = a.data();
  int64_t best_idx = 0;
  float best = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (p[i] > best) {
      best = p[i];
      best_idx = i;
    }
  }
  return best_idx;
}

Tensor softmax(const Tensor& a, int64_t axis) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const AxisSplit s = split_axis(a.shape(), ax);
  Tensor out = Tensor::uninitialized(a.shape());
  kernels::softmax_into(a.data(), out.data(), s.outer, s.extent, s.inner);
  return out;
}

Tensor log_softmax(const Tensor& a, int64_t axis) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const AxisSplit s = split_axis(a.shape(), ax);
  Tensor out(a.shape());
  const float* src = a.data();
  float* dst = out.data();
  parallel_for(0, s.outer, kOuterGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < s.inner; ++i) {
        float m = -std::numeric_limits<float>::infinity();
        for (int64_t e = 0; e < s.extent; ++e) {
          m = std::max(m, src[(o * s.extent + e) * s.inner + i]);
        }
        float z = 0.0f;
        for (int64_t e = 0; e < s.extent; ++e) {
          z += std::exp(src[(o * s.extent + e) * s.inner + i] - m);
        }
        const float logz = m + std::log(z);
        for (int64_t e = 0; e < s.extent; ++e) {
          const int64_t idx = (o * s.extent + e) * s.inner + i;
          dst[idx] = src[idx] - logz;
        }
      }
    }
  });
  return out;
}

Tensor concat(const std::vector<Tensor>& parts, int64_t axis) {
  if (parts.empty()) throw std::invalid_argument("concat: no inputs");
  const int64_t rank = parts[0].ndim();
  const int64_t ax = normalize_axis(axis, rank);
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const Tensor& t : parts) {
    if (t.ndim() != rank) throw std::invalid_argument("concat: rank mismatch");
    for (int64_t d = 0; d < rank; ++d) {
      if (d != ax && t.size(d) != out_shape[static_cast<size_t>(d)]) {
        throw std::invalid_argument("concat: extent mismatch on dim " +
                                    std::to_string(d));
      }
    }
    total += t.size(ax);
  }
  out_shape[static_cast<size_t>(ax)] = total;
  Tensor out = Tensor::uninitialized(out_shape);

  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= out_shape[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (size_t i = static_cast<size_t>(ax) + 1; i < out_shape.size(); ++i) {
    inner *= out_shape[i];
  }

  float* dst = out.data();
  int64_t offset = 0;
  for (const Tensor& t : parts) {
    const int64_t extent = t.size(ax);
    kernels::copy_rows(t.data(), 0, extent * inner, dst, offset * inner,
                       total * inner, outer, extent * inner);
    offset += extent;
  }
  return out;
}

Tensor reduce_to_shape(const Tensor& grad, const Shape& to) {
  if (grad.shape() == to) return grad;
  Tensor g = grad;
  // Collapse extra leading dimensions.
  while (g.ndim() > static_cast<int64_t>(to.size())) {
    g = sum(g, 0, /*keepdim=*/false);
  }
  // Sum along broadcast (extent-1) dimensions.
  for (int64_t d = 0; d < g.ndim(); ++d) {
    if (to[static_cast<size_t>(d)] == 1 && g.size(d) != 1) {
      g = sum(g, d, /*keepdim=*/true);
    }
  }
  if (g.shape() != to) {
    throw std::invalid_argument("reduce_to_shape: cannot reduce " +
                                shape_to_string(grad.shape()) + " to " +
                                shape_to_string(to));
  }
  return g;
}

}  // namespace yollo
