#include "tensor/arena.h"

#include <algorithm>
#include <new>

#include "tensor/pool.h"

namespace yollo {

Arena::Arena(int64_t floats) : floats_(std::max<int64_t>(floats, 0)) {
  // Charge the pool budget BEFORE allocating: a refused charge throws and
  // leaves nothing to clean up.
  budget_charge_ = detail::charge_external_bytes(bytes());
  base_ = static_cast<float*>(::operator new(
      static_cast<size_t>(floats_) * sizeof(float), std::align_val_t{64}));
  std::fill(base_, base_ + floats_, 0.0f);
}

Arena::~Arena() {
  ::operator delete(base_, std::align_val_t{64});
  // budget_charge_ releases the bytes when it dies.
}

}  // namespace yollo
