// Deterministic random number generation for the yollo library.
//
// All stochastic components (parameter init, data synthesis, sampling) draw
// from an explicitly-seeded Rng so that every experiment in the repository
// is reproducible bit-for-bit on a given platform.
#pragma once

#include <cstdint>
#include <random>

namespace yollo {

// A seedable PRNG facade over std::mt19937_64 with the distributions the
// library needs. Cheap to copy; copies continue independent streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

  // Uniform float in [lo, hi).
  float uniform(float lo = 0.0f, float hi = 1.0f);

  // Standard normal (mean 0, stddev 1) scaled/shifted.
  float normal(float mean = 0.0f, float stddev = 1.0f);

  // Uniform integer in [lo, hi] inclusive.
  int64_t randint(int64_t lo, int64_t hi);

  // Bernoulli trial with probability p of true.
  bool bernoulli(float p);

  // Underlying engine, for std::shuffle and custom distributions.
  std::mt19937_64& engine() { return engine_; }

  // Fork a child generator whose stream is decorrelated from this one; used
  // to give each dataset/model component its own stream from one root seed.
  Rng fork();

  // Full engine state as a portable text snapshot / restore, so training
  // checkpoints can resume the exact random stream bit-for-bit.
  std::string state() const;
  void set_state(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace yollo
