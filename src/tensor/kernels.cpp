#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "tensor/parallel.h"

namespace yollo::kernels {

namespace {

// Outer-slice count below which an axis kernel is not worth the pool; each
// outer slice owns a disjoint output range, so partitioning over `outer`
// is deterministic at any thread count.
constexpr int64_t kOuterGrain = 8;

}  // namespace

void permute_into(const float* src, float* dst, int64_t rank,
                  const int64_t* out_shape, const int64_t* perm_strides,
                  int64_t numel) {
  if (numel == 0) return;
  if (rank == 0) {
    dst[0] = src[0];
    return;
  }
  if (rank > kMaxPermuteRank) {
    throw std::invalid_argument("permute_into: rank " + std::to_string(rank) +
                                " exceeds " + std::to_string(kMaxPermuteRank));
  }
  // Specialised innermost loop: the odometer only advances per run of the
  // last output dimension, and a stride-1 run (permutation keeps the input's
  // innermost axis last) degenerates to a straight copy.
  const int64_t inner = out_shape[rank - 1];
  const int64_t inner_stride = perm_strides[rank - 1];
  int64_t coords[kMaxPermuteRank] = {0};
  int64_t offset = 0;
  for (int64_t flat = 0; flat < numel; flat += inner) {
    if (inner_stride == 1) {
      std::copy(src + offset, src + offset + inner, dst + flat);
    } else {
      for (int64_t i = 0; i < inner; ++i) {
        dst[flat + i] = src[offset + i * inner_stride];
      }
    }
    for (int64_t d = rank - 2; d >= 0; --d) {
      ++coords[d];
      offset += perm_strides[d];
      if (coords[d] < out_shape[d]) break;
      offset -= perm_strides[d] * out_shape[d];
      coords[d] = 0;
    }
  }
}

void copy_rows(const float* src, int64_t src_off, int64_t src_stride,
               float* dst, int64_t dst_off, int64_t dst_stride, int64_t rows,
               int64_t run) {
  const float* s = src + src_off;
  float* d = dst + dst_off;
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(s, s + run, d);
    s += src_stride;
    d += dst_stride;
  }
}

void gather_rows_into(const float* src, int64_t extent, int64_t inner,
                      const int64_t* ids, int64_t count, float* dst) {
  for (int64_t j = 0; j < count; ++j) {
    const int64_t idx = ids[j];
    if (idx < 0 || idx >= extent) {
      throw std::out_of_range("gather_rows: index " + std::to_string(idx) +
                              " out of range for extent " +
                              std::to_string(extent));
    }
    const float* s = src + idx * inner;
    std::copy(s, s + inner, dst + j * inner);
  }
}

void sum_axis_into(const float* src, float* dst, int64_t outer, int64_t extent,
                   int64_t inner) {
  parallel_for(0, outer, kOuterGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      float* orow = dst + o * inner;
      std::fill(orow, orow + inner, 0.0f);
      for (int64_t e = 0; e < extent; ++e) {
        const float* row = src + (o * extent + e) * inner;
        for (int64_t i = 0; i < inner; ++i) orow[i] += row[i];
      }
    }
  });
}

void softmax_into(const float* src, float* dst, int64_t outer, int64_t extent,
                  int64_t inner) {
  parallel_for(0, outer, kOuterGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t o = lo; o < hi; ++o) {
      for (int64_t i = 0; i < inner; ++i) {
        float m = -std::numeric_limits<float>::infinity();
        for (int64_t e = 0; e < extent; ++e) {
          m = std::max(m, src[(o * extent + e) * inner + i]);
        }
        float z = 0.0f;
        for (int64_t e = 0; e < extent; ++e) {
          const int64_t idx = (o * extent + e) * inner + i;
          dst[idx] = std::exp(src[idx] - m);
          z += dst[idx];
        }
        const float inv = 1.0f / z;
        for (int64_t e = 0; e < extent; ++e) {
          dst[(o * extent + e) * inner + i] *= inv;
        }
      }
    }
  });
}

void fill_coord_channels(const float* images, float* dst, int64_t b, int64_t h,
                         int64_t w) {
  const int64_t plane = h * w;
  for (int64_t bi = 0; bi < b; ++bi) {
    std::copy(images + bi * 3 * plane, images + (bi + 1) * 3 * plane,
              dst + bi * 5 * plane);
    float* xs = dst + (bi * 5 + 3) * plane;
    float* ys = dst + (bi * 5 + 4) * plane;
    for (int64_t y = 0; y < h; ++y) {
      const float yv = static_cast<float>(y) / static_cast<float>(h - 1);
      for (int64_t x = 0; x < w; ++x) {
        xs[y * w + x] = static_cast<float>(x) / static_cast<float>(w - 1);
        ys[y * w + x] = yv;
      }
    }
  }
}

void fill_pair_mask(const int64_t* tokens, int64_t b, int64_t m, int64_t n,
                    float* dst) {
  const int64_t k = m + n;
  for (int64_t bi = 0; bi < b; ++bi) {
    const int64_t* toks = tokens + bi * n;
    for (int64_t r = 0; r < k; ++r) {
      const float rv = r < m ? 1.0f : (toks[r - m] == 0 ? 0.0f : 1.0f);
      float* row = dst + (bi * k + r) * k;
      for (int64_t c = 0; c < k; ++c) {
        row[c] = rv * (c < m ? 1.0f : (toks[c - m] == 0 ? 0.0f : 1.0f));
      }
    }
  }
}

}  // namespace yollo::kernels
