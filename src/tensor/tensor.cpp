#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "tensor/kernels.h"
#include "tensor/pool.h"

namespace yollo {

Tensor::Tensor() = default;

namespace {

// Bind a pool-acquired storage vector as (data, owner).
inline void adopt_storage(std::shared_ptr<std::vector<float>> storage,
                          float*& data, std::shared_ptr<void>& owner) {
  data = storage->data();
  owner = std::move(storage);
}

}  // namespace

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), numel_(yollo::numel(shape_)) {
  adopt_storage(detail::acquire_storage(numel_), data_, owner_);
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(yollo::numel(shape_)) {
  if (static_cast<int64_t>(values.size()) != numel_) {
    throw std::invalid_argument("Tensor: value count " +
                                std::to_string(values.size()) +
                                " does not match shape " +
                                shape_to_string(shape_));
  }
  adopt_storage(std::make_shared<std::vector<float>>(std::move(values)),
                data_, owner_);
}

Tensor Tensor::uninitialized(Shape shape) {
  Tensor t;
  t.numel_ = yollo::numel(shape);
  adopt_storage(detail::acquire_storage(t.numel_, /*zeroed=*/false), t.data_,
                t.owner_);
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::from_external(Shape shape, float* data,
                             std::shared_ptr<void> owner) {
  Tensor t;
  t.numel_ = yollo::numel(shape);
  t.shape_ = std::move(shape);
  t.data_ = data;
  t.owner_ = std::move(owner);
  if (!t.owner_) {
    throw std::invalid_argument("from_external: owner must be non-null");
  }
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::scalar(float value) {
  Tensor t{Shape{}};
  t.data_[0] = value;
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t{Shape{n}};
  float* p = t.data();
  for (int64_t i = 0; i < n; ++i) p[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& values) {
  return Tensor(Shape{static_cast<int64_t>(values.size())}, values);
}

int64_t Tensor::size(int64_t axis) const {
  return shape_[static_cast<size_t>(normalize_axis(axis, ndim()))];
}

void Tensor::check_defined(const char* op) const {
  if (!defined()) {
    throw std::logic_error(std::string(op) + ": tensor is undefined");
  }
}

float* Tensor::data() {
  check_defined("data");
  return data_;
}

const float* Tensor::data() const {
  check_defined("data");
  return data_;
}

float& Tensor::operator[](int64_t flat) { return data_[flat]; }

float Tensor::operator[](int64_t flat) const { return data_[flat]; }

float& Tensor::at(std::initializer_list<int64_t> coords) {
  const Strides strides = contiguous_strides(shape_);
  int64_t offset = 0;
  size_t i = 0;
  for (int64_t c : coords) offset += c * strides[i++];
  return data_[offset];
}

float Tensor::at(std::initializer_list<int64_t> coords) const {
  return const_cast<Tensor*>(this)->at(coords);
}

float Tensor::item() const {
  check_defined("item");
  if (numel_ != 1) {
    throw std::logic_error("item: tensor has " + std::to_string(numel_) +
                           " elements, expected 1");
  }
  return data_[0];
}

Tensor Tensor::reshape(Shape new_shape) const {
  check_defined("reshape");
  int64_t inferred = -1;
  int64_t known = 1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      if (inferred >= 0) {
        throw std::invalid_argument("reshape: more than one -1 dimension");
      }
      inferred = static_cast<int64_t>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (inferred >= 0) {
    if (known == 0 || numel_ % known != 0) {
      throw std::invalid_argument("reshape: cannot infer dimension");
    }
    new_shape[static_cast<size_t>(inferred)] = numel_ / known;
  }
  if (yollo::numel(new_shape) != numel_) {
    throw std::invalid_argument("reshape: " + shape_to_string(shape_) +
                                " -> " + shape_to_string(new_shape) +
                                " changes element count");
  }
  Tensor out;
  out.data_ = data_;
  out.owner_ = owner_;
  out.shape_ = std::move(new_shape);
  out.numel_ = numel_;
  return out;
}

Tensor Tensor::clone() const {
  check_defined("clone");
  // Route through uninitialized() so the copy's storage is pool-eligible.
  Tensor out = uninitialized(shape_);
  std::copy(data_, data_ + numel_, out.data_);
  return out;
}

Tensor Tensor::transpose(int64_t a, int64_t b) const {
  const int64_t rank = ndim();
  std::vector<int64_t> order(static_cast<size_t>(rank));
  for (int64_t i = 0; i < rank; ++i) order[static_cast<size_t>(i)] = i;
  std::swap(order[static_cast<size_t>(normalize_axis(a, rank))],
            order[static_cast<size_t>(normalize_axis(b, rank))]);
  return permute(order);
}

Tensor Tensor::permute(const std::vector<int64_t>& order) const {
  check_defined("permute");
  const int64_t rank = ndim();
  if (static_cast<int64_t>(order.size()) != rank) {
    throw std::invalid_argument("permute: order has wrong rank");
  }
  Shape out_shape(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    out_shape[i] = shape_[static_cast<size_t>(normalize_axis(order[i], rank))];
  }
  Tensor out = uninitialized(out_shape);
  if (numel_ == 0) return out;
  const Strides in_strides = contiguous_strides(shape_);
  Strides perm_strides(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    perm_strides[i] =
        in_strides[static_cast<size_t>(normalize_axis(order[i], rank))];
  }
  kernels::permute_into(data(), out.data(), rank, out_shape.data(),
                        perm_strides.data(), numel_);
  return out;
}

Tensor Tensor::narrow(int64_t axis, int64_t start, int64_t length) const {
  check_defined("narrow");
  const int64_t ax = normalize_axis(axis, ndim());
  const int64_t extent = shape_[static_cast<size_t>(ax)];
  if (start < 0 || length < 0 || start + length > extent) {
    throw std::out_of_range("narrow: [" + std::to_string(start) + ", " +
                            std::to_string(start + length) +
                            ") out of range for extent " +
                            std::to_string(extent));
  }
  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(ax)] = length;
  Tensor out = uninitialized(out_shape);
  if (out.numel() == 0) return out;

  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= shape_[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < ndim(); ++i)
    inner *= shape_[static_cast<size_t>(i)];

  kernels::copy_rows(data(), start * inner, extent * inner, out.data(), 0,
                     length * inner, outer, length * inner);
  return out;
}

Tensor Tensor::index_select(int64_t axis,
                            const std::vector<int64_t>& indices) const {
  check_defined("index_select");
  const int64_t ax = normalize_axis(axis, ndim());
  const int64_t extent = shape_[static_cast<size_t>(ax)];
  Shape out_shape = shape_;
  out_shape[static_cast<size_t>(ax)] = static_cast<int64_t>(indices.size());
  Tensor out(out_shape);

  int64_t outer = 1;
  for (int64_t i = 0; i < ax; ++i) outer *= shape_[static_cast<size_t>(i)];
  int64_t inner = 1;
  for (int64_t i = ax + 1; i < ndim(); ++i)
    inner *= shape_[static_cast<size_t>(i)];

  const float* src = data();
  float* dst = out.data();
  const int64_t n_idx = static_cast<int64_t>(indices.size());
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t j = 0; j < n_idx; ++j) {
      const int64_t idx = indices[static_cast<size_t>(j)];
      if (idx < 0 || idx >= extent) {
        throw std::out_of_range("index_select: index " + std::to_string(idx) +
                                " out of range for extent " +
                                std::to_string(extent));
      }
      const float* s = src + (o * extent + idx) * inner;
      std::copy(s, s + inner, dst + (o * n_idx + j) * inner);
    }
  }
  return out;
}

Tensor Tensor::unsqueeze(int64_t axis) const {
  Shape out_shape = shape_;
  const int64_t rank = ndim() + 1;
  const int64_t ax = axis < 0 ? axis + rank : axis;
  if (ax < 0 || ax >= rank) throw std::invalid_argument("unsqueeze: bad axis");
  out_shape.insert(out_shape.begin() + ax, 1);
  return reshape(std::move(out_shape));
}

Tensor Tensor::squeeze(int64_t axis) const {
  const int64_t ax = normalize_axis(axis, ndim());
  if (shape_[static_cast<size_t>(ax)] != 1) {
    throw std::invalid_argument("squeeze: dimension " + std::to_string(ax) +
                                " has extent " +
                                std::to_string(shape_[static_cast<size_t>(ax)]));
  }
  Shape out_shape = shape_;
  out_shape.erase(out_shape.begin() + ax);
  return reshape(std::move(out_shape));
}

Tensor Tensor::broadcast_to(const Shape& target) const {
  check_defined("broadcast_to");
  if (shape_ == target) return *this;
  const Strides strides = broadcast_strides(shape_, target);
  Tensor out(target);
  if (out.numel() == 0) return out;
  std::vector<int64_t> coords(target.size(), 0);
  const float* src = data();
  float* dst = out.data();
  const int64_t rank = static_cast<int64_t>(target.size());
  const int64_t n = out.numel();
  int64_t offset = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    dst[flat] = src[offset];
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      ++coords[ud];
      offset += strides[ud];
      if (coords[ud] < target[ud]) break;
      offset -= strides[ud] * target[ud];
      coords[ud] = 0;
    }
  }
  return out;
}

void Tensor::fill(float value) {
  check_defined("fill");
  std::fill(data_, data_ + numel_, value);
}

void Tensor::copy_from(const Tensor& src) {
  check_defined("copy_from");
  if (!same_shape(src)) {
    throw std::invalid_argument("copy_from: shape mismatch " +
                                shape_to_string(shape_) + " vs " +
                                shape_to_string(src.shape_));
  }
  std::copy(src.data(), src.data() + numel_, data());
}

Tensor Tensor::map(const std::function<float(float)>& fn) const {
  return map_fn(fn);
}

std::vector<float> Tensor::to_vector() const {
  check_defined("to_vector");
  return std::vector<float>(data_, data_ + numel_);
}

std::string Tensor::to_string(int64_t max_per_dim) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const int64_t show = std::min<int64_t>(numel_, max_per_dim * max_per_dim);
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (show < numel_) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace yollo
