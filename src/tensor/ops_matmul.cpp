// Matrix multiply: thin shape-dispatch over the yollo::gemm runtime
// (DESIGN.md §10). 2-D, batched 3-D, and 3-D × 2-D (B broadcast across the
// batch and packed exactly once) all land on the same blocked, packed
// kernel; the old per-batch naive loop is gone.
#include <stdexcept>

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace yollo {

Tensor matmul(const Tensor& a, const Tensor& b) {
  if ((a.ndim() == 2 && b.ndim() == 2) ||
      (a.ndim() == 3 && (b.ndim() == 3 || b.ndim() == 2))) {
    return batched_matmul(a, /*trans_a=*/false, b, /*trans_b=*/false);
  }
  throw std::invalid_argument("matmul: expects 2-D x 2-D or 3-D x 3-D, got " +
                              shape_to_string(a.shape()) + " x " +
                              shape_to_string(b.shape()));
}

}  // namespace yollo
