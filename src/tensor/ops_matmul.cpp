// Matrix-multiply kernels: 2-D GEMM and batched 3-D GEMM.
//
// The inner kernel is a cache-friendly i-k-j loop over contiguous rows; at
// the model sizes this library targets (hundreds of rows, tens to hundreds
// of columns) it is within a small factor of a tuned BLAS on one core.
#include <stdexcept>

#include "tensor/tensor.h"

namespace yollo {
namespace {

// C[m,n] += A[m,k] * B[k,n]; all pointers row-major dense.
void gemm_accumulate(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.ndim() == 2 && b.ndim() == 2) {
    const int64_t m = a.size(0);
    const int64_t k = a.size(1);
    if (b.size(0) != k) {
      throw std::invalid_argument("matmul: inner dims disagree, " +
                                  shape_to_string(a.shape()) + " x " +
                                  shape_to_string(b.shape()));
    }
    const int64_t n = b.size(1);
    Tensor out({m, n});
    gemm_accumulate(a.data(), b.data(), out.data(), m, k, n);
    return out;
  }
  if (a.ndim() == 3 && b.ndim() == 3) {
    const int64_t batch = a.size(0);
    if (b.size(0) != batch) {
      throw std::invalid_argument("matmul: batch dims disagree");
    }
    const int64_t m = a.size(1);
    const int64_t k = a.size(2);
    if (b.size(1) != k) {
      throw std::invalid_argument("matmul: inner dims disagree, " +
                                  shape_to_string(a.shape()) + " x " +
                                  shape_to_string(b.shape()));
    }
    const int64_t n = b.size(2);
    Tensor out({batch, m, n});
    for (int64_t bi = 0; bi < batch; ++bi) {
      gemm_accumulate(a.data() + bi * m * k, b.data() + bi * k * n,
                      out.data() + bi * m * n, m, k, n);
    }
    return out;
  }
  throw std::invalid_argument("matmul: expects 2-D x 2-D or 3-D x 3-D, got " +
                              shape_to_string(a.shape()) + " x " +
                              shape_to_string(b.shape()));
}

}  // namespace yollo
