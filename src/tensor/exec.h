// ExecContext: thread-local cooperative cancellation + deadline context.
//
// Design (DESIGN.md §13):
//  - Same shape as ag::GradMode: a thread-local pointer installed by an
//    RAII Scope on the dispatching thread (a serve worker arming one per
//    attempt). Kernels capture ExecContext::current() once at entry and
//    poll checkpoint() at bounded-granularity points — GEMM MC-block
//    boundaries, conv im2col/col2im chunks, parallel_for chunk claims, and
//    op dispatch in the grad-free forward.
//  - checkpoint() is an atomic heartbeat bump plus one relaxed flag load;
//    a deadline (when armed) self-cancels via a steady_clock read. With no
//    context installed the hot-path cost is one thread_local load + branch
//    (pinned by the guardband test next to the obs one).
//  - Cancellation never unwinds through a kernel: parallel_for bodies must
//    not throw (they run on pool workers), so kernels observing a cancel
//    simply abandon their remaining work and return. The partial output is
//    garbage by construction — whoever armed the context must check
//    cancelled() after the kernel/forward and discard the result.
//    Exceptions (ExecCancelled) are thrown only at op-dispatch level on
//    the thread that owns the scope, where YolloModel::infer catches them.
//  - External cancel (watchdog kick, hedge-loser reap, client cancel) goes
//    through cancel_if_generation(): arm() advances a generation counter
//    under a small mutex, so a canceller holding a stale generation cannot
//    kill the context's next unit of work.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>

namespace yollo {

// Why a unit of work stopped early. kNone means "still running".
enum class CancelCause : int {
  kNone = 0,
  kCancelled = 1,         // explicit external cancel (hedge loser, client,
                          // watchdog kick)
  kDeadlineExceeded = 2,  // the armed deadline expired at a checkpoint
};

const char* cancel_cause_name(CancelCause cause);

// Thrown by throw_if_cancelled() at op-dispatch level (never from inside a
// parallel_for body). YolloModel::infer catches it and reports a typed
// outcome instead of letting it escape a serve worker.
class ExecCancelled : public std::runtime_error {
 public:
  explicit ExecCancelled(CancelCause cause);
  CancelCause cause() const { return cause_; }

 private:
  CancelCause cause_;
};

class ExecContext {
 public:
  using Clock = std::chrono::steady_clock;

  // Re-arm for a new unit of work: clears the cancel cause, advances the
  // generation, and installs the deadline (Clock::time_point::max() means
  // "no deadline" and skips the per-checkpoint clock read). Call only from
  // the thread that owns the context, between units of work.
  void arm(Clock::time_point deadline = Clock::time_point::max());

  // Request cancellation from any thread. First cause wins; returns true
  // if this call set it (false if already cancelled).
  bool cancel(CancelCause cause);

  // cancel(), but declined when the context has been re-armed since the
  // caller observed `gen` — closes the race where a watchdog or hedge
  // reaper would kill the worker's *next* request.
  bool cancel_if_generation(uint64_t gen, CancelCause cause);

  bool cancelled() const {
    return cause_.load(std::memory_order_relaxed) !=
           static_cast<int>(CancelCause::kNone);
  }
  CancelCause cause() const {
    return static_cast<CancelCause>(cause_.load(std::memory_order_acquire));
  }

  // Monotonic progress counter bumped by every checkpoint(); the serve
  // watchdog compares successive reads to detect a wedged worker.
  uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // steady_clock nanoseconds of the first cancel()/deadline trip since the
  // last arm(); 0 when not cancelled. Used to measure cancel→worker-free
  // latency.
  int64_t cancel_time_ns() const {
    return cancel_ns_.load(std::memory_order_acquire);
  }

  // Poll point for kernels: bumps the heartbeat, self-cancels on an
  // expired deadline, and returns true when the current unit of work
  // should be abandoned. Safe to call from pool workers running on behalf
  // of the owning thread.
  bool checkpoint() {
    heartbeats_.fetch_add(1, std::memory_order_relaxed);
    if (cancelled()) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancel(CancelCause::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  // checkpoint() without the heartbeat bump: for code that must observe a
  // cancel/deadline while *deliberately* looking stuck to the watchdog
  // (the fault injector's sliced slow sleep).
  bool cancelled_or_expired() {
    if (cancelled()) return true;
    if (has_deadline_ && Clock::now() >= deadline_) {
      cancel(CancelCause::kDeadlineExceeded);
      return true;
    }
    return false;
  }

  // Op-dispatch checkpoint: throws ExecCancelled when cancelled. Call only
  // on the thread that owns the scope — never from a parallel_for body.
  void throw_if_cancelled() {
    if (checkpoint()) throw ExecCancelled(cause());
  }

  // The context installed on this thread, or nullptr.
  static ExecContext* current();

  // RAII installer. Nesting replaces the outer context for the inner
  // scope's lifetime (a serve worker's per-attempt scope shadows nothing
  // in practice).
  class Scope {
   public:
    explicit Scope(ExecContext* ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ExecContext* previous_;
  };

 private:
  // cause_ is lock-free for the checkpoint hot path; arm() and the cancel
  // writers serialise on mu_ so cancel_if_generation's check-and-set is
  // atomic with respect to re-arming.
  std::atomic<int> cause_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> generation_{0};
  std::atomic<int64_t> cancel_ns_{0};
  // Written under mu_ by arm() (owning thread, between units of work);
  // read without the lock by checkpoints. Pool workers only observe these
  // via a parallel_for dispatched after arm(), whose job hand-off mutex
  // provides the happens-before edge.
  Clock::time_point deadline_ = Clock::time_point::max();
  bool has_deadline_ = false;
  std::mutex mu_;
};

}  // namespace yollo
