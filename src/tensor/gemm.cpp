#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/exec.h"
#include "tensor/parallel.h"

namespace yollo {
namespace {

// Register tile (micro-kernel) and cache blocks. MR×NR = 4×16 keeps the
// accumulator tile in vector registers (4×2 YMM under AVX, 4×4 XMM under
// SSE) with one broadcast register for A; KC×MC sizes the packed panels to
// sit in L1/L2 across the jr/ir sweeps.
constexpr int64_t MR = 4;
constexpr int64_t NR = 16;
constexpr int64_t KC = 256;
constexpr int64_t MC = 128;
constexpr int64_t NC = 2048;

int64_t round_up(int64_t v, int64_t multiple) {
  return (v + multiple - 1) / multiple * multiple;
}

// Grow-only per-thread packing scratch. Panel sizes are bounded by the
// blocking constants (B: round_up(NC,NR)·KC floats = 2 MiB, A:
// round_up(MC,MR)·KC floats = 128 KiB), so each participating thread
// converges to one fixed allocation after its first large gemm — the
// steady-state planned forward (DESIGN.md §14) then packs with zero heap
// traffic. Distinct members for A and B because the dispatching thread
// holds a B panel across the parallel section while packing A inside it.
// Deliberately outside the StoragePool: the scratch is transient per-call
// working memory, not tensor storage, and is excluded from the pool's
// byte-budget accounting.
struct PackScratch {
  std::vector<float> a, b;
};
thread_local PackScratch t_pack;

float* pack_scratch(std::vector<float>& buf, int64_t n) {
  if (static_cast<int64_t>(buf.size()) < n) buf.resize(static_cast<size_t>(n));
  return buf.data();
}

// acc[MR][NR] = sum_p apanel[p][.] ⊗ b[p][.]; `kc` is the only
// loop-carried dimension. The A panel is zero-padded to MR so there is no
// edge branch in here; `ldb` is the stride between consecutive K rows of B
// (NR for a packed panel, the matrix leading dimension when streaming an
// unpacked full-width panel straight from row-major B).
//
// The accumulator tile must live in vector registers across the whole K
// loop — left to the auto-vectorizer this kernel compiles to scalar code
// that spills acc every iteration (6x slower than the naive kernel). GCC's
// vector extensions make the register tiling explicit: 4 rows x 2
// 8-float vectors of accumulator, one broadcast multiply per row per step.
// The extension is supported by GCC and Clang on every target (the
// compiler legalises 32-byte vectors to whatever the ISA has), with a
// plain-scalar fallback for other compilers.
#if defined(__GNUC__) || defined(__clang__)
typedef float vf8 __attribute__((vector_size(32), aligned(4), may_alias));

void micro_kernel(int64_t kc, const float* __restrict__ apanel,
                  const float* __restrict__ b, int64_t ldb,
                  float* __restrict__ acc) {
  vf8 c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
  for (int64_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = apanel + p * MR;
    const vf8 b0 = *reinterpret_cast<const vf8*>(b + p * ldb);
    const vf8 b1 = *reinterpret_cast<const vf8*>(b + p * ldb + 8);
    c00 += b0 * arow[0];
    c01 += b1 * arow[0];
    c10 += b0 * arow[1];
    c11 += b1 * arow[1];
    c20 += b0 * arow[2];
    c21 += b1 * arow[2];
    c30 += b0 * arow[3];
    c31 += b1 * arow[3];
  }
  vf8* out = reinterpret_cast<vf8*>(acc);
  out[0] = c00;
  out[1] = c01;
  out[2] = c10;
  out[3] = c11;
  out[4] = c20;
  out[5] = c21;
  out[6] = c30;
  out[7] = c31;
}
#else
void micro_kernel(int64_t kc, const float* __restrict__ apanel,
                  const float* __restrict__ b, int64_t ldb,
                  float* __restrict__ acc) {
  for (int64_t q = 0; q < MR * NR; ++q) acc[q] = 0.0f;
  for (int64_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = apanel + p * MR;
    const float* __restrict__ brow = b + p * ldb;
    for (int64_t r = 0; r < MR; ++r) {
      const float av = arow[r];
      float* __restrict__ accrow = acc + r * NR;
      for (int64_t q = 0; q < NR; ++q) accrow[q] += av * brow[q];
    }
  }
}
#endif

// Fold an accumulator tile into C[i..i+mr, j..j+nr]. `first` selects the
// beta handling (the K panel that initialises the tile), `last` triggers
// the fused epilogue; the flag branches are loop-invariant and hoisted.
#if defined(__GNUC__) || defined(__clang__)
// Vectorized fast path for the by-far-common case: a full MR×NR tile being
// overwritten (beta 0, first K panel) with at most bias/ReLU fused in.
bool write_tile_fast(float* __restrict__ c, int64_t ldc,
                     const float* __restrict__ acc, int64_t i, int64_t j,
                     int64_t mr, int64_t nr, bool first, bool last,
                     const GemmEpilogue& ep) {
  if (mr != MR || nr != NR || ep.row_bias != nullptr) return false;
  if (first && ep.beta != 0.0f) return false;
  vf8 bias0{}, bias1{};
  if (last && ep.bias != nullptr) {
    bias0 = *reinterpret_cast<const vf8*>(ep.bias + j);
    bias1 = *reinterpret_cast<const vf8*>(ep.bias + j + 8);
  }
  const bool relu = last && ep.relu;
  for (int64_t r = 0; r < MR; ++r) {
    float* __restrict__ crow = c + (i + r) * ldc + j;
    vf8 v0 = *reinterpret_cast<const vf8*>(acc + r * NR);
    vf8 v1 = *reinterpret_cast<const vf8*>(acc + r * NR + 8);
    if (!first) {
      v0 += *reinterpret_cast<const vf8*>(crow);
      v1 += *reinterpret_cast<const vf8*>(crow + 8);
    }
    if (last) {
      v0 += bias0;
      v1 += bias1;
    }
    if (relu) {
      v0 = v0 > 0.0f ? v0 : vf8{};  // element-wise select on vector bools
      v1 = v1 > 0.0f ? v1 : vf8{};
    }
    *reinterpret_cast<vf8*>(crow) = v0;
    *reinterpret_cast<vf8*>(crow + 8) = v1;
  }
  return true;
}
#else
bool write_tile_fast(float*, int64_t, const float*, int64_t, int64_t, int64_t,
                     int64_t, bool, bool, const GemmEpilogue&) {
  return false;
}
#endif

void write_tile(float* c, int64_t ldc, const float* acc, int64_t i, int64_t j,
                int64_t mr, int64_t nr, bool first, bool last,
                const GemmEpilogue& ep) {
  if (write_tile_fast(c, ldc, acc, i, j, mr, nr, first, last, ep)) return;
  for (int64_t r = 0; r < mr; ++r) {
    float* crow = c + (i + r) * ldc + j;
    const float* accrow = acc + r * NR;
    const float rb = ep.row_bias != nullptr && last ? ep.row_bias[i + r] : 0.0f;
    for (int64_t q = 0; q < nr; ++q) {
      float v = accrow[q];
      if (first) {
        if (ep.beta != 0.0f) v += ep.beta * crow[q];
      } else {
        v += crow[q];
      }
      if (last) {
        if (ep.bias != nullptr) v += ep.bias[j + q];
        v += rb;
        if (ep.relu && v < 0.0f) v = 0.0f;
      }
      crow[q] = v;
    }
  }
}

// Pack B[pc..pc+kc, jc..jc+nc] (logical orientation) into NR-column
// micro-panels, each kc rows of NR contiguous floats, zero-padded on the
// right edge. `trans_b` reads the stored n×k layout without a copy.
void pack_b(const float* b, bool trans_b, int64_t k_total, int64_t n_total,
            int64_t pc, int64_t kc, int64_t jc, int64_t nc, float* bpack) {
  for (int64_t j0 = 0; j0 < nc; j0 += NR) {
    const int64_t nr = std::min(NR, nc - j0);
    float* dst = bpack + j0 * kc;
    if (!trans_b) {
      for (int64_t p = 0; p < kc; ++p, dst += NR) {
        const float* src = b + (pc + p) * n_total + jc + j0;
        for (int64_t q = 0; q < nr; ++q) dst[q] = src[q];
        for (int64_t q = nr; q < NR; ++q) dst[q] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p, dst += NR) {
        const float* src = b + (jc + j0) * k_total + pc + p;
        for (int64_t q = 0; q < nr; ++q) dst[q] = src[q * k_total];
        for (int64_t q = nr; q < NR; ++q) dst[q] = 0.0f;
      }
    }
  }
}

// Pack A[ic..ic+mc, pc..pc+kc] (logical orientation) into MR-row
// micro-panels, each kc steps of MR contiguous floats, zero-padded on the
// bottom edge. `trans_a` reads the stored k×m layout without a copy.
void pack_a(const float* a, bool trans_a, int64_t m_total, int64_t k_total,
            int64_t ic, int64_t mc, int64_t pc, int64_t kc, float* apack) {
  for (int64_t i0 = 0; i0 < mc; i0 += MR) {
    const int64_t mr = std::min(MR, mc - i0);
    float* dst = apack + i0 * kc;
    if (!trans_a) {
      for (int64_t p = 0; p < kc; ++p, dst += MR) {
        const float* src = a + (ic + i0) * k_total + pc + p;
        for (int64_t r = 0; r < mr; ++r) dst[r] = src[r * k_total];
        for (int64_t r = mr; r < MR; ++r) dst[r] = 0.0f;
      }
    } else {
      for (int64_t p = 0; p < kc; ++p, dst += MR) {
        const float* src = a + (pc + p) * m_total + ic + i0;
        for (int64_t r = 0; r < mr; ++r) dst[r] = src[r];
        for (int64_t r = mr; r < MR; ++r) dst[r] = 0.0f;
      }
    }
  }
}

// Epilogue-only path for k == 0 (C = f(beta·C + biases)); also keeps the
// main path free of the degenerate case.
void epilogue_only(int64_t m, int64_t n, float* c, const GemmEpilogue& ep) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float rb = ep.row_bias != nullptr ? ep.row_bias[i] : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      float v = ep.beta != 0.0f ? ep.beta * crow[j] : 0.0f;
      if (ep.bias != nullptr) v += ep.bias[j];
      v += rb;
      if (ep.relu && v < 0.0f) v = 0.0f;
      crow[j] = v;
    }
  }
}

}  // namespace

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c,
          const GemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    epilogue_only(m, n, c, ep);
    return;
  }
  OBS_SPAN("gemm");
  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("gemm.calls");
    calls.inc();
  }
  // Cancellation: captured once; polled at (jc, pc) panel boundaries and
  // at every MC-block inside the parallel section. A cancelled gemm
  // returns early with partial garbage in C — the dispatcher that armed
  // the context discards the whole forward (DESIGN.md §13).
  ExecContext* const ctx = ExecContext::current();
  const int64_t num_m_blocks = (m + MC - 1) / MC;
  for (int64_t jc = 0; jc < n; jc += NC) {
    const int64_t nc = std::min(NC, n - jc);
    // Row-major B is streamed straight from the matrix (its K rows are
    // already contiguous; the kc×NR panel a jr iteration touches stays in
    // L1 across the ir sweep). Only a transposed B — column-strided reads —
    // is worth packing; its panels are packed once per (jc, pc) by the
    // calling thread and read concurrently (read-only) by every M-block
    // task. The unpacked path still needs a packed panel for the right-edge
    // tile (nr < NR would read past the row end), built per task below.
    float* bbuf = nullptr;
    if (trans_b) {
      bbuf = pack_scratch(t_pack.b, round_up(nc, NR) * KC);
    }
    for (int64_t pc = 0; pc < k; pc += KC) {
      if (ctx != nullptr && ctx->checkpoint()) return;
      const int64_t kc = std::min(KC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      const float* bpack = nullptr;
      if (trans_b) {
        OBS_SPAN("gemm.pack_b");
        pack_b(b, trans_b, k, n, pc, kc, jc, nc, bbuf);
        bpack = bbuf;
      }
      const int64_t n_full = nc / NR * NR;  // streamed full-width panels
      parallel_for(0, num_m_blocks, 1, [&](int64_t blk_lo, int64_t blk_hi) {
        float* apack = pack_scratch(t_pack.a, round_up(MC, MR) * kc);
        alignas(64) float acc[MR * NR];
        alignas(64) float bedge[KC * NR];
        bool bedge_packed = false;
        for (int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          // The one-checkpoint-interval latency bound for gemm: a cancel
          // lands within one MC-block of work on every participant.
          if (ctx != nullptr && ctx->checkpoint()) return;
          const int64_t ic = blk * MC;
          const int64_t mc = std::min(MC, m - ic);
          {
            OBS_SPAN("gemm.pack_a");
            pack_a(a, trans_a, m, k, ic, mc, pc, kc, apack);
          }
          for (int64_t j0 = 0; j0 < nc; j0 += NR) {
            const int64_t nr = std::min(NR, nc - j0);
            const float* bpanel;
            int64_t ldb;
            if (trans_b) {
              bpanel = bpack + j0 * kc;
              ldb = NR;
            } else if (nr == NR && j0 < n_full) {
              bpanel = b + pc * n + jc + j0;
              ldb = n;
            } else {
              if (!bedge_packed) {  // same panel for every blk: pack once
                OBS_SPAN("gemm.pack_b");
                pack_b(b, trans_b, k, n, pc, kc, jc + j0, nr, bedge);
                bedge_packed = true;
              }
              bpanel = bedge;
              ldb = NR;
            }
            for (int64_t i0 = 0; i0 < mc; i0 += MR) {
              const int64_t mr = std::min(MR, mc - i0);
              micro_kernel(kc, apack + i0 * kc, bpanel, ldb, acc);
              write_tile(c, n, acc, ic + i0, jc + j0, mr, nr, first, last,
                         ep);
            }
          }
        }
      });
    }
  }
}

void gemm_reference(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, const float* a, const float* b, float* c,
                    const GemmEpilogue& ep) {
  // Initialise C from beta, then the historical i-k-j accumulation with the
  // per-element zero-skip branch, then a separate epilogue pass — exactly
  // the passes the fused runtime collapses.
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (ep.beta == 0.0f) {
      std::fill(crow, crow + n, 0.0f);
    } else if (ep.beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= ep.beta;
    }
  }
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = trans_a ? a[p * m + i] : a[i * k + p];
      if (av == 0.0f) continue;
      if (!trans_b) {
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      } else {
        const float* bcol = b + p;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * bcol[j * k];
      }
    }
  }
  if (ep.bias != nullptr || ep.row_bias != nullptr || ep.relu) {
    for (int64_t i = 0; i < m; ++i) {
      float* crow = c + i * n;
      const float rb = ep.row_bias != nullptr ? ep.row_bias[i] : 0.0f;
      for (int64_t j = 0; j < n; ++j) {
        float v = crow[j] + rb;
        if (ep.bias != nullptr) v += ep.bias[j];
        if (ep.relu && v < 0.0f) v = 0.0f;
        crow[j] = v;
      }
    }
  }
}

void batched_gemm(bool trans_a, bool trans_b, int64_t batch, int64_t m,
                  int64_t n, int64_t k, const float* a, int64_t a_stride,
                  const float* b, int64_t b_stride, float* c,
                  int64_t c_stride) {
  ExecContext* const ctx = ExecContext::current();
  parallel_for(0, batch, 1, [&](int64_t lo, int64_t hi) {
    // Re-install the dispatcher's context on the executing thread so the
    // nested (serial) gemms poll their MC-block checkpoints instead of
    // only the coarser per-batch-element chunk boundary.
    ExecContext::Scope scope(ctx);
    for (int64_t bi = lo; bi < hi; ++bi) {
      if (ctx != nullptr && ctx->cancelled()) return;
      gemm(trans_a, trans_b, m, n, k, a + bi * a_stride, b + bi * b_stride,
           c + bi * c_stride, {});
    }
  });
}

namespace {

// Shape check shared by the tensor entry points: logical dims of op(a)·op(b).
void check_2d(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
              int64_t* m, int64_t* n, int64_t* k) {
  *m = trans_a ? a.size(1) : a.size(0);
  const int64_t ka = trans_a ? a.size(0) : a.size(1);
  const int64_t kb = trans_b ? b.size(1) : b.size(0);
  *n = trans_b ? b.size(0) : b.size(1);
  if (ka != kb) {
    throw std::invalid_argument(
        "gemm: inner dims disagree, " + shape_to_string(a.shape()) +
        (trans_a ? "ᵀ" : "") + " x " + shape_to_string(b.shape()) +
        (trans_b ? "ᵀ" : ""));
  }
  *k = ka;
}

}  // namespace

Tensor gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            const GemmEpilogue& epilogue) {
  if (a.ndim() != 2 || b.ndim() != 2) {
    throw std::invalid_argument("gemm: expects 2-D operands, got " +
                                shape_to_string(a.shape()) + " x " +
                                shape_to_string(b.shape()));
  }
  int64_t m, n, k;
  check_2d(a, trans_a, b, trans_b, &m, &n, &k);
  Tensor out = Tensor::uninitialized({m, n});
  GemmEpilogue ep = epilogue;
  ep.beta = 0.0f;  // the output is freshly allocated; never read it
  gemm(trans_a, trans_b, m, n, k, a.data(), b.data(), out.data(), ep);
  return out;
}

Tensor batched_matmul(const Tensor& a, bool trans_a, const Tensor& b,
                      bool trans_b) {
  if (a.ndim() == 2 && b.ndim() == 2) {
    return gemm(a, trans_a, b, trans_b);
  }
  if (a.ndim() == 3 && b.ndim() == 2 && !trans_a) {
    // Broadcast B across the batch: [B,m,k] collapses to [B·m,k], so one
    // gemm call packs B once for the whole batch.
    const int64_t batch = a.size(0);
    Tensor out = gemm(a.reshape({batch * a.size(1), a.size(2)}), false, b,
                      trans_b);
    return out.reshape({batch, a.size(1), out.size(1)});
  }
  if (a.ndim() == 3 && (b.ndim() == 3 || b.ndim() == 2)) {
    const int64_t batch = a.size(0);
    const bool b_shared = b.ndim() == 2;
    if (!b_shared && b.size(0) != batch) {
      throw std::invalid_argument("gemm: batch dims disagree, " +
                                  shape_to_string(a.shape()) + " x " +
                                  shape_to_string(b.shape()));
    }
    const int64_t ar = a.size(1), ac = a.size(2);
    const int64_t br = b_shared ? b.size(0) : b.size(1);
    const int64_t bc = b_shared ? b.size(1) : b.size(2);
    const int64_t m = trans_a ? ac : ar;
    const int64_t ka = trans_a ? ar : ac;
    const int64_t kb = trans_b ? bc : br;
    const int64_t n = trans_b ? br : bc;
    if (ka != kb) {
      throw std::invalid_argument("gemm: inner dims disagree, " +
                                  shape_to_string(a.shape()) + " x " +
                                  shape_to_string(b.shape()));
    }
    Tensor out = Tensor::uninitialized({batch, m, n});
    batched_gemm(trans_a, trans_b, batch, m, n, ka, a.data(), ar * ac,
                 b.data(), b_shared ? 0 : br * bc, out.data(), m * n);
    return out;
  }
  throw std::invalid_argument("gemm: expects 2-D or batched 3-D, got " +
                              shape_to_string(a.shape()) + " x " +
                              shape_to_string(b.shape()));
}

Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      bool relu) {
  if (x.ndim() != 2 || w.ndim() != 2) {
    throw std::invalid_argument("linear_forward: expects 2-D x and w, got " +
                                shape_to_string(x.shape()) + " x " +
                                shape_to_string(w.shape()));
  }
  GemmEpilogue ep;
  ep.bias = bias.defined() ? bias.data() : nullptr;
  ep.relu = relu;
  return gemm(x, false, w, false, ep);
}

}  // namespace yollo
