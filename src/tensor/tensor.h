// Tensor: a dense, contiguous, row-major float32 n-dimensional array.
//
// Design notes
//  - Value-semantic handle: copying a Tensor shares the underlying storage
//    (like a shared_ptr); use clone() for a deep copy. This mirrors the
//    semantics downstream users know from mainstream frameworks.
//  - Storage is always contiguous. reshape() aliases storage; transpose(),
//    permute(), slicing and gather ops materialise new tensors. At the model
//    sizes this library targets, the simplicity is worth the copies.
//  - float32 only: the paper's model is trained in fp32 and nothing in the
//    reproduction needs another dtype.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/parallel.h"
#include "tensor/random.h"
#include "tensor/shape.h"

namespace yollo {

class Tensor {
 public:
  // An empty (rank-1, zero-length) tensor; defined() is false.
  Tensor();

  // Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  // Tensor of the given shape adopting the given values (size must match).
  Tensor(Shape shape, std::vector<float> values);

  // --- factories -----------------------------------------------------------
  // Kernel-internal factory: storage contents are unspecified (a recycled
  // pool buffer keeps its stale values). Every element MUST be written
  // before the tensor escapes the kernel — use Tensor(Shape) anywhere the
  // zero-fill contract matters. Exists to avoid a redundant memory pass in
  // kernels that fully overwrite their output.
  static Tensor uninitialized(Shape shape);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor scalar(float value);  // rank-0
  static Tensor arange(int64_t n);    // [0, 1, ..., n-1], shape [n]
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  static Tensor from_vector(const std::vector<float>& values);  // shape [n]

  // View over externally-owned memory: the tensor aliases `data` (which must
  // hold numel(shape) floats) and holds `owner` alive for its lifetime. Used
  // by the plan arena (tensor/arena.h) to hand out slot-backed tensors
  // without per-tensor allocations.
  static Tensor from_external(Shape shape, float* data,
                              std::shared_ptr<void> owner);

  // --- introspection -------------------------------------------------------
  bool defined() const { return owner_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return numel_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data();
  const float* data() const;

  // Element access by flat row-major index.
  float& operator[](int64_t flat);
  float operator[](int64_t flat) const;

  // Element access by coordinates, e.g. t.at({i, j, k}).
  float& at(std::initializer_list<int64_t> coords);
  float at(std::initializer_list<int64_t> coords) const;

  // Value of a rank-0 or single-element tensor. Throws otherwise.
  float item() const;

  // --- shape manipulation --------------------------------------------------
  // Alias the same storage under a new shape (numel must match). One
  // dimension may be -1 and is inferred.
  Tensor reshape(Shape new_shape) const;

  // Deep copy with contiguous storage.
  Tensor clone() const;

  // Materialised transpose of two axes.
  Tensor transpose(int64_t a, int64_t b) const;

  // Materialised permutation of all axes.
  Tensor permute(const std::vector<int64_t>& order) const;

  // Copy of rows [start, start+length) along `axis`.
  Tensor narrow(int64_t axis, int64_t start, int64_t length) const;

  // Rows of `axis` gathered by integer indices.
  Tensor index_select(int64_t axis, const std::vector<int64_t>& indices) const;

  // Insert / remove a size-1 dimension.
  Tensor unsqueeze(int64_t axis) const;
  Tensor squeeze(int64_t axis) const;

  // Materialise this tensor broadcast to `target` shape.
  Tensor broadcast_to(const Shape& target) const;

  // --- in-place fill / mutation -------------------------------------------
  void fill(float value);
  void zero() { fill(0.0f); }
  void copy_from(const Tensor& src);  // shapes must match

  // --- elementwise map (returns new tensor) --------------------------------
  Tensor map(const std::function<float(float)>& fn) const;

  // Inlinable variant: the functor is a template parameter, so the
  // per-element call compiles down to straight-line code instead of an
  // indirect std::function dispatch (this is the hot path of every unary
  // tensor op).
  template <typename F>
  Tensor map_fn(F&& fn) const {
    check_defined("map");
    Tensor out = uninitialized(shape_);
    const float* src = data();
    float* dst = out.data();
    parallel_for(0, numel_, /*grain=*/32768, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) dst[i] = fn(src[i]);
    });
    return out;
  }

  // --- conversions ---------------------------------------------------------
  std::vector<float> to_vector() const;
  std::string to_string(int64_t max_per_dim = 8) const;

 private:
  // Raw element pointer + type-erased keepalive. For pool-backed tensors the
  // owner is the recycled storage vector (with its pool-parking deleter); a
  // reshape view shares the source's owner; an arena-backed plan tensor
  // holds the arena keepalive. data_ is null only for undefined or
  // zero-element tensors.
  float* data_ = nullptr;
  std::shared_ptr<void> owner_;
  Shape shape_;
  int64_t numel_ = 0;

  void check_defined(const char* op) const;
};

// --- free elementwise / linear-algebra kernels ------------------------------
// Binary ops broadcast (NumPy rules). All return newly-allocated tensors.
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor pow(const Tensor& a, float exponent);

Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);  // clamps input to >= 1e-12 to avoid -inf
Tensor sqrt(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor clamp(const Tensor& a, float lo, float hi);

inline Tensor operator+(const Tensor& a, const Tensor& b) { return add(a, b); }
inline Tensor operator-(const Tensor& a, const Tensor& b) { return sub(a, b); }
inline Tensor operator*(const Tensor& a, const Tensor& b) { return mul(a, b); }
inline Tensor operator/(const Tensor& a, const Tensor& b) { return div(a, b); }
inline Tensor operator+(const Tensor& a, float s) { return add_scalar(a, s); }
inline Tensor operator-(const Tensor& a, float s) { return add_scalar(a, -s); }
inline Tensor operator*(const Tensor& a, float s) { return mul_scalar(a, s); }
inline Tensor operator/(const Tensor& a, float s) {
  return mul_scalar(a, 1.0f / s);
}
inline Tensor operator-(const Tensor& a) { return neg(a); }

// a += b elementwise (shapes must match exactly); used on gradient buffers.
void add_inplace(Tensor& a, const Tensor& b);
// a += s * b elementwise (shapes must match exactly).
void axpy_inplace(Tensor& a, float s, const Tensor& b);
// a *= s elementwise.
void scale_inplace(Tensor& a, float s);

// Matrix multiply: [m,k]x[k,n] -> [m,n]; batched [b,m,k]x[b,k,n] -> [b,m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

// Reductions. `axis` reduces one dimension (keepdim keeps it as size 1);
// the axis-less forms reduce everything to a rank-0 scalar tensor.
Tensor sum(const Tensor& a);
Tensor sum(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor mean(const Tensor& a);
Tensor mean(const Tensor& a, int64_t axis, bool keepdim = false);
Tensor max(const Tensor& a, int64_t axis, bool keepdim = false);
float max_value(const Tensor& a);
float min_value(const Tensor& a);

// Index of the maximum along `axis` (returned as float values).
Tensor argmax(const Tensor& a, int64_t axis);
int64_t argmax_flat(const Tensor& a);

// Numerically-stable softmax / log-softmax along `axis`.
Tensor softmax(const Tensor& a, int64_t axis);
Tensor log_softmax(const Tensor& a, int64_t axis);

// Concatenate along `axis`; all other extents must match.
Tensor concat(const std::vector<Tensor>& parts, int64_t axis);

// Sum a gradient of broadcast shape `from` back down to shape `to`
// (the adjoint of broadcast_to); used by autograd.
Tensor reduce_to_shape(const Tensor& grad, const Shape& to);

// Max element-count difference between two same-shaped tensors.
float max_abs_diff(const Tensor& a, const Tensor& b);
// True when all elements differ by at most atol + rtol*|b|.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace yollo
