// 2-D convolution and pooling kernels (NCHW layout) with explicit backward
// passes, implemented via im2col + GEMM.
//
// These are the raw numeric kernels; the autograd layer wraps them into
// differentiable ops and nn::Conv2d exposes them as a module.
#pragma once

#include "tensor/tensor.h"

namespace yollo {

// Static configuration of one convolution.
struct Conv2dSpec {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel_h = 3;
  int64_t kernel_w = 3;
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 1;
  int64_t pad_w = 1;

  int64_t out_height(int64_t in_h) const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  int64_t out_width(int64_t in_w) const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
};

// Unfold input [N, C, H, W] into columns [N, C*kh*kw, out_h*out_w].
Tensor im2col(const Tensor& input, const Conv2dSpec& spec);

// Raw im2col into caller storage (`cols` must hold N·C·kh·kw·oh·ow floats).
// Shared by the Tensor wrapper above and the plan executor (which supplies
// an arena workspace slot, DESIGN.md §14).
void im2col_into(const float* input, int64_t n, int64_t h, int64_t w,
                 const Conv2dSpec& spec, float* cols);

// Raw forward convolution into caller storage: `wmat` is the weight viewed
// as [Cout, Cin·kh·kw], `bias` may be null, `cols` is an im2col workspace of
// N·patch·oh·ow floats, `out` holds N·Cout·oh·ow floats. One fused GEMM per
// image with the bias folded into the epilogue; batch partitioned across the
// intra-op pool. Both the eager wrapper and the plan executor run exactly
// this routine.
void conv2d_forward_into(const float* input, int64_t n, int64_t h, int64_t w,
                         const float* wmat, const float* bias,
                         const Conv2dSpec& spec, float* cols, float* out);

// Fold columns [N, C*kh*kw, out_h*out_w] back into an input-shaped gradient
// [N, C, H, W] (the adjoint of im2col; overlapping patches accumulate).
Tensor col2im(const Tensor& columns, const Conv2dSpec& spec, int64_t in_h,
              int64_t in_w);

// Forward convolution.
//   input  [N, Cin, H, W]
//   weight [Cout, Cin, kh, kw]
//   bias   [Cout] (may be undefined for no bias)
// Returns [N, Cout, out_h, out_w].
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec);

// Backward convolution. grad_output is [N, Cout, out_h, out_w].
struct Conv2dGrads {
  Tensor grad_input;   // [N, Cin, H, W]
  Tensor grad_weight;  // [Cout, Cin, kh, kw]
  Tensor grad_bias;    // [Cout] (undefined when bias was undefined)
};
Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_output,
                            const Conv2dSpec& spec);

// 2x2 max pooling with stride 2 (the only pooling the models need).
// Returns pooled output and records argmax indices for the backward pass.
struct MaxPoolResult {
  Tensor output;                 // [N, C, H/2, W/2]
  std::vector<int64_t> argmax;   // flat input index per output element
};
MaxPoolResult max_pool2x2_forward(const Tensor& input);
Tensor max_pool2x2_backward(const Tensor& grad_output,
                            const std::vector<int64_t>& argmax,
                            const Shape& input_shape);

// Global average pooling [N, C, H, W] -> [N, C].
Tensor global_avg_pool_forward(const Tensor& input);
Tensor global_avg_pool_backward(const Tensor& grad_output,
                                const Shape& input_shape);

}  // namespace yollo
