// Shape and stride utilities for the yollo tensor library.
//
// Tensors are dense, row-major, float32. A Shape is an ordered list of
// extents; Strides give the element step per dimension. Broadcasting follows
// NumPy semantics: dimensions are aligned from the right, and a dimension of
// extent 1 repeats to match the other operand.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace yollo {

using Shape = std::vector<int64_t>;
using Strides = std::vector<int64_t>;

// Total number of elements in a shape (1 for rank-0 scalars).
int64_t numel(const Shape& shape);

// Row-major (C-order) strides for a dense tensor of the given shape.
Strides contiguous_strides(const Shape& shape);

// Human-readable form, e.g. "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

// True when the two shapes are broadcast-compatible (NumPy rules).
bool broadcastable(const Shape& a, const Shape& b);

// The broadcast result shape. Throws std::invalid_argument when the shapes
// are incompatible.
Shape broadcast_shape(const Shape& a, const Shape& b);

// Strides for reading a tensor of shape `from` as if it had the broadcast
// shape `to`: dimensions of extent 1 (and missing leading dimensions) get
// stride 0. Throws when `from` cannot broadcast to `to`.
Strides broadcast_strides(const Shape& from, const Shape& to);

// Normalise a possibly-negative axis into [0, rank). Throws when out of
// range.
int64_t normalize_axis(int64_t axis, int64_t rank);

// Convert a flat row-major index into per-dimension coordinates.
void unravel_index(int64_t flat, const Shape& shape, int64_t* coords);

// Dot product of coordinates with strides.
int64_t ravel_offset(const int64_t* coords, const Strides& strides);

}  // namespace yollo
