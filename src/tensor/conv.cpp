#include "tensor/conv.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/trace.h"
#include "tensor/exec.h"
#include "tensor/gemm.h"
#include "tensor/parallel.h"

namespace yollo {

void im2col_into(const float* input, int64_t n, int64_t h, int64_t w,
                 const Conv2dSpec& spec, float* cols) {
  OBS_SPAN("conv.im2col");
  const int64_t c = spec.in_channels;
  const int64_t oh = spec.out_height(h);
  const int64_t ow = spec.out_width(w);
  const int64_t patch = c * spec.kernel_h * spec.kernel_w;
  const float* src = input;
  float* dst = cols;

  // One work item per output row (ni, ci, kh, kw) — each writes a disjoint
  // oh*ow stripe, so the rows partition freely across the pool. The
  // per-item checkpoint (not just the chunk-level one in parallel_for)
  // also covers the serial fast path at 1 thread.
  ExecContext* const ctx = ExecContext::current();
  const int64_t kk = spec.kernel_h * spec.kernel_w;
  parallel_for(0, n * patch, std::max<int64_t>(1, 4096 / (oh * ow + 1)),
               [&](int64_t lo, int64_t hi) {
    for (int64_t item = lo; item < hi; ++item) {
      if (ctx != nullptr && ctx->checkpoint()) return;
      const int64_t ni = item / patch;
      const int64_t row = item % patch;
      const int64_t ci = row / kk;
      const int64_t kh = (row % kk) / spec.kernel_w;
      const int64_t kw = row % spec.kernel_w;
      const float* img = src + ni * c * h * w;
      float* out_row = dst + item * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        const int64_t iy = oy * spec.stride_h + kh - spec.pad_h;
        if (iy < 0 || iy >= h) {
          std::fill(out_row + oy * ow, out_row + (oy + 1) * ow, 0.0f);
          continue;
        }
        const float* in_row = img + (ci * h + iy) * w;
        for (int64_t ox = 0; ox < ow; ++ox) {
          const int64_t ix = ox * spec.stride_w + kw - spec.pad_w;
          out_row[oy * ow + ox] = (ix >= 0 && ix < w) ? in_row[ix] : 0.0f;
        }
      }
    }
  });
}

Tensor im2col(const Tensor& input, const Conv2dSpec& spec) {
  const int64_t n = input.size(0);
  const int64_t c = input.size(1);
  const int64_t h = input.size(2);
  const int64_t w = input.size(3);
  if (c != spec.in_channels) {
    throw std::invalid_argument("im2col: channel mismatch");
  }
  const int64_t oh = spec.out_height(h);
  const int64_t ow = spec.out_width(w);
  const int64_t patch = c * spec.kernel_h * spec.kernel_w;
  // Every element is written by the kernel (padding gets explicit zeros).
  Tensor cols = Tensor::uninitialized({n, patch, oh * ow});
  im2col_into(input.data(), n, h, w, spec, cols.data());
  return cols;
}

Tensor col2im(const Tensor& columns, const Conv2dSpec& spec, int64_t in_h,
              int64_t in_w) {
  OBS_SPAN("conv.col2im");
  const int64_t n = columns.size(0);
  const int64_t c = spec.in_channels;
  const int64_t oh = spec.out_height(in_h);
  const int64_t ow = spec.out_width(in_w);
  Tensor out({n, c, in_h, in_w});
  const float* src = columns.data();
  float* dst = out.data();

  const int64_t patch = c * spec.kernel_h * spec.kernel_w;
  const int64_t kk = spec.kernel_h * spec.kernel_w;
  // Scatter-adds from different kernel offsets overlap inside a channel
  // plane but never across (ni, ci) planes, so those are the parallel unit;
  // the kh/kw accumulation order within a plane stays fixed, keeping
  // results bitwise identical at any thread count.
  ExecContext* const ctx = ExecContext::current();
  parallel_for(0, n * c, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t item = lo; item < hi; ++item) {
      if (ctx != nullptr && ctx->checkpoint()) return;
      const int64_t ni = item / c;
      const int64_t ci = item % c;
      float* img = dst + ni * c * in_h * in_w;
      const float* col = src + ni * patch * oh * ow;
      for (int64_t kh = 0; kh < spec.kernel_h; ++kh) {
        for (int64_t kw = 0; kw < spec.kernel_w; ++kw) {
          const int64_t row = ci * kk + kh * spec.kernel_w + kw;
          const float* in_row = col + row * oh * ow;
          for (int64_t oy = 0; oy < oh; ++oy) {
            const int64_t iy = oy * spec.stride_h + kh - spec.pad_h;
            if (iy < 0 || iy >= in_h) continue;
            float* out_row = img + (ci * in_h + iy) * in_w;
            for (int64_t ox = 0; ox < ow; ++ox) {
              const int64_t ix = ox * spec.stride_w + kw - spec.pad_w;
              if (ix >= 0 && ix < in_w) {
                out_row[ix] += in_row[oy * ow + ox];
              }
            }
          }
        }
      }
    }
  });
  return out;
}

void conv2d_forward_into(const float* input, int64_t n, int64_t h, int64_t w,
                         const float* wmat, const float* bias,
                         const Conv2dSpec& spec, float* cols, float* out) {
  OBS_SPAN("conv.forward");
  const int64_t oh = spec.out_height(h);
  const int64_t ow = spec.out_width(w);
  const int64_t patch = spec.in_channels * spec.kernel_h * spec.kernel_w;

  GemmEpilogue ep;
  ep.row_bias = bias;
  ExecContext* const ctx = ExecContext::current();

  if (num_threads() == 1) {
    // Serial path: fuse im2col + GEMM per image and reuse the first cols
    // slab, so the workspace footprint stays batch-size independent. The
    // batch-wide variant streams n slabs through memory before reading
    // them back, which costs batched forwards their cache locality — the
    // reason a size-8 serve batch used to run slower per element than
    // eight solo forwards.
    for (int64_t ni = 0; ni < n; ++ni) {
      if (ctx != nullptr && ctx->cancelled()) return;
      im2col_into(input + ni * spec.in_channels * h * w, 1, h, w, spec, cols);
      gemm(false, false, spec.out_channels, oh * ow, patch, wmat, cols,
           out + ni * spec.out_channels * oh * ow, ep);
    }
    return;
  }

  im2col_into(input, n, h, w, spec, cols);

  // One fused GEMM per image — W[Cout,patch] · cols[patch,oh·ow] written
  // straight into the output slab with the per-channel bias folded into the
  // epilogue (the bias varies along GEMM rows here, hence row_bias). Images
  // are independent, so the batch partitions across the pool.
  parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    // Propagate the dispatcher's context so the per-image gemms poll
    // their MC-block checkpoints even when running on a pool worker.
    ExecContext::Scope scope(ctx);
    for (int64_t ni = lo; ni < hi; ++ni) {
      if (ctx != nullptr && ctx->cancelled()) return;
      gemm(false, false, spec.out_channels, oh * ow, patch, wmat,
           cols + ni * patch * oh * ow,
           out + ni * spec.out_channels * oh * ow, ep);
    }
  });
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, const Conv2dSpec& spec) {
  const int64_t n = input.size(0);
  const int64_t h = input.size(2);
  const int64_t w = input.size(3);
  const int64_t oh = spec.out_height(h);
  const int64_t ow = spec.out_width(w);
  const int64_t patch = spec.in_channels * spec.kernel_h * spec.kernel_w;
  if (input.size(1) != spec.in_channels) {
    throw std::invalid_argument("conv2d_forward: channel mismatch");
  }

  Tensor cols = Tensor::uninitialized({n, patch, oh * ow});
  Tensor out = Tensor::uninitialized({n, spec.out_channels, oh, ow});
  conv2d_forward_into(input.data(), n, h, w, weight.data(),
                      bias.defined() ? bias.data() : nullptr, spec,
                      cols.data(), out.data());
  return out;
}

Conv2dGrads conv2d_backward(const Tensor& input, const Tensor& weight,
                            bool has_bias, const Tensor& grad_output,
                            const Conv2dSpec& spec) {
  OBS_SPAN("conv.backward");
  const int64_t n = input.size(0);
  const int64_t h = input.size(2);
  const int64_t w = input.size(3);
  const int64_t oh = spec.out_height(h);
  const int64_t ow = spec.out_width(w);
  const int64_t patch = spec.in_channels * spec.kernel_h * spec.kernel_w;

  const Tensor cols = im2col(input, spec);  // [n, patch, oh*ow]
  const Tensor wmat = weight.reshape({spec.out_channels, patch});

  Conv2dGrads grads;
  Tensor grad_wmat({spec.out_channels, patch});
  Tensor grad_cols = Tensor::uninitialized({n, patch, oh * ow});

  const int64_t go_stride = spec.out_channels * oh * ow;
  const int64_t col_stride = patch * oh * ow;
  const float* gop = grad_output.data();
  const float* cp = cols.data();
  const float* wp = wmat.data();

  // dCols[ni] = Wᵀ · dY[ni]: the transpose is a flag into the packed
  // kernel, and each image writes its own slab of grad_cols.
  float* gcp = grad_cols.data();
  ExecContext* const ctx = ExecContext::current();
  parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    ExecContext::Scope scope(ctx);
    for (int64_t ni = lo; ni < hi; ++ni) {
      if (ctx != nullptr && ctx->cancelled()) return;
      gemm(/*trans_a=*/true, false, patch, oh * ow, spec.out_channels, wp,
           gop + ni * go_stride, gcp + ni * col_stride, {});
    }
  });

  // dW += dY[ni] · cols[ni]ᵀ: beta = 1 accumulates straight into the weight
  // gradient — no per-image temporary, no materialised transpose. The
  // accumulation order over images is fixed, so this loop stays serial.
  GemmEpilogue acc;
  acc.beta = 1.0f;
  for (int64_t ni = 0; ni < n; ++ni) {
    gemm(false, /*trans_b=*/true, spec.out_channels, patch, oh * ow,
         gop + ni * go_stride, cp + ni * col_stride, grad_wmat.data(), acc);
  }

  grads.grad_weight = grad_wmat.reshape(
      {spec.out_channels, spec.in_channels, spec.kernel_h, spec.kernel_w});
  grads.grad_input = col2im(grad_cols, spec, h, w);
  if (has_bias) {
    Tensor gb({spec.out_channels});
    const float* go = grad_output.data();
    float* pb = gb.data();
    for (int64_t ni = 0; ni < n; ++ni) {
      for (int64_t co = 0; co < spec.out_channels; ++co) {
        const float* plane = go + (ni * spec.out_channels + co) * oh * ow;
        float acc = 0.0f;
        for (int64_t i = 0; i < oh * ow; ++i) acc += plane[i];
        pb[co] += acc;
      }
    }
    grads.grad_bias = gb;
  }
  return grads;
}

MaxPoolResult max_pool2x2_forward(const Tensor& input) {
  const int64_t n = input.size(0);
  const int64_t c = input.size(1);
  const int64_t h = input.size(2);
  const int64_t w = input.size(3);
  if (h % 2 != 0 || w % 2 != 0) {
    throw std::invalid_argument("max_pool2x2: spatial dims must be even, got " +
                                shape_to_string(input.shape()));
  }
  const int64_t oh = h / 2;
  const int64_t ow = w / 2;
  MaxPoolResult res{Tensor({n, c, oh, ow}), {}};
  res.argmax.resize(static_cast<size_t>(n * c * oh * ow));
  const float* src = input.data();
  float* dst = res.output.data();
  int64_t oi = 0;
  for (int64_t ni = 0; ni < n; ++ni) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = src + (ni * c + ci) * h * w;
      const int64_t plane_base = (ni * c + ci) * h * w;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t dy = 0; dy < 2; ++dy) {
            for (int64_t dx = 0; dx < 2; ++dx) {
              const int64_t idx = (oy * 2 + dy) * w + ox * 2 + dx;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          dst[oi] = best;
          res.argmax[static_cast<size_t>(oi)] = plane_base + best_idx;
        }
      }
    }
  }
  return res;
}

Tensor max_pool2x2_backward(const Tensor& grad_output,
                            const std::vector<int64_t>& argmax,
                            const Shape& input_shape) {
  Tensor grad_input(input_shape);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    gi[argmax[static_cast<size_t>(i)]] += go[i];
  }
  return grad_input;
}

Tensor global_avg_pool_forward(const Tensor& input) {
  const int64_t n = input.size(0);
  const int64_t c = input.size(1);
  const int64_t hw = input.size(2) * input.size(3);
  Tensor out({n, c});
  const float* src = input.data();
  float* dst = out.data();
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t i = 0; i < n * c; ++i) {
    float acc = 0.0f;
    const float* plane = src + i * hw;
    for (int64_t j = 0; j < hw; ++j) acc += plane[j];
    dst[i] = acc * inv;
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad_output,
                                const Shape& input_shape) {
  Tensor grad_input(input_shape);
  const int64_t n = input_shape[0];
  const int64_t c = input_shape[1];
  const int64_t hw = input_shape[2] * input_shape[3];
  const float inv = 1.0f / static_cast<float>(hw);
  const float* go = grad_output.data();
  float* gi = grad_input.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float g = go[i] * inv;
    float* plane = gi + i * hw;
    for (int64_t j = 0; j < hw; ++j) plane[j] = g;
  }
  return grad_input;
}

}  // namespace yollo
