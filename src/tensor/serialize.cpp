#include "tensor/serialize.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace yollo::io {
namespace {

std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

WriteFaultHook& fault_hook() {
  static WriteFaultHook hook;
  return hook;
}

// Container header. Serialised field-by-field (not as a struct) so padding
// can never leak into the format.
constexpr size_t kHeaderSize =
    sizeof(uint32_t) * 2 + sizeof(uint64_t) + sizeof(uint32_t);

}  // namespace

uint32_t crc32(const void* data, size_t len, uint32_t crc) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void set_write_fault_hook(WriteFaultHook hook) {
  fault_hook() = std::move(hook);
}

void PayloadWriter::write(const void* data, size_t len) {
  buf_.append(static_cast<const char*>(data), len);
}

void PayloadWriter::write_string(const std::string& s) {
  write_pod<uint64_t>(s.size());
  write(s.data(), s.size());
}

void PayloadWriter::commit(const std::string& path, uint32_t magic,
                           uint32_t version) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("PayloadWriter: cannot open " + tmp);
    }
    const uint64_t payload_size = buf_.size();
    const uint32_t crc = crc32(buf_.data(), buf_.size());
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&payload_size),
              sizeof(payload_size));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    // Chunked payload writes so the fault hook can kill us at a chosen
    // offset, exactly like a real mid-file crash.
    constexpr size_t kChunk = 4096;
    size_t written = 0;
    while (written < buf_.size()) {
      if (fault_hook()) fault_hook()(written, buf_.size());
      const size_t n = std::min(kChunk, buf_.size() - written);
      out.write(buf_.data() + written, static_cast<std::streamsize>(n));
      written += n;
    }
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("PayloadWriter: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("PayloadWriter: rename " + tmp + " -> " + path +
                             " failed");
  }
}

PayloadReader::PayloadReader(const std::string& path, uint32_t magic,
                             uint32_t max_version)
    : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("PayloadReader: cannot open " + path);
  }
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());

  uint32_t file_magic = 0;
  if (file.size() >= sizeof(file_magic)) {
    std::memcpy(&file_magic, file.data(), sizeof(file_magic));
  }
  if (file_magic != magic) {
    // Headerless legacy file: the whole byte stream is the payload and the
    // caller's legacy parsing path takes over. No integrity check possible.
    legacy_ = true;
    payload_ = std::move(file);
    return;
  }
  if (file.size() < kHeaderSize) {
    throw std::runtime_error("PayloadReader: truncated header in " + path);
  }
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  std::memcpy(&version_, file.data() + 4, sizeof(version_));
  std::memcpy(&payload_size, file.data() + 8, sizeof(payload_size));
  std::memcpy(&crc, file.data() + 16, sizeof(crc));
  if (version_ == 0 || version_ > max_version) {
    throw std::runtime_error(
        "PayloadReader: " + path + " has format version " +
        std::to_string(version_) + " but this build supports at most " +
        std::to_string(max_version));
  }
  if (file.size() - kHeaderSize != payload_size) {
    throw std::runtime_error(
        "PayloadReader: " + path + " is truncated or padded (header claims " +
        std::to_string(payload_size) + " payload bytes, file holds " +
        std::to_string(file.size() - kHeaderSize) + ")");
  }
  payload_ = file.substr(kHeaderSize);
  if (crc32(payload_.data(), payload_.size()) != crc) {
    throw std::runtime_error("PayloadReader: CRC mismatch in " + path +
                             " (file is corrupt)");
  }
}

void PayloadReader::read(void* out, size_t len) {
  if (pos_ + len > payload_.size()) {
    throw std::runtime_error("PayloadReader: truncated payload in " + path_);
  }
  std::memcpy(out, payload_.data() + pos_, len);
  pos_ += len;
}

std::string PayloadReader::read_string() {
  const uint64_t n = read_pod<uint64_t>();
  if (pos_ + n > payload_.size()) {
    throw std::runtime_error("PayloadReader: truncated payload in " + path_);
  }
  std::string s = payload_.substr(pos_, n);
  pos_ += n;
  return s;
}

}  // namespace yollo::io
