// yollo::gemm — the blocked, packed, transpose-aware GEMM runtime every
// matmul/conv in the library sits on (DESIGN.md §10).
//
// Shape of the implementation (classic BLIS decomposition):
//  - The operation is C = beta*C + op(A)·op(B) followed by an optional
//    fused epilogue (per-column bias, per-row bias, ReLU). op() is a
//    logical transpose — the packing routines read either orientation
//    directly, so no caller ever materialises a transposed copy.
//  - Loops are cache-blocked over N (NC), K (KC) and M (MC); inside a
//    block, panels of A (MR-row micro-panels) and B (NR-column
//    micro-panels) are packed into contiguous, zero-padded buffers so the
//    register-tiled MR×NR micro-kernel runs branch-free over aligned,
//    unit-stride memory regardless of the source layout or edge sizes.
//  - Packing buffers are grow-only thread_local scratch bounded by the
//    blocking constants, so steady-state gemm calls (and the planned
//    forward, DESIGN.md §14) touch the allocator zero times. The scratch is
//    transient working memory and deliberately outside the StoragePool's
//    byte-budget accounting.
//  - M blocks are partitioned across the intra-op pool (parallel_for):
//    B panels are packed once by the caller, then each task packs its own
//    A block and writes a disjoint row range of C.
#pragma once

#include "tensor/tensor.h"

namespace yollo {

// Fused epilogue applied as the final K panel of a tile is written:
//   C[i,j] = f(beta·C[i,j] + sum + bias[j] + row_bias[i]),  f = ReLU if relu
// beta = 0 overwrites C (its prior contents are never read).
struct GemmEpilogue {
  float beta = 0.0f;
  const float* bias = nullptr;      // length n, added per output column
  const float* row_bias = nullptr;  // length m, added per output row
  bool relu = false;
};

// C[m,n] = beta·C + op(A)[m,k] · op(B)[k,n] (+ epilogue).
// A is stored row-major as m×k when !trans_a, k×m when trans_a (op(A) = Aᵀ);
// B likewise n-against-k. All matrices dense row-major.
void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, const float* b, float* c,
          const GemmEpilogue& epilogue = {});

// The retained pre-runtime naive kernel (i-k-j, zero-skip branch),
// generalised to the same signature. Reference for property tests and the
// GFLOP/s baseline in bench_gemm; never on the hot path.
void gemm_reference(bool trans_a, bool trans_b, int64_t m, int64_t n,
                    int64_t k, const float* a, const float* b, float* c,
                    const GemmEpilogue& epilogue = {});

// Raw batched product over contiguous slabs: for bi in [0, batch),
//   C[bi·c_stride..] = op(A[bi·a_stride..]) · op(B[bi·b_stride..])
// with per-matrix dims m×n×k. A stride of 0 broadcasts that operand across
// the batch. Batch elements are partitioned across the intra-op pool; used
// by batched_matmul and replayed directly by the plan executor
// (DESIGN.md §14) so both paths run the identical kernel.
void batched_gemm(bool trans_a, bool trans_b, int64_t batch, int64_t m,
                  int64_t n, int64_t k, const float* a, int64_t a_stride,
                  const float* b, int64_t b_stride, float* c,
                  int64_t c_stride);

// --- tensor entry points -----------------------------------------------------
// 2-D × 2-D with logical transposes: out = op(a) · op(b). Shapes are
// validated against the *stored* orientation.
Tensor gemm(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
            const GemmEpilogue& epilogue = {});

// General trans-aware product: 2-D × 2-D, batched 3-D × 3-D, or 3-D × 2-D
// (B broadcast across the batch; when additionally !trans_a the batch is
// collapsed into a single GEMM so B is packed exactly once). Transposes
// apply to the trailing two dims.
Tensor batched_matmul(const Tensor& a, bool trans_a, const Tensor& b,
                      bool trans_b);

// Autograd-facing shorthands (the backward-pass products):
//   matmul_nt(a, b) = a · bᵀ      matmul_tn(a, b) = aᵀ · b
inline Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  return batched_matmul(a, false, b, true);
}
inline Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  return batched_matmul(a, true, b, false);
}

// Fused Linear forward: x[rows,in] · w[in,out] + bias (broadcast over rows,
// may be undefined) with optional fused ReLU — one pass over the output.
Tensor linear_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      bool relu = false);

}  // namespace yollo
