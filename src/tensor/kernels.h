// Raw pointer-level kernels shared by the eager Tensor wrappers and the
// plan executor (src/plan/, DESIGN.md §14).
//
// The planned forward's bitwise-identity contract is enforced structurally:
// each data-movement / reduction op has exactly one loop-nest implementation
// here, the eager wrapper calls it after allocating its output, and the plan
// executor calls it on pre-resolved arena pointers with the geometry frozen
// at record time. Neither path re-implements the arithmetic, so they cannot
// drift. All kernels write every element of their output (callers may pass
// uninitialized storage) and allocate nothing.
#pragma once

#include <cstdint>

namespace yollo::kernels {

// dst[coords] = src[sum coords[d]·perm_strides[d]] over the row-major
// iteration of out_shape (rank dims, `numel` total elements). perm_strides
// are the source's contiguous strides permuted into output order — exactly
// what Tensor::permute computes. Serial (matches the eager kernel). rank
// must be <= kMaxPermuteRank.
inline constexpr int64_t kMaxPermuteRank = 16;
void permute_into(const float* src, float* dst, int64_t rank,
                  const int64_t* out_shape, const int64_t* perm_strides,
                  int64_t numel);

// Strided row copy: for r in [0, rows):
//   dst[dst_off + r·dst_stride .. +run) = src[src_off + r·src_stride .. +run)
// Covers narrow (contiguous dst, strided src) and per-part concat writes
// (contiguous src, strided dst).
void copy_rows(const float* src, int64_t src_off, int64_t src_stride,
               float* dst, int64_t dst_off, int64_t dst_stride, int64_t rows,
               int64_t run);

// Row gather from a [extent, inner] table: dst[j] = src[ids[j]] rows.
// Throws std::out_of_range on an out-of-range id (dispatch-level only;
// never called from parallel bodies).
void gather_rows_into(const float* src, int64_t extent, int64_t inner,
                      const int64_t* ids, int64_t count, float* dst);

// Axis sum over a (outer, extent, inner) split: dst rows are zeroed then
// accumulated in ascending-e order (the historical accumulation order, so
// results are bitwise stable). Parallel over `outer`.
void sum_axis_into(const float* src, float* dst, int64_t outer, int64_t extent,
                   int64_t inner);

// Numerically-stable softmax along the split axis. Parallel over `outer`.
void softmax_into(const float* src, float* dst, int64_t outer, int64_t extent,
                  int64_t inner);

// The CoordConv input prologue of YolloModel::forward: copy the [b,3,h,w]
// image into channels 0..2 of dst [b,5,h,w] and fill channels 3/4 with the
// normalised x/y coordinate planes. Lives here so the recorded plan's input
// binding and the dynamic path run the identical fill.
void fill_coord_channels(const float* images, float* dst, int64_t b, int64_t h,
                         int64_t w);

// The Rel2Att PAD pair-mask prologue: dst is [b, m+n, m+n] where
// dst[bi,r,c] = valid(r)·valid(c), image positions (index < m) always valid
// and word position j valid iff tokens[bi·n + j] != 0 (0 == Vocab::kPad).
// Shared by YolloModel::forward and the plan's input prologue.
void fill_pair_mask(const int64_t* tokens, int64_t b, int64_t m, int64_t n,
                    float* dst);

}  // namespace yollo::kernels
