#include "tensor/random.h"

#include <sstream>
#include <stdexcept>

namespace yollo {

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  return dist(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::randint(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(float p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() {
  // Mix two draws so sibling forks do not share prefixes.
  const uint64_t a = engine_();
  const uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

std::string Rng::state() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

void Rng::set_state(const std::string& state) {
  std::istringstream in(state);
  in >> engine_;
  if (in.fail()) {
    throw std::runtime_error("Rng::set_state: malformed engine state");
  }
}

}  // namespace yollo
