#include "tensor/parallel.h"

#include <algorithm>

#include "obs/trace.h"
#include "tensor/exec.h"
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace yollo {
namespace {

using detail::ParallelBody;

// True on pool worker threads: a nested parallel_for must not re-enter the
// pool (the workers it would wait on are busy running it).
thread_local bool t_in_worker = false;

int env_num_threads() {
  const char* env = std::getenv("YOLLO_NUM_THREADS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

struct Pool {
  // Serialises concurrent callers (e.g. two serve workers both issuing a
  // parallel_for): the job slot below holds one job at a time.
  std::mutex run_mu;
  std::mutex mu;
  std::condition_variable cv_job;   // workers: a new job is published
  std::condition_variable cv_done;  // caller: all participants finished

  // Job slot, valid while a job is in flight. Workers copy what they need
  // under the lock before releasing it. The body is a non-owning pair into
  // the dispatching caller's frame, which stays alive: run() does not
  // return until `running` drops to zero.
  uint64_t job_id = 0;
  ParallelBody body{nullptr, nullptr};
  int64_t begin = 0, end = 0, chunk = 1;
  // The dispatching thread's ExecContext (or null): workers poll it at
  // chunk boundaries so a cancelled job stops claiming work.
  ExecContext* ctx = nullptr;
  std::atomic<int64_t> next_chunk{0};
  // Every spawned worker joins every job (extras find no chunks left);
  // `running` counts the ones that have not finished the current job yet.
  int running = 0;

  std::vector<std::thread> workers;

  void worker_loop() {
    t_in_worker = true;
    uint64_t seen = 0;
    for (;;) {
      ParallelBody job_body;
      int64_t b, e, c;
      ExecContext* job_ctx;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv_job.wait(lock, [&] { return job_id != seen; });
        seen = job_id;
        job_body = body;
        b = begin;
        e = end;
        c = chunk;
        job_ctx = ctx;
      }
      drain(job_body, b, e, c, job_ctx);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--running == 0) cv_done.notify_all();
      }
    }
  }

  void drain(ParallelBody job_body, int64_t b, int64_t e, int64_t c,
             ExecContext* job_ctx) {
    for (;;) {
      // Checkpoint before every claim: a cancelled job abandons whatever
      // chunks are still unclaimed (the in-flight ones finish via their
      // own kernel-level checkpoints).
      if (job_ctx != nullptr && job_ctx->checkpoint()) return;
      const int64_t i = next_chunk.fetch_add(1, std::memory_order_relaxed);
      const int64_t lo = b + i * c;
      if (lo >= e) return;
      job_body.invoke(job_body.ctx, lo, std::min(e, lo + c));
    }
  }

  void run(ParallelBody job_body, int64_t b, int64_t e, int64_t c,
           int want_workers, ExecContext* job_ctx) {
    std::lock_guard<std::mutex> run_lock(run_mu);
    {
      std::lock_guard<std::mutex> lock(mu);
      while (static_cast<int>(workers.size()) < want_workers) {
        workers.emplace_back(&Pool::worker_loop, this);
      }
      body = job_body;
      begin = b;
      end = e;
      chunk = c;
      ctx = job_ctx;
      next_chunk.store(0, std::memory_order_relaxed);
      running = static_cast<int>(workers.size());
      ++job_id;
    }
    cv_job.notify_all();
    // The caller works too; while it does, it must behave like a worker so
    // a nested parallel_for (e.g. gemm inside a batched loop) runs serially
    // instead of re-entering the busy pool.
    t_in_worker = true;
    drain(job_body, b, e, c, job_ctx);
    t_in_worker = false;
    std::unique_lock<std::mutex> lock(mu);
    cv_done.wait(lock, [&] { return running == 0; });
    body = ParallelBody{nullptr, nullptr};
  }
};

// Heap-allocated and intentionally leaked: joining parked workers from a
// static destructor would deadlock, and the OS reclaims them at exit.
Pool& pool() {
  static Pool* p = new Pool();
  return *p;
}

std::atomic<int> g_num_threads{0};  // 0 = not yet read from the environment

}  // namespace

int num_threads() {
  int n = g_num_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    n = env_num_threads();
    g_num_threads.store(n, std::memory_order_relaxed);
  }
  return n;
}

void set_num_threads(int n) {
  g_num_threads.store(n >= 1 ? n : 1, std::memory_order_relaxed);
}

namespace detail {

void parallel_for_impl(int64_t begin, int64_t end, int64_t grain,
                       ParallelBody body) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  if (grain < 1) grain = 1;
  const int threads = t_in_worker ? 1 : num_threads();
  if (threads <= 1 || range <= grain) {
    body.invoke(body.ctx, begin, end);
    return;
  }
  // Chunk size is a function of (range, grain) only — never of `threads` —
  // so the work decomposition (and thus every result) is identical at any
  // thread count. Cap the chunk count to bound claim-counter traffic.
  constexpr int64_t kMaxChunks = 64;
  int64_t chunk = grain;
  if (range / chunk > kMaxChunks) chunk = (range + kMaxChunks - 1) / kMaxChunks;
  const int64_t nchunks = (range + chunk - 1) / chunk;
  const int want_workers =
      static_cast<int>(std::min<int64_t>(threads - 1, nchunks - 1));
  if (want_workers <= 0) {
    body.invoke(body.ctx, begin, end);
    return;
  }
  // Span only on the pool-dispatch branch: the serial fast path above must
  // stay one integer compare, even with observability enabled.
  OBS_SPAN("parallel_for");
  pool().run(body, begin, end, chunk, want_workers, ExecContext::current());
}

}  // namespace detail

bool in_parallel_region() { return t_in_worker; }

}  // namespace yollo
