// Arena: one contiguous, 64-byte-aligned float allocation backing every
// intermediate of a compiled plan (DESIGN.md §14).
//
// The plan compiler runs liveness analysis over its op list and assigns
// each intermediate buffer a fixed offset; at execution time every kernel
// writes straight into base() + offset, so steady-state planned forwards
// perform zero heap allocations.
//
// Budget interaction (the PR-7 pool budget): construction charges the full
// byte size against the calling thread's active PoolScope budget via
// detail::charge_external_bytes — exactly once, released when the arena is
// destroyed, so a plan rebuild that replaces an arena never double-counts.
// A charge that would exceed YOLLO_POOL_BUDGET_MB throws PoolBudgetExceeded;
// the plan cache converts that into dynamic-path degradation instead of a
// failed forward.
#pragma once

#include <cstdint>
#include <memory>

namespace yollo {

class Arena {
 public:
  // Allocates `floats` 32-bit elements (zero-initialised). Throws
  // PoolBudgetExceeded when an active pool budget would be exceeded.
  explicit Arena(int64_t floats);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  float* base() { return base_; }
  const float* base() const { return base_; }
  int64_t floats() const { return floats_; }
  int64_t bytes() const { return floats_ * static_cast<int64_t>(sizeof(float)); }

 private:
  float* base_ = nullptr;
  int64_t floats_ = 0;
  std::shared_ptr<void> budget_charge_;  // releases the pool-budget bytes
};

}  // namespace yollo
