#include "tensor/pool.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>

#include "tensor/parallel.h"

namespace yollo {

PoolBudgetExceeded::PoolBudgetExceeded(int64_t requested, int64_t outstanding,
                                       int64_t budget)
    : std::runtime_error("storage pool budget exceeded: " +
                         std::to_string(requested) + " bytes requested, " +
                         std::to_string(outstanding) + " outstanding, " +
                         std::to_string(budget) + " budget"),
      requested_bytes(requested),
      outstanding_bytes(outstanding),
      budget_bytes(budget) {}
namespace detail {
namespace {

// Buffers cached per distinct element count. Bounds worst-case retention to
// kMaxPerSize * (number of distinct shapes) — a model forward has a small,
// fixed shape vocabulary, so in practice the pool converges after one pass.
constexpr size_t kMaxPerSize = 64;

}  // namespace

struct PoolState {
  // Exact-size free lists. unique_ptr entries: buffers parked here are
  // destroyed with the state, not routed back through the pool deleter.
  std::unordered_map<int64_t,
                     std::vector<std::unique_ptr<std::vector<float>>>>
      free_lists;
  const std::thread::id owner = std::this_thread::get_id();
  PoolStats stats;
  // Byte budget (0 = unlimited), written only by the owner thread.
  int64_t budget_bytes = 0;
  // Bytes handed out and not yet truly freed. Atomic because the deleter
  // may run on a foreign thread.
  std::atomic<int64_t> outstanding_bytes{0};
};

namespace {

thread_local std::shared_ptr<PoolState> t_active_pool;

// Custom deleter tagging a pooled buffer with its origin pool. When the
// last reference drops on the owning thread while that pool is still the
// thread's active one, the buffer is parked for reuse; in every other case
// (foreign thread, scope already gone, free list full) it is freed
// normally. Owner-thread-only mutation keeps the pool lock-free and
// race-free.
struct PoolDeleter {
  std::weak_ptr<PoolState> pool;

  void operator()(std::vector<float>* buffer) const {
    if (std::shared_ptr<PoolState> state = pool.lock()) {
      // `owner` is immutable after construction, safe to read anywhere;
      // everything else is touched only when we *are* the owner thread
      // (outstanding_bytes excepted — it is atomic for exactly this
      // foreign-thread free path).
      if (state->owner == std::this_thread::get_id() &&
          t_active_pool == state) {
        auto& list = state->free_lists[static_cast<int64_t>(buffer->size())];
        if (list.size() < kMaxPerSize) {
          list.emplace_back(buffer);
          ++state->stats.recycled;
          return;  // parked buffers stay counted against the budget
        }
        ++state->stats.dropped;
      }
      state->outstanding_bytes.fetch_sub(
          static_cast<int64_t>(buffer->size() * sizeof(float)),
          std::memory_order_relaxed);
    }
    delete buffer;
  }
};

}  // namespace

std::shared_ptr<std::vector<float>> acquire_storage(int64_t n, bool zeroed) {
  const size_t count = static_cast<size_t>(n);
  const std::shared_ptr<PoolState>& state = t_active_pool;
  if (!state) {
    return std::make_shared<std::vector<float>>(count, 0.0f);
  }
  auto it = state->free_lists.find(n);
  if (it != state->free_lists.end() && !it->second.empty()) {
    std::unique_ptr<std::vector<float>> buffer = std::move(it->second.back());
    it->second.pop_back();
    ++state->stats.hits;
    // Keep the Tensor(Shape) zero-fill contract: recycled memory must be
    // indistinguishable from a fresh allocation. Kernels that overwrite
    // every element (Tensor::uninitialized) skip this pass.
    if (zeroed) std::fill(buffer->begin(), buffer->end(), 0.0f);
    return std::shared_ptr<std::vector<float>>(buffer.release(),
                                               PoolDeleter{state});
  }
  const int64_t bytes = n * static_cast<int64_t>(sizeof(float));
  // Budget check only on the miss path (free-list hits are already
  // counted) and never inside a parallel_for body: those must not throw,
  // and their scratch is transient anyway. acquire_storage with an active
  // pool only runs on the owner thread, so stats stay lock-free.
  if (state->budget_bytes > 0 && !in_parallel_region()) {
    const int64_t outstanding =
        state->outstanding_bytes.load(std::memory_order_relaxed);
    if (outstanding + bytes > state->budget_bytes) {
      ++state->stats.budget_rejected;
      throw PoolBudgetExceeded(bytes, outstanding, state->budget_bytes);
    }
  }
  ++state->stats.misses;
  state->outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return std::shared_ptr<std::vector<float>>(
      new std::vector<float>(count, 0.0f), PoolDeleter{state});
}

namespace {

// Keepalive handed to charge_external_bytes callers: releases the byte
// charge when the external allocation (the plan arena) dies. weak_ptr so an
// arena outliving its pool scope releases against nothing.
struct ExternalCharge {
  std::weak_ptr<PoolState> pool;
  int64_t bytes = 0;
  ~ExternalCharge() {
    if (std::shared_ptr<PoolState> state = pool.lock()) {
      state->outstanding_bytes.fetch_sub(bytes, std::memory_order_relaxed);
    }
  }
};

}  // namespace

std::shared_ptr<void> charge_external_bytes(int64_t bytes) {
  const std::shared_ptr<PoolState>& state = t_active_pool;
  if (!state || bytes <= 0) return nullptr;
  // Same enforcement rules as the allocation miss path: budget checks are
  // owner-thread, dispatch-level only.
  if (state->budget_bytes > 0 && !in_parallel_region()) {
    const int64_t outstanding =
        state->outstanding_bytes.load(std::memory_order_relaxed);
    if (outstanding + bytes > state->budget_bytes) {
      ++state->stats.budget_rejected;
      throw PoolBudgetExceeded(bytes, outstanding, state->budget_bytes);
    }
  }
  state->outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed);
  auto charge = std::make_shared<ExternalCharge>();
  charge->pool = state;
  charge->bytes = bytes;
  return charge;
}

}  // namespace detail

PoolScope::PoolScope() {
  if (!detail::t_active_pool) {
    state_ = std::make_shared<detail::PoolState>();
    detail::t_active_pool = state_;
  }
  // else: passthrough — join the already-active scope on this thread.
}

PoolScope::~PoolScope() {
  if (state_) detail::t_active_pool.reset();
}

bool PoolScope::active() { return detail::t_active_pool != nullptr; }

PoolStats PoolScope::stats() const {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  return state ? state->stats : PoolStats{};
}

void PoolScope::trim() {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  if (!state) return;
  // Parked buffers die via their unique_ptr (not the pool deleter), so
  // their bytes must be released from the budget accounting here.
  int64_t freed = 0;
  for (const auto& entry : state->free_lists) {
    freed += entry.first * static_cast<int64_t>(sizeof(float)) *
             static_cast<int64_t>(entry.second.size());
  }
  state->free_lists.clear();
  state->outstanding_bytes.fetch_sub(freed, std::memory_order_relaxed);
}

void PoolScope::set_budget_bytes(int64_t budget) {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  if (state) state->budget_bytes = budget > 0 ? budget : 0;
}

int64_t PoolScope::budget_bytes() const {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  return state ? state->budget_bytes : 0;
}

int64_t PoolScope::outstanding_bytes() const {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  return state ? state->outstanding_bytes.load(std::memory_order_relaxed) : 0;
}

}  // namespace yollo
