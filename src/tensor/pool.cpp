#include "tensor/pool.h"

#include <algorithm>
#include <thread>
#include <unordered_map>

namespace yollo {
namespace detail {
namespace {

// Buffers cached per distinct element count. Bounds worst-case retention to
// kMaxPerSize * (number of distinct shapes) — a model forward has a small,
// fixed shape vocabulary, so in practice the pool converges after one pass.
constexpr size_t kMaxPerSize = 64;

}  // namespace

struct PoolState {
  // Exact-size free lists. unique_ptr entries: buffers parked here are
  // destroyed with the state, not routed back through the pool deleter.
  std::unordered_map<int64_t,
                     std::vector<std::unique_ptr<std::vector<float>>>>
      free_lists;
  const std::thread::id owner = std::this_thread::get_id();
  PoolStats stats;
};

namespace {

thread_local std::shared_ptr<PoolState> t_active_pool;

// Custom deleter tagging a pooled buffer with its origin pool. When the
// last reference drops on the owning thread while that pool is still the
// thread's active one, the buffer is parked for reuse; in every other case
// (foreign thread, scope already gone, free list full) it is freed
// normally. Owner-thread-only mutation keeps the pool lock-free and
// race-free.
struct PoolDeleter {
  std::weak_ptr<PoolState> pool;

  void operator()(std::vector<float>* buffer) const {
    if (std::shared_ptr<PoolState> state = pool.lock()) {
      // `owner` is immutable after construction, safe to read anywhere;
      // everything else is touched only when we *are* the owner thread.
      if (state->owner == std::this_thread::get_id() &&
          t_active_pool == state) {
        auto& list = state->free_lists[static_cast<int64_t>(buffer->size())];
        if (list.size() < kMaxPerSize) {
          list.emplace_back(buffer);
          ++state->stats.recycled;
          return;
        }
        ++state->stats.dropped;
      }
    }
    delete buffer;
  }
};

}  // namespace

std::shared_ptr<std::vector<float>> acquire_storage(int64_t n, bool zeroed) {
  const size_t count = static_cast<size_t>(n);
  const std::shared_ptr<PoolState>& state = t_active_pool;
  if (!state) {
    return std::make_shared<std::vector<float>>(count, 0.0f);
  }
  auto it = state->free_lists.find(n);
  if (it != state->free_lists.end() && !it->second.empty()) {
    std::unique_ptr<std::vector<float>> buffer = std::move(it->second.back());
    it->second.pop_back();
    ++state->stats.hits;
    // Keep the Tensor(Shape) zero-fill contract: recycled memory must be
    // indistinguishable from a fresh allocation. Kernels that overwrite
    // every element (Tensor::uninitialized) skip this pass.
    if (zeroed) std::fill(buffer->begin(), buffer->end(), 0.0f);
    return std::shared_ptr<std::vector<float>>(buffer.release(),
                                               PoolDeleter{state});
  }
  ++state->stats.misses;
  return std::shared_ptr<std::vector<float>>(
      new std::vector<float>(count, 0.0f), PoolDeleter{state});
}

}  // namespace detail

PoolScope::PoolScope() {
  if (!detail::t_active_pool) {
    state_ = std::make_shared<detail::PoolState>();
    detail::t_active_pool = state_;
  }
  // else: passthrough — join the already-active scope on this thread.
}

PoolScope::~PoolScope() {
  if (state_) detail::t_active_pool.reset();
}

bool PoolScope::active() { return detail::t_active_pool != nullptr; }

PoolStats PoolScope::stats() const {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  return state ? state->stats : PoolStats{};
}

void PoolScope::trim() {
  const std::shared_ptr<detail::PoolState>& state =
      state_ ? state_ : detail::t_active_pool;
  if (state) state->free_lists.clear();
}

}  // namespace yollo
