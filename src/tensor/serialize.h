// Versioned, integrity-checked binary serialisation primitives.
//
// Every on-disk artifact in the repository (module parameters, Word2Vec
// embeddings, training checkpoints) shares one container layout:
//
//   [u32 magic][u32 version][u64 payload_size][u32 crc32][payload bytes]
//
// The 20-byte header carries a per-format magic number, a format version,
// the exact payload length, and a CRC-32 (IEEE 802.3) over the payload.
// Readers reject truncated files, payload corruption, and versions newer
// than they understand with descriptive errors — and fall back to treating
// the whole file as a headerless payload when the magic is absent, which
// keeps legacy (pre-header) files loadable.
//
// Writers buffer the payload in memory and publish it atomically: bytes go
// to `<path>.tmp` and the file is rename()d into place only after a clean
// flush, so a crash mid-write can never destroy an existing good file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace yollo::io {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). `crc` chains
// incremental computations; pass the previous return value.
uint32_t crc32(const void* data, size_t len, uint32_t crc = 0);

// Fault-injection hook for crash testing: invoked before each low-level
// chunk write with (payload bytes already written, total payload bytes).
// A throwing hook simulates the process dying mid-write. Installed by
// runtime::FaultInjector; pass nullptr to disable.
using WriteFaultHook = std::function<void(size_t written, size_t total)>;
void set_write_fault_hook(WriteFaultHook hook);

// Accumulates a payload in memory, then atomically publishes it under the
// container header via temp-file + rename.
class PayloadWriter {
 public:
  void write(const void* data, size_t len);
  template <typename T>
  void write_pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    write(&value, sizeof(value));
  }
  void write_string(const std::string& s);

  size_t size() const { return buf_.size(); }
  const std::string& payload() const { return buf_; }

  // Write header + payload + CRC to `path + ".tmp"`, then rename into
  // place. Throws std::runtime_error on any I/O failure (the target file,
  // if it existed, is left untouched).
  void commit(const std::string& path, uint32_t magic,
              uint32_t version) const;

 private:
  std::string buf_;
};

// Reads a container file back. Construction loads the whole file and
// verifies the header: magic + version + size + CRC. When the magic is
// absent the reader enters legacy mode (whole file = payload, version 0)
// so callers can parse pre-header formats.
class PayloadReader {
 public:
  PayloadReader(const std::string& path, uint32_t magic,
                uint32_t max_version);

  bool legacy() const { return legacy_; }
  uint32_t version() const { return version_; }

  void read(void* out, size_t len);
  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    read(&value, sizeof(value));
    return value;
  }
  std::string read_string();

  size_t remaining() const { return payload_.size() - pos_; }
  bool at_end() const { return remaining() == 0; }

 private:
  std::string path_;
  std::string payload_;  // payload bytes only (header stripped unless legacy)
  size_t pos_ = 0;
  bool legacy_ = false;
  uint32_t version_ = 0;
};

}  // namespace yollo::io
