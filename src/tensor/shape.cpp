#include "tensor/shape.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace yollo {

int64_t numel(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

Strides contiguous_strides(const Shape& shape) {
  Strides strides(shape.size());
  int64_t step = 1;
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    strides[static_cast<size_t>(i)] = step;
    step *= shape[static_cast<size_t>(i)];
  }
  return strides;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

bool broadcastable(const Shape& a, const Shape& b) {
  const size_t rank = std::max(a.size(), b.size());
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    if (da != db && da != 1 && db != 1) return false;
  }
  return true;
}

Shape broadcast_shape(const Shape& a, const Shape& b) {
  if (!broadcastable(a, b)) {
    throw std::invalid_argument("broadcast_shape: incompatible shapes " +
                                shape_to_string(a) + " and " +
                                shape_to_string(b));
  }
  const size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (size_t i = 0; i < rank; ++i) {
    const int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    const int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    out[rank - 1 - i] = std::max(da, db);
  }
  return out;
}

Strides broadcast_strides(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) {
    throw std::invalid_argument("broadcast_strides: rank of " +
                                shape_to_string(from) + " exceeds " +
                                shape_to_string(to));
  }
  const Strides base = contiguous_strides(from);
  Strides out(to.size(), 0);
  for (size_t i = 0; i < from.size(); ++i) {
    const size_t fi = from.size() - 1 - i;
    const size_t ti = to.size() - 1 - i;
    if (from[fi] == to[ti]) {
      out[ti] = base[fi];
    } else if (from[fi] == 1) {
      out[ti] = 0;
    } else {
      throw std::invalid_argument("broadcast_strides: cannot broadcast " +
                                  shape_to_string(from) + " to " +
                                  shape_to_string(to));
    }
  }
  return out;
}

int64_t normalize_axis(int64_t axis, int64_t rank) {
  const int64_t normalized = axis < 0 ? axis + rank : axis;
  if (normalized < 0 || normalized >= rank) {
    throw std::invalid_argument("axis " + std::to_string(axis) +
                                " out of range for rank " +
                                std::to_string(rank));
  }
  return normalized;
}

void unravel_index(int64_t flat, const Shape& shape, int64_t* coords) {
  for (int64_t i = static_cast<int64_t>(shape.size()) - 1; i >= 0; --i) {
    const int64_t extent = shape[static_cast<size_t>(i)];
    coords[i] = flat % extent;
    flat /= extent;
  }
}

int64_t ravel_offset(const int64_t* coords, const Strides& strides) {
  int64_t offset = 0;
  for (size_t i = 0; i < strides.size(); ++i) offset += coords[i] * strides[i];
  return offset;
}

}  // namespace yollo
