// Elementwise kernels with NumPy-style broadcasting.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/parallel.h"
#include "tensor/tensor.h"

namespace yollo {
namespace {

// Below this many elements a loop is not worth handing to the pool.
constexpr int64_t kParallelGrain = 32768;

// Generic broadcasting binary kernel. Fast path when shapes match exactly;
// otherwise the trailing dimensions over which each operand is either fully
// contiguous or fully broadcast are collapsed into one tight inner loop
// (vector*vector, vector*scalar, or scalar*vector — all vectorisable), and
// an odometer walks only the remaining prefix. This covers every broadcast
// in the model (bias rows, attention columns, normalisation stats).
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F fn) {
  if (a.same_shape(b)) {
    Tensor out = Tensor::uninitialized(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    parallel_for(0, n, kParallelGrain, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  const Strides sa = broadcast_strides(a.shape(), out_shape);
  const Strides sb = broadcast_strides(b.shape(), out_shape);
  Tensor out = Tensor::uninitialized(out_shape);
  const int64_t n = out.numel();
  if (n == 0) return out;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  const Strides cs = contiguous_strides(out_shape);

  // Grow the collapsed suffix while each operand stays uniformly
  // contiguous (stride == the output's contiguous stride) or uniformly
  // broadcast (stride == 0) across it.
  int64_t d0 = rank;
  bool a_contig = true, a_bcast = true, b_contig = true, b_bcast = true;
  while (d0 > 0) {
    const size_t d = static_cast<size_t>(d0 - 1);
    const bool ac = a_contig && sa[d] == cs[d];
    const bool ab = a_bcast && sa[d] == 0;
    const bool bc = b_contig && sb[d] == cs[d];
    const bool bb = b_bcast && sb[d] == 0;
    if (!((ac || ab) && (bc || bb))) break;
    a_contig = ac;
    a_bcast = ab;
    b_contig = bc;
    b_bcast = bb;
    --d0;
  }
  int64_t run = 1;
  for (int64_t d = d0; d < rank; ++d) {
    run *= out_shape[static_cast<size_t>(d)];
  }

  std::vector<int64_t> coords(static_cast<size_t>(rank), 0);
  int64_t offa = 0, offb = 0;
  for (int64_t flat = 0; flat < n; flat += run) {
    if (a_bcast && !b_bcast) {
      const float av = pa[offa];
      const float* pbr = pb + offb;
      float* por = po + flat;
      for (int64_t i = 0; i < run; ++i) por[i] = fn(av, pbr[i]);
    } else if (b_bcast && !a_bcast) {
      const float bv = pb[offb];
      const float* par = pa + offa;
      float* por = po + flat;
      for (int64_t i = 0; i < run; ++i) por[i] = fn(par[i], bv);
    } else {
      const float* par = pa + offa;
      const float* pbr = pb + offb;
      float* por = po + flat;
      for (int64_t i = 0; i < run; ++i) por[i] = fn(par[i], pbr[i]);
    }
    for (int64_t d = d0 - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      ++coords[ud];
      offa += sa[ud];
      offb += sb[ud];
      if (coords[ud] < out_shape[ud]) break;
      offa -= sa[ud] * out_shape[ud];
      offb -= sb[ud] * out_shape[ud];
      coords[ud] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x / y; });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return std::min(x, y); });
}

Tensor pow(const Tensor& a, float exponent) {
  return a.map_fn([exponent](float x) { return std::pow(x, exponent); });
}

Tensor add_scalar(const Tensor& a, float s) {
  return a.map_fn([s](float x) { return x + s; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return a.map_fn([s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return a.map_fn([](float x) { return -x; });
}

Tensor exp(const Tensor& a) {
  return a.map_fn([](float x) { return std::exp(x); });
}

Tensor log(const Tensor& a) {
  return a.map_fn([](float x) { return std::log(std::max(x, 1e-12f)); });
}

Tensor sqrt(const Tensor& a) {
  return a.map_fn([](float x) { return std::sqrt(x); });
}

Tensor tanh(const Tensor& a) {
  return a.map_fn([](float x) { return std::tanh(x); });
}

Tensor sigmoid(const Tensor& a) {
  return a.map_fn([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor relu(const Tensor& a) {
  return a.map_fn([](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor abs(const Tensor& a) {
  return a.map_fn([](float x) { return std::fabs(x); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  return a.map_fn([lo, hi](float x) { return std::clamp(x, lo, hi); });
}

void add_inplace(Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("add_inplace: shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  parallel_for(0, n, kParallelGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += pb[i];
  });
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("axpy_inplace: shape mismatch");
  }
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  parallel_for(0, n, kParallelGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += s * pb[i];
  });
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  const int64_t n = a.numel();
  parallel_for(0, n, kParallelGrain, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] *= s;
  });
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace yollo
