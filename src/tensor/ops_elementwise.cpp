// Elementwise kernels with NumPy-style broadcasting.
#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/tensor.h"

namespace yollo {
namespace {

// Generic broadcasting binary kernel. Fast path when shapes match exactly;
// otherwise walks the broadcast output shape with per-operand strides.
template <typename F>
Tensor binary_op(const Tensor& a, const Tensor& b, F fn) {
  if (a.same_shape(b)) {
    Tensor out(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    const int64_t n = a.numel();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    return out;
  }
  const Shape out_shape = broadcast_shape(a.shape(), b.shape());
  const Strides sa = broadcast_strides(a.shape(), out_shape);
  const Strides sb = broadcast_strides(b.shape(), out_shape);
  Tensor out(out_shape);
  const int64_t n = out.numel();
  if (n == 0) return out;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Odometer iteration: increment coordinates and operand offsets in place
  // instead of div/mod-unravelling every flat index.
  const int64_t rank = static_cast<int64_t>(out_shape.size());
  std::vector<int64_t> coords(out_shape.size(), 0);
  int64_t offa = 0, offb = 0;
  for (int64_t flat = 0; flat < n; ++flat) {
    po[flat] = fn(pa[offa], pb[offb]);
    for (int64_t d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      ++coords[ud];
      offa += sa[ud];
      offb += sb[ud];
      if (coords[ud] < out_shape[ud]) break;
      offa -= sa[ud] * out_shape[ud];
      offb -= sb[ud] * out_shape[ud];
      coords[ud] = 0;
    }
  }
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x + y; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x - y; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x * y; });
}

Tensor div(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return x / y; });
}

Tensor maximum(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return std::max(x, y); });
}

Tensor minimum(const Tensor& a, const Tensor& b) {
  return binary_op(a, b, [](float x, float y) { return std::min(x, y); });
}

Tensor pow(const Tensor& a, float exponent) {
  return a.map([exponent](float x) { return std::pow(x, exponent); });
}

Tensor add_scalar(const Tensor& a, float s) {
  return a.map([s](float x) { return x + s; });
}

Tensor mul_scalar(const Tensor& a, float s) {
  return a.map([s](float x) { return x * s; });
}

Tensor neg(const Tensor& a) {
  return a.map([](float x) { return -x; });
}

Tensor exp(const Tensor& a) {
  return a.map([](float x) { return std::exp(x); });
}

Tensor log(const Tensor& a) {
  return a.map([](float x) { return std::log(std::max(x, 1e-12f)); });
}

Tensor sqrt(const Tensor& a) {
  return a.map([](float x) { return std::sqrt(x); });
}

Tensor tanh(const Tensor& a) {
  return a.map([](float x) { return std::tanh(x); });
}

Tensor sigmoid(const Tensor& a) {
  return a.map([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor relu(const Tensor& a) {
  return a.map([](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor abs(const Tensor& a) {
  return a.map([](float x) { return std::fabs(x); });
}

Tensor clamp(const Tensor& a, float lo, float hi) {
  return a.map([lo, hi](float x) { return std::clamp(x, lo, hi); });
}

void add_inplace(Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("add_inplace: shape mismatch " +
                                shape_to_string(a.shape()) + " vs " +
                                shape_to_string(b.shape()));
  }
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("axpy_inplace: shape mismatch");
  }
  float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] += s * pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) pa[i] *= s;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  const float* pa = a.data();
  const float* pb = b.data();
  float worst = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.same_shape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace yollo
