#include "autograd/variable.h"

#include <stdexcept>
#include <unordered_set>

#include "autograd/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/exec.h"

namespace yollo::ag {

thread_local bool GradMode::enabled_ = true;

void accumulate_grad(Node& node, const Tensor& g) {
  if (!node.requires_grad) return;
  if (!node.grad.defined()) {
    node.grad = Tensor(node.data.shape());
  }
  add_inplace(node.grad, g);
}

Variable::Variable(Tensor data, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->data = std::move(data);
  node_->requires_grad = requires_grad;
}

Variable Variable::param(Tensor data) {
  return Variable(std::move(data), /*requires_grad=*/true);
}

Variable Variable::constant(Tensor data) {
  return Variable(std::move(data), /*requires_grad=*/false);
}

void Variable::zero_grad() {
  if (node_) node_->grad = Tensor();
}

Variable Variable::detach() const {
  return Variable(node_->data, /*requires_grad=*/false);
}

Variable Variable::make_no_grad_leaf(Tensor data, const char* op_name) {
  // Op-dispatch cancellation checkpoint for the grad-free forward: every
  // inference op result funnels through here on the dispatching thread
  // (never inside a parallel_for body), so a cancelled or expired context
  // aborts between ops even where no instrumented kernel is on the path —
  // and discards the garbage a cancelled kernel may have left in `data`.
  if (ExecContext* ctx = ExecContext::current()) ctx->throw_if_cancelled();
  Variable out(std::move(data), /*requires_grad=*/false);
  out.node_->produced_without_grad = true;
  out.node_->op_name = op_name;
  // Plan-trace safety net: every grad-free op result funnels through here,
  // so a recording sink can verify it has a structural record of the
  // storage (an op missing its dedicated hook marks the trace unplannable
  // instead of silently producing a wrong plan).
  if (trace::Sink* s = trace::current()) s->on_result(op_name, out.value());
  return out;
}

Variable Variable::make_op_node(Tensor data, std::vector<Variable> parents,
                                std::function<void(const Tensor&)> backward_fn,
                                const char* op_name) {
  // make_op() already established that at least one parent requires grad.
  Variable out(std::move(data), /*requires_grad=*/true);
  out.node_->backward_fn = std::move(backward_fn);
  out.node_->parents.reserve(parents.size());
  for (Variable& p : parents) out.node_->parents.push_back(p.node());
  out.node_->op_name = op_name;
  return out;
}

namespace {

void topo_sort(Node* node, std::unordered_set<Node*>& visited,
               std::vector<Node*>& order) {
  // Iterative DFS: deep chains (one node per timestep/layer) would overflow
  // the stack with a recursive formulation.
  struct Frame {
    Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  if (visited.insert(node).second) stack.push_back({node, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_parent < top.node->parents.size()) {
      Node* parent = top.node->parents[top.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Variable::backward() const {
  if (!node_) throw std::logic_error("backward: undefined Variable");
  if (node_->produced_without_grad) {
    throw std::logic_error(
        std::string("backward: '") + node_->op_name +
        "' was computed with gradients disabled (NoGradGuard); no graph was "
        "recorded to differentiate through");
  }
  if (node_->data.numel() != 1) {
    throw std::logic_error("backward: root must hold a single element, has " +
                           shape_to_string(node_->data.shape()));
  }
  if (!node_->requires_grad) return;

  OBS_SPAN("ag.backward");

  std::unordered_set<Node*> visited;
  std::vector<Node*> order;  // parents before children (post-order)
  topo_sort(node_.get(), visited, order);

  accumulate_grad(*node_, Tensor::ones(node_->data.shape()));

  const bool profiled = obs::enabled();
  if (profiled) {
    static obs::Counter& calls =
        obs::MetricsRegistry::global().counter("ag.backward.calls");
    static obs::Counter& nodes =
        obs::MetricsRegistry::global().counter("ag.backward.nodes");
    calls.inc();
    nodes.inc(static_cast<int64_t>(order.size()));
  }

  // Children first: walk post-order in reverse.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.defined()) {
      // op_name is a string literal owned by the op registry, so it is safe
      // to retain in the trace ring beyond this node's lifetime.
      obs::Span span(profiled ? n->op_name : nullptr);
      n->backward_fn(n->grad);
    }
  }
}

int64_t graph_size(const Variable& root) {
  if (!root.defined()) return 0;
  std::unordered_set<Node*> visited;
  std::vector<Node*> order;
  topo_sort(root.node().get(), visited, order);
  return static_cast<int64_t>(order.size());
}

}  // namespace yollo::ag
