// Reverse-mode automatic differentiation over yollo::Tensor.
//
// A Variable is a value-semantic handle to a graph Node holding the forward
// value, an optional gradient buffer, and a backward closure that routes the
// node's gradient to its parents. Calling backward() on a scalar Variable
// runs the tape in reverse topological order.
//
// Ownership: a Node owns shared_ptrs to its parents, so a Variable keeps its
// whole upstream graph alive. Backward closures capture raw Node* for the
// parents (kept alive by that same parents vector) plus any saved forward
// tensors by value, which avoids shared_ptr reference cycles.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace yollo::ag {

struct Node {
  Tensor data;
  Tensor grad;  // lazily allocated; undefined until first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Receives this node's output gradient; must accumulate into parents.
  std::function<void(const Tensor& grad_out)> backward_fn;
  const char* op_name = "leaf";
};

// Accumulate `g` into the node's gradient buffer (no-op when the node does
// not require grad). Exposed for custom op authors.
void accumulate_grad(Node& node, const Tensor& g);

class Variable {
 public:
  Variable() = default;

  // Wrap a tensor as a graph leaf.
  explicit Variable(Tensor data, bool requires_grad = false);

  // A trainable parameter (leaf with requires_grad = true).
  static Variable param(Tensor data);

  // A non-differentiable constant.
  static Variable constant(Tensor data);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->data; }
  Tensor& value() { return node_->data; }
  const Tensor& grad() const { return node_->grad; }
  bool has_grad() const { return node_->grad.defined(); }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  const Shape& shape() const { return node_->data.shape(); }
  int64_t ndim() const { return node_->data.ndim(); }
  int64_t size(int64_t axis) const { return node_->data.size(axis); }
  int64_t numel() const { return node_->data.numel(); }

  // Drop (free) the gradient buffer.
  void zero_grad();

  // Run reverse-mode differentiation from this Variable, which must hold a
  // single element. Seeds the output gradient with 1.
  void backward() const;

  // Detach from the graph: same data, new leaf, no gradient flow.
  Variable detach() const;

  std::shared_ptr<Node>& node() { return node_; }
  const std::shared_ptr<Node>& node() const { return node_; }

  // Construct an interior (op result) node. For use by op implementations.
  static Variable make_op(Tensor data, std::vector<Variable> parents,
                          std::function<void(const Tensor&)> backward_fn,
                          const char* op_name);

 private:
  std::shared_ptr<Node> node_;
};

// Number of nodes reachable from `root` (diagnostics / tests).
int64_t graph_size(const Variable& root);

}  // namespace yollo::ag
