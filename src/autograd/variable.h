// Reverse-mode automatic differentiation over yollo::Tensor.
//
// A Variable is a value-semantic handle to a graph Node holding the forward
// value, an optional gradient buffer, and a backward closure that routes the
// node's gradient to its parents. Calling backward() on a scalar Variable
// runs the tape in reverse topological order.
//
// Ownership: a Node owns shared_ptrs to its parents, so a Variable keeps its
// whole upstream graph alive. Backward closures capture raw Node* for the
// parents (kept alive by that same parents vector) plus any saved forward
// tensors by value, which avoids shared_ptr reference cycles.
//
// Grad mode: graph construction is gated by a thread-local GradMode flag.
// Under an ag::NoGradGuard every op returns a plain leaf — no parents
// vector, no backward closure, no saved forward tensors — which is the
// backbone of the grad-free inference engine (DESIGN.md §9). Calling
// backward() on such a leaf throws instead of silently doing nothing.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace yollo::ag {

struct Node {
  Tensor data;
  Tensor grad;  // lazily allocated; undefined until first accumulation
  bool requires_grad = false;
  // True for op results produced while GradMode was disabled: no graph was
  // recorded, so backward() through this value must fail loudly rather than
  // silently produce no gradients.
  bool produced_without_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Receives this node's output gradient; must accumulate into parents.
  std::function<void(const Tensor& grad_out)> backward_fn;
  const char* op_name = "leaf";
};

// Thread-local switch for autograd graph construction. Each thread starts
// with gradients enabled; flipping it on one thread never affects another
// (worker pools rely on this).
class GradMode {
 public:
  static bool enabled() { return enabled_; }
  static void set_enabled(bool enabled) { enabled_ = enabled; }

 private:
  static thread_local bool enabled_;
};

// RAII: disable graph construction on this thread for the guard's lifetime.
// Nests — the previous mode is restored on destruction.
class NoGradGuard {
 public:
  NoGradGuard() : previous_(GradMode::enabled()) {
    GradMode::set_enabled(false);
  }
  ~NoGradGuard() { GradMode::set_enabled(previous_); }
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// Accumulate `g` into the node's gradient buffer (no-op when the node does
// not require grad). Exposed for custom op authors.
void accumulate_grad(Node& node, const Tensor& g);

class Variable {
 public:
  Variable() = default;

  // Wrap a tensor as a graph leaf.
  explicit Variable(Tensor data, bool requires_grad = false);

  // A trainable parameter (leaf with requires_grad = true).
  static Variable param(Tensor data);

  // A non-differentiable constant.
  static Variable constant(Tensor data);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const { return node_->data; }
  Tensor& value() { return node_->data; }
  const Tensor& grad() const { return node_->grad; }
  bool has_grad() const { return node_->grad.defined(); }
  bool requires_grad() const { return node_ && node_->requires_grad; }

  const Shape& shape() const { return node_->data.shape(); }
  int64_t ndim() const { return node_->data.ndim(); }
  int64_t size(int64_t axis) const { return node_->data.size(axis); }
  int64_t numel() const { return node_->data.numel(); }

  // Drop (free) the gradient buffer.
  void zero_grad();

  // Run reverse-mode differentiation from this Variable, which must hold a
  // single element. Seeds the output gradient with 1.
  void backward() const;

  // Detach from the graph: same data, new leaf, no gradient flow.
  Variable detach() const;

  std::shared_ptr<Node>& node() { return node_; }
  const std::shared_ptr<Node>& node() const { return node_; }

  // Construct an interior (op result) node. For use by op implementations.
  //
  // The backward closure is taken as a deduced callable so that when no
  // graph is needed — GradMode disabled, or no parent requires grad — the
  // type-erasing (heap-allocating) std::function conversion never happens
  // and the closure (with its saved forward tensors) is dropped on the
  // spot. Under no-grad the result is a plain leaf tagged
  // produced_without_grad.
  template <typename Fn>
  static Variable make_op(Tensor data, std::vector<Variable> parents,
                          Fn&& backward_fn, const char* op_name) {
    if (!GradMode::enabled()) {
      return make_no_grad_leaf(std::move(data), op_name);
    }
    bool needs = false;
    for (const Variable& p : parents) needs = needs || p.requires_grad();
    if (!needs) {
      Variable out(std::move(data), /*requires_grad=*/false);
      out.node_->op_name = op_name;
      return out;
    }
    return make_op_node(
        std::move(data), std::move(parents),
        std::function<void(const Tensor&)>(std::forward<Fn>(backward_fn)),
        op_name);
  }

 private:
  static Variable make_no_grad_leaf(Tensor data, const char* op_name);
  static Variable make_op_node(Tensor data, std::vector<Variable> parents,
                               std::function<void(const Tensor&)> backward_fn,
                               const char* op_name);

  std::shared_ptr<Node> node_;
};

// Number of nodes reachable from `root` (diagnostics / tests).
int64_t graph_size(const Variable& root);

}  // namespace yollo::ag
