// Differentiable operations over ag::Variable.
//
// Every function builds the forward value eagerly with the tensor kernels
// and registers a backward closure. Binary elementwise ops broadcast, and
// their backward passes sum gradients back down to the operand shapes.
#pragma once

#include <vector>

#include "autograd/variable.h"
#include "tensor/conv.h"

namespace yollo::ag {

// --- elementwise binary (broadcasting) --------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable div(const Variable& a, const Variable& b);

inline Variable operator+(const Variable& a, const Variable& b) {
  return add(a, b);
}
inline Variable operator-(const Variable& a, const Variable& b) {
  return sub(a, b);
}
inline Variable operator*(const Variable& a, const Variable& b) {
  return mul(a, b);
}
inline Variable operator/(const Variable& a, const Variable& b) {
  return div(a, b);
}

// --- scalar ------------------------------------------------------------------
Variable add_scalar(const Variable& a, float s);
Variable mul_scalar(const Variable& a, float s);
Variable pow_scalar(const Variable& a, float exponent);  // requires a > 0 when
                                                         // exponent non-integer
inline Variable operator+(const Variable& a, float s) { return add_scalar(a, s); }
inline Variable operator-(const Variable& a, float s) { return add_scalar(a, -s); }
inline Variable operator*(const Variable& a, float s) { return mul_scalar(a, s); }
inline Variable operator/(const Variable& a, float s) {
  return mul_scalar(a, 1.0f / s);
}
inline Variable operator-(const Variable& a) { return mul_scalar(a, -1.0f); }

// --- unary --------------------------------------------------------------------
Variable relu(const Variable& a);
Variable tanh(const Variable& a);
Variable sigmoid(const Variable& a);
Variable exp(const Variable& a);
Variable log(const Variable& a);    // input clamped to >= 1e-12
Variable sqrt(const Variable& a);   // input clamped to >= 0
Variable square(const Variable& a);

// --- shape ---------------------------------------------------------------------
Variable reshape(const Variable& a, Shape new_shape);
Variable transpose(const Variable& a, int64_t d0, int64_t d1);
Variable narrow(const Variable& a, int64_t axis, int64_t start, int64_t length);
Variable concat(const std::vector<Variable>& parts, int64_t axis);
Variable unsqueeze(const Variable& a, int64_t axis);
Variable broadcast_to(const Variable& a, const Shape& target);

// --- gather / scatter ------------------------------------------------------------
// Rows of axis-0 selected by indices: a[indices, ...].
Variable select_rows(const Variable& a, std::vector<int64_t> indices);
// Arbitrary flat elements gathered into a rank-1 Variable.
Variable gather_flat(const Variable& a, std::vector<int64_t> indices);
// Embedding lookup: weight [V, d] gathered by token ids -> [n, d].
Variable embedding(const Variable& weight, const std::vector<int64_t>& ids);

// --- linear algebra ---------------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);  // 2-D or batched 3-D
// a · bᵀ without materialising the transpose (2-D or batched 3-D; the
// attention-similarity product). Backward is likewise transpose-free.
Variable matmul_nt(const Variable& a, const Variable& b);
// Fused Linear: x[rows,in] · w[in,out] + bias (+ ReLU when fuse_relu) in a
// single kernel pass; backward runs on the transpose-aware GEMM entry
// points. `bias` may be undefined.
Variable linear(const Variable& x, const Variable& w, const Variable& bias,
                bool fuse_relu = false);

// --- reductions --------------------------------------------------------------------
Variable sum(const Variable& a);                       // -> rank-0
Variable sum(const Variable& a, int64_t axis, bool keepdim = false);
Variable mean(const Variable& a);                      // -> rank-0
Variable mean(const Variable& a, int64_t axis, bool keepdim = false);

// --- softmax family ------------------------------------------------------------------
Variable softmax(const Variable& a, int64_t axis);
Variable log_softmax(const Variable& a, int64_t axis);

// --- losses ----------------------------------------------------------------------------
// Smooth-L1 (Huber, beta = 1) summed over all elements: the Fast R-CNN
// regression loss (paper eq. 8 uses it per coordinate).
Variable smooth_l1(const Variable& pred, const Tensor& target);
// Binary cross entropy on logits against {0,1} targets, mean over elements.
Variable bce_with_logits(const Variable& logits, const Tensor& targets);

// --- convolution / pooling ----------------------------------------------------------------
Variable conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const Conv2dSpec& spec);
Variable max_pool2x2(const Variable& input);
Variable global_avg_pool(const Variable& input);

// --- regularisation --------------------------------------------------------------------------
// Inverted dropout; identity when `training` is false or p == 0.
Variable dropout(const Variable& a, float p, Rng& rng, bool training);

}  // namespace yollo::ag
