#include "autograd/trace.h"

namespace yollo::ag::trace {

namespace {
thread_local Sink* t_sink = nullptr;
}  // namespace

Sink* current() { return t_sink; }

Scope::Scope(Sink* sink) : previous_(t_sink) { t_sink = sink; }

Scope::~Scope() { t_sink = previous_; }

}  // namespace yollo::ag::trace
