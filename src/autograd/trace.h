// Forward-trace hooks for the plan compiler (DESIGN.md §14).
//
// A Sink observes the grad-free eager forward op by op: each autograd op in
// ops.cpp computes its output tensor, then (when a sink is installed on the
// current thread) reports the op's identity, operands and output before
// wrapping the result in a Variable. The plan recorder (src/plan/) is the
// only production sink: it interns operand storage pointers into slots and
// replays the reported op stream against an arena.
//
// The safety net: every no-grad op result additionally funnels through
// on_result() (called from Variable::make_no_grad_leaf). A sink that sees a
// result whose storage it has no structural record of — an op without a
// dedicated hook ran — must mark the trace unplannable rather than guess.
// This makes the hook set fail-closed: forgetting to instrument a new op can
// only disable planning, never corrupt a plan.
//
// Layering: this header lives in autograd (ops.cpp needs it), while the
// concrete recorder lives in yollo_plan, which depends on yollo_autograd.
// Installation is thread-local and RAII-scoped, mirroring GradMode.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace yollo::ag::trace {

class Sink {
 public:
  virtual ~Sink() = default;

  // Broadcasting binary elementwise op: "add", "sub", "mul", "div".
  virtual void on_binary(const char* op, const Tensor& a, const Tensor& b,
                         const Tensor& out) = 0;
  // Unary elementwise op: "relu", "sigmoid".
  virtual void on_unary(const char* op, const Tensor& a, const Tensor& out) = 0;
  // Unary elementwise op with a scalar argument: "add_scalar", "mul_scalar",
  // "pow_scalar".
  virtual void on_unary_scalar(const char* op, const Tensor& a, float s,
                               const Tensor& out) = 0;
  // Materialised axis permutation (transpose lowers to this). `order` holds
  // normalised (non-negative) axes.
  virtual void on_permute(const Tensor& a, const std::vector<int64_t>& order,
                          const Tensor& out) = 0;
  // Contiguous slice along a normalised axis.
  virtual void on_narrow(const Tensor& a, int64_t axis, int64_t start,
                         int64_t length, const Tensor& out) = 0;
  virtual void on_concat(const std::vector<Tensor>& parts, int64_t axis,
                         const Tensor& out) = 0;
  // Row gather from a [extent, inner] table (embedding lookup).
  virtual void on_gather_rows(const Tensor& table,
                              const std::vector<int64_t>& ids,
                              const Tensor& out) = 0;
  // General trans-aware matmul (2-D, batched 3-D, 3-D×2-D broadcast).
  virtual void on_matmul(const Tensor& a, bool trans_a, const Tensor& b,
                         bool trans_b, const Tensor& out) = 0;
  // Fused linear: out = x·w (+bias) (+ReLU); bias may be undefined.
  virtual void on_linear(const Tensor& x, const Tensor& w, const Tensor& bias,
                         bool relu, const Tensor& out) = 0;
  virtual void on_sum_axis(const Tensor& a, int64_t axis, bool keepdim,
                           const Tensor& out) = 0;
  virtual void on_softmax(const Tensor& a, int64_t axis, const Tensor& out) = 0;
  // bias may be undefined.
  virtual void on_conv2d(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, const Conv2dSpec& spec,
                         const Tensor& out) = 0;

  // A model-declared runtime input (e.g. the CoordConv image prologue or the
  // PAD pair mask): storage whose contents vary per call and must be refilled
  // by the plan's prologue rather than bound as a constant.
  virtual void on_input(const char* name, const Tensor& t) = 0;

  // Safety net (see header comment). `op_name` is the autograd op's literal
  // name; alias-producing ops ("reshape") legitimately report storage that
  // may belong to an as-yet-unseen leaf.
  virtual void on_result(const char* op_name, const Tensor& out) = 0;
};

// The sink installed on this thread, or nullptr.
Sink* current();
inline bool active() { return current() != nullptr; }

// RAII installer; nests (the previous sink is restored on destruction).
class Scope {
 public:
  explicit Scope(Sink* sink);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Sink* previous_;
};

// Convenience for model code: report a runtime input when a sink is active,
// no-op otherwise.
inline void note_input(const char* name, const Tensor& t) {
  if (Sink* s = current()) s->on_input(name, t);
}

}  // namespace yollo::ag::trace
