#include "autograd/ops.h"

#include <algorithm>

#include "autograd/trace.h"
#include "tensor/gemm.h"
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace yollo::ag {
namespace {

using NodePtr = std::shared_ptr<Node>;

// Plan-trace hooks (autograd/trace.h): each instrumented op computes its
// output eagerly, reports (op, operands, output) to the thread's sink if one
// is installed, and only then wraps the result. The report must precede
// make_op so the recorder sees the storage before make_no_grad_leaf's
// on_result safety net checks it.
trace::Sink* sink() { return trace::current(); }

// Accumulate into a parent only when it participates in differentiation;
// avoids computing reductions whose result would be discarded.
void feed(const NodePtr& parent, const Tensor& g) {
  if (parent->requires_grad) accumulate_grad(*parent, g);
}

void feed_reduced(const NodePtr& parent, const Tensor& g, const Shape& shape) {
  if (parent->requires_grad) {
    accumulate_grad(*parent, reduce_to_shape(g, shape));
  }
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::add(a.value(), b.value());
  if (sink()) sink()->on_binary("add", a.value(), b.value(), out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        feed_reduced(an, g, an->data.shape());
        feed_reduced(bn, g, bn->data.shape());
      },
      "add");
}

Variable sub(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::sub(a.value(), b.value());
  if (sink()) sink()->on_binary("sub", a.value(), b.value(), out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        feed_reduced(an, g, an->data.shape());
        feed_reduced(bn, yollo::neg(g), bn->data.shape());
      },
      "sub");
}

Variable mul(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::mul(a.value(), b.value());
  if (sink()) sink()->on_binary("mul", a.value(), b.value(), out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        feed_reduced(an, yollo::mul(g, bn->data.broadcast_to(g.shape())),
                     an->data.shape());
        feed_reduced(bn, yollo::mul(g, an->data.broadcast_to(g.shape())),
                     bn->data.shape());
      },
      "mul");
}

Variable div(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::div(a.value(), b.value());
  if (sink()) sink()->on_binary("div", a.value(), b.value(), out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        const Tensor bb = bn->data.broadcast_to(g.shape());
        feed_reduced(an, yollo::div(g, bb), an->data.shape());
        if (bn->requires_grad) {
          const Tensor ab = an->data.broadcast_to(g.shape());
          // d/db (a/b) = -a / b^2
          Tensor gb = yollo::neg(yollo::div(yollo::mul(g, ab),
                                            yollo::mul(bb, bb)));
          feed_reduced(bn, gb, bn->data.shape());
        }
      },
      "div");
}

Variable add_scalar(const Variable& a, float s) {
  NodePtr an = a.node();
  Tensor out = yollo::add_scalar(a.value(), s);
  if (sink()) sink()->on_unary_scalar("add_scalar", a.value(), s, out);
  return Variable::make_op(
      std::move(out), {a},
      [an](const Tensor& g) { feed(an, g); }, "add_scalar");
}

Variable mul_scalar(const Variable& a, float s) {
  NodePtr an = a.node();
  Tensor out = yollo::mul_scalar(a.value(), s);
  if (sink()) sink()->on_unary_scalar("mul_scalar", a.value(), s, out);
  return Variable::make_op(
      std::move(out), {a},
      [an, s](const Tensor& g) { feed(an, yollo::mul_scalar(g, s)); },
      "mul_scalar");
}

Variable pow_scalar(const Variable& a, float exponent) {
  NodePtr an = a.node();
  Tensor out = yollo::pow(a.value(), exponent);
  if (sink()) sink()->on_unary_scalar("pow_scalar", a.value(), exponent, out);
  return Variable::make_op(
      std::move(out), {a},
      [an, exponent](const Tensor& g) {
        if (!an->requires_grad) return;
        // d/dx x^p = p * x^(p-1)
        Tensor d = yollo::pow(an->data, exponent - 1.0f);
        feed(an, yollo::mul(g, yollo::mul_scalar(d, exponent)));
      },
      "pow_scalar");
}

Variable relu(const Variable& a) {
  NodePtr an = a.node();
  Tensor out = yollo::relu(a.value());
  if (sink()) sink()->on_unary("relu", a.value(), out);
  return Variable::make_op(
      std::move(out), {a},
      [an](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor d(g.shape());
        const float* x = an->data.data();
        const float* gp = g.data();
        float* dp = d.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
          dp[i] = x[i] > 0.0f ? gp[i] : 0.0f;
        }
        feed(an, d);
      },
      "relu");
}

Variable tanh(const Variable& a) {
  NodePtr an = a.node();
  Tensor y = yollo::tanh(a.value());
  return Variable::make_op(
      y, {a},
      [an, y](const Tensor& g) {
        // d tanh = 1 - y^2
        Tensor one_minus = yollo::sub(Tensor::ones(y.shape()), yollo::mul(y, y));
        feed(an, yollo::mul(g, one_minus));
      },
      "tanh");
}

Variable sigmoid(const Variable& a) {
  NodePtr an = a.node();
  Tensor y = yollo::sigmoid(a.value());
  if (sink()) sink()->on_unary("sigmoid", a.value(), y);
  return Variable::make_op(
      y, {a},
      [an, y](const Tensor& g) {
        Tensor d = yollo::mul(y, yollo::sub(Tensor::ones(y.shape()), y));
        feed(an, yollo::mul(g, d));
      },
      "sigmoid");
}

Variable exp(const Variable& a) {
  NodePtr an = a.node();
  Tensor y = yollo::exp(a.value());
  return Variable::make_op(
      y, {a}, [an, y](const Tensor& g) { feed(an, yollo::mul(g, y)); }, "exp");
}

Variable log(const Variable& a) {
  NodePtr an = a.node();
  return Variable::make_op(
      yollo::log(a.value()), {a},
      [an](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor d(g.shape());
        const float* x = an->data.data();
        const float* gp = g.data();
        float* dp = d.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
          dp[i] = gp[i] / std::max(x[i], 1e-12f);
        }
        feed(an, d);
      },
      "log");
}

Variable sqrt(const Variable& a) {
  NodePtr an = a.node();
  Tensor y = yollo::sqrt(yollo::clamp(a.value(), 0.0f,
                                      std::numeric_limits<float>::max()));
  return Variable::make_op(
      y, {a},
      [an, y](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor d(g.shape());
        const float* yp = y.data();
        const float* gp = g.data();
        float* dp = d.data();
        for (int64_t i = 0; i < g.numel(); ++i) {
          dp[i] = gp[i] * 0.5f / std::max(yp[i], 1e-6f);
        }
        feed(an, d);
      },
      "sqrt");
}

Variable square(const Variable& a) {
  NodePtr an = a.node();
  Tensor out = yollo::mul(a.value(), a.value());
  // Reported as the "mul" it computes: the recorder replays x·x exactly.
  if (sink()) sink()->on_binary("mul", a.value(), a.value(), out);
  return Variable::make_op(
      std::move(out), {a},
      [an](const Tensor& g) {
        if (!an->requires_grad) return;
        feed(an, yollo::mul_scalar(yollo::mul(g, an->data), 2.0f));
      },
      "square");
}

Variable reshape(const Variable& a, Shape new_shape) {
  NodePtr an = a.node();
  const Shape old_shape = a.shape();
  return Variable::make_op(
      a.value().reshape(std::move(new_shape)), {a},
      [an, old_shape](const Tensor& g) { feed(an, g.reshape(old_shape)); },
      "reshape");
}

Variable transpose(const Variable& a, int64_t d0, int64_t d1) {
  NodePtr an = a.node();
  Tensor out = a.value().transpose(d0, d1);
  if (sink()) {
    // Mirror Tensor::transpose's lowering to a full-axis permutation.
    const int64_t rank = a.ndim();
    std::vector<int64_t> order(static_cast<size_t>(rank));
    for (int64_t i = 0; i < rank; ++i) order[static_cast<size_t>(i)] = i;
    std::swap(order[static_cast<size_t>(normalize_axis(d0, rank))],
              order[static_cast<size_t>(normalize_axis(d1, rank))]);
    sink()->on_permute(a.value(), order, out);
  }
  return Variable::make_op(
      std::move(out), {a},
      [an, d0, d1](const Tensor& g) { feed(an, g.transpose(d0, d1)); },
      "transpose");
}

Variable narrow(const Variable& a, int64_t axis, int64_t start,
                int64_t length) {
  NodePtr an = a.node();
  const Shape in_shape = a.shape();
  const int64_t ax = normalize_axis(axis, a.ndim());
  Tensor out = a.value().narrow(ax, start, length);
  if (sink()) sink()->on_narrow(a.value(), ax, start, length, out);
  return Variable::make_op(
      std::move(out), {a},
      [an, in_shape, ax, start, length](const Tensor& g) {
        if (!an->requires_grad) return;
        // Scatter the slice gradient back into a zero tensor.
        Tensor full(in_shape);
        int64_t outer = 1;
        for (int64_t i = 0; i < ax; ++i) outer *= in_shape[static_cast<size_t>(i)];
        int64_t inner = 1;
        for (size_t i = static_cast<size_t>(ax) + 1; i < in_shape.size(); ++i) {
          inner *= in_shape[i];
        }
        const int64_t extent = in_shape[static_cast<size_t>(ax)];
        const float* src = g.data();
        float* dst = full.data();
        for (int64_t o = 0; o < outer; ++o) {
          std::copy(src + o * length * inner, src + (o + 1) * length * inner,
                    dst + (o * extent + start) * inner);
        }
        feed(an, full);
      },
      "narrow");
}

Variable concat(const std::vector<Variable>& parts, int64_t axis) {
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor out = yollo::concat(values, axis);
  const int64_t ax = normalize_axis(axis, parts[0].ndim());
  if (sink()) sink()->on_concat(values, ax, out);

  std::vector<NodePtr> nodes;
  std::vector<int64_t> extents;
  nodes.reserve(parts.size());
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    extents.push_back(p.size(ax));
  }
  return Variable::make_op(
      std::move(out), parts,
      [nodes, extents, ax](const Tensor& g) {
        int64_t offset = 0;
        for (size_t i = 0; i < nodes.size(); ++i) {
          if (nodes[i]->requires_grad) {
            accumulate_grad(*nodes[i], g.narrow(ax, offset, extents[i]));
          }
          offset += extents[i];
        }
      },
      "concat");
}

Variable unsqueeze(const Variable& a, int64_t axis) {
  Shape s = a.shape();
  const int64_t rank = a.ndim() + 1;
  const int64_t ax = axis < 0 ? axis + rank : axis;
  s.insert(s.begin() + ax, 1);
  return reshape(a, std::move(s));
}

Variable broadcast_to(const Variable& a, const Shape& target) {
  NodePtr an = a.node();
  const Shape from = a.shape();
  return Variable::make_op(
      a.value().broadcast_to(target), {a},
      [an, from](const Tensor& g) {
        feed(an, reduce_to_shape(g, from));
      },
      "broadcast_to");
}

Variable select_rows(const Variable& a, std::vector<int64_t> indices) {
  NodePtr an = a.node();
  const Shape in_shape = a.shape();
  Tensor out = a.value().index_select(0, indices);
  if (sink()) sink()->on_gather_rows(a.value(), indices, out);
  return Variable::make_op(
      std::move(out), {a},
      [an, in_shape, indices = std::move(indices)](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor full(in_shape);
        int64_t inner = 1;
        for (size_t i = 1; i < in_shape.size(); ++i) inner *= in_shape[i];
        const float* src = g.data();
        float* dst = full.data();
        for (size_t j = 0; j < indices.size(); ++j) {
          float* row = dst + indices[j] * inner;
          const float* grow = src + static_cast<int64_t>(j) * inner;
          for (int64_t i = 0; i < inner; ++i) row[i] += grow[i];
        }
        feed(an, full);
      },
      "select_rows");
}

Variable gather_flat(const Variable& a, std::vector<int64_t> indices) {
  NodePtr an = a.node();
  const Shape in_shape = a.shape();
  Tensor out({static_cast<int64_t>(indices.size())});
  const float* src = a.value().data();
  float* dst = out.data();
  for (size_t i = 0; i < indices.size(); ++i) dst[i] = src[indices[i]];
  return Variable::make_op(
      std::move(out), {a},
      [an, in_shape, indices = std::move(indices)](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor full(in_shape);
        float* dst = full.data();
        const float* gp = g.data();
        for (size_t i = 0; i < indices.size(); ++i) {
          dst[indices[i]] += gp[i];
        }
        feed(an, full);
      },
      "gather_flat");
}

Variable embedding(const Variable& weight, const std::vector<int64_t>& ids) {
  return select_rows(weight, ids);
}

Variable matmul(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::matmul(a.value(), b.value());
  if (sink()) sink()->on_matmul(a.value(), false, b.value(), false, out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        // dA = g·Bᵀ, dB = Aᵀ·g — served by the transpose-aware GEMM entry
        // points, so no operand is ever materialised transposed.
        if (an->requires_grad) feed(an, yollo::matmul_nt(g, bn->data));
        if (bn->requires_grad) feed(bn, yollo::matmul_tn(an->data, g));
      },
      "matmul");
}

Variable matmul_nt(const Variable& a, const Variable& b) {
  NodePtr an = a.node(), bn = b.node();
  Tensor out = yollo::matmul_nt(a.value(), b.value());
  if (sink()) sink()->on_matmul(a.value(), false, b.value(), true, out);
  return Variable::make_op(
      std::move(out), {a, b},
      [an, bn](const Tensor& g) {
        // y = a·bᵀ  ⇒  dA = g·b, dB = gᵀ·a.
        if (an->requires_grad) {
          feed(an, yollo::batched_matmul(g, false, bn->data, false));
        }
        if (bn->requires_grad) feed(bn, yollo::matmul_tn(g, an->data));
      },
      "matmul_nt");
}

Variable linear(const Variable& x, const Variable& w, const Variable& bias,
                bool fuse_relu) {
  NodePtr xn = x.node(), wn = w.node();
  NodePtr bn = bias.defined() ? bias.node() : nullptr;
  Tensor y = linear_forward(x.value(), w.value(),
                            bias.defined() ? bias.value() : Tensor(),
                            fuse_relu);
  if (sink()) {
    sink()->on_linear(x.value(), w.value(),
                      bias.defined() ? bias.value() : Tensor(), fuse_relu, y);
  }
  std::vector<Variable> parents{x, w};
  if (bias.defined()) parents.push_back(bias);
  return Variable::make_op(
      y, std::move(parents),
      [xn, wn, bn, y, fuse_relu](const Tensor& g) {
        Tensor ge = g;
        if (fuse_relu) {
          // The fused ReLU's derivative comes from the saved output: a unit
          // was clamped iff y == 0 there (pre-activation ≤ 0).
          ge = Tensor::uninitialized(g.shape());
          const float* yp = y.data();
          const float* gp = g.data();
          float* dp = ge.data();
          for (int64_t i = 0; i < g.numel(); ++i) {
            dp[i] = yp[i] > 0.0f ? gp[i] : 0.0f;
          }
        }
        if (xn->requires_grad) feed(xn, yollo::matmul_nt(ge, wn->data));
        if (wn->requires_grad) feed(wn, yollo::matmul_tn(xn->data, ge));
        if (bn != nullptr && bn->requires_grad) {
          feed(bn, yollo::sum(ge, 0, /*keepdim=*/false));
        }
      },
      "linear");
}

Variable sum(const Variable& a) {
  NodePtr an = a.node();
  const Shape in_shape = a.shape();
  return Variable::make_op(
      yollo::sum(a.value()), {a},
      [an, in_shape](const Tensor& g) {
        feed(an, Tensor::full(in_shape, g.item()));
      },
      "sum");
}

Variable sum(const Variable& a, int64_t axis, bool keepdim) {
  NodePtr an = a.node();
  const Shape in_shape = a.shape();
  const int64_t ax = normalize_axis(axis, a.ndim());
  Tensor out = yollo::sum(a.value(), ax, keepdim);
  if (sink()) sink()->on_sum_axis(a.value(), ax, keepdim, out);
  return Variable::make_op(
      std::move(out), {a},
      [an, in_shape, ax, keepdim](const Tensor& g) {
        if (!an->requires_grad) return;
        Tensor gk = g;
        if (!keepdim) {
          Shape kshape = in_shape;
          kshape[static_cast<size_t>(ax)] = 1;
          gk = g.reshape(kshape);
        }
        feed(an, gk.broadcast_to(in_shape));
      },
      "sum_axis");
}

Variable mean(const Variable& a) {
  const float inv = 1.0f / static_cast<float>(std::max<int64_t>(a.numel(), 1));
  return mul_scalar(sum(a), inv);
}

Variable mean(const Variable& a, int64_t axis, bool keepdim) {
  const int64_t ax = normalize_axis(axis, a.ndim());
  const float inv = 1.0f / static_cast<float>(a.size(ax));
  return mul_scalar(sum(a, ax, keepdim), inv);
}

Variable softmax(const Variable& a, int64_t axis) {
  NodePtr an = a.node();
  const int64_t ax = normalize_axis(axis, a.ndim());
  Tensor y = yollo::softmax(a.value(), ax);
  if (sink()) sink()->on_softmax(a.value(), ax, y);
  return Variable::make_op(
      y, {a},
      [an, y, ax](const Tensor& g) {
        if (!an->requires_grad) return;
        // dx = y * (g - sum(g * y, axis, keepdim))
        Tensor gy = yollo::mul(g, y);
        Tensor s = yollo::sum(gy, ax, /*keepdim=*/true);
        feed(an, yollo::mul(y, yollo::sub(g, s.broadcast_to(g.shape()))));
      },
      "softmax");
}

Variable log_softmax(const Variable& a, int64_t axis) {
  NodePtr an = a.node();
  const int64_t ax = normalize_axis(axis, a.ndim());
  Tensor y = yollo::log_softmax(a.value(), ax);
  return Variable::make_op(
      y, {a},
      [an, y, ax](const Tensor& g) {
        if (!an->requires_grad) return;
        // dx = g - softmax(x) * sum(g, axis, keepdim)
        Tensor sm = yollo::exp(y);
        Tensor s = yollo::sum(g, ax, /*keepdim=*/true);
        feed(an, yollo::sub(g, yollo::mul(sm, s.broadcast_to(g.shape()))));
      },
      "log_softmax");
}

Variable smooth_l1(const Variable& pred, const Tensor& target) {
  if (pred.shape() != target.shape()) {
    throw std::invalid_argument("smooth_l1: shape mismatch " +
                                shape_to_string(pred.shape()) + " vs " +
                                shape_to_string(target.shape()));
  }
  NodePtr pn = pred.node();
  Tensor out(Shape{});
  const float* p = pred.value().data();
  const float* t = target.data();
  double acc = 0.0;
  for (int64_t i = 0; i < pred.numel(); ++i) {
    const float d = p[i] - t[i];
    const float a = std::fabs(d);
    acc += a < 1.0f ? 0.5f * d * d : a - 0.5f;
  }
  out[0] = static_cast<float>(acc);
  return Variable::make_op(
      std::move(out), {pred},
      [pn, target](const Tensor& g) {
        if (!pn->requires_grad) return;
        const float gs = g.item();
        Tensor d(pn->data.shape());
        const float* p = pn->data.data();
        const float* t = target.data();
        float* dp = d.data();
        for (int64_t i = 0; i < d.numel(); ++i) {
          const float diff = p[i] - t[i];
          dp[i] = gs * (std::fabs(diff) < 1.0f
                            ? diff
                            : (diff > 0.0f ? 1.0f : -1.0f));
        }
        feed(pn, d);
      },
      "smooth_l1");
}

Variable bce_with_logits(const Variable& logits, const Tensor& targets) {
  if (logits.shape() != targets.shape()) {
    throw std::invalid_argument("bce_with_logits: shape mismatch");
  }
  NodePtr ln = logits.node();
  const int64_t n = logits.numel();
  Tensor out(Shape{});
  const float* x = logits.value().data();
  const float* t = targets.data();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    // Stable form: max(x,0) - x*t + log(1 + exp(-|x|)).
    acc += std::max(x[i], 0.0f) - x[i] * t[i] +
           std::log1p(std::exp(-std::fabs(x[i])));
  }
  out[0] = static_cast<float>(acc / static_cast<double>(std::max<int64_t>(n, 1)));
  return Variable::make_op(
      std::move(out), {logits},
      [ln, targets, n](const Tensor& g) {
        if (!ln->requires_grad) return;
        const float gs = g.item() / static_cast<float>(std::max<int64_t>(n, 1));
        Tensor d(ln->data.shape());
        const float* x = ln->data.data();
        const float* t = targets.data();
        float* dp = d.data();
        for (int64_t i = 0; i < n; ++i) {
          const float s = 1.0f / (1.0f + std::exp(-x[i]));
          dp[i] = gs * (s - t[i]);
        }
        feed(ln, d);
      },
      "bce_with_logits");
}

Variable conv2d(const Variable& input, const Variable& weight,
                const Variable& bias, const Conv2dSpec& spec) {
  NodePtr in = input.node(), wn = weight.node();
  NodePtr bn = bias.defined() ? bias.node() : nullptr;
  Tensor out = conv2d_forward(input.value(), weight.value(),
                              bias.defined() ? bias.value() : Tensor(), spec);
  if (sink()) {
    sink()->on_conv2d(input.value(), weight.value(),
                      bias.defined() ? bias.value() : Tensor(), spec, out);
  }
  std::vector<Variable> parents{input, weight};
  if (bias.defined()) parents.push_back(bias);
  return Variable::make_op(
      std::move(out), std::move(parents),
      [in, wn, bn, spec](const Tensor& g) {
        const Conv2dGrads grads =
            conv2d_backward(in->data, wn->data, bn != nullptr, g, spec);
        feed(in, grads.grad_input);
        feed(wn, grads.grad_weight);
        if (bn) feed(bn, grads.grad_bias);
      },
      "conv2d");
}

Variable max_pool2x2(const Variable& input) {
  NodePtr in = input.node();
  MaxPoolResult res = max_pool2x2_forward(input.value());
  const Shape in_shape = input.shape();
  return Variable::make_op(
      std::move(res.output), {input},
      [in, in_shape, argmax = std::move(res.argmax)](const Tensor& g) {
        if (!in->requires_grad) return;
        feed(in, max_pool2x2_backward(g, argmax, in_shape));
      },
      "max_pool2x2");
}

Variable global_avg_pool(const Variable& input) {
  NodePtr in = input.node();
  const Shape in_shape = input.shape();
  return Variable::make_op(
      global_avg_pool_forward(input.value()), {input},
      [in, in_shape](const Tensor& g) {
        if (!in->requires_grad) return;
        feed(in, global_avg_pool_backward(g, in_shape));
      },
      "global_avg_pool");
}

Variable dropout(const Variable& a, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  Tensor mask(a.shape());
  const float scale = 1.0f / (1.0f - p);
  float* m = mask.data();
  for (int64_t i = 0; i < mask.numel(); ++i) {
    m[i] = rng.bernoulli(p) ? 0.0f : scale;
  }
  return mul(a, Variable::constant(mask));
}

}  // namespace yollo::ag
