// Admission-time input validation for the serving layer.
//
// Requests are checked before they consume a queue slot: malformed tensors
// and garbage queries are rejected with kInvalidInput instead of reaching a
// worker, so one bad client cannot poison the model tier or waste pool
// capacity. Query validation goes through data::Vocab so the rejection
// rules match exactly what the model would see (empty after normalisation,
// or no token the vocabulary knows — an all-UNK query carries no grounding
// signal and would make the model hallucinate a box).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.h"
#include "serve/status.h"
#include "tensor/tensor.h"

namespace yollo::serve {

// The image a request must carry: a defined [3, img_h, img_w] tensor with
// every element finite (NaN/Inf pixels are a poisoned input, not a scene).
Status validate_image(const Tensor& image, int64_t img_h, int64_t img_w);

struct ValidatedQuery {
  Status status;                // kOk or kInvalidInput
  std::vector<int64_t> tokens;  // padded/truncated to max_query_len when ok
  std::string normalised;       // the query as the vocabulary understood it
  int64_t known_words = 0;
  int64_t unknown_words = 0;
};

// Tokenise, normalise, and encode `query` against `vocab`. Rejects queries
// that are empty after normalisation and queries in which every word is
// unknown to the vocabulary.
ValidatedQuery validate_query(const std::string& query,
                              const data::Vocab& vocab,
                              int64_t max_query_len);

}  // namespace yollo::serve
