#include "serve/feature_cache.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "serve/router.h"
#include "tensor/pool.h"

namespace yollo::serve {

namespace {
// Distinct seed from the router's locality hash so a cache key can never
// collide with a ring position by construction.
constexpr uint64_t kImageSeed = 0xfeedfacecafebeefull;

uint64_t mix64(uint64_t x) {
  // splitmix64 finaliser — same avalanche the ring uses.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

FeatureCache::FeatureCache(obs::MetricsRegistry& metrics, int64_t budget_bytes)
    : budget_bytes_(budget_bytes),
      c_hits_(metrics.counter("serve.cache_hits")),
      c_misses_(metrics.counter("serve.cache_misses")),
      c_evictions_(metrics.counter("serve.cache_evictions")),
      g_bytes_(metrics.gauge("serve.cache_bytes")) {}

uint64_t FeatureCache::hash_image(const Tensor& image) {
  if (!image.defined() || image.numel() == 0) return mix64(kImageSeed);
  return HashRing::hash_bytes(
      image.data(), static_cast<size_t>(image.numel()) * sizeof(float),
      kImageSeed ^ static_cast<uint64_t>(image.numel()));
}

uint64_t FeatureCache::make_key(uint64_t image_hash,
                                uint64_t weights_generation) const {
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_;
  }
  // Mix, don't xor-concatenate: generation and epoch are small integers and
  // a plain xor would put every reload one bit-flip away from the previous
  // key space.
  return mix64(image_hash ^ mix64(weights_generation) ^ mix64(~epoch));
}

Tensor FeatureCache::lookup(uint64_t key) {
  if (!enabled()) return Tensor();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      c_misses_.inc();
      return Tensor();
    }
    entry = it->second;
    lru_.splice(lru_.begin(), lru_, entry->lru_pos);  // touch
    c_hits_.inc();
  }
  // The shared_ptr<Entry> owner pins the buffer: even if another worker
  // evicts this key before the caller finishes the forward, the view stays
  // valid and the memory is freed when the last view drops.
  return Tensor::from_external(entry->shape, entry->data.data(), entry);
}

bool FeatureCache::insert(uint64_t key, const Tensor& features) {
  if (!enabled() || !features.defined() || features.numel() == 0) return false;
  const int64_t bytes =
      features.numel() * static_cast<int64_t>(sizeof(float));
  if (bytes > budget_bytes_) return false;  // could never fit

  // A poisoned forward must not be immortalised: a cached non-finite map
  // would turn one transient fault into a permanent one for this image.
  const float* src = features.data();
  for (int64_t i = 0; i < features.numel(); ++i) {
    if (!std::isfinite(src[i])) return false;
  }

  auto entry = std::make_shared<Entry>();
  entry->shape = features.shape();
  entry->bytes = bytes;
  entry->data.assign(src, src + features.numel());

  // Charge the inserting worker's pool budget for the copy. Outside any
  // PoolScope the handle is null (nothing to charge against); a refused
  // charge degrades to uncached — the entry is simply dropped.
  try {
    entry->charge = detail::charge_external_bytes(bytes);
  } catch (const PoolBudgetExceeded&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++budget_refused_;
    return false;
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(key); it != entries_.end()) {
    // Somebody else cached this image while we were copying; theirs is as
    // good as ours (content-addressed), keep it and drop the duplicate.
    lru_.splice(lru_.begin(), lru_, it->second->lru_pos);
    return true;
  }
  while (bytes_ + bytes > budget_bytes_ && !lru_.empty()) evict_one_locked();
  lru_.push_front(key);
  entry->lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  bytes_ += bytes;
  g_bytes_.set(static_cast<double>(bytes_));
  return true;
}

void FeatureCache::invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  // Entries with outstanding lookup views stay alive through their
  // shared_ptr owners; everything else frees (and releases its pool charge)
  // here.
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  ++epoch_;
  ++invalidations_;
  g_bytes_.set(0.0);
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.entries = static_cast<int64_t>(entries_.size());
  s.bytes = bytes_;
  s.hits = static_cast<int64_t>(c_hits_.value());
  s.misses = static_cast<int64_t>(c_misses_.value());
  s.evictions = static_cast<int64_t>(c_evictions_.value());
  s.budget_refused = budget_refused_;
  s.invalidations = invalidations_;
  return s;
}

void FeatureCache::evict_one_locked() {
  const uint64_t victim = lru_.back();
  lru_.pop_back();
  auto it = entries_.find(victim);
  if (it != entries_.end()) {
    bytes_ -= it->second->bytes;
    entries_.erase(it);
    c_evictions_.inc();
  }
  g_bytes_.set(static_cast<double>(bytes_));
}

}  // namespace yollo::serve
