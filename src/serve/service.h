// Hardened concurrent inference service around YolloModel.
//
// The paper's pitch is real-time grounding (Table 5); the ROADMAP's is a
// system that serves heavy traffic. This subsystem supplies the part speed
// alone does not: predictable behaviour under overload, bad input, and
// partial failure. Requests flow through
//
//   submit() ── admission ──> bounded queue ──> worker pool ──> response
//      │  input validation        │                 │
//      │  deadline check          │  deadline check │ model tier (replica,
//      │  capacity check          │  at dequeue     │  retry on fault)
//      └─ typed rejection         │                 │ deadline check
//         (never an exception)    │                 │ baseline fallback tier
//                                 │                 └─> kOk / kDegraded /
//                                 │                     typed error
//
// Guarantees (DESIGN.md §8):
//   - the admission queue is bounded: when full, submit() rejects with
//     kOverloaded instead of growing without bound;
//   - every request carries an optional deadline, checked at enqueue, at
//     dequeue, and between pipeline stages — an expired request is answered
//     kDeadlineExceeded, never silently dropped;
//   - the model tier runs on per-worker replicas (no shared mutable tensor
//     state between threads) through the exception-free
//     YolloModel::infer(); a fault or non-finite forward is retried up to
//     max_retries times, then the request falls back to the two-stage
//     baseline tier and is answered kDegraded;
//   - a circuit breaker trips after breaker_threshold consecutive model
//     failures and routes requests straight to the baseline tier for
//     breaker_cooldown requests before probing the model again;
//   - every submitted request is answered exactly once, including during
//     shutdown (stop() drains the queue; nothing hangs).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/matcher.h"
#include "core/yollo.h"
#include "data/vocab.h"
#include "obs/metrics.h"
#include "serve/status.h"
#include "serve/validation.h"

namespace yollo::runtime {
class FaultInjector;
}  // namespace yollo::runtime

namespace yollo::serve {

struct ServeConfig {
  int64_t num_workers = 4;
  int64_t queue_capacity = 32;
  // Micro-batching: a worker coalesces up to this many already-queued
  // compatible requests into one batched forward. Never waits for a batch
  // to fill — under light load this degenerates to single-image serving;
  // under backlog the per-op fixed costs amortise across the batch.
  // Per-request deadlines and per-element finiteness/clipping checks are
  // preserved: a poisoned element degrades only that request. 1 disables.
  // Coalescing is deadline-aware: when the oldest queued request's deadline
  // slack is below the observed model-stage p95, it runs solo instead of
  // being serialised into a batched forward behind strangers (a batch of k
  // is slower than a batch of 1, and the near-deadline request pays that
  // difference with budget it does not have).
  int64_t batch_max = 4;
  // Deadline applied to requests that do not carry their own (deadline_ms
  // < 0). <= 0 disables the default deadline.
  int64_t default_deadline_ms = 0;
  // Model-tier retries after a faulted or non-finite forward before the
  // request degrades to the baseline tier.
  int64_t max_retries = 1;
  // Circuit breaker: after this many consecutive model-tier failures the
  // model is skipped entirely...
  int64_t breaker_threshold = 3;
  // ...for this many requests (counted, not timed, so tests are
  // deterministic), after which one request probes the model again.
  int64_t breaker_cooldown = 8;
  // Seed for constructing the per-worker replicas.
  uint64_t seed = 1234;
  // Optional scoped fault injector for this service's worker threads (must
  // outlive the service). null keeps the process-wide env-driven injector —
  // the default, so single-service deployments and existing tests are
  // untouched. A sharded front-end gives each shard its own instance so
  // chaos can hit one replica set without touching the others.
  runtime::FaultInjector* fault_injector = nullptr;
};

struct GroundRequest {
  Tensor image;       // [3, img_h, img_w] matching the model's config
  std::string query;  // free text; normalised through the service vocab
  // Relative deadline in milliseconds: < 0 uses the ServeConfig default,
  // 0 disables, > 0 counts from submit().
  int64_t deadline_ms = -1;
  // Absolute deadline (steady clock); overrides deadline_ms when set.
  // Requests whose deadline has already passed are rejected at enqueue.
  std::chrono::steady_clock::time_point deadline_at{};
};

struct GroundResponse {
  Status status;
  vision::Box box;  // valid when status.answered(); clipped to the image
  std::string normalised_query;
  int64_t retries = 0;      // model-tier retries this request consumed
  double latency_ms = 0.0;  // submit() to completion
};

// Monotonic per-service counters. Invariant once all submitted futures have
// resolved:  served + rejected + deadline_exceeded + failed == submitted.
// The authoritative store is the service's obs::MetricsRegistry (names
// "serve.*"); this struct is the flat view derived from one snapshot.
struct ServiceCounters {
  int64_t submitted = 0;
  int64_t served = 0;    // answered: kOk + kDegraded
  int64_t degraded = 0;  // subset of served answered by the baseline tier
  int64_t rejected = 0;  // admission rejections (invalid + overloaded)
  int64_t rejected_invalid = 0;     // subset of rejected
  int64_t rejected_overloaded = 0;  // subset of rejected
  int64_t deadline_exceeded = 0;
  int64_t failed = 0;  // kInternalError responses
  int64_t retries = 0;
  int64_t breaker_trips = 0;
  int64_t queue_high_water = 0;  // deepest the admission queue has been
  // Micro-batching visibility (no effect on the accounting invariant).
  int64_t batches_coalesced = 0;  // coalesced (>= 2 requests) forwards
  int64_t batched_requests = 0;   // requests that rode a coalesced forward
  int64_t max_batch = 0;          // largest coalesced batch so far
};

struct HealthSnapshot {
  bool accepting = false;
  bool breaker_open = false;
  int64_t queue_depth = 0;
  int64_t workers = 0;
  ServiceCounters counters;
};

class InferenceService {
 public:
  // `model` is copied into num_workers eval-mode replicas; the source is
  // not referenced after construction. `fallback` (optional) is the
  // baseline proposer+matcher tier used for degraded answers; it is shared
  // and internally serialised (degradation is the rare path). When several
  // services share one fallback pipeline (a sharded front-end), pass the
  // same `fallback_mutex` to all of them so the serialisation spans every
  // sharer; null uses a service-private mutex. `vocab` must outlive the
  // service.
  InferenceService(core::YolloModel& model, const data::Vocab& vocab,
                   const ServeConfig& config,
                   baseline::TwoStagePipeline* fallback = nullptr,
                   std::mutex* fallback_mutex = nullptr);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  // Admission: validate, stamp the deadline, enqueue. The returned future
  // always resolves — with a typed error Status on rejection (immediately)
  // or the worker pool's answer. Never throws on bad input or overload.
  std::future<GroundResponse> submit(GroundRequest request);

  // submit() + wait.
  GroundResponse ground(GroundRequest request);

  // Stop admission, drain the queue (every pending request is answered),
  // join the workers. Idempotent; also called by the destructor.
  void stop();

  // Drain/probe hooks for a sharded front-end. pause_admission() closes the
  // door (new submissions are typed kOverloaded) while the workers keep
  // draining — queued work is still answered, never dropped. After the
  // drain, resume_admission() reopens it; returns false once the service
  // has been stop()ped for good (a dead shard cannot be probed back in).
  void pause_admission();
  bool resume_admission();

  // All three read the same coherent registry snapshot, taken under the
  // service lock that every counter update holds — the accounting invariant
  // can never be observed mid-update (e.g. submitted incremented but the
  // terminal counter not yet).
  ServiceCounters counters() const;
  HealthSnapshot health() const;
  obs::MetricsSnapshot metrics_snapshot() const;

  // Live p95 of end-to-end request latency (ms) from the service histogram
  // — lock-free; the router's hedging policy reads this at high frequency.
  // 0 until the first request completes.
  double latency_p95_ms() const;

  const ServeConfig& config() const { return config_; }
  const core::YolloConfig& model_config() const { return model_config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Tensor image;  // [3, H, W]
    std::vector<int64_t> tokens;
    std::string normalised_query;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  // Clock::time_point::max() == none
    std::promise<GroundResponse> promise;
  };

  void worker_loop(int64_t worker_id);
  // One dequeue round: deadline checks, breaker accounting, then either the
  // single-image path or a coalesced batched forward for `batch`.
  void process_batch(core::YolloModel& replica, std::vector<Job>& batch);
  // Full single-request pipeline: model tier (retries) then fallback tier;
  // always finishes the job. Also the salvage path for an element that
  // failed inside a coalesced forward.
  void run_single(core::YolloModel& replica, Job& job);
  // One batched forward over >= 2 jobs with per-element failure isolation:
  // healthy elements are answered from the batch, poisoned ones are retried
  // and degraded individually.
  void run_batched_model_tier(core::YolloModel& replica,
                              const std::vector<Job*>& jobs);
  // Model tier for one job on this worker's replica: deadline-checked
  // attempts with retry. Returns true when `response` is final (answered or
  // deadline); false when the tier failed and the job should degrade.
  bool run_model_tier(core::YolloModel& replica, Job& job,
                      GroundResponse& response);
  // Baseline tier; always produces a final response (kDegraded or error).
  void run_fallback_tier(Job& job, const std::string& reason,
                         GroundResponse& response);
  // Fulfil the job's promise and account the response.
  void finish(Job& job, GroundResponse response);
  // Classify a terminal response into the counter taxonomy.
  void record(const GroundResponse& response);

  static Clock::time_point resolve_deadline(const GroundRequest& request,
                                            int64_t default_ms,
                                            Clock::time_point now);

  ServeConfig config_;
  core::YolloConfig model_config_;
  const data::Vocab* vocab_;
  baseline::TwoStagePipeline* fallback_;
  std::vector<std::unique_ptr<core::YolloModel>> replicas_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;  // queue, lifecycle, counters, breaker
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool stopping_ = false;

  // Per-service registry (isolated accounting: each service in a test
  // binary owns its own counters) plus cached references for the hot path.
  // The taxonomy counters are only ever updated under mutex_ — that is what
  // makes snapshot-under-lock coherent; the latency/depth histograms are
  // observability-only and may be observed off-lock.
  obs::MetricsRegistry metrics_;
  obs::Counter& c_submitted_;
  obs::Counter& c_served_;
  obs::Counter& c_degraded_;
  obs::Counter& c_rejected_;
  obs::Counter& c_rejected_invalid_;
  obs::Counter& c_rejected_overloaded_;
  obs::Counter& c_deadline_exceeded_;
  obs::Counter& c_failed_;
  obs::Counter& c_retries_;
  obs::Counter& c_breaker_trips_;
  obs::Counter& c_batches_coalesced_;
  obs::Counter& c_batched_requests_;
  obs::Gauge& g_queue_high_water_;
  obs::Gauge& g_max_batch_;
  obs::Histogram& h_queue_depth_;
  obs::Histogram& h_queue_wait_ms_;
  obs::Histogram& h_model_ms_;
  obs::Histogram& h_latency_ms_;

  // Circuit breaker (guarded by mutex_). consecutive_failures_ is not reset
  // when the breaker trips, so a failed probe after cooldown re-trips
  // immediately (classic half-open behaviour).
  int64_t consecutive_failures_ = 0;
  int64_t breaker_cooldown_left_ = 0;  // > 0 == open

  std::mutex fallback_mutex_;   // serialises the shared baseline tier...
  std::mutex* fallback_lock_;   // ...or a caller-shared mutex spanning shards
};

// Flatten a service metrics snapshot ("serve.*" names) into the legacy
// counter struct. Derived from ONE snapshot, so the accounting invariant
// holds for the returned struct whenever it held for the snapshot.
ServiceCounters counters_from_snapshot(const obs::MetricsSnapshot& snapshot);

}  // namespace yollo::serve
