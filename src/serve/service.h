// Hardened concurrent inference service around YolloModel.
//
// The paper's pitch is real-time grounding (Table 5); the ROADMAP's is a
// system that serves heavy traffic. This subsystem supplies the part speed
// alone does not: predictable behaviour under overload, bad input, and
// partial failure. Requests flow through
//
//   submit() ── admission ──> bounded queue ──> worker pool ──> response
//      │  input validation        │                 │
//      │  deadline check          │  deadline check │ model tier (replica,
//      │  capacity check          │  at dequeue     │  retry on fault)
//      └─ typed rejection         │                 │ deadline check
//         (never an exception)    │                 │ baseline fallback tier
//                                 │                 └─> kOk / kDegraded /
//                                 │                     typed error
//
// Guarantees (DESIGN.md §8):
//   - the admission queue is bounded: when full, submit() rejects with
//     kOverloaded instead of growing without bound;
//   - every request carries an optional deadline, checked at enqueue, at
//     dequeue, and between pipeline stages — an expired request is answered
//     kDeadlineExceeded, never silently dropped;
//   - the model tier runs on per-worker replicas (no shared mutable tensor
//     state between threads) through the exception-free
//     YolloModel::infer(); a fault or non-finite forward is retried up to
//     max_retries times, then the request falls back to the two-stage
//     baseline tier and is answered kDegraded;
//   - a circuit breaker trips after breaker_threshold consecutive model
//     failures and routes requests straight to the baseline tier for
//     breaker_cooldown requests before probing the model again;
//   - every submitted request is answered exactly once, including during
//     shutdown (stop() drains the queue; nothing hangs).
//
// Supervision (DESIGN.md §13): each worker owns an ExecContext armed with
// the request deadline before every forward attempt, so an expired
// deadline or an external cancel (client CancelToken, hedge-loser reap,
// watchdog kick) aborts the forward *in flight* at the next kernel
// checkpoint instead of after a full pass. A watchdog thread compares
// per-worker heartbeats between polls: a busy worker making no progress
// is kicked (cancelled); one still stuck past a grace period is declared
// lost — its requests fail as kInternalError, a replacement replica is
// spawned, and the accounting invariant is preserved. Workers may also
// carry a storage-pool byte budget: a forward refused by it degrades to
// the baseline tier instead of OOMing the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/matcher.h"
#include "core/yollo.h"
#include "data/vocab.h"
#include "obs/metrics.h"
#include "serve/feature_cache.h"
#include "serve/status.h"
#include "serve/validation.h"
#include "tensor/exec.h"

namespace yollo::runtime {
class FaultInjector;
}  // namespace yollo::runtime

namespace yollo::serve {

// Client-side cancellation handle. Share one with a GroundRequest, then
// call cancel() from any thread to abort the request mid-flight: queued
// requests are answered kCancelled at dequeue, an in-flight forward is
// cancelled at its next kernel checkpoint. Best-effort — a request that
// already completed is unaffected. The token pins the worker's ExecContext
// generation at attach time, so a late cancel can never hit the worker's
// next request.
class CancelToken {
 public:
  void cancel();
  bool requested() const;

 private:
  friend class InferenceService;
  // Bind/unbind the worker context executing this request. attach()
  // applies a pre-attach cancel() immediately and reports it.
  bool attach(ExecContext* ctx, uint64_t generation);
  void detach();

  mutable std::mutex mu_;
  bool requested_ = false;
  ExecContext* ctx_ = nullptr;
  uint64_t generation_ = 0;
};

struct ServeConfig {
  int64_t num_workers = 4;
  int64_t queue_capacity = 32;
  // Continuous batching (DESIGN.md §15): a worker coalesces up to this many
  // already-queued compatible requests into one batched forward. Never
  // waits for a batch to fill — under light load this degenerates to
  // single-image serving; under backlog the per-op fixed costs amortise
  // across the batch. Per-request deadlines and per-element
  // finiteness/clipping checks are preserved: a poisoned element degrades
  // only that request. 1 disables.
  // Formation is slack-aware: the front request always dispatches, and a
  // follower joins only while every rider's deadline slack covers the
  // predicted cost of the grown batch (live per-batch-size cost EWMAs,
  // seeded from the model-stage p95) with margin — so a near-deadline
  // request runs solo instead of being serialised into a batched forward
  // behind strangers whose batch tax it cannot afford.
  int64_t batch_max = 4;
  // Adaptive batch-size target: the formation cap starts at batch_max,
  // shrinks when a batched forward misses a rider's deadline or its cost
  // EWMA goes superlinear versus solo forwards (p95 pressure), and grows
  // back one step at a time while the queue stays deeper than twice the
  // target. false — or YOLLO_BATCH_ADAPTIVE=0 at construction — pins the
  // target at batch_max (slack-aware formation still applies).
  bool adaptive_batching = true;
  // Content-addressed backbone feature cache budget in MiB (see
  // serve/feature_cache.h): a request whose image bytes were seen before
  // skips the backbone and runs only the query-dependent half. -1 reads
  // YOLLO_FEATURE_CACHE_MB at construction; <= 0 disables (the default —
  // deployments that never repeat images pay nothing).
  int64_t feature_cache_mb = -1;
  // Deadline applied to requests that do not carry their own (deadline_ms
  // < 0). <= 0 disables the default deadline.
  int64_t default_deadline_ms = 0;
  // Model-tier retries after a faulted or non-finite forward before the
  // request degrades to the baseline tier.
  int64_t max_retries = 1;
  // Circuit breaker: after this many consecutive model-tier failures the
  // model is skipped entirely...
  int64_t breaker_threshold = 3;
  // ...for this many requests (counted, not timed, so tests are
  // deterministic), after which one request probes the model again.
  int64_t breaker_cooldown = 8;
  // Seed for constructing the per-worker replicas.
  uint64_t seed = 1234;
  // Cooperative cancellation: arm each worker's ExecContext with the
  // request deadline per forward attempt so deadlines/cancels abort the
  // forward in flight. Off restores the PR-2 observe-only deadline
  // behaviour (and disables the watchdog, which needs heartbeats).
  bool enable_cancellation = true;
  // Compile static forward plans (DESIGN.md §14) for every batch size up to
  // batch_max before the worker takes its first request, so no request pays
  // the record+compile cost. Charges the worker's pool budget; a refused
  // arena just leaves that batch size on the dynamic path. No-op when
  // YOLLO_PLAN=0.
  bool warm_plans = true;
  // Watchdog poll interval in ms. -1 reads YOLLO_WATCHDOG_MS at
  // construction; <= 0 disables the watchdog (the default when the env is
  // unset).
  int64_t watchdog_interval_ms = -1;
  // Polls with zero heartbeat progress on a busy worker before it is
  // kicked (its context cancelled), and further zero-progress polls after
  // the kick before it is declared lost and replaced.
  int64_t watchdog_stall_intervals = 2;
  int64_t watchdog_grace_intervals = 3;
  // Per-worker storage-pool byte budget in MiB. -1 reads
  // YOLLO_POOL_BUDGET_MB at construction; <= 0 disables (the default). A
  // forward refused by the budget is retried after trimming the pool,
  // then degraded to the baseline tier (kResourceExhausted if even that
  // cannot answer).
  int64_t pool_budget_mb = -1;
  // Optional scoped fault injector for this service's worker threads (must
  // outlive the service). null keeps the process-wide env-driven injector —
  // the default, so single-service deployments and existing tests are
  // untouched. A sharded front-end gives each shard its own instance so
  // chaos can hit one replica set without touching the others.
  runtime::FaultInjector* fault_injector = nullptr;
};

struct GroundRequest {
  Tensor image;       // [3, img_h, img_w] matching the model's config
  std::string query;  // free text; normalised through the service vocab
  // Relative deadline in milliseconds: < 0 uses the ServeConfig default,
  // 0 disables, > 0 counts from submit().
  int64_t deadline_ms = -1;
  // Absolute deadline (steady clock); overrides deadline_ms when set.
  // Requests whose deadline has already passed are rejected at enqueue.
  std::chrono::steady_clock::time_point deadline_at{};
  // Optional cancellation handle (see CancelToken). null = not cancellable.
  std::shared_ptr<CancelToken> cancel;
};

struct GroundResponse {
  Status status;
  vision::Box box;  // valid when status.answered(); clipped to the image
  std::string normalised_query;
  int64_t retries = 0;      // model-tier retries this request consumed
  double latency_ms = 0.0;  // submit() to completion
};

// Monotonic per-service counters. Invariant once all submitted futures
// have resolved:
//   served + rejected + deadline_exceeded + failed + cancelled == submitted
// (cancelled is 0 unless CancelTokens or the watchdog fire, so the
// original four-term form still holds in those runs). The authoritative
// store is the service's obs::MetricsRegistry (names "serve.*"); this
// struct is the flat view derived from one snapshot.
struct ServiceCounters {
  int64_t submitted = 0;
  int64_t served = 0;    // answered: kOk + kDegraded
  int64_t degraded = 0;  // subset of served answered by the baseline tier
  int64_t rejected = 0;  // admission rejections (invalid + overloaded)
  int64_t rejected_invalid = 0;     // subset of rejected
  int64_t rejected_overloaded = 0;  // subset of rejected
  int64_t rejected_resource = 0;    // subset of rejected (pool budget, no
                                    // fallback answer)
  int64_t deadline_exceeded = 0;
  int64_t failed = 0;     // kInternalError responses
  int64_t cancelled = 0;  // kCancelled responses (token / watchdog kick)
  int64_t retries = 0;
  int64_t breaker_trips = 0;
  // Supervision visibility (no effect on the accounting invariant).
  int64_t watchdog_kicks = 0;    // busy-but-stalled workers cancelled
  int64_t workers_lost = 0;      // workers declared lost and detached
  int64_t workers_spawned = 0;   // replacement workers brought up
  int64_t pool_rejected = 0;     // forwards refused by the pool budget
                                 // (including ones that then succeeded on
                                 // retry or degraded)
  int64_t queue_high_water = 0;  // deepest the admission queue has been
  // Micro-batching visibility (no effect on the accounting invariant).
  int64_t batches_coalesced = 0;  // coalesced (>= 2 requests) forwards
  int64_t batched_requests = 0;   // requests that rode a coalesced forward
  int64_t max_batch = 0;          // largest coalesced batch so far
  // Continuous-batching scheduler visibility (no effect on the invariant).
  int64_t solo_dispatches = 0;  // slack-forced solo runs with company queued
  int64_t sched_shrinks = 0;    // adaptive target steps down (p95 pressure)
  int64_t sched_grows = 0;      // adaptive target steps back up (deep queue)
  int64_t batch_target = 0;     // current adaptive formation cap (gauge)
  int64_t workers_warmed = 0;   // workers past plan warm-up (gauge)
  // Feature-cache visibility (no effect on the invariant).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  int64_t cache_bytes = 0;  // resident feature bytes (gauge)
};

struct HealthSnapshot {
  bool accepting = false;
  bool breaker_open = false;
  int64_t queue_depth = 0;
  int64_t workers = 0;
  ServiceCounters counters;
};

class InferenceService {
 public:
  // `model` is copied into num_workers eval-mode replicas; the source is
  // not referenced after construction. `fallback` (optional) is the
  // baseline proposer+matcher tier used for degraded answers; it is shared
  // and internally serialised (degradation is the rare path). When several
  // services share one fallback pipeline (a sharded front-end), pass the
  // same `fallback_mutex` to all of them so the serialisation spans every
  // sharer; null uses a service-private mutex. `vocab` must outlive the
  // service.
  InferenceService(core::YolloModel& model, const data::Vocab& vocab,
                   const ServeConfig& config,
                   baseline::TwoStagePipeline* fallback = nullptr,
                   std::mutex* fallback_mutex = nullptr);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  // Admission: validate, stamp the deadline, enqueue. The returned future
  // always resolves — with a typed error Status on rejection (immediately)
  // or the worker pool's answer. Never throws on bad input or overload.
  std::future<GroundResponse> submit(GroundRequest request);

  // submit() + wait.
  GroundResponse ground(GroundRequest request);

  // Stop admission, drain the queue (every pending request is answered),
  // join the workers. Idempotent; also called by the destructor.
  void stop();

  // Drain/probe hooks for a sharded front-end. pause_admission() closes the
  // door (new submissions are typed kOverloaded) while the workers keep
  // draining — queued work is still answered, never dropped. After the
  // drain, resume_admission() reopens it; returns false once the service
  // has been stop()ped for good (a dead shard cannot be probed back in).
  void pause_admission();
  bool resume_admission();

  // All three read the same coherent registry snapshot, taken under the
  // service lock that every counter update holds — the accounting invariant
  // can never be observed mid-update (e.g. submitted incremented but the
  // terminal counter not yet).
  ServiceCounters counters() const;
  HealthSnapshot health() const;
  obs::MetricsSnapshot metrics_snapshot() const;

  // Live p95 of end-to-end request latency (ms) from the service histogram
  // — lock-free; the router's hedging policy reads this at high frequency.
  // 0 until the first request completes.
  double latency_p95_ms() const;

  // The backbone feature cache (disabled unless feature_cache_mb > 0 or
  // YOLLO_FEATURE_CACHE_MB is set). Exposed for warm-up probes, reload
  // invalidation, and tests; thread-safe.
  FeatureCache& feature_cache() { return cache_; }

  const ServeConfig& config() const { return config_; }
  const core::YolloConfig& model_config() const { return model_config_; }

 private:
  using Clock = std::chrono::steady_clock;

  // Shared settlement state: the promise plus a claim flag, so the worker
  // and the watchdog (which may fail a wedged worker's request while that
  // worker is still stuck inside it) settle each request exactly once.
  struct JobState {
    std::promise<GroundResponse> promise;
    std::atomic<bool> settled{false};
  };

  struct Job {
    Tensor image;  // [3, H, W]
    std::vector<int64_t> tokens;
    std::string normalised_query;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  // Clock::time_point::max() == none
    std::shared_ptr<CancelToken> cancel;  // null = not cancellable
    std::shared_ptr<JobState> state;
    // Content hash of `image` (FeatureCache::hash_image), computed once at
    // admission so workers never re-scan the pixels. 0 when the cache is
    // disabled.
    uint64_t image_hash = 0;
  };

  // One job's resolved cache state, threaded through the pipeline so a
  // request is looked up at most once no matter how it is routed (solo,
  // batched hit group, batched miss group, salvage). `features` defined ==
  // hit (a pinned [C, grid_h, grid_w] view); probed with undefined
  // features == known miss, insert under `key` after a healthy full-path
  // forward.
  struct CacheProbe {
    // Explicit constructor (not NSDMIs): this type appears as a defaulted
    // argument of enclosing-class members, where GCC requires the default
    // member initializers to be complete before the class closes.
    CacheProbe() : probed(false), key(0) {}
    bool probed;
    uint64_t key;
    Tensor features;
  };

  // One worker slot: thread + replica + supervision state. Slots are
  // heap-stable (vector of unique_ptr) because worker threads and the
  // watchdog hold raw pointers across mutex_ sections. A lost slot keeps
  // its thread joinable — the wedged thread eventually finishes its
  // bounded stall, observes `lost`, and exits; stop() joins it.
  struct Worker {
    std::thread thread;
    std::unique_ptr<core::YolloModel> replica;
    ExecContext ctx;
    std::atomic<bool> busy{false};
    std::atomic<bool> lost{false};
    // Requests currently held by this worker, registered so the watchdog
    // can fail them if the worker is declared lost. Guarded by mu (never
    // held together with mutex_).
    std::mutex mu;
    std::vector<std::shared_ptr<JobState>> active;
    std::vector<std::string> active_queries;
    // Watchdog bookkeeping (touched only by the watchdog thread).
    uint64_t last_heartbeats = 0;
    uint64_t last_generation = 0;
    int64_t stalled_polls = 0;
    bool kicked = false;
  };

  void worker_loop(Worker* self);
  void watchdog_loop();
  // Declare `worker` lost: fail its registered requests as kInternalError,
  // then spawn a replacement slot (unless the service is stopping).
  void reap_worker(Worker* worker);
  // One dequeue round: deadline/cancel checks, breaker accounting, then
  // either the single-image path or a coalesced batched forward.
  void process_batch(Worker& self, std::vector<Job>& batch);
  // Full single-request pipeline: model tier (retries) then fallback tier;
  // always finishes the job. Also the salvage path for an element that
  // failed inside a coalesced forward.
  void run_single(Worker& self, Job& job, CacheProbe probe = CacheProbe());
  // Batched dispatch for >= 2 jobs: partitions into a cache-hit group
  // (batched fuse-only forward over the pinned features) and a miss group
  // (full batched forward, features captured and inserted per healthy
  // element); groups of one fall through to run_single with their probe.
  void run_batched_model_tier(Worker& self, const std::vector<Job*>& jobs);
  // One batched forward over >= 2 jobs of the same cache disposition, with
  // per-element failure isolation: healthy elements are answered from the
  // batch, poisoned ones are retried and degraded individually.
  void run_batch_group(Worker& self, const std::vector<Job*>& jobs,
                       std::vector<CacheProbe> probes, bool cached_path);
  // Model tier for one job on this worker's replica: deadline-checked,
  // cancellation-armed attempts with retry. The first attempt rides the
  // feature cache when `probe` (or a fresh lookup) hits; failures retry on
  // the full path. Returns true when `response` is final (answered,
  // deadline, or cancelled); false when the tier failed and the job should
  // degrade.
  bool run_model_tier(Worker& self, Job& job, GroundResponse& response,
                      CacheProbe probe = CacheProbe());
  // Baseline tier; always produces a final response (kDegraded or error).
  void run_fallback_tier(Worker& self, Job& job, const std::string& reason,
                         GroundResponse& response);
  // Fulfil the job's promise and account the response (no-op when the
  // watchdog already settled it).
  void finish(Job& job, GroundResponse response);
  // Settle an arbitrary JobState exactly once (reap path).
  void settle(JobState& state, GroundResponse response);
  // Classify a terminal response into the counter taxonomy.
  void record(const GroundResponse& response);
  // Map a cancelled forward outcome to its terminal status and observe the
  // cancel->observed latency histogram.
  Status map_cancelled(Worker& self);

  // --- continuous-batching scheduler (all under mutex_) --------------------
  // Predicted wall cost (ms) of a batched forward of size k: the live
  // per-size EWMA when known, the nearest known size scaled linearly
  // otherwise, and the model-stage p95 as the cold-start seed (0 until the
  // first forward completes, so a cold service batches exactly as greedily
  // as the legacy scheduler did).
  double predicted_cost_locked(int64_t k) const;
  // Feed one completed forward into the cost model and apply the shrink
  // rule: a batched forward that missed a rider's deadline, or whose cost
  // EWMA went superlinear versus solo forwards, steps the target down.
  void note_batch_outcome(int64_t k, double forward_ms, bool deadline_missed);
  // Applied at formation time: step the target back up when the queue has
  // stayed deep and recent forwards have been clean.
  void maybe_grow_target_locked();

  static Clock::time_point resolve_deadline(const GroundRequest& request,
                                            int64_t default_ms,
                                            Clock::time_point now);

  ServeConfig config_;
  core::YolloConfig model_config_;
  const data::Vocab* vocab_;
  baseline::TwoStagePipeline* fallback_;
  // Pristine eval-mode copy used to stamp out replacement replicas: an
  // in-use replica cannot be copied safely (its train/eval flags flip
  // under EvalModeGuard on another thread), this one never runs.
  std::unique_ptr<core::YolloModel> master_replica_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread watchdog_;

  mutable std::mutex mutex_;  // queue, lifecycle, counters, breaker
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool accepting_ = true;
  bool stopping_ = false;

  // Per-service registry (isolated accounting: each service in a test
  // binary owns its own counters) plus cached references for the hot path.
  // The taxonomy counters are only ever updated under mutex_ — that is what
  // makes snapshot-under-lock coherent; the latency/depth histograms are
  // observability-only and may be observed off-lock.
  obs::MetricsRegistry metrics_;
  obs::Counter& c_submitted_;
  obs::Counter& c_served_;
  obs::Counter& c_degraded_;
  obs::Counter& c_rejected_;
  obs::Counter& c_rejected_invalid_;
  obs::Counter& c_rejected_overloaded_;
  obs::Counter& c_rejected_resource_;
  obs::Counter& c_deadline_exceeded_;
  obs::Counter& c_failed_;
  obs::Counter& c_cancelled_;
  obs::Counter& c_retries_;
  obs::Counter& c_breaker_trips_;
  obs::Counter& c_batches_coalesced_;
  obs::Counter& c_batched_requests_;
  obs::Counter& c_watchdog_kicks_;
  obs::Counter& c_workers_lost_;
  obs::Counter& c_workers_spawned_;
  obs::Counter& c_pool_rejected_;
  obs::Counter& c_solo_dispatches_;
  obs::Counter& c_sched_shrinks_;
  obs::Counter& c_sched_grows_;
  obs::Gauge& g_queue_high_water_;
  obs::Gauge& g_max_batch_;
  obs::Gauge& g_batch_target_;
  obs::Gauge& g_workers_warmed_;
  obs::Histogram& h_queue_depth_;
  obs::Histogram& h_queue_wait_ms_;
  obs::Histogram& h_model_ms_;
  obs::Histogram& h_latency_ms_;
  // Cancel signal -> first checkpoint that observed it, in ms: the
  // "worker freed within one checkpoint interval" claim, measured.
  obs::Histogram& h_cancel_latency_ms_;
  // Per-batch-size formation latency ("serve.formation_ms_b<k>"): age of a
  // batch's oldest rider at dispatch, indexed by the formed size k (slot 0
  // unused). Created eagerly in the constructor — registry refs are stable.
  std::vector<obs::Histogram*> formation_hists_;

  // Content-addressed backbone feature cache (registers its serve.cache_*
  // metrics in metrics_, so declared after it).
  FeatureCache cache_;

  // Continuous-batching scheduler state (guarded by mutex_).
  int64_t batch_target_ = 1;           // adaptive formation cap
  std::vector<double> batch_cost_ewma_;  // [batch_max + 1]; 0 == unknown
  int64_t forwards_since_change_ = 0;  // grow patience accumulator
  int64_t warmed_workers_ = 0;         // workers past plan warm-up

  // Watchdog lifecycle (separate mutex: the watchdog must be able to poll
  // while mutex_ is busy with queue traffic).
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  // Circuit breaker (guarded by mutex_). consecutive_failures_ is not reset
  // when the breaker trips, so a failed probe after cooldown re-trips
  // immediately (classic half-open behaviour).
  int64_t consecutive_failures_ = 0;
  int64_t breaker_cooldown_left_ = 0;  // > 0 == open

  std::mutex fallback_mutex_;   // serialises the shared baseline tier...
  std::mutex* fallback_lock_;   // ...or a caller-shared mutex spanning shards
};

// Flatten a service metrics snapshot ("serve.*" names) into the legacy
// counter struct. Derived from ONE snapshot, so the accounting invariant
// holds for the returned struct whenever it held for the snapshot.
ServiceCounters counters_from_snapshot(const obs::MetricsSnapshot& snapshot);

}  // namespace yollo::serve
