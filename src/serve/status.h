// Typed error taxonomy for the serving layer.
//
// Every request submitted to yollo::serve terminates in exactly one Status
// code — there is no exception path out of the service. The taxonomy is the
// contract clients program against (DESIGN.md §8):
//
//   kOk               answered by the full YOLLO model
//   kDegraded         answered, but by the baseline proposer+matcher tier
//                     after the model tier failed a fault/deadline check
//   kInvalidInput     rejected at admission: malformed image or query
//   kOverloaded       rejected at admission: queue full or service stopped
//   kDeadlineExceeded the request's deadline expired before an answer
//   kInternalError    the model tier failed and no fallback could answer
//   kCancelled        the request was cancelled mid-flight (client cancel
//                     token or hedge-loser reap) before an answer
//   kResourceExhausted rejected under memory pressure: the worker's storage
//                     pool budget refused the forward and no fallback could
//                     answer (DESIGN.md §13)
#pragma once

#include <string>
#include <utility>

namespace yollo::serve {

enum class StatusCode {
  kOk = 0,
  kDegraded,
  kInvalidInput,
  kOverloaded,
  kDeadlineExceeded,
  kInternalError,
  kCancelled,
  kResourceExhausted,
};

const char* status_code_name(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  // A request is answered (carries a usable box) when it is kOk or
  // kDegraded; every other code is a typed failure.
  bool ok() const { return code == StatusCode::kOk; }
  bool answered() const {
    return code == StatusCode::kOk || code == StatusCode::kDegraded;
  }

  static Status ok_status() { return Status{}; }
  static Status degraded(std::string message) {
    return Status{StatusCode::kDegraded, std::move(message)};
  }
  static Status invalid_input(std::string message) {
    return Status{StatusCode::kInvalidInput, std::move(message)};
  }
  static Status overloaded(std::string message) {
    return Status{StatusCode::kOverloaded, std::move(message)};
  }
  static Status deadline_exceeded(std::string message) {
    return Status{StatusCode::kDeadlineExceeded, std::move(message)};
  }
  static Status internal(std::string message) {
    return Status{StatusCode::kInternalError, std::move(message)};
  }
  static Status cancelled(std::string message) {
    return Status{StatusCode::kCancelled, std::move(message)};
  }
  static Status resource_exhausted(std::string message) {
    return Status{StatusCode::kResourceExhausted, std::move(message)};
  }

  std::string to_string() const;
};

// A value or a typed error, for the exception-free inference path.
template <typename T>
class Result {
 public:
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}          // NOLINT(google-explicit-constructor)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  const T& value() const { return value_; }
  T& value() { return value_; }

 private:
  Status status_;
  T value_{};
};

}  // namespace yollo::serve
