#include "serve/router.h"

#include <algorithm>
#include <cstring>

#include "obs/trace.h"

namespace yollo::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double ms_until(std::chrono::steady_clock::time_point deadline,
                std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::milli>(deadline - now).count();
}

uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Failure precedence when every route has failed: the most truthful code
// wins. An invalid input can never be served anywhere; a deadline miss is
// more informative than which shard happened to be overloaded.
int failure_precedence(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidInput:
      return 6;
    case StatusCode::kDeadlineExceeded:
      return 5;
    case StatusCode::kCancelled:
      return 4;
    case StatusCode::kInternalError:
      return 3;
    case StatusCode::kResourceExhausted:
      return 2;
    case StatusCode::kOverloaded:
      return 1;
    default:
      return 0;
  }
}

bool retryable(StatusCode code) {
  // kResourceExhausted is shard-local memory pressure: another shard's
  // worker pools may well have the headroom. kCancelled is not retried —
  // a cancel is a supervision verdict on this request, not shard
  // happenstance.
  return code == StatusCode::kOverloaded ||
         code == StatusCode::kInternalError ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace

// --- HashRing ----------------------------------------------------------------

HashRing::HashRing(int64_t vnodes_per_node)
    : vnodes_(std::max<int64_t>(1, vnodes_per_node)) {}

void HashRing::add_node(int64_t node) {
  if (nodes_.count(node) != 0) return;
  int64_t placed = 0;
  for (int64_t v = 0; placed < vnodes_; ++v) {
    const uint64_t pos =
        splitmix64(splitmix64(static_cast<uint64_t>(node) ^
                              0xdeadbeefcafef00dull) ^
                   static_cast<uint64_t>(v));
    // A position collision would silently evict another node's vnode;
    // perturbing v (the loop) finds a free slot instead.
    if (ring_.emplace(pos, node).second) ++placed;
  }
  nodes_[node] = vnodes_;
}

void HashRing::remove_node(int64_t node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node ? ring_.erase(it) : std::next(it);
  }
}

int64_t HashRing::node_for(uint64_t key_hash) const {
  if (ring_.empty()) return -1;
  auto it = ring_.lower_bound(key_hash);
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<int64_t> HashRing::walk(uint64_t key_hash) const {
  std::vector<int64_t> order;
  if (ring_.empty()) return order;
  order.reserve(nodes_.size());
  auto it = ring_.lower_bound(key_hash);
  for (size_t steps = 0; steps < ring_.size() &&
                         order.size() < nodes_.size();
       ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
    }
    ++it;
  }
  return order;
}

uint64_t HashRing::hash_key(const std::string& key) {
  return hash_bytes(key.data(), key.size());
}

uint64_t HashRing::hash_bytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a over the bytes, finalised through splitmix64 for avalanche.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<uint64_t>(p[i]);
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

// --- Router ------------------------------------------------------------------

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kActive:
      return "ACTIVE";
    case ShardState::kDraining:
      return "DRAINING";
    case ShardState::kProbing:
      return "PROBING";
  }
  return "?";
}

Router::Router(core::YolloModel& model, const data::Vocab& vocab,
               const RouterConfig& config,
               baseline::TwoStagePipeline* fallback)
    : config_(config),
      vocab_(&vocab),
      ring_(std::max<int64_t>(1, config.vnodes)),
      c_submitted_(metrics_.counter("router.submitted")),
      c_served_(metrics_.counter("router.served")),
      c_degraded_(metrics_.counter("router.degraded")),
      c_rejected_(metrics_.counter("router.rejected")),
      c_deadline_exceeded_(metrics_.counter("router.deadline_exceeded")),
      c_failed_(metrics_.counter("router.failed")),
      c_hedges_launched_(metrics_.counter("router.hedges_launched")),
      c_hedges_won_(metrics_.counter("router.hedges_won")),
      c_hedge_cancelled_(metrics_.counter("router.hedge_cancelled")),
      c_failovers_(metrics_.counter("router.failovers")),
      c_probes_sent_(metrics_.counter("router.probes_sent")),
      c_probes_failed_(metrics_.counter("router.probes_failed")),
      c_shards_drained_(metrics_.counter("router.shards_drained")),
      c_shards_restored_(metrics_.counter("router.shards_restored")),
      h_latency_ms_(
          metrics_.histogram("router.latency_ms", obs::latency_ms_bounds())),
      g_inflight_(metrics_.gauge("router.inflight")) {
  config_.num_shards = std::max<int64_t>(1, config_.num_shards);
  config_.hedge_budget = std::max(0.0, config_.hedge_budget);
  config_.health_interval_ms = std::max<int64_t>(1, config_.health_interval_ms);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int64_t i = 0; i < config_.num_shards; ++i) {
    ShardEntry entry;
    ServeConfig sc = config_.shard;
    // Distinct replica-construction seeds per shard; identical weights are
    // copied in from `model` regardless.
    sc.seed = config_.shard.seed + static_cast<uint64_t>(i) * 7919u;
    if (config_.scoped_faults) {
      entry.injector = std::make_unique<runtime::FaultInjector>();
      sc.fault_injector = entry.injector.get();
    }
    // All shards share one fallback pipeline; fallback_gate_ makes the
    // serialisation span every sharer, not just one shard's workers.
    entry.service = std::make_unique<InferenceService>(model, vocab, sc,
                                                       fallback,
                                                       &fallback_gate_);
    shards_.push_back(std::move(entry));
    ring_.add_node(i);
  }
  completion_thread_ = std::thread([this] { completion_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
}

Router::~Router() { stop(); }

Router::Clock::time_point Router::resolve_deadline(const RouteRequest& request,
                                                   int64_t default_ms,
                                                   Clock::time_point now) {
  if (request.deadline_at != Clock::time_point{}) return request.deadline_at;
  const int64_t ms =
      request.deadline_ms >= 0 ? request.deadline_ms : default_ms;
  if (ms <= 0) return Clock::time_point::max();
  return now + std::chrono::milliseconds(ms);
}

uint64_t Router::key_for(const RouteRequest& request) {
  if (!request.image_id.empty()) return HashRing::hash_key(request.image_id);
  if (!request.image.defined()) return 0;
  // Content hash: same image -> same shard (feature locality). A bounded
  // prefix keeps admission O(1)-ish; the pixel count disambiguates shapes.
  const size_t bytes = static_cast<size_t>(
      std::min<int64_t>(request.image.numel(), 4096) *
      static_cast<int64_t>(sizeof(float)));
  return HashRing::hash_bytes(request.image.data(), bytes,
                              static_cast<uint64_t>(request.image.numel()));
}

int64_t Router::ring_owner(uint64_t key_hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.node_for(key_hash);
}

Router::Pick Router::pick_shard(uint64_t key_hash,
                                const std::vector<int64_t>& tried,
                                Clock::time_point now) {
  // Ring order from the key's owner, so locality is preserved whenever the
  // owner is healthy. Weighted routing: an ACTIVE shard below soft_score
  // (deep queue, open breaker about to drain) only keeps the request if no
  // later candidate scores higher. A PROBING shard owns its half-open
  // trickle: one request per probe interval, only for keys it would own.
  Pick soft;
  double soft_best = -1.0;
  for (const int64_t id : ring_.walk(key_hash)) {
    if (std::find(tried.begin(), tried.end(), id) != tried.end()) continue;
    ShardEntry& entry = shards_[static_cast<size_t>(id)];
    if (entry.state == ShardState::kActive) {
      if (entry.score >= config_.soft_score) return Pick{id, false};
      if (entry.score > soft_best) {
        soft_best = entry.score;
        soft = Pick{id, false};
      }
    } else if (entry.state == ShardState::kProbing &&
               now >= entry.next_probe_at) {
      entry.next_probe_at =
          now + std::chrono::milliseconds(config_.probe_interval_ms);
      return Pick{id, true};
    }
  }
  return soft;
}

int64_t Router::pick_hedge(uint64_t key_hash, int64_t primary) {
  for (const int64_t id : ring_.walk(key_hash)) {
    if (id == primary) continue;
    const ShardEntry& entry = shards_[static_cast<size_t>(id)];
    if (entry.state == ShardState::kActive) return id;
  }
  return -1;
}

void Router::dispatch(const Job& job, Attempt& attempt) {
  GroundRequest request;
  request.image = job.image;  // storage is shared, not copied
  request.query = job.query;
  if (job.deadline == Clock::time_point::max()) {
    request.deadline_ms = 0;  // explicitly none (ignore the shard default)
  } else {
    request.deadline_at = job.deadline;
  }
  attempt.cancel = std::make_shared<CancelToken>();
  request.cancel = attempt.cancel;
  attempt.future = shards_[static_cast<size_t>(attempt.shard)].service->submit(
      std::move(request));
}

std::future<RouteResponse> Router::submit(RouteRequest request) {
  OBS_SPAN("router.submit");
  const Clock::time_point now = Clock::now();
  const uint64_t key = key_for(request);

  auto job = std::make_unique<Job>();
  job->key_hash = key;
  job->image = std::move(request.image);
  job->query = std::move(request.query);
  job->submitted_at = now;
  job->deadline = resolve_deadline(request, config_.default_deadline_ms, now);

  Pick pick;
  int64_t hedge = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_submitted_.inc();

    const auto reject_now = [&](Status status) {
      RouteResponse response;
      response.status = std::move(status);
      response.latency_ms = ms_since(now);
      switch (response.status.code) {
        case StatusCode::kDeadlineExceeded:
          c_deadline_exceeded_.inc();
          break;
        default:
          c_rejected_.inc();
          break;
      }
      std::future<RouteResponse> future = job->promise.get_future();
      job->promise.set_value(std::move(response));
      return future;
    };

    if (!accepting_) {
      return reject_now(Status::overloaded("router is stopped"));
    }
    if (job->deadline <= now) {
      return reject_now(
          Status::deadline_exceeded("deadline had already expired at routing"));
    }
    pick = pick_shard(key, job->tried, now);
    if (pick.shard < 0) {
      return reject_now(Status::overloaded("no shard in rotation"));
    }
    if (pick.probe) c_probes_sent_.inc();

    // Hedging: primary's live p95 says the deadline is at risk, the hedge
    // budget has headroom, and an active sibling exists.
    if (config_.hedging && !pick.probe &&
        job->deadline != Clock::time_point::max()) {
      const double remaining_ms = ms_until(job->deadline, now);
      const ShardEntry& primary = shards_[static_cast<size_t>(pick.shard)];
      const double budget =
          config_.hedge_budget * static_cast<double>(c_submitted_.value());
      if (primary.p95_ms > remaining_ms &&
          static_cast<double>(c_hedges_launched_.value() + 1) <= budget) {
        hedge = pick_hedge(key, pick.shard);
        if (hedge >= 0) c_hedges_launched_.inc();
      }
    }
    ++submitting_;  // holds the completion thread open until the push below
  }

  // Shard admission (O(pixels) validation, shard lock) happens outside the
  // router mutex so concurrent submitters do not serialise on it.
  Attempt primary;
  primary.shard = pick.shard;
  primary.probe = pick.probe;
  dispatch(*job, primary);
  job->tried.push_back(pick.shard);
  job->attempts.push_back(std::move(primary));
  if (hedge >= 0) {
    Attempt duplicate;
    duplicate.shard = hedge;
    duplicate.hedge = true;
    dispatch(*job, duplicate);
    job->hedged = true;
    job->tried.push_back(hedge);
    job->attempts.push_back(std::move(duplicate));
  }

  std::future<RouteResponse> future = job->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.push_back(std::move(job));
    --submitting_;
    g_inflight_.set(static_cast<double>(inflight_.size()));
  }
  cv_.notify_all();
  return future;
}

RouteResponse Router::route(RouteRequest request) {
  return submit(std::move(request)).get();
}

void Router::note_shard_result(int64_t shard, bool retryable_failure,
                               bool probe, bool probe_ok) {
  ShardEntry& entry = shards_[static_cast<size_t>(shard)];
  const Clock::time_point now = Clock::now();
  if (probe) {
    if (probe_ok) {
      if (entry.state == ShardState::kProbing) {
        entry.state = ShardState::kActive;
        entry.score = 1.0;
        c_shards_restored_.inc();
      }
      entry.consecutive_failures = 0;
    } else {
      c_probes_failed_.inc();
      if (entry.state == ShardState::kProbing) {
        // Half-open contract: one failed probe re-drains immediately.
        entry.state = ShardState::kDraining;
        entry.drained_at = now;
        c_shards_drained_.inc();
        entry.service->pause_admission();
      }
    }
    return;
  }
  if (retryable_failure) {
    ++entry.consecutive_failures;
    if (entry.state == ShardState::kActive &&
        entry.consecutive_failures >= config_.shard_failure_threshold) {
      entry.state = ShardState::kDraining;
      entry.drained_at = now;
      c_shards_drained_.inc();
      entry.service->pause_admission();
    }
  } else {
    entry.consecutive_failures = 0;
  }
}

void Router::finish_job(Job& job, GroundResponse response, int64_t shard,
                        bool hedge_won) {
  // The race is decided: cancel every attempt still in flight so its shard
  // aborts the forward at the next checkpoint instead of finishing an
  // answer nobody will read. The loser resolves kCancelled at shard level
  // (that shard's `cancelled` bucket); it never reaches the router
  // taxonomy — this job terminates exactly once, below.
  int64_t losers = 0;
  for (Attempt& attempt : job.attempts) {
    if (attempt.done || attempt.cancel == nullptr) continue;
    attempt.cancel->cancel();
    ++losers;
  }
  RouteResponse out;
  out.status = std::move(response.status);
  out.box = response.box;
  out.normalised_query = std::move(response.normalised_query);
  out.retries = response.retries;
  out.shard = shard;
  out.hedged = job.hedged;
  out.hedge_won = job.hedged && hedge_won;
  out.failovers = job.failovers;
  out.latency_ms = ms_since(job.submitted_at);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    h_latency_ms_.observe(out.latency_ms);
    if (out.hedge_won) c_hedges_won_.inc();
    if (losers > 0) c_hedge_cancelled_.inc(losers);
    switch (out.status.code) {
      case StatusCode::kOk:
        c_served_.inc();
        break;
      case StatusCode::kDegraded:
        c_served_.inc();
        c_degraded_.inc();
        break;
      case StatusCode::kInvalidInput:
      case StatusCode::kOverloaded:
        c_rejected_.inc();
        break;
      case StatusCode::kResourceExhausted:
        // Shed under memory pressure on every tried shard: a rejection,
        // keeping the four-term router invariant intact.
        c_rejected_.inc();
        break;
      case StatusCode::kDeadlineExceeded:
        c_deadline_exceeded_.inc();
        break;
      case StatusCode::kInternalError:
      case StatusCode::kCancelled:
        // A terminal shard-level cancel the router did not ask for (e.g. a
        // watchdog kick): the request died inside the serving stack.
        c_failed_.inc();
        break;
    }
  }
  job.done = true;
  job.promise.set_value(std::move(out));
}

bool Router::advance_job(Job& job, Clock::time_point now) {
  // Scan ready attempts. First answered attempt wins; the loser (if any) is
  // simply ignored — its shard still resolves it, nothing blocks on it.
  bool pending = false;
  for (Attempt& attempt : job.attempts) {
    if (attempt.done) continue;
    if (attempt.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      pending = true;
      continue;
    }
    attempt.done = true;
    GroundResponse response = attempt.future.get();
    const StatusCode code = response.status.code;

    if (response.status.answered()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // A probe only closes the half-open state on a full model answer
        // (kOk); a degraded answer means the shard's own breaker is still
        // open, so the probe failed even though the client is served.
        note_shard_result(attempt.shard, false, attempt.probe,
                          response.status.ok());
      }
      finish_job(job, std::move(response), attempt.shard, attempt.hedge);
      return true;
    }

    if (code == StatusCode::kInvalidInput) {
      // The request itself is malformed; no shard can do better. Terminal
      // even if a hedge is still in flight (it will reject identically).
      finish_job(job, std::move(response), attempt.shard, false);
      return true;
    }

    {
      // Only kInternalError feeds the shard's failure streak. kOverloaded is
      // backpressure, not sickness — evicting a busy shard during a load
      // spike shrinks capacity exactly when it is scarcest (the weighted
      // queue-depth score already steers load away from deep queues).
      std::lock_guard<std::mutex> lock(mutex_);
      note_shard_result(attempt.shard, code == StatusCode::kInternalError,
                        attempt.probe, false);
    }
    if (failure_precedence(code) >
        failure_precedence(job.last_failure.status.code)) {
      job.last_failure = std::move(response);
    }
    // A deadline miss from one attempt is not terminal while a hedge is
    // still racing: the duplicate may have answered inside the budget.
  }
  if (pending || job.done) return job.done;

  // Every attempt failed. Fail over while the deadline and the ring allow;
  // otherwise answer with the most truthful failure seen.
  Pick next;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int64_t budget = config_.max_failovers >= 0
                               ? config_.max_failovers
                               : config_.num_shards - 1;
    const bool deadline_ok = now < job.deadline;
    const bool failure_retryable =
        retryable(job.last_failure.status.code) ||
        job.last_failure.status.code == StatusCode::kOk;  // (unset: paranoia)
    if (deadline_ok && failure_retryable && job.failovers < budget) {
      next = pick_shard(job.key_hash, job.tried, now);
    }
    if (next.shard >= 0) {
      c_failovers_.inc();
      if (next.probe) c_probes_sent_.inc();
    }
  }
  if (next.shard < 0) {
    GroundResponse final = std::move(job.last_failure);
    if (now >= job.deadline &&
        final.status.code != StatusCode::kDeadlineExceeded) {
      final.status =
          Status::deadline_exceeded("deadline expired during failover");
    }
    if (final.status.code == StatusCode::kOk && final.box.w == 0) {
      // No attempt ever resolved with a failure payload (cannot happen in
      // practice); answer typed rather than fabricate success.
      final.status = Status::overloaded("no shard could take the request");
    }
    finish_job(job, std::move(final), -1, false);
    return true;
  }
  Attempt attempt;
  attempt.shard = next.shard;
  attempt.probe = next.probe;
  dispatch(job, attempt);
  job.tried.push_back(next.shard);
  ++job.failovers;
  job.attempts.push_back(std::move(attempt));
  return false;
}

void Router::completion_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_ && inflight_.empty() && submitting_ == 0) return;
      if (inflight_.empty()) {
        cv_.wait_for(lock, std::chrono::milliseconds(5), [this] {
          return stopping_ || !inflight_.empty();
        });
        continue;
      }
    }
    // Jobs are only appended by submit() and only mutated here; raw
    // pointers stay valid because erasure happens below, on this thread.
    std::vector<Job*> scan;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      scan.reserve(inflight_.size());
      for (const auto& job : inflight_) scan.push_back(job.get());
    }
    bool any_done = false;
    for (Job* job : scan) {
      if (advance_job(*job, Clock::now())) any_done = true;
    }
    if (any_done) {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(std::remove_if(inflight_.begin(), inflight_.end(),
                                     [](const std::unique_ptr<Job>& job) {
                                       return job->done;
                                     }),
                      inflight_.end());
      g_inflight_.set(static_cast<double>(inflight_.size()));
    } else {
      // Nothing resolved this scan; yield briefly instead of spinning.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

void Router::health_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (stopping_) return;
      cv_.wait_for(lock,
                   std::chrono::milliseconds(config_.health_interval_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
    }
    for (size_t i = 0; i < shards_.size(); ++i) {
      ShardEntry& entry = shards_[i];
      // Service reads happen without the router mutex (lock order is always
      // router -> shard, never the reverse).
      const HealthSnapshot shard_health = entry.service->health();
      const double p95 = entry.service->latency_p95_ms();
      const double capacity = static_cast<double>(
          std::max<int64_t>(1, entry.service->config().queue_capacity));
      const double utilisation =
          std::min(1.0, static_cast<double>(shard_health.queue_depth) /
                            capacity);
      double score = 0.0;
      if (shard_health.accepting) {
        score = (shard_health.breaker_open ? 0.4 : 1.0) *
                (1.0 - 0.5 * utilisation);
      }

      bool try_resume = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        entry.p95_ms = p95;
        entry.queue_depth = shard_health.queue_depth;
        entry.accepting = shard_health.accepting;
        entry.breaker_open = shard_health.breaker_open;
        metrics_.gauge("router.shard" + std::to_string(i) + ".score")
            .set(score);
        switch (entry.state) {
          case ShardState::kActive:
            entry.score = score;
            if (score < config_.drain_score) {
              entry.state = ShardState::kDraining;
              entry.drained_at = Clock::now();
              c_shards_drained_.inc();
              // pause below (outside the switch the service call is still
              // under mutex_; consistent router->shard order, no cycle).
              entry.service->pause_admission();
            }
            break;
          case ShardState::kDraining: {
            entry.score = 0.0;
            const bool drained = shard_health.queue_depth == 0;
            const bool cooled =
                Clock::now() - entry.drained_at >=
                std::chrono::milliseconds(config_.drain_cooldown_ms);
            if (drained && cooled) try_resume = true;
            break;
          }
          case ShardState::kProbing:
            entry.score = score;
            if (!shard_health.accepting) {
              // Killed (or re-paused) while probing: back to draining.
              entry.state = ShardState::kDraining;
              entry.drained_at = Clock::now();
              c_shards_drained_.inc();
            }
            break;
        }
      }
      if (try_resume) {
        // resume_admission() is refused by a stop()ped shard — a dead shard
        // stays DRAINING and receives no probes.
        const bool resumed = entry.service->resume_admission();
        std::lock_guard<std::mutex> lock(mutex_);
        if (resumed && entry.state == ShardState::kDraining) {
          entry.state = ShardState::kProbing;
          entry.next_probe_at = Clock::now();
        }
      }
    }
  }
}

void Router::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  // The completion thread drains inflight_ before exiting (every shard
  // future resolves — services answer everything), so join order matters:
  // completion first, shards last.
  if (completion_thread_.joinable()) completion_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  for (ShardEntry& entry : shards_) {
    if (entry.service) entry.service->stop();
  }
}

int64_t Router::num_shards() const {
  return static_cast<int64_t>(shards_.size());
}

InferenceService& Router::shard(int64_t i) {
  return *shards_[static_cast<size_t>(i)].service;
}

runtime::FaultInjector* Router::shard_injector(int64_t i) {
  return shards_[static_cast<size_t>(i)].injector.get();
}

void Router::kill_shard(int64_t i) {
  // Chaos hook: the shard's stop() drains its queue (every queued request
  // is still answered); the health loop sees accepting == false and routes
  // around it; in-flight router attempts on it resolve and fail over.
  shards_[static_cast<size_t>(i)].service->stop();
}

obs::MetricsSnapshot Router::metrics_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.snapshot();
}

RouterCounters Router::counters() const {
  return router_counters_from_snapshot(metrics_snapshot());
}

RouterHealth Router::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RouterHealth health;
  health.accepting = accepting_;
  health.counters = router_counters_from_snapshot(metrics_.snapshot());
  health.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const ShardEntry& entry = shards_[i];
    ShardHealth info;
    info.id = static_cast<int64_t>(i);
    info.state = entry.state;
    info.score = entry.score;
    info.p95_ms = entry.p95_ms;
    info.queue_depth = entry.queue_depth;
    info.accepting = entry.accepting;
    info.breaker_open = entry.breaker_open;
    info.consecutive_failures = entry.consecutive_failures;
    if (entry.state == ShardState::kActive) ++health.in_rotation;
    health.shards.push_back(info);
  }
  return health;
}

RouterCounters router_counters_from_snapshot(
    const obs::MetricsSnapshot& snapshot) {
  RouterCounters c;
  c.submitted = snapshot.counter("router.submitted");
  c.served = snapshot.counter("router.served");
  c.degraded = snapshot.counter("router.degraded");
  c.rejected = snapshot.counter("router.rejected");
  c.deadline_exceeded = snapshot.counter("router.deadline_exceeded");
  c.failed = snapshot.counter("router.failed");
  c.hedges_launched = snapshot.counter("router.hedges_launched");
  c.hedges_won = snapshot.counter("router.hedges_won");
  c.hedge_cancelled = snapshot.counter("router.hedge_cancelled");
  c.failovers = snapshot.counter("router.failovers");
  c.probes_sent = snapshot.counter("router.probes_sent");
  c.probes_failed = snapshot.counter("router.probes_failed");
  c.shards_drained = snapshot.counter("router.shards_drained");
  c.shards_restored = snapshot.counter("router.shards_restored");
  return c;
}

}  // namespace yollo::serve
