#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "nn/module.h"
#include "obs/trace.h"
#include "runtime/fault.h"
#include "tensor/pool.h"

namespace yollo::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool box_is_finite(const vision::Box& box) {
  return std::isfinite(box.x) && std::isfinite(box.y) &&
         std::isfinite(box.w) && std::isfinite(box.h);
}

int64_t env_int(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::strtoll(value, nullptr, 10);
}

// Feature-cache budget in bytes from the config / YOLLO_FEATURE_CACHE_MB
// (resolved before the constructor body because the cache is a member).
int64_t resolve_cache_bytes(const ServeConfig& config) {
  int64_t mb = config.feature_cache_mb;
  if (mb < 0) mb = env_int("YOLLO_FEATURE_CACHE_MB", 0);
  return mb > 0 ? mb * 1024 * 1024 : 0;
}

// Formation slack margin: a follower joins only when the riders' worst
// slack covers the predicted batched cost with this much headroom, so a
// prediction that runs 20% hot still meets the deadline.
constexpr double kSlackMargin = 1.2;
// Shrink when a batch of k costs more than k * solo * this ratio — at that
// point batching is amortising nothing and only adds head-of-line latency.
constexpr double kShrinkRatio = 1.25;
// Clean forwards required after a target change before growth is considered
// (hysteresis: don't oscillate on one good forward).
constexpr int64_t kGrowPatience = 4;

}  // namespace

void CancelToken::cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  requested_ = true;
  if (ctx_ != nullptr) {
    ctx_->cancel_if_generation(generation_, CancelCause::kCancelled);
  }
}

bool CancelToken::requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requested_;
}

bool CancelToken::attach(ExecContext* ctx, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_ = ctx;
  generation_ = generation;
  if (requested_ && ctx_ != nullptr) {
    ctx_->cancel_if_generation(generation_, CancelCause::kCancelled);
  }
  return requested_;
}

void CancelToken::detach() {
  std::lock_guard<std::mutex> lock(mu_);
  ctx_ = nullptr;
}

InferenceService::InferenceService(core::YolloModel& model,
                                   const data::Vocab& vocab,
                                   const ServeConfig& config,
                                   baseline::TwoStagePipeline* fallback,
                                   std::mutex* fallback_mutex)
    : config_(config),
      model_config_(model.config()),
      vocab_(&vocab),
      fallback_(fallback),
      c_submitted_(metrics_.counter("serve.submitted")),
      c_served_(metrics_.counter("serve.served")),
      c_degraded_(metrics_.counter("serve.degraded")),
      c_rejected_(metrics_.counter("serve.rejected")),
      c_rejected_invalid_(metrics_.counter("serve.rejected_invalid")),
      c_rejected_overloaded_(metrics_.counter("serve.rejected_overloaded")),
      c_rejected_resource_(metrics_.counter("serve.rejected_resource")),
      c_deadline_exceeded_(metrics_.counter("serve.deadline_exceeded")),
      c_failed_(metrics_.counter("serve.failed")),
      c_cancelled_(metrics_.counter("serve.cancelled")),
      c_retries_(metrics_.counter("serve.retries")),
      c_breaker_trips_(metrics_.counter("serve.breaker_trips")),
      c_batches_coalesced_(metrics_.counter("serve.batches_coalesced")),
      c_batched_requests_(metrics_.counter("serve.batched_requests")),
      c_watchdog_kicks_(metrics_.counter("serve.watchdog_kicks")),
      c_workers_lost_(metrics_.counter("serve.workers_lost")),
      c_workers_spawned_(metrics_.counter("serve.workers_spawned")),
      c_pool_rejected_(metrics_.counter("serve.pool_rejected")),
      c_solo_dispatches_(metrics_.counter("serve.solo_dispatches")),
      c_sched_shrinks_(metrics_.counter("serve.sched_shrinks")),
      c_sched_grows_(metrics_.counter("serve.sched_grows")),
      g_queue_high_water_(metrics_.gauge("serve.queue_high_water")),
      g_max_batch_(metrics_.gauge("serve.max_batch")),
      g_batch_target_(metrics_.gauge("serve.batch_target")),
      g_workers_warmed_(metrics_.gauge("serve.workers_warmed")),
      h_queue_depth_(metrics_.histogram(
          "serve.queue_depth",
          obs::depth_bounds(std::max<int64_t>(1, config.queue_capacity)))),
      h_queue_wait_ms_(
          metrics_.histogram("serve.queue_wait_ms", obs::latency_ms_bounds())),
      h_model_ms_(
          metrics_.histogram("serve.model_ms", obs::latency_ms_bounds())),
      h_latency_ms_(
          metrics_.histogram("serve.latency_ms", obs::latency_ms_bounds())),
      h_cancel_latency_ms_(metrics_.histogram("serve.cancel_latency_ms",
                                              obs::latency_ms_bounds())),
      cache_(metrics_, resolve_cache_bytes(config)),
      fallback_lock_(fallback_mutex != nullptr ? fallback_mutex
                                               : &fallback_mutex_) {
  config_.num_workers = std::max<int64_t>(1, config_.num_workers);
  config_.queue_capacity = std::max<int64_t>(1, config_.queue_capacity);
  config_.batch_max = std::max<int64_t>(1, config_.batch_max);
  if (config_.watchdog_interval_ms < 0) {
    config_.watchdog_interval_ms = env_int("YOLLO_WATCHDOG_MS", 0);
  }
  if (config_.pool_budget_mb < 0) {
    config_.pool_budget_mb = env_int("YOLLO_POOL_BUDGET_MB", 0);
  }
  // The watchdog judges progress by ExecContext heartbeats, which only
  // tick when cancellation arms the contexts.
  if (!config_.enable_cancellation) config_.watchdog_interval_ms = 0;
  if (env_int("YOLLO_BATCH_ADAPTIVE", 1) == 0) {
    config_.adaptive_batching = false;
  }
  // Normalise for introspection: config().feature_cache_mb reflects what
  // the cache actually resolved to (env included).
  config_.feature_cache_mb = cache_.budget_bytes() / (1024 * 1024);
  // The adaptive target starts at batch_max, not 1: a cold service under
  // sudden backlog must coalesce immediately (the legacy behaviour); the
  // target only steps down once live costs prove batching is hurting.
  batch_target_ = config_.batch_max;
  g_batch_target_.set(static_cast<double>(batch_target_));
  batch_cost_ewma_.assign(static_cast<size_t>(config_.batch_max) + 1, 0.0);
  formation_hists_.push_back(nullptr);  // slot 0 unused
  for (int64_t k = 1; k <= config_.batch_max; ++k) {
    formation_hists_.push_back(&metrics_.histogram(
        "serve.formation_ms_b" + std::to_string(k), obs::latency_ms_bounds()));
  }
  config_.watchdog_stall_intervals =
      std::max<int64_t>(1, config_.watchdog_stall_intervals);
  config_.watchdog_grace_intervals =
      std::max<int64_t>(1, config_.watchdog_grace_intervals);
  // One eval-mode replica per worker: threads never share mutable tensor
  // storage, so the pool needs no lock around the forward pass. The master
  // replica never serves — it exists so the watchdog can stamp out a
  // replacement without copying from a replica that is mid-forward.
  {
    Rng rng(config_.seed);
    master_replica_ = std::make_unique<core::YolloModel>(model_config_,
                                                         vocab.size(), rng);
    nn::copy_module_state(*master_replica_, model);
    master_replica_->set_training(false);
  }
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int64_t i = 0; i < config_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    Rng rng(config_.seed + 1 + static_cast<uint64_t>(i));
    worker->replica = std::make_unique<core::YolloModel>(model_config_,
                                                         vocab.size(), rng);
    nn::copy_module_state(*worker->replica, model);
    worker->replica->set_training(false);
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { worker_loop(raw); });
    workers_.push_back(std::move(worker));
  }
  if (config_.watchdog_interval_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

InferenceService::~InferenceService() { stop(); }

InferenceService::Clock::time_point InferenceService::resolve_deadline(
    const GroundRequest& request, int64_t default_ms, Clock::time_point now) {
  if (request.deadline_at != Clock::time_point{}) return request.deadline_at;
  const int64_t ms =
      request.deadline_ms >= 0 ? request.deadline_ms : default_ms;
  if (ms <= 0) return Clock::time_point::max();
  return now + std::chrono::milliseconds(ms);
}

std::future<GroundResponse> InferenceService::submit(GroundRequest request) {
  OBS_SPAN("serve.submit");
  const Clock::time_point now = Clock::now();
  std::promise<GroundResponse> promise;
  std::future<GroundResponse> future = promise.get_future();

  // Admission rejections resolve the future immediately with a typed
  // Status; they still count as submitted so the counter invariant holds.
  const auto reject = [&](Status status,
                          std::string normalised) -> std::future<GroundResponse> {
    GroundResponse response;
    response.status = std::move(status);
    response.normalised_query = std::move(normalised);
    response.latency_ms = ms_since(now);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      c_submitted_.inc();
      record(response);
    }
    promise.set_value(std::move(response));
    return std::move(future);
  };

  // Input validation happens before the request can consume a queue slot
  // (and outside the service lock — the NaN scan is O(pixels)).
  Status image_status =
      validate_image(request.image, model_config_.img_h, model_config_.img_w);
  if (!image_status.ok()) return reject(std::move(image_status), {});
  ValidatedQuery query =
      validate_query(request.query, *vocab_, model_config_.max_query_len);
  if (!query.status.ok()) {
    return reject(std::move(query.status), std::move(query.normalised));
  }

  // Deadline check at enqueue.
  const Clock::time_point deadline =
      resolve_deadline(request, config_.default_deadline_ms, now);
  if (deadline <= now) {
    return reject(
        Status::deadline_exceeded("deadline had already expired at enqueue"),
        std::move(query.normalised));
  }

  // Content hash for the feature cache, computed once at admission (outside
  // the lock — it is O(pixels), like the validation scan above).
  const uint64_t image_hash =
      cache_.enabled() ? FeatureCache::hash_image(request.image) : 0;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_submitted_.inc();
    if (!accepting_) {
      GroundResponse response;
      response.status = Status::overloaded("service is stopped or paused");
      response.normalised_query = std::move(query.normalised);
      response.latency_ms = ms_since(now);
      record(response);
      promise.set_value(std::move(response));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
      // Backpressure: reject, never grow. The client sees a typed
      // kOverloaded and can shed load or retry with jitter.
      GroundResponse response;
      response.status = Status::overloaded(
          "admission queue full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
      response.normalised_query = std::move(query.normalised);
      response.latency_ms = ms_since(now);
      record(response);
      promise.set_value(std::move(response));
      return future;
    }
    Job job;
    job.image = std::move(request.image);
    job.tokens = std::move(query.tokens);
    job.normalised_query = std::move(query.normalised);
    job.submitted_at = now;
    job.deadline = deadline;
    job.cancel = std::move(request.cancel);
    job.image_hash = image_hash;
    job.state = std::make_shared<JobState>();
    job.state->promise = std::move(promise);
    queue_.push_back(std::move(job));
    const double depth = static_cast<double>(queue_.size());
    g_queue_high_water_.set_max(depth);
    h_queue_depth_.observe(depth);
  }
  cv_.notify_one();
  return future;
}

GroundResponse InferenceService::ground(GroundRequest request) {
  return submit(std::move(request)).get();
}

void InferenceService::worker_loop(Worker* self) {
  // Scoped fault injector (when the service owns one): every forward this
  // worker runs consumes the shard-local injector instead of the global.
  runtime::FaultInjector::ThreadBinding fault_binding(config_.fault_injector);
  // Long-lived per-worker storage pool: the PoolScope that infer() installs
  // internally joins this one, so tensor storage recycles across requests
  // instead of only within a single forward.
  PoolScope pool;
  if (config_.pool_budget_mb > 0) {
    pool.set_budget_bytes(config_.pool_budget_mb * 1024 * 1024);
  }
  // Install this worker's ExecContext for the thread's lifetime; each
  // forward attempt re-arms it with the request deadline. Without
  // cancellation the context stays uninstalled and every kernel sees the
  // plain nullptr fast path.
  std::unique_ptr<ExecContext::Scope> exec_scope;
  if (config_.enable_cancellation) {
    exec_scope = std::make_unique<ExecContext::Scope>(&self->ctx);
  }
  // Compile the static forward plans this worker will serve from before the
  // first request arrives (the arena charges this worker's pool budget; a
  // refusal leaves that batch size on the dynamic path). warm_plan() runs
  // inside the exec scope so shutdown-time cancellation can abort it.
  if (config_.warm_plans) {
    for (int64_t b = 1; b <= config_.batch_max; ++b) {
      if (stopping_ || self->lost.load(std::memory_order_relaxed)) break;
      try {
        self->replica->warm_plan(b);
      } catch (...) {
        // A cancelled/failed warm-up is not fatal: that batch size simply
        // records lazily on first use or stays dynamic.
        break;
      }
    }
  }
  // Signal warm-up completion (set even when warm_plans is off, so callers
  // can always gate on it): benchmarks wait for this gauge to reach
  // num_workers before starting their clocks, otherwise a batch_max-8
  // service is measured while its workers are still compiling eight plans
  // each — the very skew behind the BENCH_infer serve_burst regression.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++warmed_workers_;
    g_workers_warmed_.set(static_cast<double>(warmed_workers_));
  }
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this, self] {
        return stopping_ || self->lost.load(std::memory_order_relaxed) ||
               !queue_.empty();
      });
      // A reaped worker must stop claiming queue work: its replacement
      // owns this slot's share of the pool now.
      if (self->lost.load(std::memory_order_relaxed)) return;
      if (queue_.empty()) return;  // stopping_ and fully drained
      // Continuous-batching formation (DESIGN.md §15): the front request
      // always dispatches — never hold the queue waiting for a batch to
      // fill. Followers join one at a time, only while every rider's
      // deadline slack still covers the predicted cost of the grown batch
      // (live per-size cost EWMAs) with margin — so a near-deadline
      // straggler runs solo instead of paying a stranger's batch tax, and
      // a deadline-free backlog coalesces greedily up to the adaptive
      // target. All admitted jobs share the model's image geometry
      // (admission validates against the config), so every queued job is
      // batch-compatible.
      const Clock::time_point now = Clock::now();
      maybe_grow_target_locked();
      const int64_t limit = std::min(
          {config_.batch_max, batch_target_,
           static_cast<int64_t>(queue_.size())});
      const auto slack_of = [&now](const Job& job) {
        if (job.deadline == Clock::time_point::max()) {
          return std::numeric_limits<double>::infinity();
        }
        return std::chrono::duration<double, std::milli>(job.deadline - now)
            .count();
      };
      int64_t take = 1;
      double min_slack = slack_of(queue_.front());
      while (take < limit) {
        const double joined = std::min(
            min_slack, slack_of(queue_[static_cast<size_t>(take)]));
        if (joined < predicted_cost_locked(take + 1) * kSlackMargin) break;
        min_slack = joined;
        ++take;
      }
      if (take == 1 && limit > 1 && std::isfinite(min_slack)) {
        // Slack-forced solo with company in the queue: the scheduler chose
        // latency over amortisation for this request.
        c_solo_dispatches_.inc();
      }
      // Formation latency: how old the batch's first rider is at dispatch,
      // attributed to the size actually formed.
      if (take < static_cast<int64_t>(formation_hists_.size())) {
        formation_hists_[static_cast<size_t>(take)]->observe(
            std::chrono::duration<double, std::milli>(
                now - queue_.front().submitted_at)
                .count());
      }
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    // Register the claimed requests on the slot (so a reap can fail them)
    // and mark the worker busy for the watchdog. Never hold slot->mu and
    // mutex_ together.
    {
      std::lock_guard<std::mutex> lock(self->mu);
      for (const Job& job : batch) {
        self->active.push_back(job.state);
        self->active_queries.push_back(job.normalised_query);
      }
    }
    self->busy.store(true, std::memory_order_release);
    process_batch(*self, batch);
    self->busy.store(false, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(self->mu);
      self->active.clear();
      self->active_queries.clear();
    }
    if (self->lost.load(std::memory_order_relaxed)) return;
  }
}

void InferenceService::process_batch(Worker& self, std::vector<Job>& batch) {
  // Deadline and cancel checks at dequeue, per request: a request that
  // starved in the queue (or whose token fired while it waited) is
  // answered (typed), not silently processed past its budget.
  const Clock::time_point now = Clock::now();
  std::vector<Job*> live;
  live.reserve(batch.size());
  for (Job& job : batch) {
    h_queue_wait_ms_.observe(
        std::chrono::duration<double, std::milli>(now - job.submitted_at)
            .count());
    if (job.cancel != nullptr && job.cancel->requested()) {
      GroundResponse response;
      response.normalised_query = job.normalised_query;
      response.status = Status::cancelled("cancelled while queued");
      finish(job, std::move(response));
    } else if (now >= job.deadline) {
      GroundResponse response;
      response.normalised_query = job.normalised_query;
      response.status =
          Status::deadline_exceeded("deadline expired while queued");
      finish(job, std::move(response));
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  // Circuit breaker: the cooldown is counted per request (deterministic for
  // tests), exactly as in the single-image path — requests that consume
  // cooldown slots go straight to the baseline tier.
  std::vector<Job*> model_jobs;
  std::vector<Job*> breaker_jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Job* job : live) {
      if (breaker_cooldown_left_ > 0) {
        --breaker_cooldown_left_;
        breaker_jobs.push_back(job);
      } else {
        model_jobs.push_back(job);
      }
    }
  }
  for (Job* job : breaker_jobs) {
    GroundResponse response;
    response.normalised_query = job->normalised_query;
    run_fallback_tier(self, *job, "circuit breaker open", response);
    finish(*job, std::move(response));
  }

  if (model_jobs.empty()) return;
  if (model_jobs.size() == 1) {
    run_single(self, *model_jobs.front());
  } else {
    run_batched_model_tier(self, model_jobs);
  }
}

void InferenceService::run_single(Worker& self, Job& job, CacheProbe probe) {
  GroundResponse response;
  response.normalised_query = job.normalised_query;
  if (run_model_tier(self, job, response, std::move(probe))) {
    finish(job, std::move(response));
    return;
  }
  const std::string degrade_reason =
      "model tier failed: " + response.status.message;
  // Deadline check between the model tier and the fallback tier.
  if (Clock::now() >= job.deadline) {
    response.status =
        Status::deadline_exceeded("deadline expired after the model tier");
    finish(job, std::move(response));
    return;
  }
  run_fallback_tier(self, job, degrade_reason, response);
  finish(job, std::move(response));
}

void InferenceService::run_batched_model_tier(Worker& self,
                                              const std::vector<Job*>& jobs) {
  if (!cache_.enabled()) {
    run_batch_group(self, jobs, std::vector<CacheProbe>(jobs.size()),
                    /*cached_path=*/false);
    return;
  }
  // Partition by cache disposition: a hit rides a fuse-only forward over
  // its pinned features, a miss runs the full pass (capturing features for
  // insertion). Mixing them in one forward is impossible — the two paths
  // enter the model at different layers.
  const uint64_t generation = self.replica->weights_generation();
  std::vector<Job*> hit_jobs, miss_jobs;
  std::vector<CacheProbe> hit_probes, miss_probes;
  for (Job* job : jobs) {
    CacheProbe probe;
    probe.probed = true;
    probe.key = cache_.make_key(job->image_hash, generation);
    probe.features = cache_.lookup(probe.key);
    if (probe.features.defined()) {
      hit_jobs.push_back(job);
      hit_probes.push_back(std::move(probe));
    } else {
      miss_jobs.push_back(job);
      miss_probes.push_back(std::move(probe));
    }
  }
  // Groups of one are not batches: they run the single pipeline with their
  // already-resolved probe (no second lookup, no skewed counters).
  if (hit_jobs.size() == 1) {
    run_single(self, *hit_jobs.front(), std::move(hit_probes.front()));
  } else if (!hit_jobs.empty()) {
    run_batch_group(self, hit_jobs, std::move(hit_probes),
                    /*cached_path=*/true);
  }
  if (miss_jobs.size() == 1) {
    run_single(self, *miss_jobs.front(), std::move(miss_probes.front()));
  } else if (!miss_jobs.empty()) {
    run_batch_group(self, miss_jobs, std::move(miss_probes),
                    /*cached_path=*/false);
  }
}

void InferenceService::run_batch_group(Worker& self,
                                       const std::vector<Job*>& jobs,
                                       std::vector<CacheProbe> probes,
                                       bool cached_path) {
  const int64_t k = static_cast<int64_t>(jobs.size());
  std::vector<int64_t> tokens;
  tokens.reserve(static_cast<size_t>(k * model_config_.max_query_len));
  Tensor batched;
  if (cached_path) {
    // Assemble [k, C, grid_h, grid_w] from the pinned per-image views.
    const int64_t c = model_config_.backbone.out_channels();
    const int64_t plane = c * model_config_.grid_h() * model_config_.grid_w();
    batched = Tensor({k, c, model_config_.grid_h(), model_config_.grid_w()});
    float* dst = batched.data();
    for (int64_t i = 0; i < k; ++i) {
      const Tensor& feat = probes[static_cast<size_t>(i)].features;
      std::copy(feat.data(), feat.data() + plane, dst + i * plane);
      const Job& job = *jobs[static_cast<size_t>(i)];
      tokens.insert(tokens.end(), job.tokens.begin(), job.tokens.end());
    }
  } else {
    const int64_t plane = 3 * model_config_.img_h * model_config_.img_w;
    batched = Tensor({k, 3, model_config_.img_h, model_config_.img_w});
    float* dst = batched.data();
    for (int64_t i = 0; i < k; ++i) {
      const Job& job = *jobs[static_cast<size_t>(i)];
      std::copy(job.image.data(), job.image.data() + plane, dst + i * plane);
      tokens.insert(tokens.end(), job.tokens.begin(), job.tokens.end());
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_batches_coalesced_.inc();
    c_batched_requests_.inc(k);
    g_max_batch_.set_max(static_cast<double>(k));
  }

  // Arm the worker's context with the tightest deadline in the batch: the
  // most-constrained rider bounds the coalesced forward. Client tokens are
  // not attached in the batched path — a lone cancel must not abort its
  // batch mates; the per-request salvage pass below honours it instead.
  if (config_.enable_cancellation) {
    Clock::time_point min_deadline = Clock::time_point::max();
    for (const Job* job : jobs) {
      min_deadline = std::min(min_deadline, job->deadline);
    }
    self.ctx.arm(min_deadline);
  }

  const Clock::time_point started = Clock::now();
  const core::YolloModel::InferOutcome outcome = [&] {
    obs::ScopedTimer timer(h_model_ms_);
    OBS_SPAN("serve.batch_forward");
    return cached_path
               ? self.replica->infer_from_features(batched, tokens)
               : self.replica->infer(batched, tokens,
                                     /*capture_features=*/cache_.enabled());
  }();
  const double forward_ms = ms_since(started);

  // Salvage probes never reuse a cached feature view (a cached-path batch
  // failure retries on the full path) but keep their key so a healthy
  // retry still populates the cache.
  const auto salvage_probe = [&probes](int64_t i) {
    CacheProbe probe = std::move(probes[static_cast<size_t>(i)]);
    probe.features = Tensor();
    return probe;
  };

  if (outcome.element_errors.size() != static_cast<size_t>(k)) {
    // Batch-level failure (thrown fault, invalid input, cancellation,
    // pool-budget refusal): no per-element verdicts exist. Every request
    // re-runs the single-image pipeline — per-request retries, deadline
    // verdicts, and degradation, exactly as if it had never been coalesced.
    // The failed batch attempt itself does not feed the breaker; the
    // per-request salvage runs below do.
    for (int64_t i = 0; i < k; ++i) {
      run_single(self, *jobs[static_cast<size_t>(i)], salvage_probe(i));
    }
    return;
  }

  // The forward ran to completion: feed the scheduler's cost model. A
  // rider answered past its deadline is the batch tax made visible — the
  // shrink rule reacts to it.
  const Clock::time_point after = Clock::now();
  bool deadline_missed = false;
  for (const Job* job : jobs) {
    if (after >= job->deadline) {
      deadline_missed = true;
      break;
    }
  }
  note_batch_outcome(k, forward_ms, deadline_missed);

  if (outcome.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    consecutive_failures_ = 0;
  }

  // Populate the cache from the healthy elements of a full-path batch
  // (poisoned elements are never inserted — their features may be fine,
  // but a request that is about to retry should not trust this pass).
  if (!cached_path && cache_.enabled() && outcome.features.defined()) {
    const int64_t c = model_config_.backbone.out_channels();
    const int64_t gh = model_config_.grid_h();
    const int64_t gw = model_config_.grid_w();
    const int64_t plane = c * gh * gw;
    for (int64_t i = 0; i < k; ++i) {
      if (!outcome.element_ok(i)) continue;
      // Zero-copy view into the captured block; insert() makes its own
      // copy, the dummy owner only needs to outlive this call.
      cache_.insert(probes[static_cast<size_t>(i)].key,
                    Tensor::from_external(
                        {c, gh, gw},
                        const_cast<float*>(outcome.features.data()) + i * plane,
                        std::make_shared<int>(0)));
    }
  }

  // Answer the healthy elements first (a poisoned batch mate must not delay
  // them further), then salvage the poisoned ones individually.
  std::vector<int64_t> salvage;
  for (int64_t i = 0; i < k; ++i) {
    Job& job = *jobs[static_cast<size_t>(i)];
    if (!outcome.element_ok(i)) {
      salvage.push_back(i);
      continue;
    }
    GroundResponse response;
    response.normalised_query = job.normalised_query;
    if (Clock::now() >= job.deadline) {
      response.status = Status::deadline_exceeded(
          "forward pass finished past the deadline");
    } else {
      response.status = Status::ok_status();
      response.box = outcome.element_boxes[static_cast<size_t>(i)];
    }
    finish(job, std::move(response));
  }
  for (int64_t i : salvage) {
    run_single(self, *jobs[static_cast<size_t>(i)], salvage_probe(i));
  }
}

bool InferenceService::run_model_tier(Worker& self, Job& job,
                                      GroundResponse& response,
                                      CacheProbe probe) {
  const Tensor batched =
      job.image.reshape({1, 3, model_config_.img_h, model_config_.img_w});
  const int64_t attempts = 1 + std::max<int64_t>(0, config_.max_retries);
  std::string last_error = "model tier did not run";
  bool last_resource = false;
  for (int64_t attempt = 0; attempt < attempts; ++attempt) {
    // Deadline check before every forward attempt...
    if (Clock::now() >= job.deadline) {
      response.status = Status::deadline_exceeded(
          "deadline expired before forward attempt " +
          std::to_string(attempt + 1));
      return true;
    }
    if (attempt > 0) ++response.retries;
    // Resolve the feature cache on the first attempt only: a cached-path
    // failure (injected fault, poison, cancel) retries on the full path so
    // a request can never be starved by its own cache entry.
    Tensor cached;
    if (attempt == 0 && cache_.enabled()) {
      if (!probe.probed) {
        probe.probed = true;
        probe.key = cache_.make_key(job.image_hash,
                                    self.replica->weights_generation());
        probe.features = cache_.lookup(probe.key);
      }
      cached = probe.features;
    }
    // Arm the worker's context for this attempt: an expired deadline or an
    // external cancel now aborts the forward at its next kernel checkpoint.
    // The client token (if any) binds to this context generation, so a
    // late cancel can never hit the worker's next request.
    if (config_.enable_cancellation) {
      // Job::deadline shares ExecContext's steady clock and its max() ==
      // "no deadline" convention, so it arms directly.
      self.ctx.arm(job.deadline);
      if (job.cancel != nullptr &&
          job.cancel->attach(&self.ctx, self.ctx.generation())) {
        job.cancel->detach();
        response.status = Status::cancelled("cancelled before the forward");
        return true;
      }
    }
    const Clock::time_point started = Clock::now();
    const core::YolloModel::InferOutcome outcome = [&] {
      obs::ScopedTimer timer(h_model_ms_);
      OBS_SPAN("serve.model_forward");
      if (cached.defined()) {
        // Hit: skip the backbone, run only the query-dependent half over
        // the pinned [C, grid_h, grid_w] view (reshape aliases storage, so
        // the entry stays pinned through the forward).
        const Shape& s = cached.shape();
        return self.replica->infer_from_features(
            cached.reshape({1, s[0], s[1], s[2]}), job.tokens);
      }
      return self.replica->infer(batched, job.tokens,
                                 /*capture_features=*/probe.probed);
    }();
    const double forward_ms = ms_since(started);
    if (config_.enable_cancellation && job.cancel != nullptr) {
      job.cancel->detach();
    }
    if (outcome.error == core::YolloModel::InferError::kCancelled) {
      // Terminal: whatever interrupted this forward (deadline, token,
      // watchdog kick) will interrupt a retry identically.
      response.status = map_cancelled(self);
      return true;
    }
    if (outcome.error == core::YolloModel::InferError::kResourceExhausted) {
      // The pool budget refused the forward. Trim the worker's pool (parked
      // blocks are the reclaimable share of the budget) and let the retry
      // loop probe again; if every attempt is refused the request degrades
      // to the baseline tier below, which allocates outside this pool.
      {
        std::lock_guard<std::mutex> lock(mutex_);
        c_pool_rejected_.inc();
      }
      {
        PoolScope joined;  // passthrough into the worker's long-lived pool
        joined.trim();
      }
      last_error = outcome.message;
      last_resource = true;
      continue;
    }
    last_resource = false;
    // A forward that ran to completion (healthy or merely non-finite)
    // feeds the scheduler's solo cost EWMA — the baseline every batched
    // prediction scales from.
    if (outcome.error == core::YolloModel::InferError::kNone ||
        outcome.error == core::YolloModel::InferError::kNonFinite) {
      note_batch_outcome(1, forward_ms, Clock::now() >= job.deadline);
    }
    // Populate the cache from a healthy full-path forward (the captured
    // features are upstream of the head, but only a clean pass earns an
    // entry; a refused insert just means this request ran uncached).
    if (!cached.defined() && probe.probed && outcome.element_ok(0) &&
        outcome.features.defined()) {
      const Shape& fs = outcome.features.shape();  // [1, C, gh, gw]
      cache_.insert(probe.key,
                    outcome.features.reshape({fs[1], fs[2], fs[3]}));
    }
    if (outcome.ok()) {
      // ...and after it: a slow forward that ate the budget is a deadline
      // miss even though it produced a box.
      if (Clock::now() >= job.deadline) {
        response.status = Status::deadline_exceeded(
            "forward pass finished past the deadline");
        return true;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        consecutive_failures_ = 0;
      }
      response.status = Status::ok_status();
      response.box = outcome.boxes.front();
      return true;
    }
    last_error = outcome.message;
    // Never ride the cached path into a retry.
    probe.features = Tensor();
  }

  // Tier failed. Pool-budget refusals do not feed the circuit breaker —
  // they are memory pressure, not model sickness, and tripping the breaker
  // on them would take the model away from requests the budget would have
  // admitted.
  if (last_resource) {
    response.status = Status::resource_exhausted(last_error);
    return false;
  }
  // Feed the circuit breaker. consecutive_failures_ is left accumulated
  // when the breaker trips, so a failed probe after cooldown re-trips
  // immediately.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++consecutive_failures_;
    if (consecutive_failures_ >= config_.breaker_threshold &&
        breaker_cooldown_left_ == 0) {
      breaker_cooldown_left_ = config_.breaker_cooldown;
      c_breaker_trips_.inc();
    }
  }
  response.status = Status::internal(last_error);
  return false;
}

void InferenceService::run_fallback_tier(Worker& self, Job& job,
                                         const std::string& reason,
                                         GroundResponse& response) {
  OBS_SPAN("serve.fallback");
  // Re-arm before the baseline tier: a context left cancelled by the model
  // tier (deadline already answered there) must not poison the baseline
  // ops, and the fallback still deserves in-flight deadline enforcement.
  if (config_.enable_cancellation) self.ctx.arm(job.deadline);
  if (fallback_ == nullptr) {
    response.status = Status::internal(
        reason + "; no baseline fallback tier is configured");
    return;
  }
  try {
    vision::Box box;
    {
      // The baseline tier is shared across workers (and, when the caller
      // provided a shared mutex, across sibling shards); degradation is the
      // rare path, so serialising it is the right trade.
      std::lock_guard<std::mutex> lock(*fallback_lock_);
      // The baseline tier is the escape hatch for memory pressure: it runs
      // budget-exempt (its working set is a fraction of the model tier's),
      // otherwise the same pool budget that refused the model forward also
      // refuses the degraded answer and degradation collapses into an
      // internal error.
      PoolScope joined;  // passthrough into the worker's long-lived pool
      const int64_t saved_budget = joined.budget_bytes();
      joined.set_budget_bytes(0);
      try {
        box = fallback_->ground(job.image, job.tokens);
      } catch (...) {
        joined.set_budget_bytes(saved_budget);
        throw;
      }
      joined.set_budget_bytes(saved_budget);
    }
    // A kernel that observed the cancel abandons its remaining work and
    // returns partial (garbage) output — the box cannot be trusted even
    // when it happens to look finite.
    if (config_.enable_cancellation && self.ctx.cancelled()) {
      response.status = map_cancelled(self);
      return;
    }
    if (!box_is_finite(box)) {
      response.status =
          Status::internal(reason + "; baseline tier produced a non-finite box");
      return;
    }
    response.box = vision::clip_box(box, static_cast<float>(job.image.size(2)),
                                    static_cast<float>(job.image.size(1)));
    response.status = Status::degraded("served by baseline tier (" + reason +
                                       ")");
  } catch (const ExecCancelled&) {
    response.status = map_cancelled(self);
  } catch (const std::exception& e) {
    response.status = Status::internal(reason + "; baseline fallback threw: " +
                                       e.what());
  }
}

Status InferenceService::map_cancelled(Worker& self) {
  // Measure signal -> first checkpoint that observed it. cancel_time_ns is
  // stamped by whichever writer fired first; by the time the forward has
  // unwound back here the observation already happened.
  const int64_t cancel_ns = self.ctx.cancel_time_ns();
  if (cancel_ns > 0) {
    const int64_t now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               Clock::now().time_since_epoch())
                               .count();
    h_cancel_latency_ms_.observe(
        std::max<double>(0.0, static_cast<double>(now_ns - cancel_ns) / 1e6));
  }
  // A deadline-caused cancel is the same client-visible event the observe-
  // only path reported: the budget ran out. Keep it kDeadlineExceeded so
  // the legacy four-term accounting holds in deadline-only scenarios.
  if (self.ctx.cause() == CancelCause::kDeadlineExceeded) {
    return Status::deadline_exceeded(
        "deadline expired mid-forward (cancelled at a kernel checkpoint)");
  }
  return Status::cancelled("cancelled mid-forward at a kernel checkpoint");
}

double InferenceService::predicted_cost_locked(int64_t k) const {
  if (k <= 0) return 0.0;
  const int64_t n = static_cast<int64_t>(batch_cost_ewma_.size());
  if (k < n && batch_cost_ewma_[static_cast<size_t>(k)] > 0.0) {
    return batch_cost_ewma_[static_cast<size_t>(k)];
  }
  // Nearest size with live data, scaled linearly: batched cost is close to
  // linear in k on this CPU path, and linear extrapolation errs high from
  // small sizes (the amortised fixed cost shrinks with k) — a conservative
  // bias for a join decision.
  int64_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (batch_cost_ewma_[static_cast<size_t>(j)] <= 0.0) continue;
    if (best == 0 || std::llabs(j - k) < std::llabs(best - k)) best = j;
  }
  if (best > 0) {
    return batch_cost_ewma_[static_cast<size_t>(best)] *
           static_cast<double>(k) / static_cast<double>(best);
  }
  // Cold start: the model-stage p95 (0 before the first forward, which
  // makes a cold scheduler batch as greedily as the legacy one did).
  return h_model_ms_.snapshot().quantile(0.95);
}

void InferenceService::note_batch_outcome(int64_t k, double forward_ms,
                                          bool deadline_missed) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (k <= 0 || k >= static_cast<int64_t>(batch_cost_ewma_.size())) return;
  double& ewma = batch_cost_ewma_[static_cast<size_t>(k)];
  ewma = ewma > 0.0 ? 0.7 * ewma + 0.3 * forward_ms : forward_ms;
  ++forwards_since_change_;
  if (!config_.adaptive_batching || k <= 1 || batch_target_ <= 1) return;
  const double solo = batch_cost_ewma_[1];
  const bool superlinear =
      solo > 0.0 && ewma > solo * static_cast<double>(k) * kShrinkRatio;
  if (deadline_missed || superlinear) {
    // Step down from the size that hurt, not from wherever the target
    // drifted: one bad batch of 3 under a target of 8 should land at 2.
    batch_target_ = std::max<int64_t>(1, std::min(batch_target_, k) - 1);
    c_sched_shrinks_.inc();
    forwards_since_change_ = 0;
    g_batch_target_.set(static_cast<double>(batch_target_));
  }
}

void InferenceService::maybe_grow_target_locked() {
  if (!config_.adaptive_batching) return;
  if (batch_target_ >= config_.batch_max) return;
  // Grow only under sustained pressure (a queue deeper than twice the
  // target) after enough clean forwards since the last change — one good
  // forward must not undo a shrink the next batch would re-learn.
  if (static_cast<int64_t>(queue_.size()) < 2 * batch_target_) return;
  if (forwards_since_change_ < kGrowPatience) return;
  ++batch_target_;
  c_sched_grows_.inc();
  forwards_since_change_ = 0;
  g_batch_target_.set(static_cast<double>(batch_target_));
}

void InferenceService::finish(Job& job, GroundResponse response) {
  // Claim the settlement: if the watchdog already failed this request while
  // its worker was wedged, the worker's late answer is dropped on the floor
  // (accounted exactly once, promise fulfilled exactly once).
  if (job.state->settled.exchange(true)) return;
  response.latency_ms = ms_since(job.submitted_at);
  h_latency_ms_.observe(response.latency_ms);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_retries_.inc(response.retries);
    record(response);
  }
  job.state->promise.set_value(std::move(response));
}

void InferenceService::settle(JobState& state, GroundResponse response) {
  if (state.settled.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    record(response);
  }
  state.promise.set_value(std::move(response));
}

void InferenceService::record(const GroundResponse& response) {
  // Caller holds mutex_: the submitted increment and the terminal-state
  // increment are indivisible from a snapshot's point of view.
  switch (response.status.code) {
    case StatusCode::kOk:
      c_served_.inc();
      break;
    case StatusCode::kDegraded:
      c_served_.inc();
      c_degraded_.inc();
      break;
    case StatusCode::kInvalidInput:
      c_rejected_.inc();
      c_rejected_invalid_.inc();
      break;
    case StatusCode::kOverloaded:
      c_rejected_.inc();
      c_rejected_overloaded_.inc();
      break;
    case StatusCode::kDeadlineExceeded:
      c_deadline_exceeded_.inc();
      break;
    case StatusCode::kInternalError:
      c_failed_.inc();
      break;
    case StatusCode::kCancelled:
      c_cancelled_.inc();
      break;
    case StatusCode::kResourceExhausted:
      // Memory-pressure refusal that even the fallback could not answer:
      // accounted as a rejection (the request was shed, not failed).
      c_rejected_.inc();
      c_rejected_resource_.inc();
      break;
  }
}

void InferenceService::watchdog_loop() {
  std::unique_lock<std::mutex> lk(watchdog_mu_);
  for (;;) {
    if (watchdog_cv_.wait_for(
            lk, std::chrono::milliseconds(config_.watchdog_interval_ms),
            [this] { return watchdog_stop_; })) {
      return;
    }
    // Snapshot the live slots under mutex_ (reap_worker may append); the
    // slots themselves are heap-stable, so raw pointers survive the
    // unlock.
    std::vector<Worker*> slots;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& worker : workers_) {
        if (!worker->lost.load(std::memory_order_acquire)) {
          slots.push_back(worker.get());
        }
      }
    }
    for (Worker* w : slots) {
      const uint64_t hb = w->ctx.heartbeats();
      const uint64_t gen = w->ctx.generation();
      if (!w->busy.load(std::memory_order_acquire)) {
        // Idle workers are healthy by definition; keep the bookkeeping in
        // sync so a stall is only ever counted against one request.
        w->last_heartbeats = hb;
        w->last_generation = gen;
        w->stalled_polls = 0;
        w->kicked = false;
        continue;
      }
      if (hb != w->last_heartbeats || gen != w->last_generation) {
        // Progress (or a new unit of work) since the last poll.
        w->last_heartbeats = hb;
        w->last_generation = gen;
        w->stalled_polls = 0;
        w->kicked = false;
        continue;
      }
      ++w->stalled_polls;
      if (!w->kicked &&
          w->stalled_polls >= config_.watchdog_stall_intervals) {
        // First escalation: cancel the stalled unit of work. Generation-
        // pinned so a worker that finished between our read and this call
        // keeps its next request.
        if (w->ctx.cancel_if_generation(gen, CancelCause::kCancelled)) {
          std::lock_guard<std::mutex> lock(mutex_);
          c_watchdog_kicks_.inc();
        }
        w->kicked = true;
        w->stalled_polls = 0;
      } else if (w->kicked &&
                 w->stalled_polls >= config_.watchdog_grace_intervals) {
        // The kick went unobserved past the grace period: the worker is
        // stuck somewhere no checkpoint is polled. Declare it lost.
        reap_worker(w);
      }
    }
  }
}

void InferenceService::reap_worker(Worker* worker) {
  // Mark first: the wedged thread checks `lost` when it eventually wakes,
  // and worker_loop stops claiming queue work for this slot.
  worker->lost.store(true, std::memory_order_release);
  // Fail the requests the slot had claimed. The settled flag makes this
  // race-free against the worker finishing one of them concurrently.
  std::vector<std::shared_ptr<JobState>> orphans;
  std::vector<std::string> queries;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    orphans.swap(worker->active);
    queries.swap(worker->active_queries);
  }
  for (size_t i = 0; i < orphans.size(); ++i) {
    GroundResponse response;
    if (i < queries.size()) response.normalised_query = queries[i];
    response.status = Status::internal(
        "worker declared lost by the watchdog while holding this request");
    settle(*orphans[i], std::move(response));
  }
  bool spawn = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_workers_lost_.inc();
    spawn = !stopping_;
  }
  if (!spawn) return;
  // Stamp the replacement from the master replica (never serves, so it is
  // safe to copy) outside mutex_ — a model copy is not cheap.
  auto replacement = std::make_unique<Worker>();
  {
    Rng rng(config_.seed + 1000 +
            static_cast<uint64_t>(c_workers_spawned_.value()));
    replacement->replica = std::make_unique<core::YolloModel>(
        model_config_, vocab_->size(), rng);
    nn::copy_module_state(*replacement->replica, *master_replica_);
    replacement->replica->set_training(false);
  }
  Worker* raw = replacement.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // raced with stop(); drop the replacement
    replacement->thread = std::thread([this, raw] { worker_loop(raw); });
    workers_.push_back(std::move(replacement));
    c_workers_spawned_.inc();
  }
  cv_.notify_all();
}

void InferenceService::stop() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  // The watchdog is joined, so no new slots can appear; index-based loop
  // regardless, for symmetry with the heap-stable slot contract. Slots are
  // kept (not cleared) so health() keeps reporting worker counts after
  // stop, as it always has.
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void InferenceService::pause_admission() {
  std::lock_guard<std::mutex> lock(mutex_);
  accepting_ = false;
}

bool InferenceService::resume_admission() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  accepting_ = true;
  return true;
}

obs::MetricsSnapshot InferenceService::metrics_snapshot() const {
  // Snapshot under the service lock: every taxonomy update happens with
  // mutex_ held, so the snapshot is a consistent cut of the accounting.
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.snapshot();
}

ServiceCounters InferenceService::counters() const {
  return counters_from_snapshot(metrics_snapshot());
}

double InferenceService::latency_p95_ms() const {
  return h_latency_ms_.snapshot().quantile(0.95);
}

HealthSnapshot InferenceService::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot snapshot;
  snapshot.accepting = accepting_;
  snapshot.breaker_open = breaker_cooldown_left_ > 0;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  int64_t live = 0;
  for (const auto& worker : workers_) {
    if (!worker->lost.load(std::memory_order_acquire)) ++live;
  }
  snapshot.workers = live;
  snapshot.counters = counters_from_snapshot(metrics_.snapshot());
  return snapshot;
}

ServiceCounters counters_from_snapshot(const obs::MetricsSnapshot& snapshot) {
  ServiceCounters c;
  c.submitted = snapshot.counter("serve.submitted");
  c.served = snapshot.counter("serve.served");
  c.degraded = snapshot.counter("serve.degraded");
  c.rejected = snapshot.counter("serve.rejected");
  c.rejected_invalid = snapshot.counter("serve.rejected_invalid");
  c.rejected_overloaded = snapshot.counter("serve.rejected_overloaded");
  c.rejected_resource = snapshot.counter("serve.rejected_resource");
  c.deadline_exceeded = snapshot.counter("serve.deadline_exceeded");
  c.failed = snapshot.counter("serve.failed");
  c.cancelled = snapshot.counter("serve.cancelled");
  c.retries = snapshot.counter("serve.retries");
  c.breaker_trips = snapshot.counter("serve.breaker_trips");
  c.watchdog_kicks = snapshot.counter("serve.watchdog_kicks");
  c.workers_lost = snapshot.counter("serve.workers_lost");
  c.workers_spawned = snapshot.counter("serve.workers_spawned");
  c.pool_rejected = snapshot.counter("serve.pool_rejected");
  c.batches_coalesced = snapshot.counter("serve.batches_coalesced");
  c.batched_requests = snapshot.counter("serve.batched_requests");
  c.queue_high_water =
      static_cast<int64_t>(snapshot.gauge("serve.queue_high_water"));
  c.max_batch = static_cast<int64_t>(snapshot.gauge("serve.max_batch"));
  c.solo_dispatches = snapshot.counter("serve.solo_dispatches");
  c.sched_shrinks = snapshot.counter("serve.sched_shrinks");
  c.sched_grows = snapshot.counter("serve.sched_grows");
  c.batch_target = static_cast<int64_t>(snapshot.gauge("serve.batch_target"));
  c.workers_warmed =
      static_cast<int64_t>(snapshot.gauge("serve.workers_warmed"));
  c.cache_hits = snapshot.counter("serve.cache_hits");
  c.cache_misses = snapshot.counter("serve.cache_misses");
  c.cache_evictions = snapshot.counter("serve.cache_evictions");
  c.cache_bytes = static_cast<int64_t>(snapshot.gauge("serve.cache_bytes"));
  return c;
}

}  // namespace yollo::serve
