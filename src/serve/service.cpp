#include "serve/service.h"

#include <algorithm>
#include <cmath>

#include "nn/module.h"
#include "obs/trace.h"
#include "runtime/fault.h"
#include "tensor/pool.h"

namespace yollo::serve {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

bool box_is_finite(const vision::Box& box) {
  return std::isfinite(box.x) && std::isfinite(box.y) &&
         std::isfinite(box.w) && std::isfinite(box.h);
}

}  // namespace

InferenceService::InferenceService(core::YolloModel& model,
                                   const data::Vocab& vocab,
                                   const ServeConfig& config,
                                   baseline::TwoStagePipeline* fallback,
                                   std::mutex* fallback_mutex)
    : config_(config),
      model_config_(model.config()),
      vocab_(&vocab),
      fallback_(fallback),
      c_submitted_(metrics_.counter("serve.submitted")),
      c_served_(metrics_.counter("serve.served")),
      c_degraded_(metrics_.counter("serve.degraded")),
      c_rejected_(metrics_.counter("serve.rejected")),
      c_rejected_invalid_(metrics_.counter("serve.rejected_invalid")),
      c_rejected_overloaded_(metrics_.counter("serve.rejected_overloaded")),
      c_deadline_exceeded_(metrics_.counter("serve.deadline_exceeded")),
      c_failed_(metrics_.counter("serve.failed")),
      c_retries_(metrics_.counter("serve.retries")),
      c_breaker_trips_(metrics_.counter("serve.breaker_trips")),
      c_batches_coalesced_(metrics_.counter("serve.batches_coalesced")),
      c_batched_requests_(metrics_.counter("serve.batched_requests")),
      g_queue_high_water_(metrics_.gauge("serve.queue_high_water")),
      g_max_batch_(metrics_.gauge("serve.max_batch")),
      h_queue_depth_(metrics_.histogram(
          "serve.queue_depth",
          obs::depth_bounds(std::max<int64_t>(1, config.queue_capacity)))),
      h_queue_wait_ms_(
          metrics_.histogram("serve.queue_wait_ms", obs::latency_ms_bounds())),
      h_model_ms_(
          metrics_.histogram("serve.model_ms", obs::latency_ms_bounds())),
      h_latency_ms_(
          metrics_.histogram("serve.latency_ms", obs::latency_ms_bounds())),
      fallback_lock_(fallback_mutex != nullptr ? fallback_mutex
                                               : &fallback_mutex_) {
  config_.num_workers = std::max<int64_t>(1, config_.num_workers);
  config_.queue_capacity = std::max<int64_t>(1, config_.queue_capacity);
  config_.batch_max = std::max<int64_t>(1, config_.batch_max);
  // One eval-mode replica per worker: threads never share mutable tensor
  // storage, so the pool needs no lock around the forward pass.
  replicas_.reserve(static_cast<size_t>(config_.num_workers));
  for (int64_t i = 0; i < config_.num_workers; ++i) {
    Rng rng(config_.seed + static_cast<uint64_t>(i));
    auto replica = std::make_unique<core::YolloModel>(model_config_,
                                                      vocab.size(), rng);
    nn::copy_module_state(*replica, model);
    replica->set_training(false);
    replicas_.push_back(std::move(replica));
  }
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int64_t i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

InferenceService::~InferenceService() { stop(); }

InferenceService::Clock::time_point InferenceService::resolve_deadline(
    const GroundRequest& request, int64_t default_ms, Clock::time_point now) {
  if (request.deadline_at != Clock::time_point{}) return request.deadline_at;
  const int64_t ms =
      request.deadline_ms >= 0 ? request.deadline_ms : default_ms;
  if (ms <= 0) return Clock::time_point::max();
  return now + std::chrono::milliseconds(ms);
}

std::future<GroundResponse> InferenceService::submit(GroundRequest request) {
  OBS_SPAN("serve.submit");
  const Clock::time_point now = Clock::now();
  std::promise<GroundResponse> promise;
  std::future<GroundResponse> future = promise.get_future();

  // Admission rejections resolve the future immediately with a typed
  // Status; they still count as submitted so the counter invariant holds.
  const auto reject = [&](Status status,
                          std::string normalised) -> std::future<GroundResponse> {
    GroundResponse response;
    response.status = std::move(status);
    response.normalised_query = std::move(normalised);
    response.latency_ms = ms_since(now);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      c_submitted_.inc();
      record(response);
    }
    promise.set_value(std::move(response));
    return std::move(future);
  };

  // Input validation happens before the request can consume a queue slot
  // (and outside the service lock — the NaN scan is O(pixels)).
  Status image_status =
      validate_image(request.image, model_config_.img_h, model_config_.img_w);
  if (!image_status.ok()) return reject(std::move(image_status), {});
  ValidatedQuery query =
      validate_query(request.query, *vocab_, model_config_.max_query_len);
  if (!query.status.ok()) {
    return reject(std::move(query.status), std::move(query.normalised));
  }

  // Deadline check at enqueue.
  const Clock::time_point deadline =
      resolve_deadline(request, config_.default_deadline_ms, now);
  if (deadline <= now) {
    return reject(
        Status::deadline_exceeded("deadline had already expired at enqueue"),
        std::move(query.normalised));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_submitted_.inc();
    if (!accepting_) {
      GroundResponse response;
      response.status = Status::overloaded("service is stopped or paused");
      response.normalised_query = std::move(query.normalised);
      response.latency_ms = ms_since(now);
      record(response);
      promise.set_value(std::move(response));
      return future;
    }
    if (static_cast<int64_t>(queue_.size()) >= config_.queue_capacity) {
      // Backpressure: reject, never grow. The client sees a typed
      // kOverloaded and can shed load or retry with jitter.
      GroundResponse response;
      response.status = Status::overloaded(
          "admission queue full (capacity " +
          std::to_string(config_.queue_capacity) + ")");
      response.normalised_query = std::move(query.normalised);
      response.latency_ms = ms_since(now);
      record(response);
      promise.set_value(std::move(response));
      return future;
    }
    Job job;
    job.image = std::move(request.image);
    job.tokens = std::move(query.tokens);
    job.normalised_query = std::move(query.normalised);
    job.submitted_at = now;
    job.deadline = deadline;
    job.promise = std::move(promise);
    queue_.push_back(std::move(job));
    const double depth = static_cast<double>(queue_.size());
    g_queue_high_water_.set_max(depth);
    h_queue_depth_.observe(depth);
  }
  cv_.notify_one();
  return future;
}

GroundResponse InferenceService::ground(GroundRequest request) {
  return submit(std::move(request)).get();
}

void InferenceService::worker_loop(int64_t worker_id) {
  core::YolloModel& replica = *replicas_[static_cast<size_t>(worker_id)];
  // Scoped fault injector (when the service owns one): every forward this
  // worker runs consumes the shard-local injector instead of the global.
  runtime::FaultInjector::ThreadBinding fault_binding(config_.fault_injector);
  // Long-lived per-worker storage pool: the PoolScope that infer() installs
  // internally joins this one, so tensor storage recycles across requests
  // instead of only within a single forward.
  PoolScope pool;
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      // Micro-batching: coalesce whatever compatible work is already
      // queued, up to batch_max — never hold the queue waiting for a batch
      // to fill. All admitted jobs share the model's image geometry
      // (admission validates against the config), so every queued job is
      // batch-compatible.
      int64_t take =
          std::min(config_.batch_max, static_cast<int64_t>(queue_.size()));
      // Deadline-aware coalescing: a batch of k is slower than a batch of
      // 1, so a near-deadline request must not be serialised into a batched
      // forward behind strangers. When the oldest queued request's slack is
      // below the observed model-stage p95, it runs solo.
      if (take > 1 &&
          queue_.front().deadline != Clock::time_point::max()) {
        const double slack_ms =
            std::chrono::duration<double, std::milli>(queue_.front().deadline -
                                                      Clock::now())
                .count();
        if (slack_ms < h_model_ms_.snapshot().quantile(0.95)) take = 1;
      }
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    process_batch(replica, batch);
  }
}

void InferenceService::process_batch(core::YolloModel& replica,
                                     std::vector<Job>& batch) {
  // Deadline check at dequeue, per request: a request that starved in the
  // queue is answered (typed), not silently processed past its budget.
  const Clock::time_point now = Clock::now();
  std::vector<Job*> live;
  live.reserve(batch.size());
  for (Job& job : batch) {
    h_queue_wait_ms_.observe(
        std::chrono::duration<double, std::milli>(now - job.submitted_at)
            .count());
    if (now >= job.deadline) {
      GroundResponse response;
      response.normalised_query = job.normalised_query;
      response.status =
          Status::deadline_exceeded("deadline expired while queued");
      finish(job, std::move(response));
    } else {
      live.push_back(&job);
    }
  }
  if (live.empty()) return;

  // Circuit breaker: the cooldown is counted per request (deterministic for
  // tests), exactly as in the single-image path — requests that consume
  // cooldown slots go straight to the baseline tier.
  std::vector<Job*> model_jobs;
  std::vector<Job*> breaker_jobs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (Job* job : live) {
      if (breaker_cooldown_left_ > 0) {
        --breaker_cooldown_left_;
        breaker_jobs.push_back(job);
      } else {
        model_jobs.push_back(job);
      }
    }
  }
  for (Job* job : breaker_jobs) {
    GroundResponse response;
    response.normalised_query = job->normalised_query;
    run_fallback_tier(*job, "circuit breaker open", response);
    finish(*job, std::move(response));
  }

  if (model_jobs.empty()) return;
  if (model_jobs.size() == 1) {
    run_single(replica, *model_jobs.front());
  } else {
    run_batched_model_tier(replica, model_jobs);
  }
}

void InferenceService::run_single(core::YolloModel& replica, Job& job) {
  GroundResponse response;
  response.normalised_query = job.normalised_query;
  if (run_model_tier(replica, job, response)) {
    finish(job, std::move(response));
    return;
  }
  const std::string degrade_reason =
      "model tier failed: " + response.status.message;
  // Deadline check between the model tier and the fallback tier.
  if (Clock::now() >= job.deadline) {
    response.status =
        Status::deadline_exceeded("deadline expired after the model tier");
    finish(job, std::move(response));
    return;
  }
  run_fallback_tier(job, degrade_reason, response);
  finish(job, std::move(response));
}

void InferenceService::run_batched_model_tier(core::YolloModel& replica,
                                              const std::vector<Job*>& jobs) {
  const int64_t k = static_cast<int64_t>(jobs.size());
  const int64_t plane = 3 * model_config_.img_h * model_config_.img_w;
  Tensor batched({k, 3, model_config_.img_h, model_config_.img_w});
  std::vector<int64_t> tokens;
  tokens.reserve(static_cast<size_t>(k * model_config_.max_query_len));
  float* dst = batched.data();
  for (int64_t i = 0; i < k; ++i) {
    const Job& job = *jobs[static_cast<size_t>(i)];
    std::copy(job.image.data(), job.image.data() + plane, dst + i * plane);
    tokens.insert(tokens.end(), job.tokens.begin(), job.tokens.end());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_batches_coalesced_.inc();
    c_batched_requests_.inc(k);
    g_max_batch_.set_max(static_cast<double>(k));
  }

  const core::YolloModel::InferOutcome outcome = [&] {
    obs::ScopedTimer timer(h_model_ms_);
    OBS_SPAN("serve.batch_forward");
    return replica.infer(batched, tokens);
  }();

  if (outcome.element_errors.size() != static_cast<size_t>(k)) {
    // Batch-level failure (thrown fault, invalid input): no per-element
    // verdicts exist. Every request re-runs the single-image pipeline —
    // per-request retries and degradation, exactly as if it had never been
    // coalesced. The failed batch attempt itself does not feed the breaker;
    // the per-request salvage runs below do.
    for (Job* job : jobs) run_single(replica, *job);
    return;
  }

  if (outcome.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    consecutive_failures_ = 0;
  }

  // Answer the healthy elements first (a poisoned batch mate must not delay
  // them further), then salvage the poisoned ones individually.
  std::vector<Job*> salvage;
  for (int64_t i = 0; i < k; ++i) {
    Job& job = *jobs[static_cast<size_t>(i)];
    if (!outcome.element_ok(i)) {
      salvage.push_back(&job);
      continue;
    }
    GroundResponse response;
    response.normalised_query = job.normalised_query;
    if (Clock::now() >= job.deadline) {
      response.status = Status::deadline_exceeded(
          "forward pass finished past the deadline");
    } else {
      response.status = Status::ok_status();
      response.box = outcome.element_boxes[static_cast<size_t>(i)];
    }
    finish(job, std::move(response));
  }
  for (Job* job : salvage) run_single(replica, *job);
}

bool InferenceService::run_model_tier(core::YolloModel& replica, Job& job,
                                      GroundResponse& response) {
  const Tensor batched =
      job.image.reshape({1, 3, model_config_.img_h, model_config_.img_w});
  const int64_t attempts = 1 + std::max<int64_t>(0, config_.max_retries);
  std::string last_error = "model tier did not run";
  for (int64_t attempt = 0; attempt < attempts; ++attempt) {
    // Deadline check before every forward attempt...
    if (Clock::now() >= job.deadline) {
      response.status = Status::deadline_exceeded(
          "deadline expired before forward attempt " +
          std::to_string(attempt + 1));
      return true;
    }
    if (attempt > 0) ++response.retries;
    const core::YolloModel::InferOutcome outcome = [&] {
      obs::ScopedTimer timer(h_model_ms_);
      OBS_SPAN("serve.model_forward");
      return replica.infer(batched, job.tokens);
    }();
    if (outcome.ok()) {
      // ...and after it: a slow forward that ate the budget is a deadline
      // miss even though it produced a box.
      if (Clock::now() >= job.deadline) {
        response.status = Status::deadline_exceeded(
            "forward pass finished past the deadline");
        return true;
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        consecutive_failures_ = 0;
      }
      response.status = Status::ok_status();
      response.box = outcome.boxes.front();
      return true;
    }
    last_error = outcome.message;
  }

  // Tier failed: feed the circuit breaker. consecutive_failures_ is left
  // accumulated when the breaker trips, so a failed probe after cooldown
  // re-trips immediately.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++consecutive_failures_;
    if (consecutive_failures_ >= config_.breaker_threshold &&
        breaker_cooldown_left_ == 0) {
      breaker_cooldown_left_ = config_.breaker_cooldown;
      c_breaker_trips_.inc();
    }
  }
  response.status = Status::internal(last_error);
  return false;
}

void InferenceService::run_fallback_tier(Job& job, const std::string& reason,
                                         GroundResponse& response) {
  OBS_SPAN("serve.fallback");
  if (fallback_ == nullptr) {
    response.status = Status::internal(
        reason + "; no baseline fallback tier is configured");
    return;
  }
  try {
    vision::Box box;
    {
      // The baseline tier is shared across workers (and, when the caller
      // provided a shared mutex, across sibling shards); degradation is the
      // rare path, so serialising it is the right trade.
      std::lock_guard<std::mutex> lock(*fallback_lock_);
      box = fallback_->ground(job.image, job.tokens);
    }
    if (!box_is_finite(box)) {
      response.status =
          Status::internal(reason + "; baseline tier produced a non-finite box");
      return;
    }
    response.box = vision::clip_box(box, static_cast<float>(job.image.size(2)),
                                    static_cast<float>(job.image.size(1)));
    response.status = Status::degraded("served by baseline tier (" + reason +
                                       ")");
  } catch (const std::exception& e) {
    response.status = Status::internal(reason + "; baseline fallback threw: " +
                                       e.what());
  }
}

void InferenceService::finish(Job& job, GroundResponse response) {
  response.latency_ms = ms_since(job.submitted_at);
  h_latency_ms_.observe(response.latency_ms);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    c_retries_.inc(response.retries);
    record(response);
  }
  job.promise.set_value(std::move(response));
}

void InferenceService::record(const GroundResponse& response) {
  // Caller holds mutex_: the submitted increment and the terminal-state
  // increment are indivisible from a snapshot's point of view.
  switch (response.status.code) {
    case StatusCode::kOk:
      c_served_.inc();
      break;
    case StatusCode::kDegraded:
      c_served_.inc();
      c_degraded_.inc();
      break;
    case StatusCode::kInvalidInput:
      c_rejected_.inc();
      c_rejected_invalid_.inc();
      break;
    case StatusCode::kOverloaded:
      c_rejected_.inc();
      c_rejected_overloaded_.inc();
      break;
    case StatusCode::kDeadlineExceeded:
      c_deadline_exceeded_.inc();
      break;
    case StatusCode::kInternalError:
      c_failed_.inc();
      break;
  }
}

void InferenceService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void InferenceService::pause_admission() {
  std::lock_guard<std::mutex> lock(mutex_);
  accepting_ = false;
}

bool InferenceService::resume_admission() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  accepting_ = true;
  return true;
}

obs::MetricsSnapshot InferenceService::metrics_snapshot() const {
  // Snapshot under the service lock: every taxonomy update happens with
  // mutex_ held, so the snapshot is a consistent cut of the accounting.
  std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.snapshot();
}

ServiceCounters InferenceService::counters() const {
  return counters_from_snapshot(metrics_snapshot());
}

double InferenceService::latency_p95_ms() const {
  return h_latency_ms_.snapshot().quantile(0.95);
}

HealthSnapshot InferenceService::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  HealthSnapshot snapshot;
  snapshot.accepting = accepting_;
  snapshot.breaker_open = breaker_cooldown_left_ > 0;
  snapshot.queue_depth = static_cast<int64_t>(queue_.size());
  snapshot.workers = static_cast<int64_t>(replicas_.size());
  snapshot.counters = counters_from_snapshot(metrics_.snapshot());
  return snapshot;
}

ServiceCounters counters_from_snapshot(const obs::MetricsSnapshot& snapshot) {
  ServiceCounters c;
  c.submitted = snapshot.counter("serve.submitted");
  c.served = snapshot.counter("serve.served");
  c.degraded = snapshot.counter("serve.degraded");
  c.rejected = snapshot.counter("serve.rejected");
  c.rejected_invalid = snapshot.counter("serve.rejected_invalid");
  c.rejected_overloaded = snapshot.counter("serve.rejected_overloaded");
  c.deadline_exceeded = snapshot.counter("serve.deadline_exceeded");
  c.failed = snapshot.counter("serve.failed");
  c.retries = snapshot.counter("serve.retries");
  c.breaker_trips = snapshot.counter("serve.breaker_trips");
  c.batches_coalesced = snapshot.counter("serve.batches_coalesced");
  c.batched_requests = snapshot.counter("serve.batched_requests");
  c.queue_high_water =
      static_cast<int64_t>(snapshot.gauge("serve.queue_high_water"));
  c.max_batch = static_cast<int64_t>(snapshot.gauge("serve.max_batch"));
  return c;
}

}  // namespace yollo::serve
