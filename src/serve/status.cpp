#include "serve/status.h"

namespace yollo::serve {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kDegraded:
      return "DEGRADED";
    case StatusCode::kInvalidInput:
      return "INVALID_INPUT";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternalError:
      return "INTERNAL_ERROR";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out = status_code_name(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace yollo::serve
