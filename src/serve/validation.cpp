#include "serve/validation.h"

#include <cmath>

#include "tensor/shape.h"

namespace yollo::serve {

Status validate_image(const Tensor& image, int64_t img_h, int64_t img_w) {
  if (!image.defined() || image.numel() == 0) {
    return Status::invalid_input("image tensor is undefined or empty");
  }
  const Shape expected{3, img_h, img_w};
  if (image.shape() != expected) {
    return Status::invalid_input("image shape " +
                                 shape_to_string(image.shape()) +
                                 " != expected " + shape_to_string(expected));
  }
  const float* data = image.data();
  const int64_t n = image.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return Status::invalid_input("image contains a non-finite pixel at "
                                   "flat index " +
                                   std::to_string(i));
    }
  }
  return Status::ok_status();
}

ValidatedQuery validate_query(const std::string& query,
                              const data::Vocab& vocab,
                              int64_t max_query_len) {
  ValidatedQuery out;
  const std::vector<std::string> words = data::tokenize(query);
  if (words.empty()) {
    out.status =
        Status::invalid_input("query is empty after normalisation: \"" +
                             query + "\"");
    return out;
  }
  std::vector<int64_t> ids;
  ids.reserve(words.size());
  for (const std::string& word : words) {
    const int64_t id = vocab.id(word);
    ids.push_back(id);
    if (id == data::Vocab::kUnk) {
      ++out.unknown_words;
    } else {
      ++out.known_words;
    }
    if (!out.normalised.empty()) out.normalised += ' ';
    out.normalised += word;
  }
  if (out.known_words == 0) {
    out.status = Status::invalid_input(
        "no word of the query is in the vocabulary: \"" + out.normalised +
        "\"");
    return out;
  }
  out.tokens = data::pad_to(ids, max_query_len);
  out.status = Status::ok_status();
  return out;
}

}  // namespace yollo::serve
