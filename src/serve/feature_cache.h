// Content-addressed backbone feature cache (DESIGN.md §15).
//
// The YOLLO pipeline splits cleanly into a query-independent half (CoordConv
// + backbone over the pixels) and a query-dependent half (Rel2Att stack +
// detection head over the resulting [C, grid_h, grid_w] feature map). The
// backbone dominates the forward, so the smart_gallery pattern — one image
// interrogated by many queries — re-pays the expensive half for every query
// today. This cache stores backbone features keyed by the *content* of the
// image, so repeat queries against the same pixels skip the backbone
// entirely and run only fuse_features (YolloModel::infer_from_features).
//
// Keying: FNV-1a over every image byte, finalised through splitmix64
// (HashRing::hash_bytes — the same family the router uses for shard
// locality, but over the full buffer: the router only needs placement
// stability, the cache needs content identity), then mixed with the model's
// weights_generation() and an internal invalidation epoch. A model reload
// or invalidate_plans() bumps the generation, so stale features can never
// be served across a weight swap even if invalidate() is missed.
//
// Memory: entries are plain heap vectors (never pool-backed — the cache is
// shared across worker threads while the storage pool is thread-local) with
// the byte cost charged against the inserting worker's active PoolScope via
// detail::charge_external_bytes, exactly like the plan arenas. Eviction is
// byte-budgeted LRU; an insert the budget refuses (PoolBudgetExceeded) is
// simply dropped and the request proceeds uncached — the cache is an
// accelerator, never a correctness dependency.
//
// Thread safety: one mutex over the map + LRU list. lookup() returns a
// Tensor view whose owner handle pins the entry's shared_ptr, so a hit
// stays valid even if another worker evicts the entry a nanosecond later.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "tensor/tensor.h"

namespace yollo::serve {

class FeatureCache {
 public:
  // `metrics` is the owning service's registry; the cache registers
  // serve.cache_hits / serve.cache_misses / serve.cache_evictions counters
  // and the serve.cache_bytes gauge there. `budget_bytes` <= 0 disables the
  // cache entirely (every lookup misses without counting, every insert is
  // refused) — the zero-cost default for deployments that never repeat
  // images.
  FeatureCache(obs::MetricsRegistry& metrics, int64_t budget_bytes);

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  bool enabled() const { return budget_bytes_ > 0; }
  int64_t budget_bytes() const { return budget_bytes_; }

  // Content hash of an image tensor: FNV-1a/splitmix64 over every byte of
  // the float buffer (not the router's 4 KiB locality prefix — content
  // identity must cover the whole image).
  static uint64_t hash_image(const Tensor& image);

  // Full cache key: content hash mixed with the model weights generation
  // (stale-across-reload protection) and this cache's invalidation epoch.
  uint64_t make_key(uint64_t image_hash, uint64_t weights_generation) const;

  // Hit: a [C, grid_h, grid_w] view aliasing the cached entry, pinned by
  // the view's owner handle so concurrent eviction cannot free it. Miss:
  // an undefined Tensor. Counts hits/misses (no-op miss when disabled).
  Tensor lookup(uint64_t key);

  // Copy a single image's feature map into the cache under `key`. Evicts
  // LRU entries until the new one fits, then charges the caller's active
  // PoolScope budget for the bytes. Returns false — and caches nothing —
  // when the cache is disabled, the entry alone exceeds the whole cache
  // budget, the features contain non-finite values (poisoned forwards must
  // not be immortalised), or the pool budget refuses the charge
  // (degrade-to-uncached, counted in stats().budget_refused).
  bool insert(uint64_t key, const Tensor& features);

  // Drop every entry and bump the epoch so in-flight make_key() results go
  // stale. Called on invalidate_plans() / model reload.
  void invalidate();

  struct Stats {
    int64_t entries = 0;
    int64_t bytes = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t budget_refused = 0;  // inserts dropped by PoolBudgetExceeded
    int64_t invalidations = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::vector<float> data;
    Shape shape;
    int64_t bytes = 0;
    std::shared_ptr<void> charge;  // PoolScope external-bytes handle
    std::list<uint64_t>::iterator lru_pos;
  };

  // Remove the least-recently-used entry. Caller holds mu_.
  void evict_one_locked();

  const int64_t budget_bytes_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
  std::list<uint64_t> lru_;  // front = most recent, back = next victim
  int64_t bytes_ = 0;
  uint64_t epoch_ = 0;
  int64_t budget_refused_ = 0;
  int64_t invalidations_ = 0;

  obs::Counter& c_hits_;
  obs::Counter& c_misses_;
  obs::Counter& c_evictions_;
  obs::Gauge& g_bytes_;
};

}  // namespace yollo::serve
