// Sharded serving front-end: N InferenceService shards behind one
// consistent-hash router that never loses a request when shards misbehave.
//
// The paper's pitch is a pipeline cheap enough to serve interactively; the
// ROADMAP's is serving it to millions of users. One InferenceService cannot
// survive that: a poisoned replica set or one slow worker pool takes the
// whole endpoint down. The Router scales out and — more importantly —
// contains failures (DESIGN.md §12):
//
//   submit ── hash(image id) ──> primary shard ──────────┐
//      │            │                                     ├─> first answer
//      │            └─ deadline at risk (live p95)        │   wins; the
//      │               └──> hedge to ring successor ──────┘   loser is
//      │                    (≤ hedge_budget extra load)       ignored
//      │
//      └─ retryable shard answer (kOverloaded/kInternalError)
//         └──> failover to the next untried shard on the ring
//
//   health thread: scores every shard from health() + queue-depth gauges;
//   a shard whose breaker opens or whose health degrades is taken out of
//   rotation, drained (queued work still answered), and probed back in
//   half-open — one real request at a time; a failed probe re-drains it.
//
// Consistent hashing by image id preserves backbone-feature locality per
// shard (one image, many queries lands on one shard's future feature
// cache); adding or removing a shard remaps only ~1/N of the key space.
//
// Accounting: the router owns its own obs::MetricsRegistry ("router.*").
// Every submitted request terminates in exactly one router-level outcome —
// hedges and failovers are deduplicated first-wins — so the service-level
// invariant extends to the router:
//
//   served + rejected + deadline_exceeded + failed == submitted
//
// and holds in every concurrent snapshot (terminal accounting happens under
// the router mutex, exactly like InferenceService).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/fault.h"
#include "serve/service.h"

namespace yollo::serve {

// Consistent-hash ring with virtual nodes. Deterministic (no RNG): vnode
// positions are splitmix64 of (node, replica). Not thread-safe by itself;
// the Router mutates it only under its own mutex (and tests use it
// standalone).
class HashRing {
 public:
  explicit HashRing(int64_t vnodes_per_node = 64);

  void add_node(int64_t node);
  void remove_node(int64_t node);
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }

  // Owner of `key_hash`: the first vnode at or clockwise after it. -1 when
  // the ring is empty.
  int64_t node_for(uint64_t key_hash) const;
  // Every distinct node in ring order starting at the owner — the failover
  // / hedging preference order for this key.
  std::vector<int64_t> walk(uint64_t key_hash) const;

  static uint64_t hash_key(const std::string& key);
  static uint64_t hash_bytes(const void* data, size_t len,
                             uint64_t seed = 0x9e3779b97f4a7c15ull);

 private:
  int64_t vnodes_;
  std::map<uint64_t, int64_t> ring_;  // vnode position -> node
  std::map<int64_t, int64_t> nodes_;  // node -> vnode count
};

struct RouterConfig {
  int64_t num_shards = 3;
  // Template for every shard's service; seed is offset per shard so replica
  // construction differs, and fault_injector is overridden per shard when
  // scoped_faults is set.
  ServeConfig shard;
  int64_t vnodes = 64;
  // Router-level default deadline for requests that do not carry their own
  // (same semantics as ServeConfig::default_deadline_ms).
  int64_t default_deadline_ms = 0;

  // Hedged retries: when the primary's observed p95 (read live from its
  // latency histogram by the health thread) exceeds the request's remaining
  // budget, a duplicate is launched on the ring successor and the first
  // answer wins. hedge_budget caps hedges to that fraction of submitted
  // requests (≤10% extra load by default).
  bool hedging = true;
  double hedge_budget = 0.10;

  // Failovers: a retryable shard answer (kOverloaded / kInternalError) is
  // re-routed to the next untried shard on the ring while the deadline
  // allows. -1 = up to every other shard once.
  int64_t max_failovers = -1;

  // Health manager.
  int64_t health_interval_ms = 2;   // shard scoring/probing poll period
  double soft_score = 0.75;         // below: prefer a healthier successor
  double drain_score = 0.5;         // below: out of rotation, drain
  int64_t shard_failure_threshold = 3;  // consecutive router-visible
                                        // failures that trip a shard out
  int64_t drain_cooldown_ms = 20;   // min drained time before probing
  int64_t probe_interval_ms = 10;   // half-open: one probe per interval

  // Per-shard scoped FaultInjector instances (chaos can then hit one shard;
  // the env-driven global injector no longer reaches these workers). Off =
  // all shards consume the process-wide injector, as before PR 6.
  bool scoped_faults = true;

  uint64_t seed = 1234;
};

struct RouteRequest {
  Tensor image;       // [3, img_h, img_w] matching the model's config
  std::string query;  // free text
  // Consistent-hash key. Empty derives a content hash from the image bytes
  // (same image -> same shard, the feature-cache locality the ROADMAP
  // wants); non-empty lets callers pin e.g. a gallery id.
  std::string image_id;
  int64_t deadline_ms = -1;  // < 0 router default, 0 none, > 0 from submit()
  std::chrono::steady_clock::time_point deadline_at{};  // overrides _ms
};

struct RouteResponse {
  Status status;
  vision::Box box;  // valid when status.answered()
  std::string normalised_query;
  double latency_ms = 0.0;  // router submit() to router completion
  int64_t shard = -1;       // shard that produced the winning answer
  bool hedged = false;      // a hedge was launched for this request
  bool hedge_won = false;   // ...and the hedge beat the primary
  int64_t failovers = 0;    // re-routes this request consumed
  int64_t retries = 0;      // winning shard's model-tier retries
};

// Flat view of the router registry ("router.*" names), derived from one
// coherent snapshot. Invariant once all submitted futures have resolved:
//   served + rejected + deadline_exceeded + failed == submitted.
struct RouterCounters {
  int64_t submitted = 0;
  int64_t served = 0;    // kOk + kDegraded
  int64_t degraded = 0;  // subset of served
  int64_t rejected = 0;  // kInvalidInput + kOverloaded terminal answers
  int64_t deadline_exceeded = 0;
  int64_t failed = 0;
  int64_t hedges_launched = 0;
  int64_t hedges_won = 0;
  // Losing attempts (hedge or stale racer) actively cancelled after another
  // attempt won. Visibility only: a cancelled loser never reaches the
  // router taxonomy (its job already terminated with the winner).
  int64_t hedge_cancelled = 0;
  int64_t failovers = 0;
  int64_t probes_sent = 0;
  int64_t probes_failed = 0;
  int64_t shards_drained = 0;   // rotations out (drain events)
  int64_t shards_restored = 0;  // successful probes back to active
};

enum class ShardState { kActive, kDraining, kProbing };
const char* shard_state_name(ShardState state);

struct ShardHealth {
  int64_t id = -1;
  ShardState state = ShardState::kActive;
  double score = 0.0;
  double p95_ms = 0.0;  // shard-observed request latency p95
  int64_t queue_depth = 0;
  bool accepting = false;
  bool breaker_open = false;
  int64_t consecutive_failures = 0;
};

struct RouterHealth {
  bool accepting = false;
  int64_t in_rotation = 0;  // shards currently kActive
  std::vector<ShardHealth> shards;
  RouterCounters counters;
};

class Router {
 public:
  // `model` is copied into every shard's replica set; `fallback` (optional)
  // is shared by all shards — the router hands every shard one shared mutex
  // so cross-shard degradations serialise correctly. `vocab` and `fallback`
  // must outlive the router.
  Router(core::YolloModel& model, const data::Vocab& vocab,
         const RouterConfig& config,
         baseline::TwoStagePipeline* fallback = nullptr);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Route, hedge, failover. The returned future always resolves with a
  // typed RouteResponse — never an exception, never a hang, including
  // during shutdown and shard failure.
  std::future<RouteResponse> submit(RouteRequest request);

  // submit() + wait.
  RouteResponse route(RouteRequest request);

  // Stop admission, resolve every in-flight request, stop the shards.
  // Idempotent; also called by the destructor.
  void stop();

  // --- introspection / chaos hooks ----------------------------------------
  int64_t num_shards() const;
  InferenceService& shard(int64_t i);
  // The shard's scoped injector (null unless config.scoped_faults).
  runtime::FaultInjector* shard_injector(int64_t i);
  // Chaos: stop() the shard's service mid-run. The router's health loop
  // sees the death and routes around it; in-flight requests on the shard
  // are still answered (stop drains) or failed over.
  void kill_shard(int64_t i);

  // The hash key submit() would use for this request, and the shard the
  // ring currently owns it to (ignores health; tests pin placement).
  static uint64_t key_for(const RouteRequest& request);
  int64_t ring_owner(uint64_t key_hash) const;

  // Coherent accounting reads (same contract as InferenceService: the
  // taxonomy is only ever updated under the router mutex the snapshot
  // takes).
  RouterCounters counters() const;
  RouterHealth health() const;
  obs::MetricsSnapshot metrics_snapshot() const;

  const RouterConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Attempt {
    int64_t shard = -1;
    bool hedge = false;
    bool probe = false;
    std::future<GroundResponse> future;
    // Per-attempt cancellation handle: when another attempt wins the race,
    // the losers are cancelled so their shards stop burning compute on an
    // answer nobody will read (the shard accounts them kCancelled).
    std::shared_ptr<CancelToken> cancel;
    bool done = false;
  };

  struct Job {
    uint64_t key_hash = 0;
    Tensor image;
    std::string query;
    Clock::time_point submitted_at;
    Clock::time_point deadline;  // Clock::time_point::max() == none
    std::vector<int64_t> tried;
    std::vector<Attempt> attempts;
    std::promise<RouteResponse> promise;
    bool hedged = false;
    int64_t failovers = 0;
    GroundResponse last_failure;  // best terminal answer if all routes fail
    bool done = false;
  };

  struct ShardEntry {
    std::unique_ptr<runtime::FaultInjector> injector;
    std::unique_ptr<InferenceService> service;
    ShardState state = ShardState::kActive;
    double score = 1.0;
    double p95_ms = 0.0;
    int64_t queue_depth = 0;
    bool accepting = true;
    bool breaker_open = false;
    int64_t consecutive_failures = 0;
    Clock::time_point drained_at{};
    Clock::time_point next_probe_at{};
  };

  // Routing decision for one request/failover: shard id (-1 = none) and
  // whether the pick is a half-open probe. Caller holds mutex_.
  struct Pick {
    int64_t shard = -1;
    bool probe = false;
  };
  Pick pick_shard(uint64_t key_hash, const std::vector<int64_t>& tried,
                  Clock::time_point now);
  // Hedge target: first active untried shard after `primary` on the ring.
  int64_t pick_hedge(uint64_t key_hash, int64_t primary);

  // Builds the per-attempt GroundRequest (image storage is shared, not
  // copied) with a fresh CancelToken and submits it to the shard, filling
  // attempt.future/attempt.cancel — called WITHOUT mutex_ held (shard
  // admission validates O(pixels) and takes the shard lock).
  void dispatch(const Job& job, Attempt& attempt);

  void completion_loop();
  void health_loop();
  // One completion scan over `job`; returns true when the job finished.
  bool advance_job(Job& job, Clock::time_point now);
  // Terminal accounting + promise resolution. Takes mutex_.
  void finish_job(Job& job, GroundResponse response, int64_t shard,
                  bool hedge_won);
  // Shard outcome feedback (mutex_ held): failure streaks trip the shard
  // out of rotation; probe results close or re-open the half-open state.
  void note_shard_result(int64_t shard, bool retryable_failure, bool probe,
                         bool probe_ok);

  static Clock::time_point resolve_deadline(const RouteRequest& request,
                                            int64_t default_ms,
                                            Clock::time_point now);

  RouterConfig config_;
  const data::Vocab* vocab_;
  std::mutex fallback_gate_;  // shared across shards (see ctor comment)
  std::vector<ShardEntry> shards_;

  mutable std::mutex mutex_;  // ring, shard states, jobs, counters
  std::condition_variable cv_;
  HashRing ring_;
  std::vector<std::unique_ptr<Job>> inflight_;
  // Submissions past admission but not yet in inflight_ (dispatch runs
  // outside mutex_). The completion thread refuses to exit while any are
  // pending, so a submit racing stop() can never strand its job.
  int64_t submitting_ = 0;
  bool accepting_ = true;
  bool stopping_ = false;

  std::thread completion_thread_;
  std::thread health_thread_;

  // Router registry; taxonomy counters only updated under mutex_ (coherent
  // snapshots), per-shard gauges are observability-only.
  obs::MetricsRegistry metrics_;
  obs::Counter& c_submitted_;
  obs::Counter& c_served_;
  obs::Counter& c_degraded_;
  obs::Counter& c_rejected_;
  obs::Counter& c_deadline_exceeded_;
  obs::Counter& c_failed_;
  obs::Counter& c_hedges_launched_;
  obs::Counter& c_hedges_won_;
  obs::Counter& c_hedge_cancelled_;
  obs::Counter& c_failovers_;
  obs::Counter& c_probes_sent_;
  obs::Counter& c_probes_failed_;
  obs::Counter& c_shards_drained_;
  obs::Counter& c_shards_restored_;
  obs::Histogram& h_latency_ms_;
  obs::Gauge& g_inflight_;
};

// Flatten a router metrics snapshot ("router.*" names) into the flat
// counter struct; the invariant holds for the struct whenever it held for
// the snapshot.
RouterCounters router_counters_from_snapshot(
    const obs::MetricsSnapshot& snapshot);

}  // namespace yollo::serve
