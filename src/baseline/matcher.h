// Stage-ii matching models for the two-stage baseline pipeline.
//
// These reproduce the structure (and, deliberately, the cost profile) of the
// speaker/listener baselines the paper compares against (§4.5, Table 5,
// ref [42]): every proposal from stage-i is cropped, resized, embedded by a
// CNN, and scored against the query — tens of per-proposal network passes
// per grounding query, versus YOLLO's single pass.
//
//  - ListenerMatcher: embeds proposal and query into a joint space and
//    scores their compatibility (the "listener" of [42]).
//  - SpeakerMatcher:  scores P(query | proposal) with a bag-of-words
//    generative head over the proposal embedding (the "speaker" of [42],
//    i.e. grounding-by-reconstruction).
//  - score_ensemble:  the speaker+listener combination.
#pragma once

#include <memory>
#include <vector>

#include "baseline/proposer.h"
#include "data/vocab.h"
#include "eval/metrics.h"
#include "nn/layers.h"

namespace yollo::baseline {

struct MatcherConfig {
  // Proposals are cropped + resized to patch x patch and passed through a
  // full backbone-scale CNN, mirroring [42] where every proposal crop is
  // resized to the model's input resolution (224x224) and embedded by a
  // complete network — the per-proposal cost that makes two-stage methods
  // 20-30x slower than YOLLO (paper Table 5).
  int64_t patch = 48;
  int64_t emb_dim = 48;   // joint embedding width
  int64_t word_dim = 48;
  int64_t vocab_size = 0;
  uint64_t seed = 51;
};

// Bilinear crop-and-resize of `box` from image [3, H, W] to [3, S, S].
Tensor crop_resize(const Tensor& image, const vision::Box& box, int64_t size);

// Normalised 5-d geometry descriptor (cx, cy, w, h, area) of a box.
Tensor box_geometry(const vision::Box& box, float img_w, float img_h);

// Shared proposal encoder: a backbone-scale CNN on the cropped patch plus
// the geometry descriptor -> emb_dim vector. Each call processes ONE
// proposal (that per-proposal full-CNN cost is the point of the baseline).
class ProposalEncoder : public nn::Module {
 public:
  ProposalEncoder(const MatcherConfig& config, Rng& rng);

  // patch: [1, 3, S, S]; geometry: [5] -> [1, emb_dim]
  ag::Variable forward(const Tensor& patch, const Tensor& geometry);

 private:
  vision::Backbone cnn_;  // same family as the grounding models' backbone
  nn::Linear fc_;
  nn::Linear geo_fc_;
};

class ListenerMatcher : public nn::Module {
 public:
  ListenerMatcher(const MatcherConfig& config, Rng& rng);

  const MatcherConfig& config() const { return config_; }

  // Compatibility logits of each proposal against the query.
  // image: [3, H, W]; returns [num_proposals] logits Variable.
  ag::Variable score_proposals(const Tensor& image,
                               const std::vector<Proposal>& proposals,
                               const std::vector<int64_t>& tokens);

 private:
  MatcherConfig config_;
  ProposalEncoder encoder_;
  nn::Embedding word_emb_;
  nn::Linear query_fc1_;
  nn::Linear query_fc2_;

  ag::Variable encode_query(const std::vector<int64_t>& tokens);
};

class SpeakerMatcher : public nn::Module {
 public:
  SpeakerMatcher(const MatcherConfig& config, Rng& rng);

  const MatcherConfig& config() const { return config_; }

  // Log-likelihood of the query under each proposal's bag-of-words
  // distribution; returns [num_proposals] Variable.
  ag::Variable score_proposals(const Tensor& image,
                               const std::vector<Proposal>& proposals,
                               const std::vector<int64_t>& tokens);

  // Log-likelihood of the query for one box (training objective).
  ag::Variable query_log_likelihood(const Tensor& image,
                                    const vision::Box& box,
                                    const std::vector<int64_t>& tokens);

 private:
  MatcherConfig config_;
  ProposalEncoder encoder_;
  nn::Linear vocab_head_;
};

// Which matcher drives the final ranking in the two-stage pipeline.
enum class MatchMode { kListener, kSpeaker, kEnsemble };
const char* match_mode_name(MatchMode mode);

// The full two-stage pipeline of Fig. 1 (left): stage-i proposals, stage-ii
// per-proposal scoring, argmax. Owns nothing; borrows trained components.
class TwoStagePipeline {
 public:
  TwoStagePipeline(RegionProposalNetwork& rpn, ListenerMatcher& listener,
                   SpeakerMatcher& speaker, MatchMode mode);

  // Grounding prediction for one image + query.
  vision::Box ground(const Tensor& image, const std::vector<int64_t>& tokens);

  MatchMode mode() const { return mode_; }

 private:
  RegionProposalNetwork* rpn_;
  ListenerMatcher* listener_;
  SpeakerMatcher* speaker_;
  MatchMode mode_;
};

// --- training ---------------------------------------------------------------

struct MatcherTrainConfig {
  int64_t epochs = 6;
  float lr = 2e-3f;
  float grad_clip = 10.0f;
  int64_t max_steps = -1;  // samples processed (one sample = one step)
  uint64_t seed = 61;
  bool verbose = false;
};

// Train the listener with softmax cross-entropy over RPN proposals (the
// proposal best overlapping the target is the positive; samples whose
// proposals all miss the target are skipped — the two-stage recall ceiling).
void train_listener(ListenerMatcher& listener, RegionProposalNetwork& rpn,
                    const std::vector<data::GroundingSample>& samples,
                    const MatcherTrainConfig& config);

// Train the speaker to maximise query likelihood given the ground-truth box.
void train_speaker(SpeakerMatcher& speaker,
                   const std::vector<data::GroundingSample>& samples,
                   const MatcherTrainConfig& config);

// Evaluate a two-stage pipeline over a split.
std::vector<eval::Prediction> evaluate_two_stage(
    TwoStagePipeline& pipeline,
    const std::vector<data::GroundingSample>& samples, int64_t max_query_len);

}  // namespace yollo::baseline
