#include "baseline/matcher.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "data/renderer.h"
#include "optim/optim.h"

namespace yollo::baseline {

Tensor crop_resize(const Tensor& image, const vision::Box& box, int64_t size) {
  const int64_t h = image.size(1);
  const int64_t w = image.size(2);
  Tensor out({1, 3, size, size});
  const vision::Box b = vision::clip_box(box, static_cast<float>(w),
                                         static_cast<float>(h));
  const float bw = std::max(b.w, 1.0f);
  const float bh = std::max(b.h, 1.0f);
  const float* src = image.data();
  float* dst = out.data();
  for (int64_t c = 0; c < 3; ++c) {
    const float* plane = src + c * h * w;
    float* oplane = dst + c * size * size;
    for (int64_t oy = 0; oy < size; ++oy) {
      // Sample the box interior bilinearly.
      const float sy = b.y + (static_cast<float>(oy) + 0.5f) * bh /
                                 static_cast<float>(size) - 0.5f;
      const float cy = std::clamp(sy, 0.0f, static_cast<float>(h - 1));
      const int64_t y0 = static_cast<int64_t>(cy);
      const int64_t y1 = std::min<int64_t>(y0 + 1, h - 1);
      const float fy = cy - static_cast<float>(y0);
      for (int64_t ox = 0; ox < size; ++ox) {
        const float sx = b.x + (static_cast<float>(ox) + 0.5f) * bw /
                                   static_cast<float>(size) - 0.5f;
        const float cx = std::clamp(sx, 0.0f, static_cast<float>(w - 1));
        const int64_t x0 = static_cast<int64_t>(cx);
        const int64_t x1 = std::min<int64_t>(x0 + 1, w - 1);
        const float fx = cx - static_cast<float>(x0);
        const float top = plane[y0 * w + x0] * (1.0f - fx) +
                          plane[y0 * w + x1] * fx;
        const float bottom = plane[y1 * w + x0] * (1.0f - fx) +
                             plane[y1 * w + x1] * fx;
        oplane[oy * size + ox] = top * (1.0f - fy) + bottom * fy;
      }
    }
  }
  return out;
}

Tensor box_geometry(const vision::Box& box, float img_w, float img_h) {
  return Tensor({5}, {box.cx() / img_w, box.cy() / img_h, box.w / img_w,
                      box.h / img_h, box.area() / (img_w * img_h)});
}

ProposalEncoder::ProposalEncoder(const MatcherConfig& config, Rng& rng)
    : cnn_(vision::BackboneConfig::r50_lite(), rng),
      fc_(vision::BackboneConfig::r50_lite().out_channels(), config.emb_dim,
          rng),
      geo_fc_(5, config.emb_dim, rng) {
  register_module("cnn", cnn_);
  register_module("fc", fc_);
  register_module("geo_fc", geo_fc_);
}

ag::Variable ProposalEncoder::forward(const Tensor& patch,
                                      const Tensor& geometry) {
  ag::Variable h = cnn_.forward(ag::Variable::constant(patch));
  ag::Variable pooled = ag::global_avg_pool(h);  // [1, C]
  ag::Variable visual = fc_.forward(pooled);
  ag::Variable geo = geo_fc_.forward(
      ag::Variable::constant(geometry.reshape({1, 5})));
  return ag::tanh(ag::add(visual, geo));
}

ListenerMatcher::ListenerMatcher(const MatcherConfig& config, Rng& rng)
    : config_(config),
      encoder_(config, rng),
      word_emb_(config.vocab_size, config.word_dim, rng),
      query_fc1_(config.word_dim, config.emb_dim, rng),
      query_fc2_(config.emb_dim, config.emb_dim, rng) {
  register_module("encoder", encoder_);
  register_module("word_emb", word_emb_);
  register_module("query_fc1", query_fc1_);
  register_module("query_fc2", query_fc2_);
}

ag::Variable ListenerMatcher::encode_query(
    const std::vector<int64_t>& tokens) {
  // Drop padding, embed, mean-pool, two-layer MLP.
  std::vector<int64_t> real;
  for (int64_t id : tokens) {
    if (id != data::Vocab::kPad) real.push_back(id);
  }
  if (real.empty()) real.push_back(data::Vocab::kUnk);
  ag::Variable emb = word_emb_.forward(real);           // [n, d]
  ag::Variable pooled = ag::mean(emb, 0, /*keepdim=*/true);  // [1, d]
  return ag::tanh(query_fc2_.forward(ag::relu(query_fc1_.forward(pooled))));
}

ag::Variable ListenerMatcher::score_proposals(
    const Tensor& image, const std::vector<Proposal>& proposals,
    const std::vector<int64_t>& tokens) {
  const float img_w = static_cast<float>(image.size(2));
  const float img_h = static_cast<float>(image.size(1));
  ag::Variable query = encode_query(tokens);  // [1, emb]

  // One encoder pass per proposal: the cost the paper's Table 5 measures.
  std::vector<ag::Variable> scores;
  scores.reserve(proposals.size());
  for (const Proposal& p : proposals) {
    const Tensor patch = crop_resize(image, p.box, config_.patch);
    ag::Variable obj =
        encoder_.forward(patch, box_geometry(p.box, img_w, img_h));
    // Dot-product compatibility in the joint space.
    ag::Variable dot = ag::sum(ag::mul(obj, query));
    scores.push_back(ag::reshape(dot, {1}));
  }
  return ag::concat(scores, 0);  // [P]
}

SpeakerMatcher::SpeakerMatcher(const MatcherConfig& config, Rng& rng)
    : config_(config),
      encoder_(config, rng),
      vocab_head_(config.emb_dim, config.vocab_size, rng) {
  register_module("encoder", encoder_);
  register_module("vocab_head", vocab_head_);
}

ag::Variable SpeakerMatcher::query_log_likelihood(
    const Tensor& image, const vision::Box& box,
    const std::vector<int64_t>& tokens) {
  const float img_w = static_cast<float>(image.size(2));
  const float img_h = static_cast<float>(image.size(1));
  const Tensor patch = crop_resize(image, box, config_.patch);
  ag::Variable emb = encoder_.forward(patch, box_geometry(box, img_w, img_h));
  ag::Variable logits = vocab_head_.forward(emb);        // [1, V]
  ag::Variable logp = ag::log_softmax(logits, 1);

  std::vector<int64_t> ids;
  for (int64_t id : tokens) {
    if (id != data::Vocab::kPad) ids.push_back(id);
  }
  if (ids.empty()) ids.push_back(data::Vocab::kUnk);
  ag::Variable word_logps = ag::gather_flat(logp, ids);  // [n]
  return ag::mean(word_logps);  // mean log-likelihood per word
}

ag::Variable SpeakerMatcher::score_proposals(
    const Tensor& image, const std::vector<Proposal>& proposals,
    const std::vector<int64_t>& tokens) {
  std::vector<ag::Variable> scores;
  scores.reserve(proposals.size());
  for (const Proposal& p : proposals) {
    scores.push_back(
        ag::reshape(query_log_likelihood(image, p.box, tokens), {1}));
  }
  return ag::concat(scores, 0);
}

const char* match_mode_name(MatchMode mode) {
  switch (mode) {
    case MatchMode::kListener:
      return "listener";
    case MatchMode::kSpeaker:
      return "speaker";
    case MatchMode::kEnsemble:
      return "speaker+listener";
  }
  return "?";
}

TwoStagePipeline::TwoStagePipeline(RegionProposalNetwork& rpn,
                                   ListenerMatcher& listener,
                                   SpeakerMatcher& speaker, MatchMode mode)
    : rpn_(&rpn), listener_(&listener), speaker_(&speaker), mode_(mode) {}

vision::Box TwoStagePipeline::ground(const Tensor& image,
                                     const std::vector<int64_t>& tokens) {
  // Stage-i: query-agnostic proposals.
  const Tensor batched =
      image.reshape({1, 3, image.size(1), image.size(2)});
  const std::vector<Proposal> proposals = rpn_->propose(batched);
  if (proposals.empty()) {
    return vision::Box{0, 0, static_cast<float>(image.size(2)),
                       static_cast<float>(image.size(1))};
  }

  // Stage-ii: score every proposal against the query, take the argmax.
  auto normalised = [](const Tensor& t) {
    // z-score so listener and speaker scores are commensurable.
    const float mu = mean(t).item();
    Tensor centered = add_scalar(t, -mu);
    const float sd =
        std::sqrt(std::max(mean(mul(centered, centered)).item(), 1e-8f));
    return mul_scalar(centered, 1.0f / sd);
  };

  Tensor total(Shape{static_cast<int64_t>(proposals.size())});
  if (mode_ == MatchMode::kListener || mode_ == MatchMode::kEnsemble) {
    add_inplace(total, normalised(listener_->score_proposals(image, proposals,
                                                             tokens)
                                      .value()));
  }
  if (mode_ == MatchMode::kSpeaker || mode_ == MatchMode::kEnsemble) {
    add_inplace(total, normalised(speaker_->score_proposals(image, proposals,
                                                            tokens)
                                      .value()));
  }
  // Proposals were clipped against the proposer's configured canvas, which
  // may differ from this image; re-clip so a degenerate or out-of-frame box
  // never leaves the single-box inference path.
  return vision::clip_box(proposals[static_cast<size_t>(argmax_flat(total))].box,
                          static_cast<float>(image.size(2)),
                          static_cast<float>(image.size(1)));
}

void train_listener(ListenerMatcher& listener, RegionProposalNetwork& rpn,
                    const std::vector<data::GroundingSample>& samples,
                    const MatcherTrainConfig& config) {
  Rng rng(config.seed);
  listener.set_training(true);
  rpn.set_training(false);
  auto params = listener.parameters();
  optim::Adam adam(params, config.lr);

  // Pre-compute proposals once per distinct image (stage-i is frozen).
  int64_t step = 0;
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (size_t si : order) {
      const data::GroundingSample& s = samples[si];
      const Tensor image = data::render_scene(s.scene);
      std::vector<Proposal> proposals = rpn.propose(
          image.reshape({1, 3, s.scene.height, s.scene.width}));
      // Find the proposal that best covers the target; skip the sample when
      // stage-i missed it (the recall ceiling in action).
      int64_t best = -1;
      float best_iou = 0.5f;
      for (size_t p = 0; p < proposals.size(); ++p) {
        const float overlap =
            vision::iou(proposals[p].box, s.target_box());
        if (overlap >= best_iou) {
          best_iou = overlap;
          best = static_cast<int64_t>(p);
        }
      }
      if (best < 0) continue;

      adam.zero_grad();
      ag::Variable logits =
          listener.score_proposals(image, proposals, s.tokens);
      ag::Variable logp = ag::log_softmax(logits, 0);
      ag::Variable loss =
          ag::mul_scalar(ag::gather_flat(logp, {best}), -1.0f);
      ag::sum(loss).backward();
      adam.clip_grad_norm(config.grad_clip);
      adam.step();
      ++step;
      if (config.verbose && step % 50 == 0) {
        std::printf("listener step %5lld  loss %.4f\n",
                    static_cast<long long>(step), loss.value()[0]);
        std::fflush(stdout);
      }
      if (config.max_steps > 0 && step >= config.max_steps) return;
    }
  }
}

void train_speaker(SpeakerMatcher& speaker,
                   const std::vector<data::GroundingSample>& samples,
                   const MatcherTrainConfig& config) {
  Rng rng(config.seed);
  speaker.set_training(true);
  auto params = speaker.parameters();
  optim::Adam adam(params, config.lr);
  int64_t step = 0;
  std::vector<size_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0);
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    for (size_t si : order) {
      const data::GroundingSample& s = samples[si];
      const Tensor image = data::render_scene(s.scene);
      adam.zero_grad();
      ag::Variable ll =
          speaker.query_log_likelihood(image, s.target_box(), s.tokens);
      ag::mul_scalar(ll, -1.0f).backward();
      adam.clip_grad_norm(config.grad_clip);
      adam.step();
      ++step;
      if (config.verbose && step % 50 == 0) {
        std::printf("speaker step %5lld  nll %.4f\n",
                    static_cast<long long>(step), -ll.value().item());
        std::fflush(stdout);
      }
      if (config.max_steps > 0 && step >= config.max_steps) return;
    }
  }
}

std::vector<eval::Prediction> evaluate_two_stage(
    TwoStagePipeline& pipeline,
    const std::vector<data::GroundingSample>& samples,
    int64_t max_query_len) {
  std::vector<eval::Prediction> preds;
  preds.reserve(samples.size());
  for (const data::GroundingSample& s : samples) {
    const Tensor image = data::render_scene(s.scene);
    const std::vector<int64_t> tokens = data::pad_to(s.tokens, max_query_len);
    preds.push_back({pipeline.ground(image, tokens), s.target_box()});
  }
  return preds;
}

}  // namespace yollo::baseline
