#include "baseline/proposer.h"

#include <algorithm>
#include <cstdio>

#include "autograd/ops.h"
#include "data/renderer.h"
#include "optim/optim.h"

namespace yollo::baseline {
namespace {

// Label anchors against multiple ground-truth boxes: positive when the best
// IoU over objects clears rho_high, negative when below rho_low.
vision::AnchorLabels label_anchors_multi(
    const std::vector<vision::Box>& anchors,
    const std::vector<data::SceneObject>& objects, float rho_high,
    float rho_low, std::vector<int64_t>* matched_object) {
  vision::AnchorLabels labels;
  matched_object->assign(anchors.size(), -1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    float best = 0.0f;
    int64_t best_obj = -1;
    for (size_t o = 0; o < objects.size(); ++o) {
      const float overlap = vision::iou(anchors[i], objects[o].box);
      if (overlap > best) {
        best = overlap;
        best_obj = static_cast<int64_t>(o);
      }
    }
    if (best >= rho_high) {
      labels.positive.push_back(static_cast<int64_t>(i));
      (*matched_object)[i] = best_obj;
    } else if (best <= rho_low) {
      labels.negative.push_back(static_cast<int64_t>(i));
    }
  }
  return labels;
}

}  // namespace

RegionProposalNetwork::RegionProposalNetwork(const ProposerConfig& config,
                                             Rng& rng)
    : config_(config),
      backbone_(config.backbone, rng),
      conv_(config.backbone.out_channels(), config.backbone.out_channels(), 3,
            1, 1, rng),
      cls_(config.backbone.out_channels(),
           config.anchors.anchors_per_cell(), 1, 1, 0, rng),
      reg_(config.backbone.out_channels(),
           4 * config.anchors.anchors_per_cell(), 1, 1, 0, rng),
      anchors_(vision::generate_anchors(config.anchors, config.grid_h(),
                                        config.grid_w())) {
  register_module("backbone", backbone_);
  register_module("conv", conv_);
  register_module("cls", cls_);
  register_module("reg", reg_);
}

RegionProposalNetwork::Output RegionProposalNetwork::forward(
    const Tensor& images) {
  const int64_t b = images.size(0);
  const int64_t cells = config_.grid_h() * config_.grid_w();
  const int64_t k = config_.anchors.anchors_per_cell();

  ag::Variable h =
      ag::relu(conv_.forward(backbone_.forward(ag::Variable::constant(images))));

  ag::Variable scores = cls_.forward(h);
  scores = ag::transpose(ag::reshape(scores, {b, k, cells}), 1, 2);
  Output out;
  out.scores = ag::reshape(scores, {b, cells * k});

  ag::Variable deltas = reg_.forward(h);
  deltas = ag::reshape(deltas, {b, k, 4, cells});
  deltas = ag::transpose(deltas, 1, 3);
  deltas = ag::transpose(deltas, 2, 3);
  out.deltas = ag::reshape(deltas, {b, cells * k, 4});
  return out;
}

ag::Variable RegionProposalNetwork::compute_loss(
    const Output& out, const std::vector<const data::Scene*>& scenes,
    Rng& rng) {
  const int64_t b = out.scores.size(0);
  const int64_t a = out.scores.size(1);

  std::vector<int64_t> cls_indices;
  std::vector<float> cls_labels;
  std::vector<int64_t> reg_indices;
  std::vector<float> reg_targets;

  for (int64_t bi = 0; bi < b; ++bi) {
    const data::Scene& scene = *scenes[static_cast<size_t>(bi)];
    std::vector<int64_t> matched;
    vision::AnchorLabels labels =
        label_anchors_multi(anchors_, scene.objects, config_.rho_high,
                            config_.rho_low, &matched);
    const int64_t max_pos = config_.anchor_batch / 2;
    std::shuffle(labels.positive.begin(), labels.positive.end(), rng.engine());
    if (static_cast<int64_t>(labels.positive.size()) > max_pos) {
      labels.positive.resize(static_cast<size_t>(max_pos));
    }
    const int64_t num_neg =
        config_.anchor_batch - static_cast<int64_t>(labels.positive.size());
    std::shuffle(labels.negative.begin(), labels.negative.end(), rng.engine());
    if (static_cast<int64_t>(labels.negative.size()) > num_neg) {
      labels.negative.resize(static_cast<size_t>(num_neg));
    }

    for (int64_t idx : labels.positive) {
      cls_indices.push_back(bi * a + idx);
      cls_labels.push_back(1.0f);
      const vision::Box& gt =
          scene.objects[static_cast<size_t>(matched[static_cast<size_t>(idx)])]
              .box;
      const vision::BoxDelta d =
          vision::encode_delta(anchors_[static_cast<size_t>(idx)], gt);
      const int64_t base = (bi * a + idx) * 4;
      reg_indices.insert(reg_indices.end(),
                         {base, base + 1, base + 2, base + 3});
      reg_targets.insert(reg_targets.end(), {d.dx, d.dy, d.dw, d.dh});
    }
    for (int64_t idx : labels.negative) {
      cls_indices.push_back(bi * a + idx);
      cls_labels.push_back(0.0f);
    }
  }

  ag::Variable cls_loss = ag::bce_with_logits(
      ag::gather_flat(out.scores, cls_indices),
      Tensor({static_cast<int64_t>(cls_labels.size())}, cls_labels));
  if (reg_indices.empty()) return cls_loss;
  const float inv_n =
      1.0f / static_cast<float>(std::max<size_t>(cls_indices.size(), 1));
  ag::Variable reg_loss = ag::mul_scalar(
      ag::smooth_l1(ag::gather_flat(out.deltas, reg_indices),
                    Tensor({static_cast<int64_t>(reg_targets.size())},
                           reg_targets)),
      inv_n);
  return ag::add(cls_loss, reg_loss);
}

std::vector<Proposal> RegionProposalNetwork::propose(
    const Tensor& image, int64_t max_proposals_override) {
  const Output out = forward(image);
  const int64_t a = out.scores.size(1);
  const float* scores = out.scores.value().data();
  const float* deltas = out.deltas.value().data();

  std::vector<vision::Box> boxes;
  std::vector<float> objectness;
  boxes.reserve(static_cast<size_t>(a));
  for (int64_t i = 0; i < a; ++i) {
    const float* d = deltas + i * 4;
    const vision::Box decoded = vision::decode_delta(
        anchors_[static_cast<size_t>(i)],
        vision::BoxDelta{d[0], d[1], d[2], d[3]});
    boxes.push_back(vision::clip_box(decoded,
                                     static_cast<float>(config_.img_w),
                                     static_cast<float>(config_.img_h)));
    objectness.push_back(scores[i]);
  }
  const int64_t budget = max_proposals_override > 0 ? max_proposals_override
                                                    : config_.max_proposals;
  const std::vector<int64_t> keep =
      vision::nms(boxes, objectness, config_.nms_iou, budget);
  std::vector<Proposal> proposals;
  proposals.reserve(keep.size());
  for (int64_t idx : keep) {
    proposals.push_back({boxes[static_cast<size_t>(idx)],
                         objectness[static_cast<size_t>(idx)]});
  }
  return proposals;
}

void train_rpn(RegionProposalNetwork& rpn,
               const std::vector<data::GroundingSample>& samples,
               const RpnTrainConfig& config) {
  Rng rng(config.seed);
  rpn.set_training(true);
  auto params = rpn.parameters();
  optim::Adam adam(params, config.lr);
  int64_t step = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    const auto batches = data::make_batches(
        static_cast<int64_t>(samples.size()), config.batch_size, rng);
    for (const std::vector<int64_t>& batch : batches) {
      const Tensor images = data::render_batch(samples, batch);
      std::vector<const data::Scene*> scenes;
      scenes.reserve(batch.size());
      for (int64_t idx : batch) {
        scenes.push_back(&samples[static_cast<size_t>(idx)].scene);
      }
      adam.zero_grad();
      const auto out = rpn.forward(images);
      ag::Variable loss = rpn.compute_loss(out, scenes, rng);
      loss.backward();
      adam.clip_grad_norm(config.grad_clip);
      adam.step();
      ++step;
      if (config.verbose && step % 10 == 0) {
        std::printf("rpn step %5lld  loss %.4f\n",
                    static_cast<long long>(step), loss.value().item());
        std::fflush(stdout);
      }
      if (config.max_steps > 0 && step >= config.max_steps) return;
    }
  }
}

void recalibrate_rpn(RegionProposalNetwork& rpn,
                     const std::vector<data::GroundingSample>& samples,
                     int64_t batches, int64_t batch_size) {
  Rng rng(4242);
  rpn.set_training(true);
  const auto batch_lists = data::make_batches(
      static_cast<int64_t>(samples.size()), batch_size, rng);
  const int64_t n = std::min<int64_t>(batches,
                                      static_cast<int64_t>(batch_lists.size()));
  for (int64_t i = 0; i < n; ++i) {
    rpn.forward(data::render_batch(samples, batch_lists[i]));
  }
  rpn.set_training(false);
}

double proposal_recall(RegionProposalNetwork& rpn,
                       const std::vector<data::GroundingSample>& samples,
                       float eta) {
  rpn.set_training(false);
  int64_t hits = 0;
  for (const data::GroundingSample& s : samples) {
    const Tensor image = data::render_scene(s.scene).reshape(
        {1, 3, s.scene.height, s.scene.width});
    const auto proposals = rpn.propose(image);
    for (const Proposal& p : proposals) {
      if (vision::iou(p.box, s.target_box()) >= eta) {
        ++hits;
        break;
      }
    }
  }
  rpn.set_training(true);
  return samples.empty()
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(samples.size());
}

}  // namespace yollo::baseline
