// Stand-alone class-agnostic region proposal network — stage-i of the
// conventional two-stage visual-grounding pipeline the paper compares
// against (Fig. 1 left, §4.5).
//
// The paper's baselines consume pre-computed Faster-RCNN proposals; this
// substrate trains the equivalent proposer on the synthetic scenes: a
// backbone + RPN head detecting *all* objects (no classes), followed by NMS
// to produce the proposal list handed to the matching stage. Crucially, it
// is query-agnostic — exactly the property the paper criticises.
#pragma once

#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "nn/layers.h"
#include "vision/anchors.h"
#include "vision/backbone.h"

namespace yollo::baseline {

struct ProposerConfig {
  int64_t img_h = 64;
  int64_t img_w = 96;
  vision::BackboneConfig backbone = vision::BackboneConfig::r50_lite();
  vision::AnchorConfig anchors;
  float rho_high = 0.5f;
  float rho_low = 0.25f;
  int64_t anchor_batch = 96;
  float nms_iou = 0.4f;
  int64_t max_proposals = 16;  // proposals handed to the matching stage
  uint64_t seed = 31;

  int64_t grid_h() const { return img_h / backbone.stride(); }
  int64_t grid_w() const { return img_w / backbone.stride(); }
};

// A scored proposal from stage-i.
struct Proposal {
  vision::Box box;
  float objectness = 0.0f;
};

class RegionProposalNetwork : public nn::Module {
 public:
  RegionProposalNetwork(const ProposerConfig& config, Rng& rng);

  const ProposerConfig& config() const { return config_; }

  struct Output {
    ag::Variable scores;  // [B, A]
    ag::Variable deltas;  // [B, A, 4]
  };
  Output forward(const Tensor& images);

  // Class-agnostic training loss against all objects in each scene.
  ag::Variable compute_loss(const Output& out,
                            const std::vector<const data::Scene*>& scenes,
                            Rng& rng);

  // Stage-i inference: decode, NMS, return the top proposals for one image.
  // `max_proposals_override` (when > 0) replaces the configured budget —
  // used by the proposal-count sweep bench.
  std::vector<Proposal> propose(const Tensor& image,
                                int64_t max_proposals_override = -1);

 private:
  ProposerConfig config_;
  vision::Backbone backbone_;
  nn::Conv2d conv_;
  nn::Conv2d cls_;
  nn::Conv2d reg_;
  std::vector<vision::Box> anchors_;
};

struct RpnTrainConfig {
  int64_t epochs = 6;
  int64_t batch_size = 8;
  float lr = 2e-3f;
  float grad_clip = 10.0f;
  int64_t max_steps = -1;
  uint64_t seed = 41;
  bool verbose = false;
};

// Train the proposer on the scenes of a sample list (targets = all objects).
void train_rpn(RegionProposalNetwork& rpn,
               const std::vector<data::GroundingSample>& samples,
               const RpnTrainConfig& config);

// Rebuild the proposer backbone's BatchNorm running statistics with
// training-mode forward passes (after loading a legacy checkpoint).
void recalibrate_rpn(RegionProposalNetwork& rpn,
                     const std::vector<data::GroundingSample>& samples,
                     int64_t batches = 16, int64_t batch_size = 16);

// Recall of the proposal list: fraction of samples whose target box is
// covered by some proposal with IoU >= eta. The paper's "low accuracy"
// critique of two-stage methods is exactly a recall ceiling.
double proposal_recall(RegionProposalNetwork& rpn,
                       const std::vector<data::GroundingSample>& samples,
                       float eta = 0.5f);

}  // namespace yollo::baseline
