// First-order optimisers over ag::Variable parameters.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/serialize.h"

namespace yollo::optim {

// Interface: step() applies accumulated gradients, zero_grad() clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable*> params, float lr);
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  // Scale all gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float clip_grad_norm(float max_norm);

 protected:
  std::vector<ag::Variable*> params_;
  float lr_;
};

// Stochastic gradient descent with optional momentum and weight decay.
class SGD : public Optimizer {
 public:
  SGD(std::vector<ag::Variable*> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void step() override;

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

// Adam (Kingma & Ba, 2014) — the optimiser the paper trains YOLLO with
// (lr 5e-5 at paper scale).
class Adam : public Optimizer {
 public:
  Adam(std::vector<ag::Variable*> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void step() override;

  int64_t step_count() const { return t_; }

  // Stream the full optimiser state (step count + first/second moments)
  // into / out of a checkpoint payload. load_state validates that the
  // moment shapes match this optimiser's parameters and restores bit-exact:
  // an Adam rebuilt from a saved state produces identical updates.
  void save_state(io::PayloadWriter& writer) const;
  void load_state(io::PayloadReader& reader);

 private:
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

// Linear-warmup + cosine-decay learning-rate schedule.
class CosineSchedule {
 public:
  CosineSchedule(float base_lr, int64_t warmup_steps, int64_t total_steps);

  float lr_at(int64_t step) const;

 private:
  float base_lr_;
  int64_t warmup_steps_;
  int64_t total_steps_;
};

}  // namespace yollo::optim
