#include "optim/optim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace yollo::optim {

Optimizer::Optimizer(std::vector<ag::Variable*> params, float lr)
    : params_(std::move(params)), lr_(lr) {}

void Optimizer::zero_grad() {
  for (ag::Variable* p : params_) p->zero_grad();
}

float Optimizer::clip_grad_norm(float max_norm) {
  double total_sq = 0.0;
  for (ag::Variable* p : params_) {
    if (!p->has_grad()) continue;
    const float* g = p->grad().data();
    for (int64_t i = 0; i < p->numel(); ++i) {
      total_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (ag::Variable* p : params_) {
      if (!p->has_grad()) continue;
      Tensor g = p->node()->grad;
      scale_inplace(g, scale);
    }
  }
  return norm;
}

SGD::SGD(std::vector<ag::Variable*> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params), lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (ag::Variable* p : params_) {
    velocity_.push_back(Tensor(p->value().shape()));
  }
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const float* g = p->grad().data();
    float* w = p->value().data();
    float* v = velocity_[i].data();
    for (int64_t j = 0; j < p->numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

Adam::Adam(std::vector<ag::Variable*> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (ag::Variable* p : params_) {
    m_.push_back(Tensor(p->value().shape()));
    v_.push_back(Tensor(p->value().shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable* p = params_[i];
    if (!p->has_grad()) continue;
    const float* g = p->grad().data();
    float* w = p->value().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (int64_t j = 0; j < p->numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bias1;
      const float vhat = v[j] / bias2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::save_state(io::PayloadWriter& writer) const {
  writer.write_pod<int64_t>(t_);
  writer.write_pod<int64_t>(static_cast<int64_t>(m_.size()));
  for (size_t i = 0; i < m_.size(); ++i) {
    writer.write_pod<int64_t>(m_[i].numel());
    writer.write(m_[i].data(),
                 static_cast<size_t>(m_[i].numel()) * sizeof(float));
    writer.write(v_[i].data(),
                 static_cast<size_t>(v_[i].numel()) * sizeof(float));
  }
}

void Adam::load_state(io::PayloadReader& reader) {
  const int64_t t = reader.read_pod<int64_t>();
  const int64_t count = reader.read_pod<int64_t>();
  if (count != static_cast<int64_t>(m_.size())) {
    throw std::runtime_error(
        "Adam::load_state: moment count mismatch (state " +
        std::to_string(count) + ", optimiser " + std::to_string(m_.size()) +
        ")");
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    const int64_t n = reader.read_pod<int64_t>();
    if (n != m_[i].numel()) {
      throw std::runtime_error("Adam::load_state: moment size mismatch");
    }
    reader.read(m_[i].data(), static_cast<size_t>(n) * sizeof(float));
    reader.read(v_[i].data(), static_cast<size_t>(n) * sizeof(float));
  }
  t_ = t;
}

CosineSchedule::CosineSchedule(float base_lr, int64_t warmup_steps,
                               int64_t total_steps)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps) {}

float CosineSchedule::lr_at(int64_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_) {
    return base_lr_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return 0.0f;
  const float progress =
      static_cast<float>(step - warmup_steps_) /
      static_cast<float>(std::max<int64_t>(total_steps_ - warmup_steps_, 1));
  constexpr float kPi = 3.14159265358979323846f;
  return 0.5f * base_lr_ * (1.0f + std::cos(kPi * progress));
}

}  // namespace yollo::optim
