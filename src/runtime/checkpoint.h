// Atomic full-state training checkpoints.
//
// A checkpoint is one file bundling everything needed to resume training
// bit-exact: model parameters + buffers (BatchNorm running statistics),
// Adam first/second moments and step count, the training RNG engine state,
// and the global step/epoch counters. Files use the io container layout
// (magic "YLCK", version, CRC-32 over the payload) and are written to a
// temp file then rename()d, so a crash mid-write never corrupts anything
// already on disk.
//
// The manager keeps a two-deep rotation inside `dir`:
//
//   save():  write ckpt.tmp fully  ->  latest.ckpt becomes previous.ckpt
//            ->  ckpt.tmp becomes latest.ckpt
//
// A crash at any point leaves at least one intact checkpoint: mid-write
// kills only the tmp file; between the renames, `previous` still holds the
// last good state. load_latest() mirrors that: it tries `latest`, and on
// any integrity failure (missing, truncated, CRC mismatch, wrong version)
// falls back to `previous`.
#pragma once

#include <cstdint>
#include <string>

#include "nn/module.h"
#include "optim/optim.h"
#include "tensor/random.h"

namespace yollo::runtime {

inline constexpr uint32_t kCheckpointMagic = 0x4B434C59u;  // "YLCK"
inline constexpr uint32_t kCheckpointVersion = 1;

// Mutable training state a checkpoint captures besides the model weights.
struct TrainState {
  int64_t step = 0;
  int64_t epoch = 0;
  Rng rng;
};

class CheckpointManager {
 public:
  // `dir` is created (recursively) if missing.
  explicit CheckpointManager(std::string dir);

  std::string latest_path() const { return dir_ + "/latest.ckpt"; }
  std::string previous_path() const { return dir_ + "/previous.ckpt"; }

  // Atomically write a checkpoint and rotate latest -> previous.
  void save(nn::Module& model, const optim::Adam& adam,
            const TrainState& state);

  // Restore from the newest intact checkpoint (latest, else previous).
  // Returns false when neither exists or is readable; `which`, when
  // non-null, receives the path actually loaded.
  bool load_latest(nn::Module& model, optim::Adam& adam, TrainState& state,
                   std::string* which = nullptr) const;

  // True when at least one checkpoint file exists on disk (it may still
  // fail integrity checks at load time).
  bool has_checkpoint() const;

  // Restore from one specific file; throws std::runtime_error on missing /
  // truncated / corrupt / wrong-version files.
  static void load_file(const std::string& path, nn::Module& model,
                        optim::Adam& adam, TrainState& state);

 private:
  std::string dir_;
};

}  // namespace yollo::runtime
