#include "runtime/fault.h"

#include <chrono>
#include <cstdlib>
#include <limits>
#include <thread>

#include "tensor/exec.h"
#include "tensor/serialize.h"

namespace yollo::runtime {
namespace {

int64_t env_int(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::strtoll(value, nullptr, 10);
}

// The injector bound to this thread by a live ThreadBinding; null means the
// thread resolves to the process-wide instance().
thread_local FaultInjector* t_active = nullptr;

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector{GlobalTag{}};
  return injector;
}

FaultInjector& FaultInjector::active() {
  FaultInjector* bound = t_active;
  return bound != nullptr ? *bound : instance();
}

FaultInjector::ThreadBinding::ThreadBinding(FaultInjector* injector) {
  if (injector == nullptr) return;
  prev_ = t_active;
  t_active = injector;
  bound_ = true;
}

FaultInjector::ThreadBinding::~ThreadBinding() {
  if (bound_) t_active = prev_;
}

FaultInjector::FaultInjector() = default;

FaultInjector::FaultInjector(GlobalTag) : global_(true) {
  Config config;
  config.crash_write_after_bytes =
      env_int("YOLLO_FAULT_CRASH_WRITE_BYTES", -1);
  config.halt_at_step = env_int("YOLLO_FAULT_HALT_STEP", -1);
  config.poison_loss_at_step = env_int("YOLLO_FAULT_POISON_STEP", -1);
  config.poison_count = env_int("YOLLO_FAULT_POISON_COUNT", 1);
  config.fail_forward_count = env_int("YOLLO_FAULT_FAIL_FORWARD", 0);
  config.poison_forward_count = env_int("YOLLO_FAULT_POISON_FORWARD", 0);
  config.slow_forward_ms = env_int("YOLLO_FAULT_SLOW_FORWARD_MS", 0);
  config.slow_forward_count = env_int("YOLLO_FAULT_SLOW_FORWARD_COUNT", 0);
  config.wedge_forward_ms = env_int("YOLLO_FAULT_WEDGE_FORWARD_MS", 0);
  config.wedge_forward_count = env_int("YOLLO_FAULT_WEDGE_FORWARD_COUNT", 0);
  configure(config);
}

void FaultInjector::configure(const Config& config) {
  std::lock_guard<std::mutex> lock(forward_mutex_);
  config_ = config;
  poisons_fired_ = 0;
  max_poisoned_step_ = -1;
  // The io write hook is process-global state: only the process-wide
  // instance may own it. Scoped injectors carry the inference-path faults.
  if (!global_) {
    config_.crash_write_after_bytes = -1;
    return;
  }
  if (config_.crash_write_after_bytes >= 0) {
    install_write_hook();
  } else {
    io::set_write_fault_hook(nullptr);
  }
}

void FaultInjector::reset() { configure(Config{}); }

void FaultInjector::install_write_hook() {
  io::set_write_fault_hook([this](size_t written, size_t) {
    if (config_.crash_write_after_bytes < 0) return;
    if (static_cast<int64_t>(written) >= config_.crash_write_after_bytes) {
      config_.crash_write_after_bytes = -1;  // one-shot
      throw InjectedFault("crash during serialisation after " +
                          std::to_string(written) + " payload bytes");
    }
  });
}

void FaultInjector::check_halt(int64_t step) {
  if (config_.halt_at_step >= 0 && step == config_.halt_at_step) {
    config_.halt_at_step = -1;  // one-shot
    throw InjectedFault("training halted at step " + std::to_string(step));
  }
}

float FaultInjector::filter_loss(float loss, int64_t step) {
  if (config_.poison_loss_at_step < 0) return loss;
  if (step < config_.poison_loss_at_step) return loss;
  if (poisons_fired_ >= config_.poison_count) return loss;
  // Each step poisons at most once: a rollback that replays this step must
  // see the true loss, otherwise the run could never make progress.
  if (step <= max_poisoned_step_) return loss;
  ++poisons_fired_;
  max_poisoned_step_ = step;
  return std::numeric_limits<float>::quiet_NaN();
}

void FaultInjector::check_forward() {
  int64_t sleep_ms = 0;
  int64_t wedge_ms = 0;
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(forward_mutex_);
    if (config_.slow_forward_count > 0 && config_.slow_forward_ms > 0) {
      --config_.slow_forward_count;
      sleep_ms = config_.slow_forward_ms;
    }
    if (config_.wedge_forward_count > 0 && config_.wedge_forward_ms > 0) {
      --config_.wedge_forward_count;
      wedge_ms = config_.wedge_forward_ms;
    }
    if (config_.fail_forward_count > 0) {
      --config_.fail_forward_count;
      fail = true;
    }
  }
  if (sleep_ms > 0) {
    // Sliced, cancellation-aware stall: each slice polls the dispatching
    // thread's ExecContext (cancel flag + deadline) without bumping its
    // heartbeat — the stall must look wedged to the watchdog so injected
    // slowness exercises the kick path, yet abort promptly once cancelled.
    constexpr int64_t kSliceMs = 2;
    ExecContext* ctx = ExecContext::current();
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(sleep_ms);
    while (std::chrono::steady_clock::now() < until) {
      if (ctx != nullptr && ctx->cancelled_or_expired()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMs));
    }
  }
  if (wedge_ms > 0) {
    // Deliberately uninterruptible: stands in for a worker stuck where no
    // checkpoint is polled. Only the watchdog's reap path can end it.
    std::this_thread::sleep_for(std::chrono::milliseconds(wedge_ms));
  }
  if (fail) {
    throw InjectedFault("transient forward failure");
  }
}

bool FaultInjector::take_poison_forward() {
  std::lock_guard<std::mutex> lock(forward_mutex_);
  if (config_.poison_forward_count <= 0) return false;
  --config_.poison_forward_count;
  return true;
}

}  // namespace yollo::runtime
