#include "runtime/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.h"
#include "tensor/serialize.h"

namespace yollo::runtime {
namespace {

// Always-on accounting: checkpoint I/O is rare and slow next to a metric.
obs::Histogram& save_ms() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "checkpoint.save_ms", obs::latency_ms_bounds());
  return h;
}

obs::Histogram& load_ms() {
  static obs::Histogram& h = obs::MetricsRegistry::global().histogram(
      "checkpoint.load_ms", obs::latency_ms_bounds());
  return h;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

void CheckpointManager::save(nn::Module& model, const optim::Adam& adam,
                             const TrainState& state) {
  obs::ScopedTimer timer(save_ms());
  obs::MetricsRegistry::global().counter("checkpoint.saves").inc();
  io::PayloadWriter writer;
  writer.write_pod<int64_t>(state.step);
  writer.write_pod<int64_t>(state.epoch);
  writer.write_string(state.rng.state());
  nn::write_module_state(writer, model);
  adam.save_state(writer);

  // Stage the new checkpoint fully before touching the rotation; a crash
  // inside commit() leaves latest/previous untouched.
  const std::string staged = dir_ + "/ckpt.staged";
  writer.commit(staged, kCheckpointMagic, kCheckpointVersion);

  // latest -> previous (nothing to rotate on the first save). Between the
  // two renames only `previous` exists, which load_latest handles.
  std::rename(latest_path().c_str(), previous_path().c_str());
  if (std::rename(staged.c_str(), latest_path().c_str()) != 0) {
    throw std::runtime_error("CheckpointManager: rename " + staged + " -> " +
                             latest_path() + " failed");
  }
}

bool CheckpointManager::load_latest(nn::Module& model, optim::Adam& adam,
                                    TrainState& state,
                                    std::string* which) const {
  obs::ScopedTimer timer(load_ms());
  obs::MetricsRegistry::global().counter("checkpoint.loads").inc();
  for (const std::string& path : {latest_path(), previous_path()}) {
    try {
      load_file(path, model, adam, state);
      if (which) *which = path;
      return true;
    } catch (const std::exception&) {
      // Missing or failed integrity checks (absent file, bad magic/CRC,
      // trailing bytes); count it and fall through to the older one.
      obs::MetricsRegistry::global().counter("checkpoint.load_failures").inc();
    }
  }
  return false;
}

bool CheckpointManager::has_checkpoint() const {
  return std::filesystem::exists(latest_path()) ||
         std::filesystem::exists(previous_path());
}

void CheckpointManager::load_file(const std::string& path, nn::Module& model,
                                  optim::Adam& adam, TrainState& state) {
  io::PayloadReader reader(path, kCheckpointMagic, kCheckpointVersion);
  if (reader.legacy()) {
    throw std::runtime_error("checkpoint " + path +
                             " has no YLCK header (not a checkpoint file)");
  }
  state.step = reader.read_pod<int64_t>();
  state.epoch = reader.read_pod<int64_t>();
  state.rng.set_state(reader.read_string());
  nn::read_module_state(reader, model, "checkpoint " + path);
  adam.load_state(reader);
  if (!reader.at_end()) {
    throw std::runtime_error("checkpoint " + path +
                             " has trailing bytes (corrupt)");
  }
}

}  // namespace yollo::runtime
