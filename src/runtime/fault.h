// Fault injection for crash-safety testing.
//
// A process-wide FaultInjector lets tests (and manual chaos runs via
// environment variables) inject failures into the training and inference
// stacks without patching any production code path.
//
// Training-path faults (PR 1):
//
//   - crash mid-write:  kills serialisation after N payload bytes, proving
//                       that atomic commit + checkpoint rotation never lose
//                       the last good file;
//   - halt at step:     aborts train_yollo at a chosen global step, standing
//                       in for SIGKILL between two checkpoints;
//   - poison loss:      replaces the training loss with NaN for a chosen
//                       number of steps, exercising the divergence guard and
//                       checkpoint rollback.
//
// Inference-path faults (consumed by YolloModel::infer, so every
// degradation branch of yollo::serve is provable in tests):
//
//   - transient forward failure: the next N forwards throw InjectedFault,
//                       standing in for a crashed kernel / OOM / bit flip;
//   - poisoned activations: the next N forwards have their output scores
//                       overwritten with NaN, which the exception-free
//                       inference path must catch in its finiteness scan;
//   - slow forward:     the next N forwards sleep a configured number of
//                       milliseconds first, driving requests past their
//                       deadline. The sleep is cancellation-aware: it runs
//                       in small slices, each checking the thread's active
//                       ExecContext, so injected stalls exercise mid-flight
//                       cancel instead of an uninterruptible sleep_for.
//                       Slices deliberately do not bump the heartbeat — a
//                       slow forward *should* look stuck to the watchdog.
//   - wedged forward:   like slow, but uninterruptible and invisible to
//                       cancellation — stands in for a worker stuck in a
//                       kernel that never polls, so the watchdog's
//                       reap-and-replace path is testable.
//
// Injected failures surface as InjectedFault so tests can distinguish them
// from genuine errors. All faults are disarmed by default; configure()
// or the YOLLO_FAULT_* environment variables arm them. The inference-path
// hooks are thread-safe: serve workers consume fault shots concurrently.
//
// Scoping (PR 6): faults used to be process-global only — arming a fault hit
// every model replica in every service at once, so a sharded front-end could
// not express "poison shard 1, leave shards 0 and 2 healthy". A FaultInjector
// can now also be constructed directly as a scoped instance and bound to a
// thread with ThreadBinding; the consumer side (YolloModel::infer) reads
// FaultInjector::active(), which resolves to the thread-bound instance when
// one is installed and falls back to the env-driven process-wide instance()
// otherwise — existing tests and manual YOLLO_FAULT_* chaos runs are
// untouched. Scoped instances carry only the inference-path faults; the
// serialisation write hook is process-global io state and stays exclusive to
// instance() (a scoped configure() ignores crash_write_after_bytes).
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace yollo::runtime {

// Thrown at every injection point; stands in for the process dying.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error("injected fault: " + what) {}
};

class FaultInjector {
 public:
  struct Config {
    // Throw from inside serialisation once this many payload bytes have
    // been written (one-shot). -1 = disarmed.
    int64_t crash_write_after_bytes = -1;
    // Throw from train_yollo when the run reaches this global step
    // (one-shot). -1 = disarmed.
    int64_t halt_at_step = -1;
    // Starting at this global step, report the loss as NaN for
    // `poison_count` steps (each step fires at most once, so a rollback
    // that replays the step sees the true loss). -1 = disarmed.
    int64_t poison_loss_at_step = -1;
    int64_t poison_count = 1;

    // --- inference-path faults (see header comment) ----------------------
    // Throw InjectedFault from the next `fail_forward_count` forwards.
    int64_t fail_forward_count = 0;
    // Overwrite the output scores of the last batch element with NaN for
    // the next `poison_forward_count` forwards (the whole output for a
    // batch of one).
    int64_t poison_forward_count = 0;
    // Sleep `slow_forward_ms` milliseconds at the start of the next
    // `slow_forward_count` forwards (sliced; aborts early when the
    // thread's ExecContext is cancelled or past its deadline).
    int64_t slow_forward_ms = 0;
    int64_t slow_forward_count = 0;
    // Sleep `wedge_forward_ms` milliseconds uninterruptibly at the start
    // of the next `wedge_forward_count` forwards: ignores cancellation so
    // the serve watchdog's lost-worker path can be exercised.
    int64_t wedge_forward_ms = 0;
    int64_t wedge_forward_count = 0;
  };

  // A scoped injector: starts disarmed, never reads the environment, and
  // never touches the process-wide io write hook. Bind it to the threads
  // whose forwards it should govern with ThreadBinding (one shard's worker
  // pool, say); unbound threads keep consuming instance().
  FaultInjector();

  // Process-wide instance. On first access, faults named in the
  // environment (YOLLO_FAULT_CRASH_WRITE_BYTES, YOLLO_FAULT_HALT_STEP,
  // YOLLO_FAULT_POISON_STEP, YOLLO_FAULT_POISON_COUNT,
  // YOLLO_FAULT_FAIL_FORWARD, YOLLO_FAULT_POISON_FORWARD,
  // YOLLO_FAULT_SLOW_FORWARD_MS, YOLLO_FAULT_SLOW_FORWARD_COUNT,
  // YOLLO_FAULT_WEDGE_FORWARD_MS, YOLLO_FAULT_WEDGE_FORWARD_COUNT) are
  // armed.
  static FaultInjector& instance();

  // The injector governing the calling thread: the ThreadBinding-installed
  // scoped instance when present, otherwise instance(). This is what the
  // inference path consumes.
  static FaultInjector& active();

  // RAII thread binding for a scoped injector. A null injector is a no-op
  // binding (the thread keeps its previous resolution), so callers can pass
  // an optional injector through unconditionally. Nests: the previous
  // binding is restored on destruction.
  class ThreadBinding {
   public:
    explicit ThreadBinding(FaultInjector* injector);
    ~ThreadBinding();
    ThreadBinding(const ThreadBinding&) = delete;
    ThreadBinding& operator=(const ThreadBinding&) = delete;

   private:
    FaultInjector* prev_ = nullptr;
    bool bound_ = false;
  };

  // Arm the given faults (replaces the current config and re-installs or
  // removes the io write hook as needed).
  void configure(const Config& config);

  // Disarm everything and detach from the io layer.
  void reset();

  // Called by train_yollo before processing a step; throws InjectedFault
  // when the halt fault is armed for this step.
  void check_halt(int64_t step);

  // Called by train_yollo with each step's loss; returns NaN while the
  // poison fault is armed for this step (consuming one shot), otherwise
  // returns `loss` unchanged.
  float filter_loss(float loss, int64_t step);

  // Called by YolloModel::infer before running the forward pass. Sleeps
  // when a slow-forward fault is armed (consuming one shot), then throws
  // InjectedFault when a transient forward failure is armed (consuming one
  // shot). Thread-safe; the sleep happens outside the injector lock.
  void check_forward();

  // Called by YolloModel::infer after the forward pass; true when the
  // caller must poison its activations (consumes one shot). Thread-safe.
  bool take_poison_forward();

  const Config& config() const { return config_; }

 private:
  struct GlobalTag {};
  explicit FaultInjector(GlobalTag);  // env-armed; owns the io write hook
  void install_write_hook();

  bool global_ = false;
  Config config_;
  int64_t poisons_fired_ = 0;
  int64_t max_poisoned_step_ = -1;  // steps <= this have already fired
  // Guards the inference-path shot counters, which are decremented
  // concurrently by serve worker threads.
  std::mutex forward_mutex_;
};

}  // namespace yollo::runtime
