// Fault injection for crash-safety testing.
//
// A process-wide FaultInjector lets tests (and manual chaos runs via
// environment variables) inject three failure classes into the training
// stack without patching any production code path:
//
//   - crash mid-write:  kills serialisation after N payload bytes, proving
//                       that atomic commit + checkpoint rotation never lose
//                       the last good file;
//   - halt at step:     aborts train_yollo at a chosen global step, standing
//                       in for SIGKILL between two checkpoints;
//   - poison loss:      replaces the training loss with NaN for a chosen
//                       number of steps, exercising the divergence guard and
//                       checkpoint rollback.
//
// Injected failures surface as InjectedFault so tests can distinguish them
// from genuine errors. All faults are disarmed by default; configure()
// or the YOLLO_FAULT_* environment variables arm them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace yollo::runtime {

// Thrown at every injection point; stands in for the process dying.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error("injected fault: " + what) {}
};

class FaultInjector {
 public:
  struct Config {
    // Throw from inside serialisation once this many payload bytes have
    // been written (one-shot). -1 = disarmed.
    int64_t crash_write_after_bytes = -1;
    // Throw from train_yollo when the run reaches this global step
    // (one-shot). -1 = disarmed.
    int64_t halt_at_step = -1;
    // Starting at this global step, report the loss as NaN for
    // `poison_count` steps (each step fires at most once, so a rollback
    // that replays the step sees the true loss). -1 = disarmed.
    int64_t poison_loss_at_step = -1;
    int64_t poison_count = 1;
  };

  // Process-wide instance. On first access, faults named in the
  // environment (YOLLO_FAULT_CRASH_WRITE_BYTES, YOLLO_FAULT_HALT_STEP,
  // YOLLO_FAULT_POISON_STEP, YOLLO_FAULT_POISON_COUNT) are armed.
  static FaultInjector& instance();

  // Arm the given faults (replaces the current config and re-installs or
  // removes the io write hook as needed).
  void configure(const Config& config);

  // Disarm everything and detach from the io layer.
  void reset();

  // Called by train_yollo before processing a step; throws InjectedFault
  // when the halt fault is armed for this step.
  void check_halt(int64_t step);

  // Called by train_yollo with each step's loss; returns NaN while the
  // poison fault is armed for this step (consuming one shot), otherwise
  // returns `loss` unchanged.
  float filter_loss(float loss, int64_t step);

  const Config& config() const { return config_; }

 private:
  FaultInjector();
  void install_write_hook();

  Config config_;
  int64_t poisons_fired_ = 0;
  int64_t max_poisoned_step_ = -1;  // steps <= this have already fired
};

}  // namespace yollo::runtime
