#include "data/dataset.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "data/renderer.h"

namespace yollo::data {

DatasetConfig DatasetConfig::synthref(int64_t num_images, uint64_t seed) {
  DatasetConfig cfg;
  cfg.name = "SynthRef";
  cfg.style = QueryStyle::kRefCoco;
  cfg.num_images = num_images;
  cfg.seed = seed;
  return cfg;
}

DatasetConfig DatasetConfig::synthref_plus(int64_t num_images, uint64_t seed) {
  DatasetConfig cfg;
  cfg.name = "SynthRef+";
  cfg.style = QueryStyle::kRefCocoPlus;
  cfg.num_images = num_images;
  cfg.seed = seed;
  return cfg;
}

DatasetConfig DatasetConfig::synthrefg(int64_t num_images, uint64_t seed) {
  DatasetConfig cfg;
  cfg.name = "SynthRefG";
  cfg.style = QueryStyle::kRefCocoG;
  cfg.num_images = num_images;
  cfg.seed = seed;
  cfg.has_test_splits = false;  // RefCOCOg ships train + val only
  return cfg;
}

GroundingDataset::GroundingDataset(DatasetConfig config, const Vocab& vocab)
    : config_(std::move(config)) {
  Rng rng(config_.seed);
  SceneSamplerConfig scene_cfg = config_.style == QueryStyle::kRefCocoG
                                     ? SceneSamplerConfig::refcocog_style()
                                     : SceneSamplerConfig::refcoco_style();
  scene_cfg.width = config_.img_w;
  scene_cfg.height = config_.img_h;

  std::vector<GroundingSample> all;
  for (int64_t img = 0; img < config_.num_images; ++img) {
    // Resample until the scene admits at least one unambiguous query.
    for (int scene_try = 0; scene_try < 20; ++scene_try) {
      const Scene scene = sample_scene(scene_cfg, rng);
      std::vector<GroundingSample> scene_samples;
      std::vector<size_t> order(scene.objects.size());
      std::iota(order.begin(), order.end(), 0);
      std::shuffle(order.begin(), order.end(), rng.engine());
      for (size_t t : order) {
        if (static_cast<int64_t>(scene_samples.size()) >=
            config_.max_queries_per_image) {
          break;
        }
        auto text = generate_query(scene, t, config_.style, rng);
        if (!text) continue;
        GroundingSample sample;
        sample.scene = scene;
        sample.query_text = *text;
        sample.tokens = vocab.encode(*text);
        sample.target_index = t;
        sample.image_id = img;
        scene_samples.push_back(std::move(sample));
      }
      if (!scene_samples.empty()) {
        for (GroundingSample& s : scene_samples) all.push_back(std::move(s));
        break;
      }
    }
  }
  if (all.empty()) {
    throw std::runtime_error("GroundingDataset: no samples generated");
  }

  for (const GroundingSample& s : all) {
    max_query_len_ =
        std::max(max_query_len_, static_cast<int64_t>(s.tokens.size()));
  }

  // Split by image id so no image leaks across splits.
  std::vector<int64_t> image_ids(static_cast<size_t>(config_.num_images));
  std::iota(image_ids.begin(), image_ids.end(), 0);
  std::shuffle(image_ids.begin(), image_ids.end(), rng.engine());
  const int64_t n_val = static_cast<int64_t>(
      static_cast<float>(config_.num_images) * config_.val_fraction);
  const int64_t n_test =
      config_.has_test_splits
          ? static_cast<int64_t>(static_cast<float>(config_.num_images) *
                                 config_.test_fraction)
          : 0;
  std::unordered_set<int64_t> val_ids(image_ids.begin(),
                                      image_ids.begin() + n_val);
  std::unordered_set<int64_t> test_ids(image_ids.begin() + n_val,
                                       image_ids.begin() + n_val + n_test);

  for (GroundingSample& s : all) {
    if (val_ids.count(s.image_id)) {
      val_.push_back(std::move(s));
    } else if (test_ids.count(s.image_id)) {
      // TestA: targets of the "person"-analogue category; TestB: the rest,
      // mirroring the paper's people / non-people test split.
      if (s.target_shape() == ShapeType::kCircle) {
        test_a_.push_back(std::move(s));
      } else {
        test_b_.push_back(std::move(s));
      }
    } else {
      train_.push_back(std::move(s));
    }
  }
}

DatasetStats GroundingDataset::stats() const {
  DatasetStats st;
  std::unordered_set<int64_t> images;
  std::unordered_set<int64_t> targets;  // image_id * 64 + object index
  double len_sum = 0.0;
  double same_sum = 0.0;
  for (const std::vector<GroundingSample>* split :
       {&train_, &val_, &test_a_, &test_b_}) {
    for (const GroundingSample& s : *split) {
      ++st.num_queries;
      images.insert(s.image_id);
      targets.insert(s.image_id * 64 + static_cast<int64_t>(s.target_index));
      len_sum += static_cast<double>(s.tokens.size());
      same_sum += static_cast<double>(
          s.scene.same_type_count(s.scene.objects[s.target_index]));
    }
  }
  st.num_images = static_cast<int64_t>(images.size());
  st.num_targets = static_cast<int64_t>(targets.size());
  if (st.num_queries > 0) {
    st.avg_query_len = len_sum / static_cast<double>(st.num_queries);
    st.avg_same_type = same_sum / static_cast<double>(st.num_queries);
  }
  return st;
}

std::vector<std::vector<int64_t>> make_batches(int64_t n, int64_t batch_size,
                                               Rng& rng) {
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<std::vector<int64_t>> batches;
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

Tensor render_batch(const std::vector<GroundingSample>& samples,
                    const std::vector<int64_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("render_batch: empty");
  const Scene& first = samples[static_cast<size_t>(indices[0])].scene;
  Tensor batch({static_cast<int64_t>(indices.size()), 3, first.height,
                first.width});
  const int64_t plane = 3 * first.height * first.width;
  for (size_t i = 0; i < indices.size(); ++i) {
    const Tensor img =
        render_scene(samples[static_cast<size_t>(indices[i])].scene);
    std::copy(img.data(), img.data() + plane,
              batch.data() + static_cast<int64_t>(i) * plane);
  }
  return batch;
}

std::vector<int64_t> batch_tokens(const std::vector<GroundingSample>& samples,
                                  const std::vector<int64_t>& indices,
                                  int64_t pad_len) {
  std::vector<int64_t> out;
  out.reserve(indices.size() * static_cast<size_t>(pad_len));
  for (int64_t idx : indices) {
    const std::vector<int64_t> padded =
        pad_to(samples[static_cast<size_t>(idx)].tokens, pad_len);
    out.insert(out.end(), padded.begin(), padded.end());
  }
  return out;
}

}  // namespace yollo::data
