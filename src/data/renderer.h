// Software rasteriser: Scene -> float image tensor [3, H, W] in [0, 1].
//
// The renderer is deterministic given the scene (including its
// background_seed), so datasets can store scenes and rasterise on demand
// instead of holding every image in memory.
#pragma once

#include "data/scene.h"
#include "tensor/tensor.h"

namespace yollo::data {

// Rasterise the scene: textured background, then each object painted in
// order with a slightly darker 1px border so edges are visible to the CNN.
Tensor render_scene(const Scene& scene);

// True when the pixel (px, py) lies inside the analytic silhouette of the
// object (used by the renderer and by tests).
bool point_in_object(const SceneObject& obj, float px, float py);

// Write a [H, W] single-channel tensor as a binary PGM file (values are
// clamped to [0,1] and scaled to 0..255); used by the Figure-5 bench to dump
// attention masks.
void write_pgm(const Tensor& gray, const std::string& path);

// Write a [3, H, W] tensor as a binary PPM file; used to dump rendered
// scenes and predictions for visual inspection.
void write_ppm(const Tensor& rgb, const std::string& path);

// Draw a 1px rectangle outline (in-place) on a [3, H, W] image.
void draw_box_outline(Tensor& image, const vision::Box& box, const Rgb& color);

}  // namespace yollo::data
