// Synthetic visual scenes: the reproduction's stand-in for MS-COCO images.
//
// A Scene is a set of coloured geometric objects on a textured background.
// Objects carry the three attribute axes the referring-expression grammar
// speaks about (shape category, colour, size), plus a bounding box. The
// shape taxonomy plays the role of COCO object categories; per DESIGN.md,
// the CIRCLE category is the designated "person" analogue used to split
// TestA (multi-person images) from TestB.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/random.h"
#include "vision/box.h"

namespace yollo::data {

enum class ShapeType : int8_t {
  kCircle = 0,  // "person" analogue for the TestA/TestB split
  kSquare,
  kTriangle,
  kDiamond,
  kRing,
  kCross,
  kBar,     // wide rectangle
  kPillar,  // tall rectangle
};
inline constexpr int kNumShapes = 8;

enum class ColorName : int8_t {
  kRed = 0,
  kGreen,
  kBlue,
  kYellow,
  kPurple,
  kOrange,
  kCyan,
  kWhite,
};
inline constexpr int kNumColors = 8;

enum class SizeClass : int8_t {
  kSmall = 0,
  kMedium,
  kLarge,
};
inline constexpr int kNumSizes = 3;

const std::string& shape_name(ShapeType s);
const std::string& color_name(ColorName c);
const std::string& size_name(SizeClass z);

// RGB in [0,1] for a colour name.
struct Rgb {
  float r, g, b;
};
Rgb color_rgb(ColorName c);

struct SceneObject {
  ShapeType shape = ShapeType::kCircle;
  ColorName color = ColorName::kRed;
  SizeClass size = SizeClass::kMedium;
  vision::Box box;  // pixel coordinates in the scene canvas
};

struct Scene {
  int64_t width = 96;
  int64_t height = 64;
  std::vector<SceneObject> objects;
  uint64_t background_seed = 0;  // makes the rendered texture reproducible

  // Number of objects sharing the given object's shape category.
  int64_t same_type_count(const SceneObject& obj) const;
};

// Controls for the scene sampler. The two presets mirror the statistics the
// paper reports for its datasets (§4.1): RefCOCO(+) images average ~3.9
// objects of the target's category; RefCOCOg averages ~1.6.
struct SceneSamplerConfig {
  int64_t width = 96;
  int64_t height = 64;
  int64_t min_objects = 4;
  int64_t max_objects = 7;
  // Probability that a newly sampled object copies the shape category of the
  // first object (drives the same-type count up for RefCOCO-style scenes).
  float same_type_bias = 0.55f;
  float max_pairwise_iou = 0.10f;

  static SceneSamplerConfig refcoco_style();   // crowded same-type scenes
  static SceneSamplerConfig refcocog_style();  // sparse distinct scenes
};

// Sample a random scene. Object placement uses rejection sampling so boxes
// stay inside the canvas and overlap at most max_pairwise_iou.
Scene sample_scene(const SceneSamplerConfig& config, Rng& rng);

// Pixel size (full extent) range for a size class; used by the sampler and
// useful for tests.
float size_extent(SizeClass z, Rng& rng);

}  // namespace yollo::data
