// Synthetic visual-grounding datasets: SynthRef / SynthRef+ / SynthRefG.
//
// These replace RefCOCO / RefCOCO+ / RefCOCOg (paper §4.1) per the
// substitution table in DESIGN.md. Each dataset holds scenes, queries, and
// target boxes, with train/val/TestA/TestB splits. Following the paper,
// TestA holds samples whose target is the "person" analogue (kCircle) and
// TestB holds everything else; SynthRefG, like RefCOCOg, has only a
// validation split.
#pragma once

#include <string>
#include <vector>

#include "data/grammar.h"
#include "data/scene.h"
#include "data/vocab.h"
#include "tensor/tensor.h"
#include "vision/box.h"

namespace yollo::data {

struct GroundingSample {
  Scene scene;
  std::string query_text;
  std::vector<int64_t> tokens;  // unpadded token ids
  size_t target_index = 0;      // index into scene.objects
  int64_t image_id = 0;

  const vision::Box& target_box() const {
    return scene.objects[target_index].box;
  }
  ShapeType target_shape() const { return scene.objects[target_index].shape; }
};

struct DatasetConfig {
  std::string name = "SynthRef";
  QueryStyle style = QueryStyle::kRefCoco;
  int64_t num_images = 300;
  // Scene canvas in pixels (2:3 aspect mirroring the paper's 400x600).
  int64_t img_h = 64;
  int64_t img_w = 96;
  int64_t max_queries_per_image = 3;  // several queries can share an image
  uint64_t seed = 1234;
  // Fractions of samples assigned to val and test (rest is train).
  float val_fraction = 0.15f;
  float test_fraction = 0.20f;
  bool has_test_splits = true;  // false for SynthRefG (val only)

  static DatasetConfig synthref(int64_t num_images, uint64_t seed = 1234);
  static DatasetConfig synthref_plus(int64_t num_images, uint64_t seed = 2345);
  static DatasetConfig synthrefg(int64_t num_images, uint64_t seed = 3456);
};

// Aggregate statistics, printed by the Table-1 bench.
struct DatasetStats {
  int64_t num_images = 0;
  int64_t num_queries = 0;
  int64_t num_targets = 0;  // distinct (image, object) pairs
  double avg_query_len = 0.0;
  double avg_same_type = 0.0;  // objects sharing the target's category
};

class GroundingDataset {
 public:
  GroundingDataset(DatasetConfig config, const Vocab& vocab);

  const DatasetConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  const std::vector<GroundingSample>& train() const { return train_; }
  const std::vector<GroundingSample>& val() const { return val_; }
  const std::vector<GroundingSample>& test_a() const { return test_a_; }
  const std::vector<GroundingSample>& test_b() const { return test_b_; }

  // Longest query (in tokens) across all splits; batches pad to this.
  int64_t max_query_len() const { return max_query_len_; }

  DatasetStats stats() const;

 private:
  DatasetConfig config_;
  std::vector<GroundingSample> train_;
  std::vector<GroundingSample> val_;
  std::vector<GroundingSample> test_a_;
  std::vector<GroundingSample> test_b_;
  int64_t max_query_len_ = 0;
};

// Shuffled mini-batch index lists covering [0, n).
std::vector<std::vector<int64_t>> make_batches(int64_t n, int64_t batch_size,
                                               Rng& rng);

// Render a batch of samples into one [B, 3, H, W] tensor.
Tensor render_batch(const std::vector<GroundingSample>& samples,
                    const std::vector<int64_t>& indices);

// Pad and flatten the token ids of a batch into row-major [B * pad_len].
std::vector<int64_t> batch_tokens(const std::vector<GroundingSample>& samples,
                                  const std::vector<int64_t>& indices,
                                  int64_t pad_len);

}  // namespace yollo::data
