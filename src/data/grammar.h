// Referring-expression grammar: generates natural-language queries that
// uniquely identify one object in a Scene.
//
// Three styles mirror the paper's datasets (§4.1):
//   kRefCoco      — short phrases, location words allowed   (RefCOCO)
//   kRefCocoPlus  — short phrases, NO location words        (RefCOCO+)
//   kRefCocoG     — sentence-length, relational clauses     (RefCOCOg)
//
// Every generated query is verified against the scene: the attribute (and,
// for kRefCocoG, relational) predicate it denotes must match exactly the
// target object. Generation fails (returns nullopt) when no unambiguous
// expression exists under the style, in which case the dataset builder
// resamples.
#pragma once

#include <optional>
#include <string>

#include "data/scene.h"
#include "tensor/random.h"

namespace yollo::data {

enum class QueryStyle {
  kRefCoco = 0,
  kRefCocoPlus,
  kRefCocoG,
};

const std::string& query_style_name(QueryStyle s);

// Coarse location buckets used by the grammar's absolute location words.
enum class HBucket : int8_t { kLeft, kCenter, kRight };
enum class VBucket : int8_t { kTop, kMiddle, kBottom };
HBucket h_bucket(const SceneObject& obj, const Scene& scene);
VBucket v_bucket(const SceneObject& obj, const Scene& scene);

// A partial description: unset attributes are wildcards.
struct Descriptor {
  std::optional<ShapeType> shape;
  std::optional<ColorName> color;
  std::optional<SizeClass> size;
  std::optional<HBucket> h;  // only used by kRefCoco / kRefCocoG
  std::optional<VBucket> v;
};

// True when the object satisfies every set field of the descriptor.
bool matches(const Descriptor& d, const SceneObject& obj, const Scene& scene);

// Number of scene objects matching the descriptor.
int64_t count_matches(const Descriptor& d, const Scene& scene);

// Generate a query for scene.objects[target]. Returns the surface text, or
// nullopt when the style admits no unambiguous expression for this target.
std::optional<std::string> generate_query(const Scene& scene, size_t target,
                                          QueryStyle style, Rng& rng);

// Sample a corpus of query texts (for Word2Vec pre-training): repeatedly
// samples scenes and emits one query per object that admits one.
std::vector<std::string> sample_corpus(QueryStyle style, int64_t num_scenes,
                                       Rng& rng);

}  // namespace yollo::data
