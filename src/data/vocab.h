// Token vocabulary and whitespace tokenizer.
//
// Mirrors the paper's text pipeline (§4.2): queries are tokenised to word
// ids, unknown words map to UNK, and batches are padded with PAD to the
// dataset's maximum query length.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace yollo::data {

class Vocab {
 public:
  static constexpr int64_t kPad = 0;
  static constexpr int64_t kUnk = 1;

  Vocab();

  // Add a word (idempotent); returns its id.
  int64_t add(const std::string& word);

  // Id for a word, kUnk when absent.
  int64_t id(const std::string& word) const;

  bool contains(const std::string& word) const;

  // Text of `id`; out-of-range ids return the "<unk>" text (never throws,
  // never indexes out of bounds — the serving path decodes untrusted ids).
  const std::string& word(int64_t id) const;

  int64_t size() const { return static_cast<int64_t>(words_.size()); }

  // Whitespace-split `text` and map each token to an id.
  std::vector<int64_t> encode(const std::string& text) const;

  // Inverse of encode (PAD tokens are skipped).
  std::string decode(const std::vector<int64_t>& ids) const;

  // The full vocabulary of the synthetic referring-expression grammar:
  // attribute words, shape nouns, spatial terms, and function words.
  static Vocab grounding_vocab();

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, int64_t> index_;
};

// Split on runs of whitespace, lower-casing and stripping surrounding
// punctuation from each token ("Red," -> "red"), so user-typed queries in
// the examples normalise to grammar vocabulary.
std::vector<std::string> tokenize(const std::string& text);

// Right-pad (or truncate) ids to `length` with PAD.
std::vector<int64_t> pad_to(const std::vector<int64_t>& ids, int64_t length);

}  // namespace yollo::data
