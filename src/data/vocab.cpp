#include "data/vocab.h"

#include <cctype>
#include <sstream>

#include "data/scene.h"

namespace yollo::data {

Vocab::Vocab() {
  add("<pad>");
  add("<unk>");
}

int64_t Vocab::add(const std::string& word) {
  const auto it = index_.find(word);
  if (it != index_.end()) return it->second;
  const int64_t id = static_cast<int64_t>(words_.size());
  words_.push_back(word);
  index_.emplace(word, id);
  return id;
}

int64_t Vocab::id(const std::string& word) const {
  const auto it = index_.find(word);
  return it != index_.end() ? it->second : kUnk;
}

bool Vocab::contains(const std::string& word) const {
  return index_.count(word) > 0;
}

const std::string& Vocab::word(int64_t id) const {
  // Out-of-range ids (e.g. from a corrupted request or a checkpoint built
  // against a larger vocabulary) decode as UNK instead of failing: the
  // serving path must be able to echo any token stream back as text.
  if (id < 0 || id >= size()) {
    return words_[static_cast<size_t>(kUnk)];
  }
  return words_[static_cast<size_t>(id)];
}

std::vector<int64_t> Vocab::encode(const std::string& text) const {
  std::vector<int64_t> ids;
  for (const std::string& tok : tokenize(text)) ids.push_back(id(tok));
  return ids;
}

std::string Vocab::decode(const std::vector<int64_t>& ids) const {
  std::string out;
  for (int64_t id : ids) {
    if (id == kPad) continue;
    if (!out.empty()) out += ' ';
    out += word(id);
  }
  return out;
}

Vocab Vocab::grounding_vocab() {
  Vocab v;
  for (int i = 0; i < kNumShapes; ++i) {
    v.add(shape_name(static_cast<ShapeType>(i)));
    v.add(shape_name(static_cast<ShapeType>(i)) + "s");  // plural fillers
  }
  for (int i = 0; i < kNumColors; ++i) {
    v.add(color_name(static_cast<ColorName>(i)));
  }
  for (int i = 0; i < kNumSizes; ++i) {
    v.add(size_name(static_cast<SizeClass>(i)));
  }
  for (const char* w :
       {"left", "right", "top", "bottom", "middle", "center", "leftmost",
        "rightmost", "upper", "lower", "the", "a", "that", "which", "is",
        "to", "of", "above", "below", "beside", "near", "in", "on", "at",
        "picture", "image", "scene", "object", "shape", "one", "thing",
        "side", "part", "and", "it", "this", "big", "little", "tiny",
        "huge"}) {
    v.add(w);
  }
  return v;
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream stream(text);
  std::string tok;
  while (stream >> tok) {
    size_t begin = 0;
    size_t end = tok.size();
    while (begin < end && std::ispunct(static_cast<unsigned char>(tok[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::ispunct(static_cast<unsigned char>(tok[end - 1]))) {
      --end;
    }
    if (begin == end) continue;
    std::string word = tok.substr(begin, end - begin);
    for (char& c : word) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    out.push_back(std::move(word));
  }
  return out;
}

std::vector<int64_t> pad_to(const std::vector<int64_t>& ids, int64_t length) {
  std::vector<int64_t> out = ids;
  out.resize(static_cast<size_t>(length), Vocab::kPad);
  return out;
}

}  // namespace yollo::data
