#include "data/grammar.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace yollo::data {
namespace {

const std::array<std::string, 3> kStyleNames = {"SynthRef", "SynthRef+",
                                                "SynthRefG"};

std::string h_word(HBucket h) {
  switch (h) {
    case HBucket::kLeft:
      return "left";
    case HBucket::kCenter:
      return "middle";
    case HBucket::kRight:
      return "right";
  }
  return "";
}

std::string v_word(VBucket v) {
  switch (v) {
    case VBucket::kTop:
      return "top";
    case VBucket::kMiddle:
      return "middle";
    case VBucket::kBottom:
      return "bottom";
  }
  return "";
}

// Surface realisation of a descriptor as a short phrase:
// [loc_h] [size] [color] shape [loc_v-suffix].
std::string realize_phrase(const Descriptor& d, Rng& rng) {
  std::string out;
  if (rng.bernoulli(0.35f)) out += "the ";
  if (d.h) out += h_word(*d.h) + " ";
  if (d.size) out += size_name(*d.size) + " ";
  if (d.color) out += color_name(*d.color) + " ";
  out += d.shape ? shape_name(*d.shape) : "object";
  if (d.v && *d.v != VBucket::kMiddle) {
    out += rng.bernoulli(0.5f) ? " at " + v_word(*d.v) : " " + v_word(*d.v);
  } else if (d.v) {
    out += " in the middle";
  }
  return out;
}

// Relations for the RefCOCOg-style clauses.
enum class Relation { kLeftOf, kRightOf, kAbove, kBelow };

std::string relation_words(Relation r) {
  switch (r) {
    case Relation::kLeftOf:
      return "to the left of";
    case Relation::kRightOf:
      return "to the right of";
    case Relation::kAbove:
      return "above";
    case Relation::kBelow:
      return "below";
  }
  return "";
}

bool relation_holds(Relation r, const SceneObject& subject,
                    const SceneObject& ref) {
  constexpr float kMargin = 2.0f;
  switch (r) {
    case Relation::kLeftOf:
      return subject.box.cx() < ref.box.cx() - kMargin;
    case Relation::kRightOf:
      return subject.box.cx() > ref.box.cx() + kMargin;
    case Relation::kAbove:
      return subject.box.cy() < ref.box.cy() - kMargin;
    case Relation::kBelow:
      return subject.box.cy() > ref.box.cy() + kMargin;
  }
  return false;
}

// The relation naturally describing subject vs. ref (dominant axis).
std::optional<Relation> dominant_relation(const SceneObject& subject,
                                          const SceneObject& ref) {
  const float dx = subject.box.cx() - ref.box.cx();
  const float dy = subject.box.cy() - ref.box.cy();
  if (std::max(std::fabs(dx), std::fabs(dy)) < 4.0f) return std::nullopt;
  if (std::fabs(dx) >= std::fabs(dy)) {
    return dx < 0 ? Relation::kLeftOf : Relation::kRightOf;
  }
  return dy < 0 ? Relation::kAbove : Relation::kBelow;
}

// Candidate attribute templates for short phrases, ordered roughly from
// simple to specific. Location-bearing templates are skipped for
// kRefCocoPlus.
struct TemplateSpec {
  bool color, size, h, v;
};

constexpr std::array<TemplateSpec, 12> kTemplates = {{
    {false, false, false, false},  // shape
    {true, false, false, false},   // color shape
    {false, false, true, false},   // loc_h shape
    {false, false, false, true},   // shape loc_v
    {false, true, false, false},   // size shape
    {true, false, true, false},    // loc_h color shape
    {true, false, false, true},    // color shape loc_v
    {true, true, false, false},    // size color shape
    {false, true, true, false},    // loc_h size shape
    {true, true, true, false},     // loc_h size color shape
    {true, true, false, true},     // size color shape loc_v
    {true, true, true, true},      // everything
}};

Descriptor build_descriptor(const SceneObject& target, const Scene& scene,
                            const TemplateSpec& t) {
  Descriptor d;
  d.shape = target.shape;
  if (t.color) d.color = target.color;
  if (t.size) d.size = target.size;
  if (t.h) d.h = h_bucket(target, scene);
  if (t.v) d.v = v_bucket(target, scene);
  return d;
}

std::optional<std::string> generate_short_phrase(const Scene& scene,
                                                 size_t target,
                                                 bool allow_location,
                                                 Rng& rng) {
  const SceneObject& obj = scene.objects[target];
  // Walk templates from simple to specific; within equal complexity the
  // order is fixed, but the realisation adds surface variety.
  for (const TemplateSpec& t : kTemplates) {
    if (!allow_location && (t.h || t.v)) continue;
    const Descriptor d = build_descriptor(obj, scene, t);
    if (count_matches(d, scene) == 1) {
      return realize_phrase(d, rng);
    }
  }
  return std::nullopt;
}

std::optional<std::string> generate_sentence(const Scene& scene, size_t target,
                                             Rng& rng) {
  const SceneObject& obj = scene.objects[target];

  // Subject noun phrase: color (+ size when needed for flavour).
  Descriptor subject;
  subject.shape = obj.shape;
  subject.color = obj.color;
  if (rng.bernoulli(0.5f)) subject.size = obj.size;

  // Try relational clauses against each other object usable as a reference:
  // the reference must itself be unique under (color, shape) so the clause
  // is well-defined.
  std::vector<size_t> ref_order;
  for (size_t i = 0; i < scene.objects.size(); ++i) {
    if (i != target) ref_order.push_back(i);
  }
  std::shuffle(ref_order.begin(), ref_order.end(), rng.engine());

  for (size_t ref_idx : ref_order) {
    const SceneObject& ref = scene.objects[ref_idx];
    Descriptor ref_d;
    ref_d.shape = ref.shape;
    ref_d.color = ref.color;
    if (count_matches(ref_d, scene) != 1) continue;
    const std::optional<Relation> rel = dominant_relation(obj, ref);
    if (!rel) continue;

    // The full predicate: subject attributes AND relation to ref must pick
    // out exactly the target.
    int64_t matches_count = 0;
    for (const SceneObject& candidate : scene.objects) {
      if (matches(subject, candidate, scene) &&
          relation_holds(*rel, candidate, ref)) {
        ++matches_count;
      }
    }
    if (matches_count != 1 || !relation_holds(*rel, obj, ref)) continue;

    std::string out = "the ";
    if (subject.size) out += size_name(*subject.size) + " ";
    out += color_name(*subject.color) + " " + shape_name(*subject.shape);
    out += rng.bernoulli(0.5f) ? " that is " : " which is ";
    out += relation_words(*rel) + " the " + color_name(ref.color) + " " +
           shape_name(ref.shape);
    if (rng.bernoulli(0.4f)) {
      out += rng.bernoulli(0.5f) ? " in the picture" : " in the image";
    }
    return out;
  }

  // Fall back to an attribute-only sentence with filler words when the
  // attributes alone are unambiguous.
  std::optional<std::string> phrase =
      generate_short_phrase(scene, target, /*allow_location=*/true, rng);
  if (!phrase) return std::nullopt;
  return "the " + *phrase + (rng.bernoulli(0.5f) ? " in the picture"
                                                 : " in the scene");
}

}  // namespace

const std::string& query_style_name(QueryStyle s) {
  return kStyleNames[static_cast<size_t>(s)];
}

HBucket h_bucket(const SceneObject& obj, const Scene& scene) {
  const float t = obj.box.cx() / static_cast<float>(scene.width);
  if (t < 1.0f / 3.0f) return HBucket::kLeft;
  if (t > 2.0f / 3.0f) return HBucket::kRight;
  return HBucket::kCenter;
}

VBucket v_bucket(const SceneObject& obj, const Scene& scene) {
  const float t = obj.box.cy() / static_cast<float>(scene.height);
  if (t < 1.0f / 3.0f) return VBucket::kTop;
  if (t > 2.0f / 3.0f) return VBucket::kBottom;
  return VBucket::kMiddle;
}

bool matches(const Descriptor& d, const SceneObject& obj, const Scene& scene) {
  if (d.shape && obj.shape != *d.shape) return false;
  if (d.color && obj.color != *d.color) return false;
  if (d.size && obj.size != *d.size) return false;
  if (d.h && h_bucket(obj, scene) != *d.h) return false;
  if (d.v && v_bucket(obj, scene) != *d.v) return false;
  return true;
}

int64_t count_matches(const Descriptor& d, const Scene& scene) {
  int64_t count = 0;
  for (const SceneObject& obj : scene.objects) {
    count += matches(d, obj, scene);
  }
  return count;
}

std::optional<std::string> generate_query(const Scene& scene, size_t target,
                                          QueryStyle style, Rng& rng) {
  switch (style) {
    case QueryStyle::kRefCoco:
      return generate_short_phrase(scene, target, /*allow_location=*/true,
                                   rng);
    case QueryStyle::kRefCocoPlus:
      return generate_short_phrase(scene, target, /*allow_location=*/false,
                                   rng);
    case QueryStyle::kRefCocoG:
      return generate_sentence(scene, target, rng);
  }
  return std::nullopt;
}

std::vector<std::string> sample_corpus(QueryStyle style, int64_t num_scenes,
                                       Rng& rng) {
  const SceneSamplerConfig scfg = style == QueryStyle::kRefCocoG
                                      ? SceneSamplerConfig::refcocog_style()
                                      : SceneSamplerConfig::refcoco_style();
  std::vector<std::string> corpus;
  for (int64_t i = 0; i < num_scenes; ++i) {
    const Scene scene = sample_scene(scfg, rng);
    for (size_t t = 0; t < scene.objects.size(); ++t) {
      if (auto q = generate_query(scene, t, style, rng)) {
        corpus.push_back(std::move(*q));
      }
    }
  }
  return corpus;
}

}  // namespace yollo::data
