#include "data/scene.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace yollo::data {
namespace {

const std::array<std::string, kNumShapes> kShapeNames = {
    "circle", "square", "triangle", "diamond",
    "ring",   "cross",  "bar",      "pillar"};

const std::array<std::string, kNumColors> kColorNames = {
    "red", "green", "blue", "yellow", "purple", "orange", "cyan", "white"};

const std::array<std::string, kNumSizes> kSizeNames = {"small", "medium",
                                                       "large"};

const std::array<Rgb, kNumColors> kColorValues = {{
    {0.85f, 0.15f, 0.12f},  // red
    {0.15f, 0.70f, 0.20f},  // green
    {0.15f, 0.25f, 0.85f},  // blue
    {0.90f, 0.85f, 0.15f},  // yellow
    {0.60f, 0.20f, 0.75f},  // purple
    {0.95f, 0.55f, 0.10f},  // orange
    {0.15f, 0.80f, 0.85f},  // cyan
    {0.95f, 0.95f, 0.95f},  // white
}};

}  // namespace

const std::string& shape_name(ShapeType s) {
  return kShapeNames[static_cast<size_t>(s)];
}

const std::string& color_name(ColorName c) {
  return kColorNames[static_cast<size_t>(c)];
}

const std::string& size_name(SizeClass z) {
  return kSizeNames[static_cast<size_t>(z)];
}

Rgb color_rgb(ColorName c) { return kColorValues[static_cast<size_t>(c)]; }

int64_t Scene::same_type_count(const SceneObject& obj) const {
  int64_t count = 0;
  for (const SceneObject& o : objects) count += (o.shape == obj.shape);
  return count;
}

SceneSamplerConfig SceneSamplerConfig::refcoco_style() {
  SceneSamplerConfig cfg;
  cfg.min_objects = 4;
  cfg.max_objects = 7;
  cfg.same_type_bias = 0.55f;
  return cfg;
}

SceneSamplerConfig SceneSamplerConfig::refcocog_style() {
  SceneSamplerConfig cfg;
  cfg.min_objects = 3;
  cfg.max_objects = 5;
  cfg.same_type_bias = 0.05f;
  return cfg;
}

float size_extent(SizeClass z, Rng& rng) {
  switch (z) {
    case SizeClass::kSmall:
      return rng.uniform(8.0f, 11.0f);
    case SizeClass::kMedium:
      return rng.uniform(13.0f, 17.0f);
    case SizeClass::kLarge:
      return rng.uniform(19.0f, 24.0f);
  }
  throw std::logic_error("size_extent: bad size class");
}

Scene sample_scene(const SceneSamplerConfig& config, Rng& rng) {
  Scene scene;
  scene.width = config.width;
  scene.height = config.height;
  scene.background_seed = rng.engine()();

  const int64_t target_count =
      rng.randint(config.min_objects, config.max_objects);

  ShapeType majority_shape =
      static_cast<ShapeType>(rng.randint(0, kNumShapes - 1));

  int attempts = 0;
  while (static_cast<int64_t>(scene.objects.size()) < target_count &&
         attempts < 400) {
    ++attempts;
    SceneObject obj;
    obj.shape = rng.bernoulli(config.same_type_bias)
                    ? majority_shape
                    : static_cast<ShapeType>(rng.randint(0, kNumShapes - 1));
    obj.color = static_cast<ColorName>(rng.randint(0, kNumColors - 1));
    obj.size = static_cast<SizeClass>(rng.randint(0, kNumSizes - 1));

    float w = size_extent(obj.size, rng);
    float h = w;
    if (obj.shape == ShapeType::kBar) {
      h = std::max(5.0f, w * 0.45f);
    } else if (obj.shape == ShapeType::kPillar) {
      w = std::max(5.0f, h * 0.45f);
      h = h * 1.2f;
    }
    if (w >= static_cast<float>(config.width) - 2.0f ||
        h >= static_cast<float>(config.height) - 2.0f) {
      continue;
    }
    const float x = rng.uniform(1.0f, static_cast<float>(config.width) - w - 1.0f);
    const float y =
        rng.uniform(1.0f, static_cast<float>(config.height) - h - 1.0f);
    obj.box = vision::Box{x, y, w, h};

    bool overlaps = false;
    for (const SceneObject& other : scene.objects) {
      if (vision::iou(obj.box, other.box) > config.max_pairwise_iou) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) scene.objects.push_back(obj);
  }

  if (scene.objects.empty()) {
    throw std::runtime_error("sample_scene: failed to place any object");
  }
  return scene;
}

}  // namespace yollo::data
