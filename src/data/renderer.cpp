#include "data/renderer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace yollo::data {
namespace {

// Deterministic per-pixel hash noise in [0, 1) for the background texture.
float hash_noise(uint64_t seed, int64_t x, int64_t y) {
  uint64_t h = seed ^ (static_cast<uint64_t>(x) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(y) * 0xc2b2ae3d27d4eb4fULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<float>(h & 0xffffff) / static_cast<float>(0x1000000);
}

}  // namespace

bool point_in_object(const SceneObject& obj, float px, float py) {
  const vision::Box& b = obj.box;
  if (px < b.x || px > b.x2() || py < b.y || py > b.y2()) return false;
  // Normalised coordinates in [-1, 1] relative to the box centre.
  const float nx = (px - b.cx()) / (0.5f * b.w);
  const float ny = (py - b.cy()) / (0.5f * b.h);
  switch (obj.shape) {
    case ShapeType::kCircle:
      return nx * nx + ny * ny <= 1.0f;
    case ShapeType::kSquare:
    case ShapeType::kBar:
    case ShapeType::kPillar:
      return true;  // the whole box
    case ShapeType::kTriangle: {
      // Upward triangle: apex at top-centre, base at the bottom.
      const float t = (ny + 1.0f) * 0.5f;  // 0 at top, 1 at bottom
      return std::fabs(nx) <= t;
    }
    case ShapeType::kDiamond:
      return std::fabs(nx) + std::fabs(ny) <= 1.0f;
    case ShapeType::kRing: {
      const float r2 = nx * nx + ny * ny;
      return r2 <= 1.0f && r2 >= 0.30f;
    }
    case ShapeType::kCross:
      return std::fabs(nx) <= 0.34f || std::fabs(ny) <= 0.34f;
  }
  return false;
}

Tensor render_scene(const Scene& scene) {
  const int64_t h = scene.height;
  const int64_t w = scene.width;
  Tensor image({3, h, w});
  float* r = image.data();
  float* g = r + h * w;
  float* b = g + h * w;

  // Background: soft vertical gradient plus hash noise, dark enough that
  // every object colour contrasts with it.
  for (int64_t y = 0; y < h; ++y) {
    const float grad =
        0.12f + 0.08f * static_cast<float>(y) / static_cast<float>(h);
    for (int64_t x = 0; x < w; ++x) {
      const float n = 0.05f * hash_noise(scene.background_seed, x, y);
      const int64_t i = y * w + x;
      r[i] = grad + n;
      g[i] = grad + 0.02f + n;
      b[i] = grad + 0.04f + n;
    }
  }

  for (const SceneObject& obj : scene.objects) {
    const Rgb c = color_rgb(obj.color);
    const Rgb border{c.r * 0.45f, c.g * 0.45f, c.b * 0.45f};
    const int64_t x0 = std::max<int64_t>(0, static_cast<int64_t>(obj.box.x));
    const int64_t y0 = std::max<int64_t>(0, static_cast<int64_t>(obj.box.y));
    const int64_t x1 =
        std::min<int64_t>(w - 1, static_cast<int64_t>(std::ceil(obj.box.x2())));
    const int64_t y1 =
        std::min<int64_t>(h - 1, static_cast<int64_t>(std::ceil(obj.box.y2())));
    for (int64_t y = y0; y <= y1; ++y) {
      for (int64_t x = x0; x <= x1; ++x) {
        const float px = static_cast<float>(x) + 0.5f;
        const float py = static_cast<float>(y) + 0.5f;
        if (!point_in_object(obj, px, py)) continue;
        // Border when any 4-neighbour falls outside the silhouette.
        const bool edge = !point_in_object(obj, px - 1.0f, py) ||
                          !point_in_object(obj, px + 1.0f, py) ||
                          !point_in_object(obj, px, py - 1.0f) ||
                          !point_in_object(obj, px, py + 1.0f);
        const Rgb& paint = edge ? border : c;
        const int64_t i = y * w + x;
        r[i] = paint.r;
        g[i] = paint.g;
        b[i] = paint.b;
      }
    }
  }
  return image;
}

void write_pgm(const Tensor& gray, const std::string& path) {
  if (gray.ndim() != 2) {
    throw std::invalid_argument("write_pgm: expected [H, W], got " +
                                shape_to_string(gray.shape()));
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  const int64_t h = gray.size(0);
  const int64_t w = gray.size(1);
  out << "P5\n" << w << ' ' << h << "\n255\n";
  const float* p = gray.data();
  for (int64_t i = 0; i < h * w; ++i) {
    const float v = std::clamp(p[i], 0.0f, 1.0f);
    out.put(static_cast<char>(static_cast<int>(v * 255.0f)));
  }
}

void write_ppm(const Tensor& rgb, const std::string& path) {
  if (rgb.ndim() != 3 || rgb.size(0) != 3) {
    throw std::invalid_argument("write_ppm: expected [3, H, W], got " +
                                shape_to_string(rgb.shape()));
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
  const int64_t h = rgb.size(1);
  const int64_t w = rgb.size(2);
  out << "P6\n" << w << ' ' << h << "\n255\n";
  const float* r = rgb.data();
  const float* g = r + h * w;
  const float* b = g + h * w;
  for (int64_t i = 0; i < h * w; ++i) {
    out.put(static_cast<char>(
        static_cast<int>(std::clamp(r[i], 0.0f, 1.0f) * 255.0f)));
    out.put(static_cast<char>(
        static_cast<int>(std::clamp(g[i], 0.0f, 1.0f) * 255.0f)));
    out.put(static_cast<char>(
        static_cast<int>(std::clamp(b[i], 0.0f, 1.0f) * 255.0f)));
  }
}

void draw_box_outline(Tensor& image, const vision::Box& box, const Rgb& color) {
  const int64_t h = image.size(1);
  const int64_t w = image.size(2);
  float* r = image.data();
  float* g = r + h * w;
  float* b = g + h * w;
  const int64_t x0 = std::clamp<int64_t>(static_cast<int64_t>(box.x), 0, w - 1);
  const int64_t y0 = std::clamp<int64_t>(static_cast<int64_t>(box.y), 0, h - 1);
  const int64_t x1 =
      std::clamp<int64_t>(static_cast<int64_t>(box.x2()), 0, w - 1);
  const int64_t y1 =
      std::clamp<int64_t>(static_cast<int64_t>(box.y2()), 0, h - 1);
  auto paint = [&](int64_t y, int64_t x) {
    const int64_t i = y * w + x;
    r[i] = color.r;
    g[i] = color.g;
    b[i] = color.b;
  };
  for (int64_t x = x0; x <= x1; ++x) {
    paint(y0, x);
    paint(y1, x);
  }
  for (int64_t y = y0; y <= y1; ++y) {
    paint(y, x0);
    paint(y, x1);
  }
}

}  // namespace yollo::data
