// Module: base class for neural-network building blocks.
//
// A Module owns its parameters as ag::Variable members and registers them
// (and any child modules) in its constructor; parameters() then walks the
// tree so optimisers and serialisation see every trainable tensor exactly
// once. Modules are neither copyable nor movable: registration stores
// pointers into the object, so the address must be stable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "tensor/serialize.h"

namespace yollo::nn {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  // All trainable parameters in this module and its registered children.
  std::vector<ag::Variable*> parameters();

  // Named flat view (name is the registration path), for checkpoint I/O.
  struct NamedParam {
    std::string name;
    ag::Variable* param;
  };
  std::vector<NamedParam> named_parameters();

  // Non-trainable state that must survive checkpointing (e.g. BatchNorm
  // running statistics).
  struct NamedBuffer {
    std::string name;
    Tensor* buffer;
  };
  std::vector<NamedBuffer> named_buffers();

  // Total trainable element count.
  int64_t parameter_count();

  // Toggle training mode (dropout, batch-norm statistics) for the subtree.
  void set_training(bool training);
  bool training() const { return training_; }

  // Drop every parameter's gradient buffer.
  void zero_grad();

 protected:
  void register_parameter(std::string name, ag::Variable& param);
  void register_buffer(std::string name, Tensor& buffer);
  void register_module(std::string name, Module& child);

  // Hook for modules with mode-dependent behaviour (e.g. BatchNorm).
  virtual void on_training_changed() {}

 private:
  struct Registered {
    std::string name;
    ag::Variable* param;
  };
  struct RegisteredBuffer {
    std::string name;
    Tensor* buffer;
  };
  struct Child {
    std::string name;
    Module* module;
  };
  std::vector<Registered> params_;
  std::vector<RegisteredBuffer> buffers_;
  std::vector<Child> children_;
  bool training_ = true;

  void collect(const std::string& prefix, std::vector<NamedParam>& out);
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out);
};

// RAII: put a module subtree in eval mode (deterministic batch-norm, no
// dropout, no running-statistic updates) and restore the previous mode on
// destruction. Removes the "remember to call set_training(false)" footgun
// around inference entry points — predict/infer install one internally, and
// evaluation loops wrap themselves in one instead of hand-rolling the
// save/restore dance.
class EvalModeGuard {
 public:
  explicit EvalModeGuard(Module& module)
      : module_(&module), was_training_(module.training()) {
    if (was_training_) module_->set_training(false);
  }
  ~EvalModeGuard() {
    if (was_training_) module_->set_training(true);
  }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  Module* module_;
  bool was_training_;
};

// Module-state payload layout (count + per-tensor numel + raw float data
// for the parameter section, then the same for the buffer section).
// Exposed so runtime checkpoints can embed a module's state inside a larger
// bundle; save_parameters/load_parameters wrap these with a standalone file.
void write_module_state(io::PayloadWriter& writer, Module& module);
// Returns true when the payload contained a buffer section (legacy payloads
// written before buffers existed end after the parameters).
bool read_module_state(io::PayloadReader& reader, Module& module,
                       const std::string& context);

// Copy every parameter and buffer of `src` into `dst`, matched by
// registration name. Both modules must have identical architecture (same
// registration tree, same shapes); throws std::invalid_argument otherwise.
// Used by yollo::serve to stamp out per-worker model replicas, so worker
// threads never share mutable tensor storage.
void copy_module_state(Module& dst, Module& src);

// Serialise / restore all parameters AND registered buffers of a module.
// Files carry the io container header (magic "YLPM", format version, CRC-32
// over the payload) and are published atomically via temp-file + rename;
// loads reject truncated, corrupted, or newer-versioned files with
// descriptive errors. Headerless files from before versioning land on a
// legacy fallback path and stay loadable (their optional buffer section is
// detected by end-of-file, as before; the caller should recalibrate
// statistics when absent, e.g. with core::recalibrate_batchnorm).
// load_parameters returns true when the file contained a buffer section.
void save_parameters(Module& module, const std::string& path);
bool load_parameters(Module& module, const std::string& path);

// Format constants for the parameters file (exposed for tests).
inline constexpr uint32_t kParamsMagic = 0x4D504C59u;  // "YLPM"
inline constexpr uint32_t kParamsVersion = 2;

}  // namespace yollo::nn
