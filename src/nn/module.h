// Module: base class for neural-network building blocks.
//
// A Module owns its parameters as ag::Variable members and registers them
// (and any child modules) in its constructor; parameters() then walks the
// tree so optimisers and serialisation see every trainable tensor exactly
// once. Modules are neither copyable nor movable: registration stores
// pointers into the object, so the address must be stable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace yollo::nn {

class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  // All trainable parameters in this module and its registered children.
  std::vector<ag::Variable*> parameters();

  // Named flat view (name is the registration path), for checkpoint I/O.
  struct NamedParam {
    std::string name;
    ag::Variable* param;
  };
  std::vector<NamedParam> named_parameters();

  // Non-trainable state that must survive checkpointing (e.g. BatchNorm
  // running statistics).
  struct NamedBuffer {
    std::string name;
    Tensor* buffer;
  };
  std::vector<NamedBuffer> named_buffers();

  // Total trainable element count.
  int64_t parameter_count();

  // Toggle training mode (dropout, batch-norm statistics) for the subtree.
  void set_training(bool training);
  bool training() const { return training_; }

  // Drop every parameter's gradient buffer.
  void zero_grad();

 protected:
  void register_parameter(std::string name, ag::Variable& param);
  void register_buffer(std::string name, Tensor& buffer);
  void register_module(std::string name, Module& child);

  // Hook for modules with mode-dependent behaviour (e.g. BatchNorm).
  virtual void on_training_changed() {}

 private:
  struct Registered {
    std::string name;
    ag::Variable* param;
  };
  struct RegisteredBuffer {
    std::string name;
    Tensor* buffer;
  };
  struct Child {
    std::string name;
    Module* module;
  };
  std::vector<Registered> params_;
  std::vector<RegisteredBuffer> buffers_;
  std::vector<Child> children_;
  bool training_ = true;

  void collect(const std::string& prefix, std::vector<NamedParam>& out);
  void collect_buffers(const std::string& prefix,
                       std::vector<NamedBuffer>& out);
};

// Serialise / restore all parameters AND registered buffers of a module to a
// flat binary file (count + per-tensor numel + raw float data for each
// section). Files written before buffers existed load cleanly: the buffer
// section is optional on read (the caller should then recalibrate
// statistics, e.g. with core::recalibrate_batchnorm).
// Returns true when the file contained a buffer section.
void save_parameters(Module& module, const std::string& path);
bool load_parameters(Module& module, const std::string& path);

}  // namespace yollo::nn
