#include "nn/module.h"

#include <fstream>
#include <stdexcept>

namespace yollo::nn {

std::vector<ag::Variable*> Module::parameters() {
  std::vector<NamedParam> named = named_parameters();
  std::vector<ag::Variable*> out;
  out.reserve(named.size());
  for (const NamedParam& np : named) out.push_back(np.param);
  return out;
}

std::vector<Module::NamedParam> Module::named_parameters() {
  std::vector<NamedParam> out;
  collect("", out);
  return out;
}

void Module::collect(const std::string& prefix,
                     std::vector<NamedParam>& out) {
  for (const Registered& r : params_) {
    out.push_back({prefix + r.name, r.param});
  }
  for (const Child& c : children_) {
    c.module->collect(prefix + c.name + ".", out);
  }
}

std::vector<Module::NamedBuffer> Module::named_buffers() {
  std::vector<NamedBuffer> out;
  collect_buffers("", out);
  return out;
}

void Module::collect_buffers(const std::string& prefix,
                             std::vector<NamedBuffer>& out) {
  for (const RegisteredBuffer& r : buffers_) {
    out.push_back({prefix + r.name, r.buffer});
  }
  for (const Child& c : children_) {
    c.module->collect_buffers(prefix + c.name + ".", out);
  }
}

int64_t Module::parameter_count() {
  int64_t total = 0;
  for (ag::Variable* p : parameters()) total += p->numel();
  return total;
}

void Module::set_training(bool training) {
  training_ = training;
  on_training_changed();
  for (const Child& c : children_) c.module->set_training(training);
}

void Module::zero_grad() {
  for (ag::Variable* p : parameters()) p->zero_grad();
}

void Module::register_parameter(std::string name, ag::Variable& param) {
  params_.push_back({std::move(name), &param});
}

void Module::register_buffer(std::string name, Tensor& buffer) {
  buffers_.push_back({std::move(name), &buffer});
}

void Module::register_module(std::string name, Module& child) {
  children_.push_back({std::move(name), &child});
}

void save_parameters(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  const auto params = module.parameters();
  const int64_t count = static_cast<int64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (ag::Variable* p : params) {
    const int64_t n = p->numel();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p->value().data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
  // Buffer section (running statistics etc.); optional on read so files
  // from before this section existed stay loadable.
  const auto buffers = module.named_buffers();
  const int64_t buffer_count = static_cast<int64_t>(buffers.size());
  out.write(reinterpret_cast<const char*>(&buffer_count),
            sizeof(buffer_count));
  for (const Module::NamedBuffer& b : buffers) {
    const int64_t n = b.buffer->numel();
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(b.buffer->data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
}

bool load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  const auto params = module.parameters();
  int64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != static_cast<int64_t>(params.size())) {
    throw std::runtime_error("load_parameters: parameter count mismatch in " +
                             path);
  }
  for (ag::Variable* p : params) {
    int64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (n != p->numel()) {
      throw std::runtime_error("load_parameters: tensor size mismatch in " +
                               path);
    }
    in.read(reinterpret_cast<char*>(p->value().data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!in) throw std::runtime_error("load_parameters: truncated file " + path);

  // Optional buffer section.
  int64_t buffer_count = 0;
  in.read(reinterpret_cast<char*>(&buffer_count), sizeof(buffer_count));
  if (!in) return false;  // legacy file: parameters only
  const auto buffers = module.named_buffers();
  if (buffer_count != static_cast<int64_t>(buffers.size())) {
    throw std::runtime_error("load_parameters: buffer count mismatch in " +
                             path);
  }
  for (const Module::NamedBuffer& b : buffers) {
    int64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (n != b.buffer->numel()) {
      throw std::runtime_error("load_parameters: buffer size mismatch in " +
                               path);
    }
    in.read(reinterpret_cast<char*>(b.buffer->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
  if (!in) throw std::runtime_error("load_parameters: truncated file " + path);
  return true;
}

}  // namespace yollo::nn
