#include "nn/module.h"

#include <stdexcept>

namespace yollo::nn {

std::vector<ag::Variable*> Module::parameters() {
  std::vector<NamedParam> named = named_parameters();
  std::vector<ag::Variable*> out;
  out.reserve(named.size());
  for (const NamedParam& np : named) out.push_back(np.param);
  return out;
}

std::vector<Module::NamedParam> Module::named_parameters() {
  std::vector<NamedParam> out;
  collect("", out);
  return out;
}

void Module::collect(const std::string& prefix,
                     std::vector<NamedParam>& out) {
  for (const Registered& r : params_) {
    out.push_back({prefix + r.name, r.param});
  }
  for (const Child& c : children_) {
    c.module->collect(prefix + c.name + ".", out);
  }
}

std::vector<Module::NamedBuffer> Module::named_buffers() {
  std::vector<NamedBuffer> out;
  collect_buffers("", out);
  return out;
}

void Module::collect_buffers(const std::string& prefix,
                             std::vector<NamedBuffer>& out) {
  for (const RegisteredBuffer& r : buffers_) {
    out.push_back({prefix + r.name, r.buffer});
  }
  for (const Child& c : children_) {
    c.module->collect_buffers(prefix + c.name + ".", out);
  }
}

int64_t Module::parameter_count() {
  int64_t total = 0;
  for (ag::Variable* p : parameters()) total += p->numel();
  return total;
}

void Module::set_training(bool training) {
  training_ = training;
  on_training_changed();
  for (const Child& c : children_) c.module->set_training(training);
}

void Module::zero_grad() {
  for (ag::Variable* p : parameters()) p->zero_grad();
}

void Module::register_parameter(std::string name, ag::Variable& param) {
  params_.push_back({std::move(name), &param});
}

void Module::register_buffer(std::string name, Tensor& buffer) {
  buffers_.push_back({std::move(name), &buffer});
}

void Module::register_module(std::string name, Module& child) {
  children_.push_back({std::move(name), &child});
}

void copy_module_state(Module& dst, Module& src) {
  const auto dst_params = dst.named_parameters();
  const auto src_params = src.named_parameters();
  if (dst_params.size() != src_params.size()) {
    throw std::invalid_argument(
        "copy_module_state: parameter count mismatch (dst " +
        std::to_string(dst_params.size()) + ", src " +
        std::to_string(src_params.size()) + ")");
  }
  for (size_t i = 0; i < dst_params.size(); ++i) {
    if (dst_params[i].name != src_params[i].name ||
        dst_params[i].param->shape() != src_params[i].param->shape()) {
      throw std::invalid_argument("copy_module_state: parameter mismatch at " +
                                  dst_params[i].name + " vs " +
                                  src_params[i].name);
    }
    dst_params[i].param->value().copy_from(src_params[i].param->value());
  }
  const auto dst_buffers = dst.named_buffers();
  const auto src_buffers = src.named_buffers();
  if (dst_buffers.size() != src_buffers.size()) {
    throw std::invalid_argument(
        "copy_module_state: buffer count mismatch (dst " +
        std::to_string(dst_buffers.size()) + ", src " +
        std::to_string(src_buffers.size()) + ")");
  }
  for (size_t i = 0; i < dst_buffers.size(); ++i) {
    if (dst_buffers[i].name != src_buffers[i].name ||
        dst_buffers[i].buffer->shape() != src_buffers[i].buffer->shape()) {
      throw std::invalid_argument("copy_module_state: buffer mismatch at " +
                                  dst_buffers[i].name + " vs " +
                                  src_buffers[i].name);
    }
    dst_buffers[i].buffer->copy_from(*src_buffers[i].buffer);
  }
}

void write_module_state(io::PayloadWriter& writer, Module& module) {
  const auto params = module.parameters();
  writer.write_pod<int64_t>(static_cast<int64_t>(params.size()));
  for (ag::Variable* p : params) {
    writer.write_pod<int64_t>(p->numel());
    writer.write(p->value().data(),
                 static_cast<size_t>(p->numel()) * sizeof(float));
  }
  const auto buffers = module.named_buffers();
  writer.write_pod<int64_t>(static_cast<int64_t>(buffers.size()));
  for (const Module::NamedBuffer& b : buffers) {
    writer.write_pod<int64_t>(b.buffer->numel());
    writer.write(b.buffer->data(),
                 static_cast<size_t>(b.buffer->numel()) * sizeof(float));
  }
}

bool read_module_state(io::PayloadReader& reader, Module& module,
                       const std::string& context) {
  const auto params = module.parameters();
  const int64_t count = reader.read_pod<int64_t>();
  if (count != static_cast<int64_t>(params.size())) {
    throw std::runtime_error(context + ": parameter count mismatch (file " +
                             std::to_string(count) + ", module " +
                             std::to_string(params.size()) + ")");
  }
  for (ag::Variable* p : params) {
    const int64_t n = reader.read_pod<int64_t>();
    if (n != p->numel()) {
      throw std::runtime_error(context + ": tensor size mismatch");
    }
    reader.read(p->value().data(), static_cast<size_t>(n) * sizeof(float));
  }

  // Buffer section: always present in versioned payloads, optional (by
  // end-of-payload) in legacy ones.
  if (reader.legacy() && reader.at_end()) return false;
  const int64_t buffer_count = reader.read_pod<int64_t>();
  const auto buffers = module.named_buffers();
  if (buffer_count != static_cast<int64_t>(buffers.size())) {
    throw std::runtime_error(context + ": buffer count mismatch (file " +
                             std::to_string(buffer_count) + ", module " +
                             std::to_string(buffers.size()) + ")");
  }
  for (const Module::NamedBuffer& b : buffers) {
    const int64_t n = reader.read_pod<int64_t>();
    if (n != b.buffer->numel()) {
      throw std::runtime_error(context + ": buffer size mismatch");
    }
    reader.read(b.buffer->data(), static_cast<size_t>(n) * sizeof(float));
  }
  return true;
}

void save_parameters(Module& module, const std::string& path) {
  io::PayloadWriter writer;
  write_module_state(writer, module);
  writer.commit(path, kParamsMagic, kParamsVersion);
}

bool load_parameters(Module& module, const std::string& path) {
  io::PayloadReader reader(path, kParamsMagic, kParamsVersion);
  return read_module_state(reader, module, "load_parameters: " + path);
}

}  // namespace yollo::nn
