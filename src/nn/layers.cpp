#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace yollo::nn {

// --- Linear ------------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias) {
  weight = ag::Variable::param(
      kaiming_normal({in_features, out_features}, in_features, rng));
  register_parameter("weight", weight);
  if (has_bias_) {
    this->bias = ag::Variable::param(Tensor::zeros({out_features}));
    register_parameter("bias", this->bias);
  }
}

ag::Variable Linear::forward(const ag::Variable& x, bool fuse_relu) {
  if (x.size(-1) != in_features_) {
    throw std::invalid_argument("Linear: input feature dim " +
                                std::to_string(x.size(-1)) + " != " +
                                std::to_string(in_features_));
  }
  const Shape in_shape = x.shape();
  ag::Variable flat = x;
  if (x.ndim() != 2) {
    flat = ag::reshape(x, {-1, in_features_});
  }
  // GEMM, bias and (optionally) ReLU in one fused output pass.
  ag::Variable y =
      ag::linear(flat, weight, has_bias_ ? bias : ag::Variable(), fuse_relu);
  if (in_shape.size() != 2) {
    Shape out_shape = in_shape;
    out_shape.back() = out_features_;
    y = ag::reshape(y, std::move(out_shape));
  }
  return y;
}

// --- Embedding ----------------------------------------------------------------

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng& rng)
    : vocab_size_(vocab_size), dim_(dim) {
  weight = ag::Variable::param(embedding_init({vocab_size, dim}, rng));
  register_parameter("weight", weight);
}

ag::Variable Embedding::forward(const std::vector<int64_t>& ids) {
  for (int64_t id : ids) {
    if (id < 0 || id >= vocab_size_) {
      throw std::out_of_range("Embedding: token id " + std::to_string(id) +
                              " outside vocab of " +
                              std::to_string(vocab_size_));
    }
  }
  return ag::embedding(weight, ids);
}

// --- Conv2d -------------------------------------------------------------------

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng, bool bias)
    : has_bias_(bias) {
  spec_.in_channels = in_channels;
  spec_.out_channels = out_channels;
  spec_.kernel_h = kernel;
  spec_.kernel_w = kernel;
  spec_.stride_h = stride;
  spec_.stride_w = stride;
  spec_.pad_h = padding;
  spec_.pad_w = padding;
  const int64_t fan_in = in_channels * kernel * kernel;
  weight = ag::Variable::param(
      kaiming_normal({out_channels, in_channels, kernel, kernel}, fan_in, rng));
  register_parameter("weight", weight);
  if (has_bias_) {
    this->bias = ag::Variable::param(Tensor::zeros({out_channels}));
    register_parameter("bias", this->bias);
  }
}

ag::Variable Conv2d::forward(const ag::Variable& x) {
  return ag::conv2d(x, weight, has_bias_ ? bias : ag::Variable(), spec_);
}

// --- BatchNorm2d -----------------------------------------------------------------

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      running_mean_(Tensor::zeros({channels})),
      running_var_(Tensor::ones({channels})) {
  gamma = ag::Variable::param(Tensor::ones({channels}));
  beta = ag::Variable::param(Tensor::zeros({channels}));
  register_parameter("gamma", gamma);
  register_parameter("beta", beta);
  register_buffer("running_mean", running_mean_);
  register_buffer("running_var", running_var_);
}

ag::Variable BatchNorm2d::forward(const ag::Variable& x) {
  if (x.ndim() != 4 || x.size(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: expected [N," +
                                std::to_string(channels_) + ",H,W], got " +
                                shape_to_string(x.shape()));
  }
  const int64_t n = x.size(0);
  const int64_t h = x.size(2);
  const int64_t w = x.size(3);

  // Rearrange to [C, N*H*W] so per-channel statistics are one axis-reduction.
  ag::Variable xc = ag::reshape(ag::transpose(x, 0, 1), {channels_, n * h * w});

  ag::Variable mu, var;
  if (training()) {
    mu = ag::mean(xc, 1, /*keepdim=*/true);                      // [C,1]
    ag::Variable centered = ag::sub(xc, mu);
    var = ag::mean(ag::square(centered), 1, /*keepdim=*/true);   // [C,1]
    // Update running statistics outside the graph.
    const Tensor batch_mu = mu.value().reshape({channels_});
    const Tensor batch_var = var.value().reshape({channels_});
    scale_inplace(running_mean_, 1.0f - momentum_);
    axpy_inplace(running_mean_, momentum_, batch_mu);
    scale_inplace(running_var_, 1.0f - momentum_);
    axpy_inplace(running_var_, momentum_, batch_var);
  } else {
    // Aliases (not clones) of the running stats: eval forwards allocate
    // nothing here, and a recorded plan's parameter bindings see in-place
    // recalibration of the stats instead of a frozen copy.
    mu = ag::Variable::constant(running_mean_.reshape({channels_, 1}));
    var = ag::Variable::constant(running_var_.reshape({channels_, 1}));
  }

  ag::Variable inv_std = ag::pow_scalar(ag::add_scalar(var, eps_), -0.5f);
  ag::Variable norm = ag::mul(ag::sub(xc, mu), inv_std);          // [C, NHW]
  ag::Variable scaled = ag::add(
      ag::mul(norm, ag::reshape(gamma, {channels_, 1})),
      ag::reshape(beta, {channels_, 1}));
  return ag::transpose(ag::reshape(scaled, {channels_, n, h, w}), 0, 1);
}

// --- LayerNorm --------------------------------------------------------------------

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma = ag::Variable::param(Tensor::ones({dim}));
  beta = ag::Variable::param(Tensor::zeros({dim}));
  register_parameter("gamma", gamma);
  register_parameter("beta", beta);
}

ag::Variable LayerNorm::forward(const ag::Variable& x) {
  if (x.size(-1) != dim_) {
    throw std::invalid_argument("LayerNorm: last dim " +
                                std::to_string(x.size(-1)) + " != " +
                                std::to_string(dim_));
  }
  const int64_t axis = x.ndim() - 1;
  ag::Variable mu = ag::mean(x, axis, /*keepdim=*/true);
  ag::Variable centered = ag::sub(x, mu);
  ag::Variable var = ag::mean(ag::square(centered), axis, /*keepdim=*/true);
  ag::Variable inv_std = ag::pow_scalar(ag::add_scalar(var, eps_), -0.5f);
  ag::Variable norm = ag::mul(centered, inv_std);
  return ag::add(ag::mul(norm, gamma), beta);
}

// --- FFN --------------------------------------------------------------------------

FFN::FFN(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, Rng& rng)
    : fc1(in_dim, hidden_dim, rng), fc2(hidden_dim, out_dim, rng) {
  register_module("fc1", fc1);
  register_module("fc2", fc2);
}

ag::Variable FFN::forward(const ag::Variable& x) {
  return fc2.forward(fc1.forward(x, /*fuse_relu=*/true));
}

}  // namespace yollo::nn
