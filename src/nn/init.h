// Parameter initialisation schemes.
#pragma once

#include "tensor/random.h"
#include "tensor/tensor.h"

namespace yollo::nn {

// He/Kaiming normal init for ReLU networks: stddev = sqrt(2 / fan_in).
Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng);

// Glorot/Xavier uniform init: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

// Small-scale normal init for embeddings: N(0, scale).
Tensor embedding_init(Shape shape, Rng& rng, float scale = 0.1f);

}  // namespace yollo::nn
