// Core neural-network layers built on the autograd ops.
#pragma once

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "nn/init.h"
#include "nn/module.h"

namespace yollo::nn {

// Fully-connected layer y = xW + b. Accepts input of any rank >= 2; leading
// dimensions are flattened for the matmul and restored afterwards.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool bias = true);

  // Runs the fused GEMM+bias kernel; fuse_relu additionally folds the
  // activation into the same output pass (used by FFN's hidden layer).
  ag::Variable forward(const ag::Variable& x, bool fuse_relu = false);

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  ag::Variable weight;  // [in, out]
  ag::Variable bias;    // [out] (undefined when constructed without bias)

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool has_bias_;
};

// Token-id -> dense vector lookup table.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab_size, int64_t dim, Rng& rng);

  // ids -> [ids.size(), dim]
  ag::Variable forward(const std::vector<int64_t>& ids);

  int64_t vocab_size() const { return vocab_size_; }
  int64_t dim() const { return dim_; }

  ag::Variable weight;  // [vocab, dim]

 private:
  int64_t vocab_size_;
  int64_t dim_;
};

// 2-D convolution (NCHW).
class Conv2d : public Module {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, Rng& rng, bool bias = true);

  ag::Variable forward(const ag::Variable& x);

  const Conv2dSpec& spec() const { return spec_; }

  ag::Variable weight;  // [out, in, k, k]
  ag::Variable bias;    // [out]

 private:
  Conv2dSpec spec_;
  bool has_bias_;
};

// Batch normalisation over N,H,W per channel, with running statistics for
// evaluation mode.
class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  ag::Variable forward(const ag::Variable& x);

  ag::Variable gamma;  // [C]
  ag::Variable beta;   // [C]

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t channels_;
  float momentum_;
  float eps_;
  Tensor running_mean_;
  Tensor running_var_;
};

// Layer normalisation over the last dimension.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  ag::Variable forward(const ag::Variable& x);

  ag::Variable gamma;  // [dim]
  ag::Variable beta;   // [dim]

 private:
  int64_t dim_;
  float eps_;
};

// The paper's two-layer feed-forward network: Linear -> ReLU -> Linear.
// Used four times inside every Rel2Att module (eqs. 1-2).
class FFN : public Module {
 public:
  FFN(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, Rng& rng);

  ag::Variable forward(const ag::Variable& x);

  Linear fc1;
  Linear fc2;
};

}  // namespace yollo::nn
