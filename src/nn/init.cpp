#include "nn/init.h"

#include <cmath>

namespace yollo::nn {

Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return Tensor::randn(std::move(shape), rng, 0.0f, stddev);
}

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::rand(std::move(shape), rng, -a, a);
}

Tensor embedding_init(Shape shape, Rng& rng, float scale) {
  return Tensor::randn(std::move(shape), rng, 0.0f, scale);
}

}  // namespace yollo::nn
