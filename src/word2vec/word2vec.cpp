#include "word2vec/word2vec.h"

#include <algorithm>
#include <stdexcept>
#include <cmath>
#include <numeric>

#include "data/grammar.h"
#include "tensor/serialize.h"

namespace yollo::word2vec {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float dot(const float* a, const float* b, int64_t n) {
  float acc = 0.0f;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace

Word2Vec::Word2Vec(int64_t vocab_size, const Word2VecConfig& config)
    : config_(config), vocab_size_(vocab_size), rng_(config.seed) {
  // Standard init: input vectors small uniform, output vectors zero.
  in_ = Tensor::rand({vocab_size, config.dim}, rng_,
                     -0.5f / static_cast<float>(config.dim),
                     0.5f / static_cast<float>(config.dim));
  out_ = Tensor::zeros({vocab_size, config.dim});
}

void Word2Vec::build_unigram_table(
    const std::vector<std::vector<int64_t>>& corpus) {
  std::vector<double> freq(static_cast<size_t>(vocab_size_), 0.0);
  for (const auto& sentence : corpus) {
    for (int64_t id : sentence) {
      if (id > data::Vocab::kUnk) freq[static_cast<size_t>(id)] += 1.0;
    }
  }
  unigram_table_.clear();
  for (int64_t id = 0; id < vocab_size_; ++id) {
    // freq^0.75 smoothing, quantised into table slots.
    const int64_t slots = static_cast<int64_t>(
        std::ceil(std::pow(freq[static_cast<size_t>(id)], 0.75)));
    for (int64_t s = 0; s < slots; ++s) unigram_table_.push_back(id);
  }
  if (unigram_table_.empty()) unigram_table_.push_back(data::Vocab::kUnk);
}

int64_t Word2Vec::sample_negative() {
  return unigram_table_[static_cast<size_t>(
      rng_.randint(0, static_cast<int64_t>(unigram_table_.size()) - 1))];
}

float Word2Vec::train(const std::vector<std::vector<int64_t>>& corpus) {
  build_unigram_table(corpus);
  const int64_t d = config_.dim;
  float last_epoch_loss = 0.0f;
  std::vector<float> grad_center(static_cast<size_t>(d));

  std::vector<size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), 0);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng_.engine());
    double loss_sum = 0.0;
    int64_t loss_count = 0;
    for (size_t si : order) {
      const std::vector<int64_t>& sent = corpus[si];
      for (size_t pos = 0; pos < sent.size(); ++pos) {
        const int64_t center = sent[pos];
        if (center <= data::Vocab::kUnk) continue;
        float* vc = in_.data() + center * d;
        const int64_t lo = static_cast<int64_t>(pos) - config_.window;
        const int64_t hi = static_cast<int64_t>(pos) + config_.window;
        for (int64_t cp = std::max<int64_t>(lo, 0);
             cp <= std::min<int64_t>(hi, static_cast<int64_t>(sent.size()) - 1);
             ++cp) {
          if (cp == static_cast<int64_t>(pos)) continue;
          const int64_t context = sent[static_cast<size_t>(cp)];
          if (context <= data::Vocab::kUnk) continue;

          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive + k negative logistic updates.
          for (int64_t k = 0; k <= config_.negatives; ++k) {
            const bool positive = (k == 0);
            const int64_t word = positive ? context : sample_negative();
            if (!positive && word == context) continue;
            float* vo = out_.data() + word * d;
            const float score = sigmoid(dot(vc, vo, d));
            const float label = positive ? 1.0f : 0.0f;
            const float g = (score - label) * config_.lr;
            loss_sum += positive ? -std::log(std::max(score, 1e-9f))
                                 : -std::log(std::max(1.0f - score, 1e-9f));
            ++loss_count;
            for (int64_t i = 0; i < d; ++i) {
              grad_center[static_cast<size_t>(i)] += g * vo[i];
              vo[i] -= g * vc[i];
            }
          }
          for (int64_t i = 0; i < d; ++i) {
            vc[i] -= grad_center[static_cast<size_t>(i)];
          }
        }
      }
    }
    last_epoch_loss = loss_count > 0
                          ? static_cast<float>(loss_sum /
                                               static_cast<double>(loss_count))
                          : 0.0f;
  }
  return last_epoch_loss;
}

float Word2Vec::similarity(int64_t a, int64_t b) const {
  const int64_t d = config_.dim;
  const float* va = in_.data() + a * d;
  const float* vb = in_.data() + b * d;
  const float na = std::sqrt(dot(va, va, d));
  const float nb = std::sqrt(dot(vb, vb, d));
  if (na < 1e-9f || nb < 1e-9f) return 0.0f;
  return dot(va, vb, d) / (na * nb);
}

std::vector<int64_t> Word2Vec::most_similar(int64_t id, int64_t k) const {
  std::vector<int64_t> ids;
  for (int64_t i = data::Vocab::kUnk + 1; i < vocab_size_; ++i) {
    if (i != id) ids.push_back(i);
  }
  std::partial_sort(
      ids.begin(), ids.begin() + std::min<int64_t>(k, ids.size()), ids.end(),
      [&](int64_t a, int64_t b) {
        return similarity(id, a) > similarity(id, b);
      });
  ids.resize(static_cast<size_t>(std::min<int64_t>(k, ids.size())));
  return ids;
}

Tensor pretrain_grounding_embeddings(const data::Vocab& vocab,
                                     const Word2VecConfig& config,
                                     int64_t corpus_scenes) {
  Rng rng(config.seed);
  std::vector<std::vector<int64_t>> corpus;
  // Mix all three query styles so every grammar word appears in context.
  for (data::QueryStyle style :
       {data::QueryStyle::kRefCoco, data::QueryStyle::kRefCocoPlus,
        data::QueryStyle::kRefCocoG}) {
    for (const std::string& text :
         data::sample_corpus(style, corpus_scenes / 3, rng)) {
      corpus.push_back(vocab.encode(text));
    }
  }
  Word2Vec model(vocab.size(), config);
  model.train(corpus);
  return model.embeddings().clone();
}

}  // namespace yollo::word2vec

namespace yollo::word2vec {

// Embedding files share the io container layout (magic "YLEM", version,
// CRC-32); headerless pre-versioning files load via the legacy path below.
namespace {
constexpr uint32_t kEmbMagic = 0x4D454C59u;  // "YLEM"
constexpr uint32_t kEmbVersion = 2;
}  // namespace

void save_embeddings(const Tensor& embeddings, const std::string& path) {
  io::PayloadWriter writer;
  writer.write_pod<int64_t>(embeddings.size(0));
  writer.write_pod<int64_t>(embeddings.size(1));
  writer.write(embeddings.data(),
               static_cast<size_t>(embeddings.numel()) * sizeof(float));
  writer.commit(path, kEmbMagic, kEmbVersion);
}

Tensor load_embeddings(const std::string& path) {
  io::PayloadReader reader(path, kEmbMagic, kEmbVersion);
  const int64_t rows = reader.read_pod<int64_t>();
  const int64_t cols = reader.read_pod<int64_t>();
  if (rows <= 0 || cols <= 0) {
    throw std::runtime_error("load_embeddings: corrupt header in " + path);
  }
  Tensor out({rows, cols});
  reader.read(out.data(), static_cast<size_t>(rows * cols) * sizeof(float));
  return out;
}

}  // namespace yollo::word2vec
