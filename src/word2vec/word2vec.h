// Skip-gram Word2Vec with negative sampling (Mikolov et al., 2013).
//
// The paper pre-trains its 512-d word embeddings with Word2Vec on the LM-1B
// corpus (§4.2). Neither is available here, so this substrate trains
// embeddings on a synthetic corpus drawn from the referring-expression
// grammar; the resulting vectors initialise the grounding model's embedding
// layer and are fine-tuned end-to-end exactly as in the paper.
//
// Training updates are hand-written SGD (not autograd): skip-gram touches
// two embedding rows per (center, context/negative) pair, so per-pair
// closed-form updates are orders of magnitude faster than taping a graph.
#pragma once

#include <cstdint>
#include <vector>

#include "data/vocab.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace yollo::word2vec {

struct Word2VecConfig {
  int64_t dim = 48;
  int64_t window = 2;       // context words each side
  int64_t negatives = 4;    // negative samples per positive
  float lr = 0.05f;
  int64_t epochs = 3;
  uint64_t seed = 77;
};

class Word2Vec {
 public:
  Word2Vec(int64_t vocab_size, const Word2VecConfig& config);

  // Train on a corpus of token-id sentences. PAD and UNK ids are skipped.
  // Returns the mean skip-gram loss of the final epoch.
  float train(const std::vector<std::vector<int64_t>>& corpus);

  // Input-side embedding matrix [vocab, dim]; the vectors downstream models
  // initialise from.
  const Tensor& embeddings() const { return in_; }

  // Cosine similarity of two token ids.
  float similarity(int64_t a, int64_t b) const;

  // Token ids most similar to `id` (excluding itself), best first.
  std::vector<int64_t> most_similar(int64_t id, int64_t k) const;

 private:
  Word2VecConfig config_;
  int64_t vocab_size_;
  Tensor in_;   // [V, dim]
  Tensor out_;  // [V, dim]
  Rng rng_;
  std::vector<int64_t> unigram_table_;

  void build_unigram_table(const std::vector<std::vector<int64_t>>& corpus);
  int64_t sample_negative();
};

// Convenience: build a corpus from the grammar, train, and return the
// embedding matrix aligned with `vocab` ids.
Tensor pretrain_grounding_embeddings(const data::Vocab& vocab,
                                     const Word2VecConfig& config,
                                     int64_t corpus_scenes = 400);

// Persist / restore an embedding matrix ([V, d] float32 with a small
// header); lets benches and examples reuse one pre-training run.
void save_embeddings(const Tensor& embeddings, const std::string& path);
Tensor load_embeddings(const std::string& path);

}  // namespace yollo::word2vec
