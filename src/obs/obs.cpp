#include "obs/obs.h"

#include <cstdlib>

namespace yollo::obs {

namespace detail {

std::atomic<int> g_enabled{-1};

int init_enabled_from_env() {
  const char* env = std::getenv("YOLLO_OBS");
  const int v = (env != nullptr && std::atoi(env) != 0) ? 1 : 0;
  // A concurrent set_enabled() wins: only replace the "unknown" sentinel.
  int expected = -1;
  if (g_enabled.compare_exchange_strong(expected, v,
                                        std::memory_order_relaxed)) {
    return v;
  }
  return expected;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace yollo::obs
