// yollo::obs — runtime gating for the observability subsystem.
//
// Everything under src/obs/ is dependency-free (standard library only) and
// splits into two cost classes:
//   - accounting metrics (obs/metrics.h): always on, plain relaxed atomics —
//     the serving counters and trainer phase timings live here;
//   - profiling hooks (OBS_SPAN, the kernel counters): compiled in but
//     runtime-gated on YOLLO_OBS=1, so a disabled hot path pays exactly one
//     relaxed atomic load + branch (asserted by the overhead regression test
//     in tests/obs_test.cpp).
//
// `enabled()` caches the YOLLO_OBS environment variable on first use;
// `set_enabled()` overrides it programmatically (tests, tools) and wins over
// the environment from then on.
#pragma once

#include <atomic>

namespace yollo::obs {

namespace detail {
// -1 = not yet read from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled;
// Reads YOLLO_OBS, stores the verdict in g_enabled, returns it.
int init_enabled_from_env();
}  // namespace detail

// True when profiling hooks (spans, kernel counters) should record.
inline bool enabled() {
  const int v = detail::g_enabled.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return detail::init_enabled_from_env() != 0;
}

// Programmatic override of YOLLO_OBS (takes effect immediately on all
// threads; spans already open finish normally).
void set_enabled(bool on);

}  // namespace yollo::obs
