#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

namespace yollo::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Per-thread span ring. The owner thread takes `mu` uncontended on every
// record (a handful of ns); dump/clear take it briefly from outside. Owned
// by shared_ptr from both the thread_local holder and the global list, so
// spans survive their thread's exit until clear_trace().
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> ring;
  int64_t capacity = 0;
  int64_t next = 0;  // next write slot
  int64_t size = 0;  // valid records, <= capacity
  uint32_t tid = 0;
  int32_t depth = 0;  // current span nesting on the owner thread
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
  std::atomic<int64_t> capacity{16384};
};

// Leaked: pool workers may record while static destructors run.
TraceState& state() {
  static TraceState* s = new TraceState();
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (!t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    t_buffer->tid = s.next_tid++;
    s.buffers.push_back(t_buffer);
  }
  return *t_buffer;
}

}  // namespace

int64_t trace_clock_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              trace_epoch())
      .count();
}

void Span::start(const char* name) {
  if (name == nullptr) return;  // null name = skip (dtor keys off name_)
  name_ = name;
  ThreadBuffer& buf = local_buffer();
  {
    std::lock_guard<std::mutex> lock(buf.mu);
    ++buf.depth;
  }
  // Timestamp taken last so the span excludes its own setup.
  start_ns_ = trace_clock_ns();
}

void Span::finish() {
  const int64_t end_ns = trace_clock_ns();
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  --buf.depth;
  const int64_t cap = state().capacity.load(std::memory_order_relaxed);
  if (buf.capacity != cap) {  // first record, or capacity was changed
    buf.capacity = cap;
    buf.ring.assign(static_cast<size_t>(cap), SpanRecord{});
    buf.next = 0;
    buf.size = 0;
  }
  SpanRecord& rec = buf.ring[static_cast<size_t>(buf.next)];
  rec.name = name_;
  rec.start_ns = start_ns_;
  rec.dur_ns = end_ns - start_ns_;
  rec.tid = buf.tid;
  rec.depth = buf.depth;
  buf.next = (buf.next + 1) % buf.capacity;
  buf.size = std::min(buf.size + 1, buf.capacity);
}

std::vector<SpanRecord> collect_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    // Oldest-first: when wrapped, the oldest record sits at `next`.
    const int64_t start = buf->size == buf->capacity ? buf->next : 0;
    for (int64_t i = 0; i < buf->size; ++i) {
      out.push_back(
          buf->ring[static_cast<size_t>((start + i) % buf->capacity)]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void clear_trace() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->next = 0;
    buf->size = 0;
  }
}

void set_trace_capacity(int64_t capacity) {
  state().capacity.store(capacity >= 1 ? capacity : 1,
                         std::memory_order_relaxed);
}

int64_t trace_capacity() {
  return state().capacity.load(std::memory_order_relaxed);
}

bool dump_trace(const std::string& path) {
  const std::vector<SpanRecord> spans = collect_trace();
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    // Complete event: ts/dur in microseconds, one chrome row per thread.
    std::fprintf(f,
                 "%s\n{\"name\": \"%s\", \"cat\": \"yollo\", \"ph\": \"X\", "
                 "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
                 "\"args\": {\"depth\": %d}}",
                 i == 0 ? "" : ",", s.name == nullptr ? "" : s.name,
                 static_cast<double>(s.start_ns) * 1e-3,
                 static_cast<double>(s.dur_ns) * 1e-3, s.tid, s.depth);
  }
  std::fprintf(f, "\n]}\n");
  return std::fclose(f) == 0;
}

}  // namespace yollo::obs
