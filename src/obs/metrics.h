// yollo::obs metrics — thread-safe counters, gauges, and fixed-bucket
// histograms behind a named registry (DESIGN.md §11).
//
// Cost model: a registered Counter/Gauge/Histogram is a stable object whose
// updates are relaxed atomics — callers look the object up by name once
// (registry lock, cold path) and hold a reference for the hot path. N
// threads hammering one counter lose no increments; histograms lose no
// observations (bucket counts and the running sum are atomic, so a
// concurrent snapshot may see a sum slightly ahead of the bucket counts —
// the counter taxonomy that carries invariants should be read under the
// owner's coherence lock, as yollo::serve does).
//
// Snapshots are plain values: mergeable across registries (per-thread or
// per-service aggregation), queryable (p50/p95/p99 from bucket
// interpolation), and exportable as JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace yollo::obs {

class Counter {
 public:
  void inc(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  // Monotonic high-water mark (CAS; exact under concurrency).
  void set_max(double v);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Value snapshot of one histogram. `bounds` are ascending bucket upper
// bounds; `counts` has bounds.size() + 1 entries, the last being the
// overflow bucket for observations above the largest bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<int64_t> counts;
  int64_t count = 0;
  double sum = 0.0;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  // Quantile by linear interpolation inside the covering bucket. The first
  // bucket interpolates from 0 (histograms hold non-negative measurements);
  // ranks landing in the overflow bucket clamp to the largest bound.
  // q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;

  // Add `other`'s populations into this snapshot (bounds must match;
  // throws std::invalid_argument otherwise).
  void merge(const HistogramSnapshot& other);
};

class Histogram {
 public:
  // `bounds` must be non-empty and strictly ascending (throws
  // std::invalid_argument otherwise).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<int64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Default bucket sets.
std::vector<double> latency_ms_bounds();           // 0.05 ms .. 5 s, ~2x steps
std::vector<double> depth_bounds(int64_t up_to);   // 0,1,2,4,... >= up_to

// Coherent value copy of a whole registry.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  int64_t counter(const std::string& name) const;  // 0 when absent
  double gauge(const std::string& name) const;     // 0 when absent
  const HistogramSnapshot* histogram(const std::string& name) const;

  // Counters add, gauges take the max, histograms merge bucket-wise
  // (mismatched bounds throw). Metrics present only in `other` are copied.
  void merge(const MetricsSnapshot& other);

  std::string to_json() const;
  bool write_json(const std::string& path) const;
};

// Named metric registry. The process-global registry (`global()`) carries
// the kernel, trainer, and checkpoint metrics; subsystems that need
// isolated accounting (one serve::InferenceService per test, say) own a
// private instance and export its snapshot.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name. Returned references are stable for the
  // registry's lifetime — resolve once, update lock-free.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `bounds` applies on first registration; re-registering an existing
  // histogram with different bounds throws std::invalid_argument.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot snapshot() const;

  // Zero every registered metric (tests). Objects stay registered, so
  // cached references remain valid.
  void reset();

  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// RAII wall-clock phase timer: observes elapsed milliseconds into a
// histogram on destruction. Always-on (the accounting cost class); pair
// with OBS_SPAN for the gated trace view of the same phase.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  int64_t start_ns_;
};

}  // namespace yollo::obs
