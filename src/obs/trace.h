// yollo::obs trace spans — scoped wall-clock spans recorded into lock-light
// per-thread ring buffers, exportable as chrome://tracing JSON
// (DESIGN.md §11).
//
//   void hot_path() {
//     OBS_SPAN("gemm.pack_a");      // no-op unless YOLLO_OBS=1 / set_enabled
//     ...
//   }                               // duration recorded at scope exit
//   obs::dump_trace("trace.json");  // load in chrome://tracing / Perfetto
//
// Each thread owns a fixed-capacity ring (set_trace_capacity, default
// 16384 spans): recording is one uncontended per-thread mutex acquire plus
// a ring write — no global lock, no allocation after the first span — and
// wraparound overwrites the oldest spans, so tracing is always bounded.
// dump_trace()/collect_trace() walk every thread's ring (including threads
// that have exited) and serialise complete "X" (duration) events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace yollo::obs {

// One completed span. `name` must point at storage that outlives the trace
// (string literals; autograd op names). Timestamps count from the process
// trace epoch (first use), monotonic.
struct SpanRecord {
  const char* name = nullptr;
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint32_t tid = 0;   // small sequential id, stable per thread
  int32_t depth = 0;  // nesting depth at entry (0 = top-level)
};

// Nanoseconds since the trace epoch (monotonic clock).
int64_t trace_clock_ns();

// RAII span: records [construction, destruction) on the calling thread when
// observability is enabled at construction. Disabled cost: one relaxed
// atomic load + branch.
class Span {
 public:
  explicit Span(const char* name) {
    if (enabled()) start(name);
  }
  ~Span() {
    if (name_ != nullptr) finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void start(const char* name);
  void finish();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
};

#define YOLLO_OBS_CONCAT_INNER(a, b) a##b
#define YOLLO_OBS_CONCAT(a, b) YOLLO_OBS_CONCAT_INNER(a, b)
// Scoped trace span: OBS_SPAN("gemm.pack_a");
#define OBS_SPAN(name) \
  ::yollo::obs::Span YOLLO_OBS_CONCAT(obs_span_, __LINE__)(name)

// Every retained span across all threads, sorted by start time. Spans still
// open (constructor ran, destructor pending) are not included.
std::vector<SpanRecord> collect_trace();

// Drop every retained span (ring buffers stay registered).
void clear_trace();

// Per-thread ring capacity in spans (>= 1; applies to every buffer on its
// next record, discarding its current contents if resized).
void set_trace_capacity(int64_t capacity);
int64_t trace_capacity();

// Serialise the collected spans as a chrome://tracing "traceEvents" JSON
// array of complete ("ph":"X") events, timestamps in microseconds. Returns
// false on I/O failure.
bool dump_trace(const std::string& path);

}  // namespace yollo::obs
