#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace yollo::obs {

namespace {

// fetch_add on atomic<double> via CAS: exact under concurrency, no C++20
// floating fetch_add dependence.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimal JSON string escaping for metric names (which are code-controlled,
// but a snapshot must never emit invalid JSON regardless).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void Gauge::set_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- Histogram ---------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be ascending");
    }
  }
  counts_ = std::make_unique<std::atomic<int64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  // First bucket whose upper bound covers v; values above every bound land
  // in the overflow bucket.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
}

double HistogramSnapshot::quantile(double q) const {
  if (count <= 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  int64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket: clamp
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          std::max(0.0, rank - static_cast<double>(cum)) /
          static_cast<double>(c);
      return lo + within * (hi - lo);
    }
    cum += c;
  }
  return bounds.back();
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (bounds != other.bounds) {
    throw std::invalid_argument(
        "HistogramSnapshot::merge: bucket bounds disagree");
  }
  for (size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  count += other.count;
  sum += other.sum;
}

std::vector<double> latency_ms_bounds() {
  return {0.05, 0.1, 0.2, 0.5, 1.0,   2.0,   5.0,   10.0,
          20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0};
}

std::vector<double> depth_bounds(int64_t up_to) {
  std::vector<double> bounds{0.0};
  for (int64_t b = 1; ; b *= 2) {
    bounds.push_back(static_cast<double>(b));
    if (b >= up_to) break;
  }
  return bounds;
}

// --- MetricsSnapshot ---------------------------------------------------------

int64_t MetricsSnapshot::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it != gauges.end() ? it->second : 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = histograms.find(name);
  return it != histograms.end() ? &it->second : nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    const auto it = gauges.find(name);
    if (it == gauges.end()) {
      gauges[name] = v;
    } else {
      it->second = std::max(it->second, v);
    }
  }
  for (const auto& [name, h] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
    } else {
      it->second.merge(h);
    }
  }
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": ";
    append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count) + ", \"sum\": ";
    append_double(out, h.sum);
    out += ", \"mean\": ";
    append_double(out, h.mean());
    out += ", \"p50\": ";
    append_double(out, h.quantile(0.50));
    out += ", \"p95\": ";
    append_double(out, h.quantile(0.95));
    out += ", \"p99\": ";
    append_double(out, h.quantile(0.99));
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      if (i < h.bounds.size()) {
        append_double(out, h.bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ", \"count\": " + std::to_string(h.counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsSnapshot::write_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

// --- MetricsRegistry ---------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' re-registered with different bounds");
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Heap-allocated and intentionally leaked: kernel hooks may fire from
  // detached pool workers during process teardown.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

// --- ScopedTimer -------------------------------------------------------------

ScopedTimer::ScopedTimer(Histogram& h) : h_(&h), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  h_->observe(static_cast<double>(now_ns() - start_ns_) * 1e-6);
}

}  // namespace yollo::obs
