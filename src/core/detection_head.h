// The RPN-like target detection network (paper §3.3).
//
// Two 3x3 convolutions map the attended feature map to a lower-dimensional
// space, followed by two sibling 1x1-conv heads: a binary confidence score
// per anchor and a 4-value box-offset regression per anchor. K anchors per
// cell follow the paper's Faster-RCNN-style configuration. Inference picks
// the top-1 scored anchor and decodes its refined box; no NMS, no proposal
// list, no second stage.
#pragma once

#include <vector>

#include "core/config.h"
#include "nn/layers.h"
#include "vision/anchors.h"

namespace yollo::core {

class DetectionHead : public nn::Module {
 public:
  DetectionHead(const YolloConfig& config, int64_t in_channels, Rng& rng);

  struct Output {
    ag::Variable scores;  // [B, A]     confidence logit per anchor
    ag::Variable deltas;  // [B, A, 4]  (dx, dy, dw, dh) per anchor
  };

  // feature_map: [B, C, grid_h, grid_w] -> per-anchor predictions, anchor
  // index a = (cell_y * grid_w + cell_x) * K + k, matching
  // vision::generate_anchors ordering.
  Output forward(const ag::Variable& feature_map);

  const std::vector<vision::Box>& anchors() const { return anchors_; }

 private:
  const YolloConfig* config_;
  nn::Conv2d conv1_;
  nn::Conv2d conv2_;
  nn::Conv2d cls_;  // 1x1 -> K channels
  nn::Conv2d reg_;  // 1x1 -> 4K channels
  std::vector<vision::Box> anchors_;
};

// Training target assembly + losses for the head (eqs. 7-8).
struct DetectionLoss {
  ag::Variable cls;  // binary cross-entropy over the sampled anchor batch
  ag::Variable reg;  // smooth-L1 over positive anchors
};

// Computes L_cls and L_reg for a batch. For each image, anchors are labelled
// against the target box (rho_high / rho_low), then up to anchor_batch
// anchors are sampled (positives capped at half), as in Faster R-CNN.
DetectionLoss detection_loss(const DetectionHead::Output& out,
                             const std::vector<vision::Box>& anchors,
                             const std::vector<vision::Box>& targets,
                             const YolloConfig& config, Rng& rng);

// Inference: decode the top-1 scored anchor of each batch element into a
// final box, clipped to the image.
std::vector<vision::Box> decode_top1(const DetectionHead::Output& out,
                                     const std::vector<vision::Box>& anchors,
                                     const YolloConfig& config);

}  // namespace yollo::core
