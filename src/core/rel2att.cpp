#include "core/rel2att.h"

#include <cmath>

namespace yollo::core {

Rel2Att::Rel2Att(const YolloConfig& config, int64_t in_v, int64_t in_t,
                 Rng& rng)
    : config_(&config),
      ffn_v1_(in_v, config.ffn_hidden, config.d_rel, rng),
      ffn_v2_(in_v, config.ffn_hidden, config.d_rel, rng),
      ffn_t1_(in_t, config.ffn_hidden, config.d_rel, rng),
      ffn_t2_(in_t, config.ffn_hidden, config.d_rel, rng) {
  register_module("ffn_v1", ffn_v1_);
  register_module("ffn_v2", ffn_v2_);
  register_module("ffn_t1", ffn_t1_);
  register_module("ffn_t2", ffn_t2_);

  const int64_t m = config.num_regions();
  const int64_t n = config.max_query_len;
  const int64_t k = m + n;

  // Pre-build the ablation mask over the k x k relation map (Table 4):
  // "we simply wipe out the corresponding blocks in the relation map".
  if (!config.use_self_attention || !config.use_co_attention) {
    relation_mask_ = Tensor::ones({k, k});
    float* p = relation_mask_.data();
    for (int64_t r = 0; r < k; ++r) {
      for (int64_t c = 0; c < k; ++c) {
        const bool self_block = (r < m && c < m) || (r >= m && c >= m);
        const bool zero = self_block ? !config.use_self_attention
                                     : !config.use_co_attention;
        if (zero) p[r * k + c] = 0.0f;
      }
    }
  }

  // Block-indicator masks and learnable gains. vt/tv start high so the
  // query-conditioned co-attention terms survive the m:n averaging
  // imbalance (m regions vs n words).
  mask_vv_ = Tensor::zeros({k, k});
  mask_vt_ = Tensor::zeros({k, k});
  mask_tv_ = Tensor::zeros({k, k});
  mask_tt_ = Tensor::zeros({k, k});
  for (int64_t r = 0; r < k; ++r) {
    for (int64_t c = 0; c < k; ++c) {
      Tensor& block = r < m ? (c < m ? mask_vv_ : mask_tv_)
                            : (c < m ? mask_vt_ : mask_tt_);
      block.data()[r * k + c] = 1.0f;
    }
  }
  gain_vv_ = ag::Variable::param(Tensor::full({1, 1, 1}, 1.0f));
  gain_vt_ = ag::Variable::param(Tensor::full({1, 1, 1}, 4.0f));
  gain_tv_ = ag::Variable::param(Tensor::full({1, 1, 1}, 4.0f));
  gain_tt_ = ag::Variable::param(Tensor::full({1, 1, 1}, 1.0f));
  register_parameter("gain_vv", gain_vv_);
  register_parameter("gain_vt", gain_vt_);
  register_parameter("gain_tv", gain_tv_);
  register_parameter("gain_tt", gain_tt_);
}

Tensor Rel2Att::make_pair_mask(const std::vector<float>& text_valid,
                               int64_t batch, int64_t m, int64_t n) {
  const int64_t k = m + n;
  Tensor mask({batch, k, k});
  float* p = mask.data();
  for (int64_t b = 0; b < batch; ++b) {
    const float* valid = text_valid.data() + b * n;
    for (int64_t r = 0; r < k; ++r) {
      const float rv = r < m ? 1.0f : valid[r - m];
      float* row = p + (b * k + r) * k;
      for (int64_t c = 0; c < k; ++c) {
        row[c] = rv * (c < m ? 1.0f : valid[c - m]);
      }
    }
  }
  return mask;
}

Rel2Att::Output Rel2Att::forward(const ag::Variable& v, const ag::Variable& t,
                                 const Tensor& pair_mask) {
  const int64_t b = v.size(0);
  const int64_t m = v.size(1);
  const int64_t n = t.size(1);
  const int64_t k = m + n;

  // Eqs. (1)-(2): project both modalities into the shared d_rel space.
  ag::Variable v1 = ffn_v1_.forward(v);  // [B, m, d_rel]
  ag::Variable v2 = ffn_v2_.forward(v);
  ag::Variable t1 = ffn_t1_.forward(t);  // [B, n, d_rel]
  ag::Variable t2 = ffn_t2_.forward(t);

  ag::Variable x1 = ag::concat({v1, t1}, 1);  // [B, k, d_rel]
  ag::Variable x2 = ag::concat({v2, t2}, 1);

  // Eq. (3): dense relation map R = X1 X2^T / sqrt(d_rel). matmul_nt reads
  // X2 transposed in place — no materialised copy on either pass.
  const float scale = 1.0f / std::sqrt(static_cast<float>(config_->d_rel));
  ag::Variable r = ag::mul_scalar(ag::matmul_nt(x1, x2), scale);

  // Per-block learnable gains: R_eff = sum_b gain_b * (R o mask_b).
  ag::Variable gains = ag::add(
      ag::add(ag::mul(gain_vv_,
                      ag::Variable::constant(mask_vv_.reshape({1, k, k}))),
              ag::mul(gain_vt_,
                      ag::Variable::constant(mask_vt_.reshape({1, k, k})))),
      ag::add(ag::mul(gain_tv_,
                      ag::Variable::constant(mask_tv_.reshape({1, k, k}))),
              ag::mul(gain_tt_,
                      ag::Variable::constant(mask_tt_.reshape({1, k, k})))));
  r = ag::mul(r, gains);

  // PAD positions contribute exactly zero to the relation map.
  if (pair_mask.defined()) {
    r = ag::mul(r, ag::Variable::constant(pair_mask));
  }

  // Table-4 ablations zero out the self- or co-attention blocks.
  if (relation_mask_.defined()) {
    r = ag::mul(r, ag::Variable::constant(
                       relation_mask_.reshape({1, k, k})));
  }

  // att = row-mean + column-mean of R (both k-vectors), then split.
  ag::Variable att_rows = ag::mean(r, 2);  // [B, k] mean over columns
  ag::Variable att_cols = ag::mean(r, 1);  // [B, k] mean over rows
  ag::Variable att = ag::add(att_rows, att_cols);

  Output out;
  out.att_v = ag::narrow(att, 1, 0, m);  // [B, m]
  out.att_t = ag::narrow(att, 1, m, n);  // [B, n]

  // Eqs. (4)-(5): elementwise re-weighting, plus the shortcut connection the
  // paper builds among stacked modules. The raw attention values are passed
  // through a sigmoid before weighting: with the paper's unbounded weights,
  // feature magnitudes grow multiplicatively across the 3-module stack and
  // training diverges at fp32; the bounded gate preserves the mechanism
  // (per-region scaling from the relation map) while keeping the stack
  // stable. The attention loss (eq. 6) still uses the raw att_v.
  ag::Variable wv = ag::reshape(ag::sigmoid(out.att_v), {b, m, 1});
  ag::Variable wt = ag::reshape(ag::sigmoid(out.att_t), {b, n, 1});
  out.v = ag::add(ag::mul(v, wv), v);
  out.t = ag::add(ag::mul(t, wt), t);
  return out;
}

ag::Variable attention_loss(const ag::Variable& att_v,
                            const Tensor& gt_masks) {
  // Eq. (6): L_att = -sum gt(i,j) log softmax(att_v)(i,j), averaged over the
  // batch.
  const int64_t b = att_v.size(0);
  ag::Variable logp = ag::log_softmax(att_v, 1);  // [B, m]
  ag::Variable weighted = ag::mul(logp, ag::Variable::constant(gt_masks));
  return ag::mul_scalar(ag::sum(weighted), -1.0f / static_cast<float>(b));
}

Tensor make_gt_mask(const vision::Box& target, int64_t grid_h, int64_t grid_w,
                    int64_t stride) {
  Tensor mask({grid_h * grid_w});
  const float inv_stride = 1.0f / static_cast<float>(stride);
  const float x1 = target.x * inv_stride;
  const float y1 = target.y * inv_stride;
  const float x2 = target.x2() * inv_stride;
  const float y2 = target.y2() * inv_stride;

  int64_t count = 0;
  float* p = mask.data();
  for (int64_t gy = 0; gy < grid_h; ++gy) {
    for (int64_t gx = 0; gx < grid_w; ++gx) {
      const float cx = static_cast<float>(gx) + 0.5f;
      const float cy = static_cast<float>(gy) + 0.5f;
      if (cx >= x1 && cx <= x2 && cy >= y1 && cy <= y2) {
        p[gy * grid_w + gx] = 1.0f;
        ++count;
      }
    }
  }
  if (count > 0) {
    scale_inplace(mask, 1.0f / static_cast<float>(count));
    return mask;
  }
  // Tiny box between cell centres: give all mass to the nearest cell.
  const float tx = target.cx() * inv_stride - 0.5f;
  const float ty = target.cy() * inv_stride - 0.5f;
  const int64_t gx = std::min<int64_t>(
      grid_w - 1, std::max<int64_t>(0, static_cast<int64_t>(std::lround(tx))));
  const int64_t gy = std::min<int64_t>(
      grid_h - 1, std::max<int64_t>(0, static_cast<int64_t>(std::lround(ty))));
  p[gy * grid_w + gx] = 1.0f;
  return mask;
}

}  // namespace yollo::core
