// Configuration for the YOLLO one-stage visual grounding model.
//
// Hyper-parameters follow the paper (§3, §4.2) with sizes scaled to this
// machine: the paper's 400x600 inputs / 512-d features / ResNet-50 C4 become
// 64x96 inputs / 48-d features / a residual mini-backbone. Structural
// constants that define the method (3x Rel2Att stack, K anchors per cell,
// rho_high = 0.5, rho_low = 0.25, lambda = 1) are kept verbatim.
#pragma once

#include <cstdint>

#include "vision/anchors.h"
#include "vision/backbone.h"

namespace yollo::core {

struct YolloConfig {
  // Input geometry (2:3 aspect like the paper's 400x600).
  int64_t img_h = 64;
  int64_t img_w = 96;

  vision::BackboneConfig backbone = vision::BackboneConfig::r50_lite();

  // Text encoder.
  int64_t word_dim = 48;       // paper: 512-d Word2Vec embeddings
  int64_t max_query_len = 16;  // paper: per-dataset max (24-46); set from data

  // Rel2Att stack (§3.2).
  int64_t d_rel = 48;          // paper example: 512
  int64_t ffn_hidden = 64;     // hidden width of the two-layer FFNs
  int64_t num_rel2att = 3;     // paper: stacked 3 times
  bool use_self_attention = true;  // ablation switch (Table 4)
  bool use_co_attention = true;    // ablation switch (Table 4)

  // Target detection network (§3.3).
  vision::AnchorConfig anchors;
  int64_t head_channels = 48;
  float rho_high = 0.5f;
  float rho_low = 0.25f;
  // Anchors sampled per image for the classification loss. The paper uses
  // 256 of ~17k anchors; we keep the same positive:negative balance against
  // our 864 anchors.
  int64_t anchor_batch = 96;
  float lambda_reg = 1.0f;  // paper: lambda = 1

  uint64_t seed = 7;

  int64_t grid_h() const { return img_h / backbone.stride(); }
  int64_t grid_w() const { return img_w / backbone.stride(); }
  int64_t num_regions() const { return grid_h() * grid_w(); }  // m
  int64_t num_anchors() const {
    return num_regions() * anchors.anchors_per_cell();
  }
};

}  // namespace yollo::core
