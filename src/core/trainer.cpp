#include "core/trainer.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "optim/optim.h"
#include "word2vec/word2vec.h"

namespace yollo::core {

TrainResult train_yollo(YolloModel& model,
                        const std::vector<data::GroundingSample>& samples,
                        const TrainConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("train_yollo: empty sample list");
  }
  Rng rng(config.seed);
  model.set_training(true);
  auto params = model.parameters();
  optim::Adam adam(params, config.lr);

  // Cosine decay with a short warmup over the planned step budget.
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(samples.size()) + config.batch_size - 1) /
      config.batch_size;
  int64_t total_steps = config.epochs * steps_per_epoch;
  if (config.max_steps > 0) total_steps = std::min(total_steps, config.max_steps);
  const optim::CosineSchedule schedule(config.lr,
                                       std::min<int64_t>(20, total_steps / 10),
                                       total_steps);

  TrainResult result;
  eval::Stopwatch watch;
  int64_t step = 0;
  bool done = false;
  for (int64_t epoch = 0; epoch < config.epochs && !done; ++epoch) {
    const auto batches = data::make_batches(
        static_cast<int64_t>(samples.size()), config.batch_size, rng);
    for (const std::vector<int64_t>& batch : batches) {
      const Tensor images = data::render_batch(samples, batch);
      const std::vector<int64_t> tokens = data::batch_tokens(
          samples, batch, model.config().max_query_len);
      std::vector<vision::Box> targets;
      targets.reserve(batch.size());
      for (int64_t idx : batch) {
        targets.push_back(samples[static_cast<size_t>(idx)].target_box());
      }

      adam.zero_grad();
      adam.set_lr(schedule.lr_at(step));
      const YolloModel::Output out = model.forward(images, tokens);
      const YolloModel::Losses losses =
          model.compute_loss(out, targets, rng);
      losses.total.backward();
      adam.clip_grad_norm(config.grad_clip);
      adam.step();
      ++step;

      if (step % config.log_every == 0 || step == 1) {
        CurvePoint point;
        point.step = step;
        point.total = losses.total.value().item();
        point.att = losses.att.value().item();
        point.cls = losses.cls.value().item();
        point.reg = losses.reg.value().item();
        result.curve.push_back(point);
        if (config.verbose) {
          std::printf(
              "step %5lld  total %.4f  att %.4f  cls %.4f  reg %.4f\n",
              static_cast<long long>(step), point.total, point.att, point.cls,
              point.reg);
          std::fflush(stdout);
        }
      }
      if (config.max_steps > 0 && step >= config.max_steps) {
        done = true;
        break;
      }
    }
  }
  result.seconds = watch.elapsed_seconds();
  result.steps = step;
  return result;
}

std::vector<eval::Prediction> evaluate_yollo(
    YolloModel& model, const std::vector<data::GroundingSample>& samples,
    int64_t batch_size) {
  model.set_training(false);
  std::vector<eval::Prediction> preds;
  preds.reserve(samples.size());
  const int64_t n = static_cast<int64_t>(samples.size());
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    std::vector<int64_t> indices;
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    const Tensor images = data::render_batch(samples, indices);
    const std::vector<int64_t> tokens = data::batch_tokens(
        samples, indices, model.config().max_query_len);
    const std::vector<vision::Box> boxes = model.predict(images, tokens);
    for (size_t i = 0; i < indices.size(); ++i) {
      preds.push_back(
          {boxes[i],
           samples[static_cast<size_t>(indices[i])].target_box()});
    }
  }
  model.set_training(true);
  return preds;
}

void recalibrate_batchnorm(YolloModel& model,
                           const std::vector<data::GroundingSample>& samples,
                           int64_t batches, int64_t batch_size) {
  Rng rng(4242);
  model.set_training(true);
  const auto batch_lists = data::make_batches(
      static_cast<int64_t>(samples.size()), batch_size, rng);
  const int64_t n = std::min<int64_t>(batches,
                                      static_cast<int64_t>(batch_lists.size()));
  for (int64_t i = 0; i < n; ++i) {
    const Tensor images = data::render_batch(samples, batch_lists[i]);
    const std::vector<int64_t> tokens = data::batch_tokens(
        samples, batch_lists[i], model.config().max_query_len);
    model.forward(images, tokens);  // training-mode pass updates BN stats
  }
  model.set_training(false);
}

std::unique_ptr<YolloModel> build_yollo(const data::GroundingDataset& dataset,
                                        const data::Vocab& vocab,
                                        BuildOptions options) {
  options.config.max_query_len = dataset.max_query_len();
  options.config.img_h = dataset.config().img_h;
  options.config.img_w = dataset.config().img_w;
  Rng rng(options.config.seed);
  auto model =
      std::make_unique<YolloModel>(options.config, vocab.size(), rng);
  if (options.pretrain_embeddings) {
    word2vec::Word2VecConfig w2v;
    w2v.dim = options.config.word_dim;
    w2v.seed = options.config.seed ^ 0xabcdefULL;
    model->init_word_embeddings(word2vec::pretrain_grounding_embeddings(
        vocab, w2v, options.corpus_scenes));
  }
  return model;
}

}  // namespace yollo::core
