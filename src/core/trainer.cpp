#include "core/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/optim.h"
#include "runtime/checkpoint.h"
#include "runtime/fault.h"
#include "tensor/pool.h"
#include "word2vec/word2vec.h"

namespace yollo::core {
namespace {

// The batch stream must be a pure function of (seed, epoch) so that a run
// resumed mid-epoch can regenerate the epoch's shuffle without replaying
// every draw since step 0. The per-step loss RNG is separate (it lives in
// the checkpoint as engine state).
Rng epoch_batch_rng(uint64_t seed, int64_t epoch) {
  return Rng(seed ^ (0x9e3779b97f4a7c15ULL *
                     static_cast<uint64_t>(epoch + 1)));
}

}  // namespace

TrainResult train_yollo(YolloModel& model,
                        const std::vector<data::GroundingSample>& samples,
                        const TrainConfig& config) {
  if (samples.empty()) {
    throw std::invalid_argument("train_yollo: empty sample list");
  }
  Rng rng(config.seed);
  model.set_training(true);
  auto params = model.parameters();
  optim::Adam adam(params, config.lr);

  // Cosine decay with a short warmup over the planned step budget. Warmup
  // is clamped to [1, total_steps] so very short runs (under 10 steps)
  // still ramp instead of getting a zero-length warmup.
  const int64_t steps_per_epoch =
      (static_cast<int64_t>(samples.size()) + config.batch_size - 1) /
      config.batch_size;
  int64_t total_steps = config.epochs * steps_per_epoch;
  if (config.max_steps > 0) total_steps = std::min(total_steps, config.max_steps);
  const int64_t warmup_steps = std::min(
      total_steps,
      std::max<int64_t>(1, std::min<int64_t>(20, total_steps / 10)));
  const optim::CosineSchedule schedule(config.lr, warmup_steps, total_steps);

  std::unique_ptr<runtime::CheckpointManager> ckpt;
  if (!config.checkpoint_dir.empty()) {
    ckpt = std::make_unique<runtime::CheckpointManager>(config.checkpoint_dir);
  }
  runtime::FaultInjector& faults = runtime::FaultInjector::instance();

  TrainResult result;
  int64_t step = 0;  // global step = index into the (seed-pure) batch stream
  if (ckpt && config.resume) {
    runtime::TrainState state;
    std::string which;
    if (ckpt->load_latest(model, adam, state, &which)) {
      rng = state.rng;
      step = state.step;
      result.resumed = true;
      result.start_step = step;
      if (config.verbose) {
        std::printf("resumed from %s at step %lld\n", which.c_str(),
                    static_cast<long long>(step));
      }
    }
  }

  // Every step allocates the same set of temporary shapes — the im2col
  // column buffers of conv forward+backward are the largest tensors in the
  // process. A scope across the whole loop recycles all of them through the
  // StoragePool, so steady-state steps stop hitting the allocator.
  // Per-phase wall-clock accounting (always on: one histogram observe per
  // phase per step is noise next to the step itself). The registry refs are
  // resolved once, outside the loop.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  const std::vector<double> lat = obs::latency_ms_bounds();
  obs::Histogram& h_data = reg.histogram("train.data_ms", lat);
  obs::Histogram& h_forward = reg.histogram("train.forward_ms", lat);
  obs::Histogram& h_backward = reg.histogram("train.backward_ms", lat);
  obs::Histogram& h_optim = reg.histogram("train.optim_ms", lat);
  obs::Histogram& h_checkpoint = reg.histogram("train.checkpoint_ms", lat);
  obs::Gauge& g_loss = reg.gauge("train.loss");
  obs::Gauge& g_grad_norm = reg.gauge("train.grad_norm");
  obs::Counter& c_steps = reg.counter("train.steps");
  obs::Counter& c_skipped = reg.counter("train.skipped_steps");
  obs::Counter& c_rollbacks = reg.counter("train.rollbacks");

  PoolScope pool;
  eval::Stopwatch watch;
  std::vector<std::vector<int64_t>> batches;
  int64_t batches_epoch = -1;
  int64_t bad_streak = 0;
  // Replay after a rollback is bit-exact, so a deterministic divergence
  // would recur at the same step; each rollback must therefore fire at a
  // strictly later step than the last, or we skip forward instead.
  int64_t last_rollback_step = -1;
  float last_loss = 0.0f;
  while (step < total_steps) {
    const int64_t epoch = step / steps_per_epoch;
    if (epoch != batches_epoch) {
      Rng brng = epoch_batch_rng(config.seed, epoch);
      batches = data::make_batches(static_cast<int64_t>(samples.size()),
                                   config.batch_size, brng);
      batches_epoch = epoch;
    }
    faults.check_halt(step);
    const std::vector<int64_t>& batch =
        batches[static_cast<size_t>(step % steps_per_epoch)];
    Tensor images;
    std::vector<int64_t> tokens;
    std::vector<vision::Box> targets;
    {
      obs::ScopedTimer timer(h_data);
      OBS_SPAN("train.data");
      images = data::render_batch(samples, batch);
      tokens = data::batch_tokens(samples, batch,
                                  model.config().max_query_len);
      targets.reserve(batch.size());
      for (int64_t idx : batch) {
        targets.push_back(samples[static_cast<size_t>(idx)].target_box());
      }
    }

    adam.zero_grad();
    adam.set_lr(schedule.lr_at(step));
    const YolloModel::Losses losses = [&] {
      obs::ScopedTimer timer(h_forward);
      OBS_SPAN("train.forward");
      const YolloModel::Output out = model.forward(images, tokens);
      return model.compute_loss(out, targets, rng);
    }();
    const float total_val =
        faults.filter_loss(losses.total.value().item(), step);

    // Divergence guard: never backprop a non-finite loss, never apply a
    // non-finite or exploding gradient. A bad step is skipped (Adam state
    // untouched); a streak of them triggers a rollback to the last intact
    // checkpoint rather than continuing from a possibly-poisoned state.
    bool bad = !std::isfinite(total_val);
    if (!bad) {
      obs::ScopedTimer timer(h_backward);
      OBS_SPAN("train.backward");
      losses.total.backward();
      const float norm = adam.clip_grad_norm(config.grad_clip);
      g_grad_norm.set(norm);
      bad = !std::isfinite(norm) || norm > config.explode_norm;
    }
    if (bad) {
      ++result.skipped_steps;
      c_skipped.inc();
      ++bad_streak;
      adam.zero_grad();
      if (config.verbose) {
        std::printf("step %5lld  divergence guard: skipped (streak %lld)\n",
                    static_cast<long long>(step + 1),
                    static_cast<long long>(bad_streak));
      }
      if (bad_streak >= config.divergence_patience && ckpt &&
          ckpt->has_checkpoint() && step > last_rollback_step) {
        runtime::TrainState state;
        std::string which;
        if (ckpt->load_latest(model, adam, state, &which)) {
          last_rollback_step = step;
          rng = state.rng;
          step = state.step;
          batches_epoch = -1;  // epoch shuffle must be regenerated
          ++result.rollbacks;
          c_rollbacks.inc();
          bad_streak = 0;
          if (config.verbose) {
            std::printf("divergence guard: rolled back to %s (step %lld)\n",
                        which.c_str(), static_cast<long long>(step));
          }
          continue;
        }
      }
      ++step;
      continue;
    }
    bad_streak = 0;
    {
      obs::ScopedTimer timer(h_optim);
      OBS_SPAN("train.optim");
      adam.step();
    }
    ++step;
    last_loss = total_val;
    c_steps.inc();
    g_loss.set(total_val);

    if (step % config.log_every == 0 || step == 1) {
      CurvePoint point;
      point.step = step;
      point.total = total_val;
      point.att = losses.att.value().item();
      point.cls = losses.cls.value().item();
      point.reg = losses.reg.value().item();
      result.curve.push_back(point);
      if (config.verbose) {
        std::printf(
            "step %5lld  total %.4f  att %.4f  cls %.4f  reg %.4f\n",
            static_cast<long long>(step), point.total, point.att, point.cls,
            point.reg);
        std::fflush(stdout);
      }
    }
    if (ckpt && config.checkpoint_every > 0 &&
        step % config.checkpoint_every == 0) {
      runtime::TrainState state;
      state.step = step;
      state.epoch = step / steps_per_epoch;
      state.rng = rng;
      obs::ScopedTimer timer(h_checkpoint);
      OBS_SPAN("train.checkpoint");
      ckpt->save(model, adam, state);
    }
  }
  result.seconds = watch.elapsed_seconds();
  result.steps = step;
  result.final_loss = last_loss;
  return result;
}

std::vector<eval::Prediction> evaluate_yollo(
    YolloModel& model, const std::vector<data::GroundingSample>& samples,
    int64_t batch_size) {
  // predict() guards itself, but the whole loop belongs in eval mode so
  // the guard is installed (and restored) exactly once.
  nn::EvalModeGuard eval_mode(model);
  std::vector<eval::Prediction> preds;
  preds.reserve(samples.size());
  const int64_t n = static_cast<int64_t>(samples.size());
  for (int64_t start = 0; start < n; start += batch_size) {
    const int64_t end = std::min(n, start + batch_size);
    std::vector<int64_t> indices;
    for (int64_t i = start; i < end; ++i) indices.push_back(i);
    const Tensor images = data::render_batch(samples, indices);
    const std::vector<int64_t> tokens = data::batch_tokens(
        samples, indices, model.config().max_query_len);
    const std::vector<vision::Box> boxes = model.predict(images, tokens);
    for (size_t i = 0; i < indices.size(); ++i) {
      preds.push_back(
          {boxes[i],
           samples[static_cast<size_t>(indices[i])].target_box()});
    }
  }
  return preds;
}

void recalibrate_batchnorm(YolloModel& model,
                           const std::vector<data::GroundingSample>& samples,
                           int64_t batches, int64_t batch_size) {
  Rng rng(4242);
  const bool was_training = model.training();
  PoolScope pool;  // recalibration forwards recycle the same conv buffers
  model.set_training(true);
  const auto batch_lists = data::make_batches(
      static_cast<int64_t>(samples.size()), batch_size, rng);
  const int64_t n = std::min<int64_t>(batches,
                                      static_cast<int64_t>(batch_lists.size()));
  for (int64_t i = 0; i < n; ++i) {
    const Tensor images = data::render_batch(samples, batch_lists[i]);
    const std::vector<int64_t> tokens = data::batch_tokens(
        samples, batch_lists[i], model.config().max_query_len);
    model.forward(images, tokens);  // training-mode pass updates BN stats
  }
  model.set_training(was_training);
}

std::unique_ptr<YolloModel> build_yollo(const data::GroundingDataset& dataset,
                                        const data::Vocab& vocab,
                                        BuildOptions options) {
  options.config.max_query_len = dataset.max_query_len();
  options.config.img_h = dataset.config().img_h;
  options.config.img_w = dataset.config().img_w;
  Rng rng(options.config.seed);
  auto model =
      std::make_unique<YolloModel>(options.config, vocab.size(), rng);
  if (options.pretrain_embeddings) {
    word2vec::Word2VecConfig w2v;
    w2v.dim = options.config.word_dim;
    w2v.seed = options.config.seed ^ 0xabcdefULL;
    model->init_word_embeddings(word2vec::pretrain_grounding_embeddings(
        vocab, w2v, options.corpus_scenes));
  }
  return model;
}

}  // namespace yollo::core
