// The Relation-to-Attention (Rel2Att) module — the paper's §3.2 and Fig 2(b).
//
// Given image features V [B, m, c] and query features T [B, n, d], four
// two-layer FFNs produce V1, V2, T1, T2 in a shared d_rel space (eqs. 1-2).
// X1 = [V1;T1] and X2 = [V2;T2] form the dense relation map
// R = X1 X2^T / sqrt(d_rel) (eq. 3), whose k x k entries split into
// self-attention blocks (R_vv, R_tt) and co-attention blocks (R_vt, R_tv).
// Averaging R over rows and over columns and summing the two gives one
// attention vector att, split into att_v (first m) and att_t (rest n), which
// re-weight V and T elementwise (eqs. 4-5). Shortcut connections add the
// module input back to its output.
//
// The Table-4 ablations are implemented by masking the corresponding blocks
// of R to zero before the averaging.
#pragma once

#include <memory>

#include "core/config.h"
#include "nn/layers.h"

namespace yollo::core {

class Rel2Att : public nn::Module {
 public:
  // in_v = image channel width c, in_t = word feature width d.
  Rel2Att(const YolloConfig& config, int64_t in_v, int64_t in_t, Rng& rng);

  struct Output {
    ag::Variable v;      // [B, m, c]  re-weighted image features
    ag::Variable t;      // [B, n, d]  re-weighted query features
    ag::Variable att_v;  // [B, m]     raw image attention (pre-softmax)
    ag::Variable att_t;  // [B, n]     raw query attention
  };

  // pair_mask: optional constant [B, k, k] validity mask applied to the
  // relation map (1 where both positions are real, 0 where either is a PAD
  // token). Padded words otherwise dominate the text-block averages with
  // noise, drowning the co-attention signal. Pass an undefined Tensor to
  // skip masking.
  Output forward(const ag::Variable& v, const ag::Variable& t,
                 const Tensor& pair_mask);

  // Build the [B, k, k] pair-validity mask from per-token validity
  // (row-major [B * n], 1 = real token, 0 = PAD); image regions are always
  // valid.
  static Tensor make_pair_mask(const std::vector<float>& text_valid,
                               int64_t batch, int64_t m, int64_t n);

 private:
  const YolloConfig* config_;
  nn::FFN ffn_v1_;
  nn::FFN ffn_v2_;
  nn::FFN ffn_t1_;
  nn::FFN ffn_t2_;
  Tensor relation_mask_;  // [k, k] ablation mask; undefined when full
  // Learnable scalar gains for the four relation-map blocks
  // (vv, vt, tv, tt). With m ~ 10x n, the co-attention blocks contribute
  // only a small fraction of the row/column averages; gains initialised in
  // their favour give the query pathway usable signal from step one (see
  // DESIGN.md "known divergences").
  ag::Variable gain_vv_;
  ag::Variable gain_vt_;
  ag::Variable gain_tv_;
  ag::Variable gain_tt_;
  Tensor mask_vv_, mask_vt_, mask_tv_, mask_tt_;  // [k, k] block indicators
};

// The attention-mask loss of eq. (6): softmax att_v over regions, then
// cross-entropy against the ground-truth mask (uniform mass inside the
// target box scaled down to the feature grid, zero outside). Batched mean.
//
// gt_masks is a constant tensor [B, m] produced by make_gt_mask below.
ag::Variable attention_loss(const ag::Variable& att_v, const Tensor& gt_masks);

// Build the ground-truth attention mask row for one target box (pixel
// coordinates) on a grid_h x grid_w grid with the given stride. Cells whose
// centre falls inside the scaled box share mass uniformly (1/count); if the
// box covers no cell centre, the nearest cell takes all the mass.
Tensor make_gt_mask(const vision::Box& target, int64_t grid_h, int64_t grid_w,
                    int64_t stride);

}  // namespace yollo::core
