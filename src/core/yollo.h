// YOLLO — "You Only Look & Listen Once": the paper's one-stage visual
// grounding model (§3, Fig. 2a).
//
// Pipeline: feature encoder (backbone grid features + word embeddings with
// learned absolute positional embeddings, §3.1) -> stacked Rel2Att modules
// (§3.2) -> RPN-like target detection network over the attended feature map
// (§3.3). Trained end-to-end with L = L_att + L_cls + lambda * L_reg
// (eq. 9); inference takes the single top-scored anchor's refined box.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/detection_head.h"
#include "core/rel2att.h"
#include "nn/layers.h"
#include "vision/backbone.h"

namespace yollo::plan {
class Plan;
}

namespace yollo::core {

class YolloModel : public nn::Module {
 public:
  YolloModel(const YolloConfig& config, int64_t vocab_size, Rng& rng);

  const YolloConfig& config() const { return config_; }

  // Copy pre-trained Word2Vec vectors into the embedding table (the paper
  // initialises from Word2Vec and fine-tunes end-to-end, §4.2).
  void init_word_embeddings(const Tensor& embeddings);

  struct Output {
    ag::Variable scores;  // [B, A]
    ag::Variable deltas;  // [B, A, 4]
    ag::Variable att_v;   // [B, m] raw image attention from the last Rel2Att
    // att_v from every module in the stack; the attention loss supervises
    // all of them (deep supervision — each stacked module is pushed toward
    // the target region, which speeds up convergence markedly).
    std::vector<ag::Variable> att_v_all;
    // Backbone grid features [B, C, grid_h, grid_w] as produced by
    // encode_images() — everything query-independent. The serve-layer
    // feature cache stores these per image so repeat queries against the
    // same pixels skip the backbone entirely (fuse_features alone).
    ag::Variable feat;
  };

  // images: [B, 3, img_h, img_w]; tokens: row-major [B * max_query_len].
  // forward() == fuse_features(encode_images(images), tokens): the split
  // exists because encode_images depends only on the pixels (cacheable per
  // image) while fuse_features carries all the query-dependent work.
  Output forward(const Tensor& images, const std::vector<int64_t>& tokens);

  // CoordConv fill + backbone: the query-independent half of forward().
  ag::Variable encode_images(const Tensor& images);

  // Rel2Att stack + detection head over precomputed backbone features
  // ([B, C, grid_h, grid_w]): the query-dependent half of forward().
  Output fuse_features(const ag::Variable& feat,
                       const std::vector<int64_t>& tokens);

  struct Losses {
    ag::Variable total;
    ag::Variable att;
    ag::Variable cls;
    ag::Variable reg;
  };
  Losses compute_loss(const Output& out,
                      const std::vector<vision::Box>& targets, Rng& rng);

  // Top-1 box per batch element. Self-contained: installs an
  // ag::NoGradGuard (no autograd graph), an nn::EvalModeGuard
  // (deterministic batch-norm, restored on return), and a PoolScope
  // (storage recycling) internally — callers no longer manage train/eval
  // state around it. Throws on shape mismatch or a non-finite forward; use
  // infer() for the typed, never-throwing variant.
  std::vector<vision::Box> predict(const Tensor& images,
                                   const std::vector<int64_t>& tokens);

  // --- exception-free inference entry point (used by yollo::serve) ---------
  enum class InferError {
    kNone = 0,       // boxes are valid
    kInvalidInput,   // image/token shapes do not match the config
    kNonFinite,      // forward produced non-finite activations or boxes
    kFault,          // forward threw (includes runtime::InjectedFault)
    kCancelled,      // the caller's ExecContext was cancelled (explicit
                     // cancel or deadline expiry) mid-forward; distinguish
                     // via ExecContext::cause()
    kResourceExhausted,  // the active PoolScope's byte budget refused an
                         // allocation (PoolBudgetExceeded)
  };
  struct InferOutcome {
    InferError error = InferError::kNone;
    std::string message;
    std::vector<vision::Box> boxes;  // one per batch element when ok
    // Backbone features [B, C, grid_h, grid_w], cloned out of the forward
    // when infer() was asked to capture them (undefined otherwise, and on
    // batch-level failures). Valid even for elements whose head outputs
    // were poisoned — the features are produced upstream of the fault
    // hooks, so the cache may keep them.
    Tensor features;
    // Per-element verdicts for batched forwards: sized B once the forward
    // ran (empty on batch-level failures — invalid input or a thrown
    // fault). A non-finite element poisons only its own slot:
    // element_boxes[i] stays valid (clipped) wherever element_errors[i] is
    // kNone, so a micro-batching caller can serve the healthy elements and
    // degrade the poisoned ones individually.
    std::vector<InferError> element_errors;
    std::vector<vision::Box> element_boxes;
    bool ok() const { return error == InferError::kNone; }
    bool element_ok(int64_t i) const {
      return i >= 0 && i < static_cast<int64_t>(element_errors.size()) &&
             element_errors[static_cast<size_t>(i)] == InferError::kNone;
    }
  };
  // Hardened predict(): validates input shapes against the config, runs the
  // forward pass (honouring runtime::FaultInjector's inference-path faults),
  // scans the activations and decoded boxes for non-finite values, and clips
  // every box to the input image bounds so a degenerate or out-of-frame box
  // can never escape. Never throws; all failures surface as a typed
  // InferError with a message. Like predict(), installs NoGradGuard +
  // EvalModeGuard + PoolScope internally. `capture_features` additionally
  // clones the backbone feature map into InferOutcome::features (from the
  // plan arena on the planned path) so the caller can populate a feature
  // cache without a second forward.
  InferOutcome infer(const Tensor& images, const std::vector<int64_t>& tokens,
                     bool capture_features = false) noexcept;

  // infer() for precomputed backbone features ([B, C, grid_h, grid_w], as
  // captured by a previous infer(..., true)): skips the backbone and runs
  // only the Rel2Att stack + head on the dynamic path. Same guard stack,
  // fault hooks, per-element verdicts, and cancellation semantics as
  // infer() — one FaultInjector::check_forward() per call, so retry and
  // chaos accounting cannot drift between the cached and uncached paths.
  InferOutcome infer_from_features(const Tensor& features,
                                   const std::vector<int64_t>& tokens) noexcept;

  // Monotonic generation of the parameter state, bumped whenever weights
  // may have been replaced wholesale (init_word_embeddings) or plan-visible
  // storage was rebound (invalidate_plans — the model-reload signal). The
  // serve feature cache keys entries by it so stale features can never be
  // served across a reload.
  uint64_t weights_generation() const {
    return weights_generation_.load(std::memory_order_acquire);
  }

  // Softmax image-attention map of one batch element as [grid_h, grid_w]
  // (the masks visualised in the paper's Figure 5).
  Tensor attention_map(const Output& out, int64_t batch_index) const;

  // Self-contained variant: runs a grad-free eval-mode forward internally
  // (same guards as predict) — no caller-managed train/eval state, no
  // Output to thread through.
  Tensor attention_map(const Tensor& images,
                       const std::vector<int64_t>& tokens,
                       int64_t batch_index);

  const std::vector<vision::Box>& anchors() const { return head_.anchors(); }

  // --- static forward plans (DESIGN.md §14) --------------------------------
  // predict()/infer() route through a per-batch-size compiled plan when
  // yollo::plan::enabled() (YOLLO_PLAN=0 disables). Plans are recorded
  // lazily on first use; warm_plan() builds and runs one eagerly so serving
  // workers take no compile hit on their first real request. Charges the
  // caller's active pool budget for the arena; on PoolBudgetExceeded the
  // entry is marked failed and execution degrades to the dynamic path.
  void warm_plan(int64_t batch);

  // True when a plan for this batch size is cached and ready.
  bool planned(int64_t batch);

  // Drop every cached plan (releases the arenas and their budget charges).
  // Needed when parameter *storage* is replaced (pointer-level rebinding);
  // plain in-place updates flow into cached plans automatically.
  void invalidate_plans();

  struct PlanCacheStats {
    int64_t entries = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t compiles = 0;
    int64_t fallbacks = 0;  // plan existed but was busy / shape-mismatched
    int64_t arena_bytes = 0;
  };
  PlanCacheStats plan_cache_stats();

  // Test hooks. raw_forward runs the same guarded forward predict() runs
  // and returns the raw score/delta tensors (cloned out of the arena on the
  // planned path) plus which path executed — the bitwise plan-vs-dynamic
  // tests diff these. run_planned executes an already-cached plan with no
  // decode and no output wrapping (the zero-allocation probe); returns
  // false when no plan is cached or it was busy.
  struct RawForward {
    Tensor scores;
    Tensor deltas;
    bool planned = false;
  };
  RawForward raw_forward(const Tensor& images,
                         const std::vector<int64_t>& tokens);
  bool run_planned(const Tensor& images, const std::vector<int64_t>& tokens);

  // The cached plan for a batch size (nullptr when none): arena-layout
  // introspection for tests and diagnostics.
  std::shared_ptr<yollo::plan::Plan> cached_plan(int64_t batch);

 private:
  // Shared forward-and-decode core for predict() and infer(): one place
  // owns the finiteness scan and the bounds clipping, so the two entry
  // points can never drift. Assumes the caller installed the inference
  // guards; may propagate exceptions from forward().
  struct ForwardDecode {
    InferError error = InferError::kNone;  // kNone iff every element is ok
    std::string message;
    std::vector<InferError> element_errors;  // [B]
    std::vector<vision::Box> boxes;          // [B]; valid where element ok
    Tensor features;  // cloned backbone features when capture was requested
    bool all_ok() const { return error == InferError::kNone; }
  };
  ForwardDecode forward_and_decode(const Tensor& images,
                                   const std::vector<int64_t>& tokens,
                                   bool apply_fault_hooks,
                                   bool capture_features = false);

  // Finiteness scan + top-1 decode + clipping over a forward's outputs.
  // Boxes are clipped to [img_w, img_h] (the config geometry for every
  // admitted input). On the planned path the Output wraps arena-backed
  // views, so the caller must hold the plan's ExecGuard across this call.
  ForwardDecode decode_and_scan(Output& out, int64_t img_w, int64_t img_h,
                                bool apply_fault_hooks);

  // Plan cache (keyed by batch size; image dims and query length are fixed
  // by the config). `building` makes concurrent misses fall back to the
  // dynamic path instead of blocking behind the recording thread; `failed`
  // entries retry every kPlanRetryPeriod misses in case budget freed up.
  struct PlanEntry {
    std::shared_ptr<yollo::plan::Plan> plan;
    bool failed = false;
    bool building = false;
    int64_t misses = 0;
  };
  std::shared_ptr<yollo::plan::Plan> planned_for(
      const Tensor& images, const std::vector<int64_t>& tokens);
  std::shared_ptr<yollo::plan::Plan> build_plan(
      const Tensor& images, const std::vector<int64_t>& tokens,
      std::string* why);

  std::mutex plan_mu_;
  std::map<int64_t, PlanEntry> plan_cache_;
  PlanCacheStats plan_stats_;  // guarded by plan_mu_ (entries/arena_bytes
                               // recomputed on read)

  std::atomic<uint64_t> weights_generation_{0};

  YolloConfig config_;
  vision::Backbone backbone_;
  nn::Embedding word_emb_;
  ag::Variable pos_emb_;  // [max_query_len, word_dim]
  // Normalises text features to the same O(1) scale as the batch-normalised
  // backbone features; without it the text pathway is gradient-starved and
  // the model degenerates to query-independent grounding.
  nn::LayerNorm text_norm_;
  std::vector<std::unique_ptr<Rel2Att>> rel2att_;
  DetectionHead head_;
};

}  // namespace yollo::core
