// YOLLO — "You Only Look & Listen Once": the paper's one-stage visual
// grounding model (§3, Fig. 2a).
//
// Pipeline: feature encoder (backbone grid features + word embeddings with
// learned absolute positional embeddings, §3.1) -> stacked Rel2Att modules
// (§3.2) -> RPN-like target detection network over the attended feature map
// (§3.3). Trained end-to-end with L = L_att + L_cls + lambda * L_reg
// (eq. 9); inference takes the single top-scored anchor's refined box.
#pragma once

#include <memory>
#include <vector>

#include "core/detection_head.h"
#include "core/rel2att.h"
#include "nn/layers.h"
#include "vision/backbone.h"

namespace yollo::core {

class YolloModel : public nn::Module {
 public:
  YolloModel(const YolloConfig& config, int64_t vocab_size, Rng& rng);

  const YolloConfig& config() const { return config_; }

  // Copy pre-trained Word2Vec vectors into the embedding table (the paper
  // initialises from Word2Vec and fine-tunes end-to-end, §4.2).
  void init_word_embeddings(const Tensor& embeddings);

  struct Output {
    ag::Variable scores;  // [B, A]
    ag::Variable deltas;  // [B, A, 4]
    ag::Variable att_v;   // [B, m] raw image attention from the last Rel2Att
    // att_v from every module in the stack; the attention loss supervises
    // all of them (deep supervision — each stacked module is pushed toward
    // the target region, which speeds up convergence markedly).
    std::vector<ag::Variable> att_v_all;
  };

  // images: [B, 3, img_h, img_w]; tokens: row-major [B * max_query_len].
  Output forward(const Tensor& images, const std::vector<int64_t>& tokens);

  struct Losses {
    ag::Variable total;
    ag::Variable att;
    ag::Variable cls;
    ag::Variable reg;
  };
  Losses compute_loss(const Output& out,
                      const std::vector<vision::Box>& targets, Rng& rng);

  // Top-1 box per batch element. Self-contained: installs an
  // ag::NoGradGuard (no autograd graph), an nn::EvalModeGuard
  // (deterministic batch-norm, restored on return), and a PoolScope
  // (storage recycling) internally — callers no longer manage train/eval
  // state around it. Throws on shape mismatch or a non-finite forward; use
  // infer() for the typed, never-throwing variant.
  std::vector<vision::Box> predict(const Tensor& images,
                                   const std::vector<int64_t>& tokens);

  // --- exception-free inference entry point (used by yollo::serve) ---------
  enum class InferError {
    kNone = 0,       // boxes are valid
    kInvalidInput,   // image/token shapes do not match the config
    kNonFinite,      // forward produced non-finite activations or boxes
    kFault,          // forward threw (includes runtime::InjectedFault)
    kCancelled,      // the caller's ExecContext was cancelled (explicit
                     // cancel or deadline expiry) mid-forward; distinguish
                     // via ExecContext::cause()
    kResourceExhausted,  // the active PoolScope's byte budget refused an
                         // allocation (PoolBudgetExceeded)
  };
  struct InferOutcome {
    InferError error = InferError::kNone;
    std::string message;
    std::vector<vision::Box> boxes;  // one per batch element when ok
    // Per-element verdicts for batched forwards: sized B once the forward
    // ran (empty on batch-level failures — invalid input or a thrown
    // fault). A non-finite element poisons only its own slot:
    // element_boxes[i] stays valid (clipped) wherever element_errors[i] is
    // kNone, so a micro-batching caller can serve the healthy elements and
    // degrade the poisoned ones individually.
    std::vector<InferError> element_errors;
    std::vector<vision::Box> element_boxes;
    bool ok() const { return error == InferError::kNone; }
    bool element_ok(int64_t i) const {
      return i >= 0 && i < static_cast<int64_t>(element_errors.size()) &&
             element_errors[static_cast<size_t>(i)] == InferError::kNone;
    }
  };
  // Hardened predict(): validates input shapes against the config, runs the
  // forward pass (honouring runtime::FaultInjector's inference-path faults),
  // scans the activations and decoded boxes for non-finite values, and clips
  // every box to the input image bounds so a degenerate or out-of-frame box
  // can never escape. Never throws; all failures surface as a typed
  // InferError with a message. Like predict(), installs NoGradGuard +
  // EvalModeGuard + PoolScope internally.
  InferOutcome infer(const Tensor& images,
                     const std::vector<int64_t>& tokens) noexcept;

  // Softmax image-attention map of one batch element as [grid_h, grid_w]
  // (the masks visualised in the paper's Figure 5).
  Tensor attention_map(const Output& out, int64_t batch_index) const;

  // Self-contained variant: runs a grad-free eval-mode forward internally
  // (same guards as predict) — no caller-managed train/eval state, no
  // Output to thread through.
  Tensor attention_map(const Tensor& images,
                       const std::vector<int64_t>& tokens,
                       int64_t batch_index);

  const std::vector<vision::Box>& anchors() const { return head_.anchors(); }

 private:
  // Shared forward-and-decode core for predict() and infer(): one place
  // owns the finiteness scan and the bounds clipping, so the two entry
  // points can never drift. Assumes the caller installed the inference
  // guards; may propagate exceptions from forward().
  struct ForwardDecode {
    InferError error = InferError::kNone;  // kNone iff every element is ok
    std::string message;
    std::vector<InferError> element_errors;  // [B]
    std::vector<vision::Box> boxes;          // [B]; valid where element ok
    bool all_ok() const { return error == InferError::kNone; }
  };
  ForwardDecode forward_and_decode(const Tensor& images,
                                   const std::vector<int64_t>& tokens,
                                   bool apply_fault_hooks);

  YolloConfig config_;
  vision::Backbone backbone_;
  nn::Embedding word_emb_;
  ag::Variable pos_emb_;  // [max_query_len, word_dim]
  // Normalises text features to the same O(1) scale as the batch-normalised
  // backbone features; without it the text pathway is gradient-starved and
  // the model degenerates to query-independent grounding.
  nn::LayerNorm text_norm_;
  std::vector<std::unique_ptr<Rel2Att>> rel2att_;
  DetectionHead head_;
};

}  // namespace yollo::core
