#include "core/yollo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "autograd/trace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "runtime/fault.h"
#include "tensor/exec.h"
#include "tensor/kernels.h"
#include "tensor/pool.h"

namespace yollo::core {

namespace {

// The backbone consumes RGB + 2 CoordConv channels (see forward()).
vision::BackboneConfig with_coord_channels(vision::BackboneConfig cfg) {
  cfg.in_channels = 5;
  return cfg;
}

}  // namespace

YolloModel::YolloModel(const YolloConfig& config, int64_t vocab_size, Rng& rng)
    : config_(config),
      backbone_(with_coord_channels(config.backbone), rng),
      word_emb_(vocab_size, config.word_dim, rng),
      text_norm_(config.word_dim),
      // +1: the softmaxed attention map rides along as an explicit channel
      // (Fig. 3: the head "simply assigns a larger confidence score to the
      // anchor with larger grid values").
      head_(config_, config.backbone.out_channels() + 1, rng) {
  register_module("backbone", backbone_);
  register_module("word_emb", word_emb_);
  register_module("text_norm", text_norm_);
  pos_emb_ = ag::Variable::param(nn::embedding_init(
      {config.max_query_len, config.word_dim}, rng, 0.05f));
  register_parameter("pos_emb", pos_emb_);
  for (int64_t i = 0; i < config.num_rel2att; ++i) {
    rel2att_.push_back(std::make_unique<Rel2Att>(
        config_, config.backbone.out_channels(), config.word_dim, rng));
    register_module("rel2att" + std::to_string(i), *rel2att_.back());
  }
  register_module("head", head_);
}

void YolloModel::init_word_embeddings(const Tensor& embeddings) {
  if (embeddings.shape() != word_emb_.weight.shape()) {
    throw std::invalid_argument(
        "init_word_embeddings: shape mismatch, expected " +
        shape_to_string(word_emb_.weight.shape()) + " got " +
        shape_to_string(embeddings.shape()));
  }
  word_emb_.weight.value().copy_from(embeddings);
  weights_generation_.fetch_add(1, std::memory_order_acq_rel);
}

YolloModel::Output YolloModel::forward(const Tensor& images,
                                       const std::vector<int64_t>& tokens) {
  const int64_t b = images.size(0);
  const int64_t n = config_.max_query_len;
  if (static_cast<int64_t>(tokens.size()) != b * n) {
    throw std::invalid_argument("YolloModel::forward: token count " +
                                std::to_string(tokens.size()) + " != B*n = " +
                                std::to_string(b * n));
  }
  return fuse_features(encode_images(images), tokens);
}

ag::Variable YolloModel::encode_images(const Tensor& images) {
  const int64_t b = images.size(0);

  // §3.1 feature encoder — image side: dense grid features. Two normalised
  // coordinate channels ride along with the RGB input (CoordConv): location
  // words ("left", "top") are frequent in the queries, and a shallow
  // scratch-trained backbone otherwise carries almost no absolute-position
  // signal (the paper's deep pretrained C4 features get it from context).
  const int64_t ih = images.size(2);
  const int64_t iw = images.size(3);
  Tensor with_coords = Tensor::uninitialized({b, 5, ih, iw});
  kernels::fill_coord_channels(images.data(), with_coords.data(), b, ih, iw);
  // The plan prologue refills this slot per execution with the same kernel.
  ag::trace::note_input("with_coords", with_coords);
  return backbone_.forward(ag::Variable::constant(with_coords));
}

YolloModel::Output YolloModel::fuse_features(
    const ag::Variable& feat, const std::vector<int64_t>& tokens) {
  const int64_t b = feat.size(0);
  const int64_t n = config_.max_query_len;
  const int64_t m = config_.num_regions();
  const int64_t c = config_.backbone.out_channels();
  ag::Variable v = ag::transpose(ag::reshape(feat, {b, c, m}), 1, 2);

  // §3.1 feature encoder — text side: word + absolute position embeddings.
  ag::Variable words = word_emb_.forward(tokens);               // [B*n, d]
  words = ag::reshape(words, {b, n, config_.word_dim});
  ag::Variable t =
      text_norm_.forward(ag::add(words, pos_emb_));  // pos broadcasts over batch

  // PAD-validity mask shared by the whole Rel2Att stack (0 == Vocab::kPad).
  Tensor pair_mask = Tensor::uninitialized({b, m + n, m + n});
  kernels::fill_pair_mask(tokens.data(), b, m, n, pair_mask.data());
  ag::trace::note_input("pair_mask", pair_mask);

  // §3.2: stacked Rel2Att modules.
  Output out;
  for (size_t i = 0; i < rel2att_.size(); ++i) {
    Rel2Att::Output r = rel2att_[i]->forward(v, t, pair_mask);
    v = r.v;
    t = r.t;
    out.att_v = r.att_v;  // the last module's image attention
    out.att_v_all.push_back(r.att_v);
  }

  // Reconstruct the attended feature map M~, append the softmaxed attention
  // as one extra channel, and run the detection network.
  ag::Variable m_tilde =
      ag::reshape(ag::transpose(v, 1, 2), {b, c, config_.grid_h(),
                                           config_.grid_w()});
  ag::Variable att_plane = ag::reshape(
      ag::mul_scalar(ag::softmax(out.att_v, 1), static_cast<float>(m)),
      {b, 1, config_.grid_h(), config_.grid_w()});
  m_tilde = ag::concat({m_tilde, att_plane}, 1);
  DetectionHead::Output head_out = head_.forward(m_tilde);
  out.scores = head_out.scores;
  out.deltas = head_out.deltas;
  out.feat = feat;
  return out;
}

YolloModel::Losses YolloModel::compute_loss(
    const Output& out, const std::vector<vision::Box>& targets, Rng& rng) {
  const int64_t b = out.scores.size(0);
  const int64_t m = config_.num_regions();

  // Eq. (6): attention-mask loss against the scaled ground-truth box.
  Tensor gt_masks({b, m});
  for (int64_t bi = 0; bi < b; ++bi) {
    const Tensor row =
        make_gt_mask(targets[static_cast<size_t>(bi)], config_.grid_h(),
                     config_.grid_w(), config_.backbone.stride());
    std::copy(row.data(), row.data() + m, gt_masks.data() + bi * m);
  }

  // Eq. (6) applied to every stacked module's attention (deep supervision).
  Losses losses;
  losses.att = attention_loss(out.att_v_all[0], gt_masks);
  for (size_t i = 1; i < out.att_v_all.size(); ++i) {
    losses.att = ag::add(losses.att, attention_loss(out.att_v_all[i], gt_masks));
  }
  losses.att = ag::mul_scalar(
      losses.att, 1.0f / static_cast<float>(out.att_v_all.size()));

  // Eqs. (7)-(8): detection losses over sampled anchors.
  DetectionHead::Output head_out{out.scores, out.deltas};
  const DetectionLoss det =
      detection_loss(head_out, head_.anchors(), targets, config_, rng);
  losses.cls = det.cls;
  losses.reg = det.reg;

  // Eq. (9): L = L_att + L_cls + lambda * L_reg.
  losses.total = ag::add(
      losses.att,
      ag::add(losses.cls, ag::mul_scalar(losses.reg, config_.lambda_reg)));
  return losses;
}

YolloModel::ForwardDecode YolloModel::forward_and_decode(
    const Tensor& images, const std::vector<int64_t>& tokens,
    bool apply_fault_hooks, bool capture_features) {
  if (yollo::plan::enabled()) {
    if (std::shared_ptr<yollo::plan::Plan> p = planned_for(images, tokens)) {
      yollo::plan::Plan::ExecGuard g = p->try_execute(images, tokens);
      if (g) {
        // Arena-backed views of the outputs; the plan shared_ptr keeps the
        // arena alive. Decode happens while the guard is held — another
        // thread executing this plan would overwrite the arena under us.
        Output out;
        out.scores = ag::Variable::constant(Tensor::from_external(
            g.scores_shape(), const_cast<float*>(g.scores()), p));
        out.deltas = ag::Variable::constant(Tensor::from_external(
            g.deltas_shape(), const_cast<float*>(g.deltas()), p));
        ForwardDecode fd = decode_and_scan(out, images.size(3), images.size(2),
                                           apply_fault_hooks);
        if (capture_features && g.has_features()) {
          // Clone while the guard is held — releasing it would let another
          // execution overwrite the feature region under the copy.
          fd.features =
              Tensor::from_external(g.features_shape(),
                                    const_cast<float*>(g.features()), p)
                  .clone();
        }
        return fd;
      }
      {
        std::lock_guard<std::mutex> lk(plan_mu_);
        ++plan_stats_.fallbacks;
      }
      static obs::Counter& fallbacks =
          obs::MetricsRegistry::global().counter("plan.fallbacks");
      fallbacks.inc();
    }
  }
  Output out = forward(images, tokens);
  ForwardDecode fd =
      decode_and_scan(out, images.size(3), images.size(2), apply_fault_hooks);
  if (capture_features) fd.features = out.feat.value().clone();
  return fd;
}

YolloModel::ForwardDecode YolloModel::decode_and_scan(Output& out,
                                                      int64_t img_w,
                                                      int64_t img_h,
                                                      bool apply_fault_hooks) {
  ForwardDecode fd;
  if (apply_fault_hooks &&
      runtime::FaultInjector::active().take_poison_forward()) {
    // Stand-in for silently corrupted activations: the finiteness scan
    // below must catch this, never the caller. Only the last batch element
    // is poisoned — real corruption hits activations, not whole batches —
    // which also exercises the per-element isolation contract. For a batch
    // of one (the single-image path) this poisons the entire output.
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const int64_t last = out.scores.size(0) - 1;
    Tensor& scores = out.scores.value();
    Tensor& deltas = out.deltas.value();
    const int64_t srow = scores.numel() / scores.size(0);
    const int64_t drow = deltas.numel() / deltas.size(0);
    std::fill(scores.data() + last * srow, scores.data() + (last + 1) * srow,
              nan);
    std::fill(deltas.data() + last * drow, deltas.data() + (last + 1) * drow,
              nan);
  }

  const int64_t b = out.scores.size(0);
  const int64_t a = out.scores.size(1);
  DetectionHead::Output head_out{out.scores, out.deltas};
  std::vector<vision::Box> decoded =
      decode_top1(head_out, head_.anchors(), config_);

  // Per-element verdicts: one element's non-finite activations or box must
  // never fail its batch mates (micro-batching relies on this isolation).
  fd.element_errors.assign(static_cast<size_t>(b), InferError::kNone);
  fd.boxes.assign(static_cast<size_t>(b), vision::Box{});
  const float* scores = out.scores.value().data();
  int64_t bad = 0;
  for (int64_t e = 0; e < b; ++e) {
    bool finite = true;
    for (int64_t i = 0; i < a && finite; ++i) {
      finite = std::isfinite(scores[e * a + i]);
    }
    const vision::Box& box = decoded[static_cast<size_t>(e)];
    finite = finite && std::isfinite(box.x) && std::isfinite(box.y) &&
             std::isfinite(box.w) && std::isfinite(box.h);
    if (!finite) {
      fd.element_errors[static_cast<size_t>(e)] = InferError::kNonFinite;
      ++bad;
      continue;
    }
    // decode_top1 clips against the config; re-clip against the actual
    // image so the invariant is local and survives refactors upstream.
    fd.boxes[static_cast<size_t>(e)] = vision::clip_box(
        box, static_cast<float>(img_w), static_cast<float>(img_h));
  }
  if (bad > 0) {
    fd.error = InferError::kNonFinite;
    fd.message = "non-finite activations or boxes in " + std::to_string(bad) +
                 " of " + std::to_string(b) + " batch elements";
  }
  return fd;
}

std::shared_ptr<yollo::plan::Plan> YolloModel::build_plan(
    const Tensor& images, const std::vector<int64_t>& tokens,
    std::string* why) {
  OBS_SPAN("plan.record");
  yollo::plan::Recorder rec;
  rec.set_tokens(tokens);
  Output out;
  {
    // Record one ordinary grad-free forward; the hooks in autograd see
    // every op. Callers have NoGradGuard + EvalModeGuard installed.
    ag::trace::Scope scope(&rec);
    out = forward(images, tokens);
  }
  // Features ride along as a third plan output so serving can populate the
  // feature cache straight from the arena — no second forward, no dynamic
  // fallback just to capture them.
  return rec.compile(out.scores.value(), out.deltas.value(), why,
                     &out.feat.value());
}

std::shared_ptr<yollo::plan::Plan> YolloModel::planned_for(
    const Tensor& images, const std::vector<int64_t>& tokens) {
  constexpr size_t kMaxPlanEntries = 16;
  constexpr int64_t kPlanRetryPeriod = 64;
  static obs::Counter& hits =
      obs::MetricsRegistry::global().counter("plan.cache_hits");
  static obs::Counter& misses =
      obs::MetricsRegistry::global().counter("plan.cache_misses");

  const int64_t b = images.size(0);
  std::unique_lock<std::mutex> lk(plan_mu_);
  auto it = plan_cache_.find(b);
  if (it == plan_cache_.end()) {
    if (plan_cache_.size() >= kMaxPlanEntries) {
      // Bound the cache: evict the first idle entry. Entries mid-build are
      // never erased (the builder holds a reference across the unlock).
      auto victim = plan_cache_.end();
      for (auto c = plan_cache_.begin(); c != plan_cache_.end(); ++c) {
        if (!c->second.building) {
          victim = c;
          break;
        }
      }
      if (victim == plan_cache_.end()) return nullptr;
      plan_cache_.erase(victim);
    }
    it = plan_cache_.emplace(b, PlanEntry{}).first;
  }
  PlanEntry& e = it->second;
  if (e.plan) {
    ++plan_stats_.hits;
    hits.inc();
    return e.plan;
  }
  if (e.building) return nullptr;  // concurrent miss: dynamic, non-blocking
  if (e.failed) {
    // Unplannable traces stay failed; budget refusals may clear up, so
    // retry periodically instead of never.
    if (++e.misses % kPlanRetryPeriod != 0) return nullptr;
    e.failed = false;
  }
  ++plan_stats_.misses;
  misses.inc();
  e.plan.reset();  // release any old arena BEFORE building: one budget charge
  e.building = true;
  lk.unlock();

  std::shared_ptr<yollo::plan::Plan> built;
  bool failed = false;
  try {
    std::string why;
    built = build_plan(images, tokens, &why);
    failed = (built == nullptr);
  } catch (const PoolBudgetExceeded&) {
    // Arena refused by the pool budget: degrade to the dynamic path (which
    // runs inside the budgeted pool) instead of failing the request.
    failed = true;
  } catch (...) {
    // Cancellation or a fault mid-recording: leave the entry clean so the
    // next request retries the build.
    lk.lock();
    e.building = false;
    throw;
  }
  lk.lock();
  e.building = false;
  if (failed) {
    e.failed = true;
    return nullptr;
  }
  e.plan = std::move(built);
  ++plan_stats_.compiles;
  int64_t bytes = 0;
  for (const auto& [key, entry] : plan_cache_) {
    if (entry.plan) bytes += entry.plan->arena_bytes();
  }
  obs::MetricsRegistry::global()
      .gauge("plan.arena_bytes")
      .set(static_cast<double>(bytes));
  return e.plan;
}

void YolloModel::warm_plan(int64_t batch) {
  if (!yollo::plan::enabled() || batch < 1) return;
  ag::NoGradGuard no_grad;
  nn::EvalModeGuard eval_mode(*this);
  // Deliberately no PoolScope: the arena's byte charge must land on the
  // caller's active budget scope (the serve worker's), not a transient one.
  Tensor images({batch, 3, config_.img_h, config_.img_w});
  std::vector<int64_t> tokens(
      static_cast<size_t>(batch * config_.max_query_len), 0);
  std::shared_ptr<yollo::plan::Plan> p = planned_for(images, tokens);
  if (p) {
    // One throwaway execution warms the GEMM pack scratch and obs rings so
    // the first real request runs at steady state.
    yollo::plan::Plan::ExecGuard g = p->try_execute(images, tokens);
    (void)g;
  }
}

bool YolloModel::planned(int64_t batch) {
  std::lock_guard<std::mutex> lk(plan_mu_);
  auto it = plan_cache_.find(batch);
  return it != plan_cache_.end() && it->second.plan != nullptr;
}

void YolloModel::invalidate_plans() {
  // Model-reload signal: parameter storage may have been rebound, so any
  // cached backbone features derived from the old weights are stale too.
  weights_generation_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lk(plan_mu_);
  // Reset in place instead of erasing: a concurrent build holds references
  // to its entry across the cache unlock.
  for (auto& [key, e] : plan_cache_) {
    e.plan.reset();
    e.failed = false;
    e.misses = 0;
  }
}

YolloModel::PlanCacheStats YolloModel::plan_cache_stats() {
  std::lock_guard<std::mutex> lk(plan_mu_);
  PlanCacheStats s = plan_stats_;
  s.entries = 0;
  s.arena_bytes = 0;
  for (const auto& [key, e] : plan_cache_) {
    if (e.plan) {
      ++s.entries;
      s.arena_bytes += e.plan->arena_bytes();
    }
  }
  return s;
}

YolloModel::RawForward YolloModel::raw_forward(
    const Tensor& images, const std::vector<int64_t>& tokens) {
  ag::NoGradGuard no_grad;
  nn::EvalModeGuard eval_mode(*this);
  PoolScope pool;
  RawForward rf;
  if (yollo::plan::enabled()) {
    if (std::shared_ptr<yollo::plan::Plan> p = planned_for(images, tokens)) {
      yollo::plan::Plan::ExecGuard g = p->try_execute(images, tokens);
      if (g) {
        // Clone out of the arena while the guard is held.
        rf.scores = Tensor::from_external(g.scores_shape(),
                                          const_cast<float*>(g.scores()), p)
                        .clone();
        rf.deltas = Tensor::from_external(g.deltas_shape(),
                                          const_cast<float*>(g.deltas()), p)
                        .clone();
        rf.planned = true;
        return rf;
      }
    }
  }
  Output out = forward(images, tokens);
  rf.scores = out.scores.value().clone();
  rf.deltas = out.deltas.value().clone();
  return rf;
}

bool YolloModel::run_planned(const Tensor& images,
                             const std::vector<int64_t>& tokens) {
  std::shared_ptr<yollo::plan::Plan> p;
  {
    std::lock_guard<std::mutex> lk(plan_mu_);
    auto it = plan_cache_.find(images.size(0));
    if (it != plan_cache_.end()) p = it->second.plan;
  }
  if (!p) return false;
  yollo::plan::Plan::ExecGuard g = p->try_execute(images, tokens);
  return static_cast<bool>(g);
}

std::shared_ptr<yollo::plan::Plan> YolloModel::cached_plan(int64_t batch) {
  std::lock_guard<std::mutex> lk(plan_mu_);
  auto it = plan_cache_.find(batch);
  return it != plan_cache_.end() ? it->second.plan : nullptr;
}

std::vector<vision::Box> YolloModel::predict(
    const Tensor& images, const std::vector<int64_t>& tokens) {
  // Self-contained inference: no graph, deterministic eval-mode batch norm
  // regardless of the caller's train/eval state, recycled storage.
  ag::NoGradGuard no_grad;
  nn::EvalModeGuard eval_mode(*this);
  PoolScope pool;
  ForwardDecode fd =
      forward_and_decode(images, tokens, /*apply_fault_hooks=*/false);
  if (!fd.all_ok()) {
    throw std::runtime_error("YolloModel::predict: " + fd.message);
  }
  return std::move(fd.boxes);
}

YolloModel::InferOutcome YolloModel::infer(
    const Tensor& images, const std::vector<int64_t>& tokens,
    bool capture_features) noexcept {
  InferOutcome outcome;
  const auto fail = [&outcome](InferError error, std::string message) {
    outcome.error = error;
    outcome.message = std::move(message);
    outcome.boxes.clear();
    return outcome;
  };

  try {
    // Shape contract first: forward() would throw (or worse, mis-reshape)
    // on anything else.
    if (!images.defined() || images.ndim() != 4 || images.size(0) < 1 ||
        images.size(1) != 3 || images.size(2) != config_.img_h ||
        images.size(3) != config_.img_w) {
      return fail(InferError::kInvalidInput,
                  "expected images [B,3," + std::to_string(config_.img_h) +
                      "," + std::to_string(config_.img_w) + "], got " +
                      (images.defined() ? shape_to_string(images.shape())
                                        : std::string("<undefined>")));
    }
    const int64_t b = images.size(0);
    if (static_cast<int64_t>(tokens.size()) != b * config_.max_query_len) {
      return fail(InferError::kInvalidInput,
                  "token count " + std::to_string(tokens.size()) +
                      " != B*max_query_len = " +
                      std::to_string(b * config_.max_query_len));
    }
    const int64_t vocab = word_emb_.weight.size(0);
    for (const int64_t token : tokens) {
      if (token < 0 || token >= vocab) {
        return fail(InferError::kInvalidInput,
                    "token id " + std::to_string(token) +
                        " outside vocabulary [0, " + std::to_string(vocab) +
                        ")");
      }
    }
    const float* pixels = images.data();
    for (int64_t i = 0; i < images.numel(); ++i) {
      if (!std::isfinite(pixels[i])) {
        return fail(InferError::kInvalidInput,
                    "non-finite pixel at flat index " + std::to_string(i));
      }
    }

    // Same guard stack as predict(): the entry point owns its execution
    // mode instead of trusting the caller's.
    ag::NoGradGuard no_grad;
    nn::EvalModeGuard eval_mode(*this);
    PoolScope pool;

    // Fault hooks: a slow-forward fault sleeps here, a transient forward
    // failure throws here (caught below as kFault). active() resolves to a
    // thread-bound scoped injector when one is installed (per-shard chaos),
    // else the env-driven process-wide instance.
    runtime::FaultInjector::active().check_forward();

    ForwardDecode fd = forward_and_decode(
        images, tokens, /*apply_fault_hooks=*/true, capture_features);
    // A context cancelled on the *last* kernel has no later dispatch
    // checkpoint to throw from, and the abandoned kernel's partial output
    // can look finite — so the cancelled flag always wins over whatever
    // forward_and_decode scanned out of the data.
    if (ExecContext* ctx = ExecContext::current();
        ctx != nullptr && ctx->cancelled()) {
      return fail(InferError::kCancelled,
                  std::string("forward cancelled: ") +
                      cancel_cause_name(ctx->cause()));
    }
    outcome.element_errors = std::move(fd.element_errors);
    outcome.element_boxes = std::move(fd.boxes);
    outcome.features = std::move(fd.features);
    if (!fd.all_ok()) {
      outcome.error = fd.error;
      outcome.message = std::move(fd.message);
      outcome.boxes.clear();  // all-or-nothing view; per-element data stays
      return outcome;
    }
    outcome.boxes = outcome.element_boxes;
    return outcome;
  } catch (const ExecCancelled& e) {
    return fail(InferError::kCancelled, e.what());
  } catch (const PoolBudgetExceeded& e) {
    return fail(InferError::kResourceExhausted, e.what());
  } catch (const std::exception& e) {
    return fail(InferError::kFault, e.what());
  } catch (...) {
    return fail(InferError::kFault, "unknown exception during forward");
  }
}

YolloModel::InferOutcome YolloModel::infer_from_features(
    const Tensor& features, const std::vector<int64_t>& tokens) noexcept {
  InferOutcome outcome;
  const auto fail = [&outcome](InferError error, std::string message) {
    outcome.error = error;
    outcome.message = std::move(message);
    outcome.boxes.clear();
    return outcome;
  };

  try {
    const int64_t c = config_.backbone.out_channels();
    if (!features.defined() || features.ndim() != 4 || features.size(0) < 1 ||
        features.size(1) != c || features.size(2) != config_.grid_h() ||
        features.size(3) != config_.grid_w()) {
      return fail(InferError::kInvalidInput,
                  "expected features [B," + std::to_string(c) + "," +
                      std::to_string(config_.grid_h()) + "," +
                      std::to_string(config_.grid_w()) + "], got " +
                      (features.defined() ? shape_to_string(features.shape())
                                          : std::string("<undefined>")));
    }
    const int64_t b = features.size(0);
    if (static_cast<int64_t>(tokens.size()) != b * config_.max_query_len) {
      return fail(InferError::kInvalidInput,
                  "token count " + std::to_string(tokens.size()) +
                      " != B*max_query_len = " +
                      std::to_string(b * config_.max_query_len));
    }
    const int64_t vocab = word_emb_.weight.size(0);
    for (const int64_t token : tokens) {
      if (token < 0 || token >= vocab) {
        return fail(InferError::kInvalidInput,
                    "token id " + std::to_string(token) +
                        " outside vocabulary [0, " + std::to_string(vocab) +
                        ")");
      }
    }
    const float* values = features.data();
    for (int64_t i = 0; i < features.numel(); ++i) {
      if (!std::isfinite(values[i])) {
        return fail(InferError::kInvalidInput,
                    "non-finite feature at flat index " + std::to_string(i));
      }
    }

    ag::NoGradGuard no_grad;
    nn::EvalModeGuard eval_mode(*this);
    PoolScope pool;

    // Same per-forward fault hook as infer(): a cached-path forward is one
    // attempt exactly like an uncached one, so retry/chaos accounting (and
    // the slow/fail/wedge shot counters) cannot drift between the paths.
    runtime::FaultInjector::active().check_forward();

    // The cached path runs the fusion half dynamically: per-batch-size
    // static plans span the full forward (backbone included), and a second
    // plan family per batch size is not worth the arena memory for a stage
    // that is already a fraction of the full pass (DESIGN.md §15).
    Output out = fuse_features(ag::Variable::constant(features), tokens);
    ForwardDecode fd = decode_and_scan(out, config_.img_w, config_.img_h,
                                       /*apply_fault_hooks=*/true);
    if (ExecContext* ctx = ExecContext::current();
        ctx != nullptr && ctx->cancelled()) {
      return fail(InferError::kCancelled,
                  std::string("forward cancelled: ") +
                      cancel_cause_name(ctx->cause()));
    }
    outcome.element_errors = std::move(fd.element_errors);
    outcome.element_boxes = std::move(fd.boxes);
    if (!fd.all_ok()) {
      outcome.error = fd.error;
      outcome.message = std::move(fd.message);
      outcome.boxes.clear();
      return outcome;
    }
    outcome.boxes = outcome.element_boxes;
    return outcome;
  } catch (const ExecCancelled& e) {
    return fail(InferError::kCancelled, e.what());
  } catch (const PoolBudgetExceeded& e) {
    return fail(InferError::kResourceExhausted, e.what());
  } catch (const std::exception& e) {
    return fail(InferError::kFault, e.what());
  } catch (...) {
    return fail(InferError::kFault, "unknown exception during forward");
  }
}

Tensor YolloModel::attention_map(const Output& out,
                                 int64_t batch_index) const {
  const int64_t m = config_.num_regions();
  const Tensor att =
      out.att_v.value().narrow(0, batch_index, 1).reshape({m});
  return softmax(att, 0).reshape({config_.grid_h(), config_.grid_w()});
}

Tensor YolloModel::attention_map(const Tensor& images,
                                 const std::vector<int64_t>& tokens,
                                 int64_t batch_index) {
  ag::NoGradGuard no_grad;
  nn::EvalModeGuard eval_mode(*this);
  PoolScope pool;
  const Output out = forward(images, tokens);
  return attention_map(out, batch_index);
}

}  // namespace yollo::core
