#include "core/detection_head.h"

#include <algorithm>

namespace yollo::core {

DetectionHead::DetectionHead(const YolloConfig& config, int64_t in_channels,
                             Rng& rng)
    : config_(&config),
      conv1_(in_channels, config.head_channels, 3, 1, 1, rng),
      conv2_(config.head_channels, config.head_channels, 3, 1, 1, rng),
      cls_(config.head_channels, config.anchors.anchors_per_cell(), 1, 1, 0,
           rng),
      reg_(config.head_channels, 4 * config.anchors.anchors_per_cell(), 1, 1,
           0, rng),
      anchors_(vision::generate_anchors(config.anchors, config.grid_h(),
                                        config.grid_w())) {
  register_module("conv1", conv1_);
  register_module("conv2", conv2_);
  register_module("cls", cls_);
  register_module("reg", reg_);
}

DetectionHead::Output DetectionHead::forward(const ag::Variable& feature_map) {
  const int64_t b = feature_map.size(0);
  const int64_t gh = feature_map.size(2);
  const int64_t gw = feature_map.size(3);
  const int64_t cells = gh * gw;
  const int64_t k = config_->anchors.anchors_per_cell();

  ag::Variable h = ag::relu(conv1_.forward(feature_map));
  h = ag::relu(conv2_.forward(h));

  // Scores: [B, K, gh, gw] -> [B, cells, K] -> [B, A] with
  // a = cell * K + k, matching the anchor generator's ordering.
  ag::Variable scores = cls_.forward(h);                       // [B,K,gh,gw]
  scores = ag::reshape(scores, {b, k, cells});                 // [B,K,cells]
  scores = ag::transpose(scores, 1, 2);                        // [B,cells,K]
  Output out;
  out.scores = ag::reshape(scores, {b, cells * k});            // [B, A]

  // Deltas: [B, 4K, gh, gw], channel 4*anchor + coord ->
  // [B, K, 4, cells] -> [B, cells, K, 4] -> [B, A, 4].
  ag::Variable deltas = reg_.forward(h);
  deltas = ag::reshape(deltas, {b, k, 4, cells});
  deltas = ag::transpose(deltas, 1, 3);  // [B, cells, 4, K]
  deltas = ag::transpose(deltas, 2, 3);  // [B, cells, K, 4]
  out.deltas = ag::reshape(deltas, {b, cells * k, 4});
  return out;
}

DetectionLoss detection_loss(const DetectionHead::Output& out,
                             const std::vector<vision::Box>& anchors,
                             const std::vector<vision::Box>& targets,
                             const YolloConfig& config, Rng& rng) {
  const int64_t b = out.scores.size(0);
  const int64_t a = out.scores.size(1);

  // Collect the sampled anchor batch across all images: global flat indices
  // into [B*A] for classification, plus the positive subset (with encoded
  // regression targets) for the smooth-L1 term.
  std::vector<int64_t> cls_indices;
  std::vector<float> cls_labels;
  std::vector<int64_t> reg_indices;  // flat into [B*A*4], 4 per positive
  std::vector<float> reg_targets;

  for (int64_t bi = 0; bi < b; ++bi) {
    const vision::Box& target = targets[static_cast<size_t>(bi)];
    vision::AnchorLabels labels =
        vision::label_anchors(anchors, target, config.rho_high, config.rho_low);

    // Sample a balanced anchor batch per image: all positives (they are
    // few — one target object) plus ~3 negatives per positive, at least 16,
    // capped by anchor_batch. Faster R-CNN's 1:1-to-1:3 balancing rule; a
    // negative-flooded batch lets the classifier collapse to "background
    // everywhere" and the top-1 selection at inference becomes noise.
    const int64_t max_pos = config.anchor_batch / 2;
    std::shuffle(labels.positive.begin(), labels.positive.end(), rng.engine());
    if (static_cast<int64_t>(labels.positive.size()) > max_pos) {
      labels.positive.resize(static_cast<size_t>(max_pos));
    }
    const int64_t num_neg = std::min<int64_t>(
        config.anchor_batch - static_cast<int64_t>(labels.positive.size()),
        std::max<int64_t>(3 * static_cast<int64_t>(labels.positive.size()),
                          16));
    if (static_cast<int64_t>(labels.negative.size()) > num_neg) {
      // Online hard-negative mining: half the negative budget goes to the
      // currently highest-scoring negatives (typically anchors on distractor
      // objects — exactly the ones the top-1 selection must learn to
      // demote), the rest is random for coverage.
      const float* score_row = out.scores.value().data() + bi * a;
      const int64_t num_hard = num_neg / 2;
      std::partial_sort(labels.negative.begin(),
                        labels.negative.begin() + num_hard,
                        labels.negative.end(),
                        [score_row](int64_t x, int64_t y) {
                          return score_row[x] > score_row[y];
                        });
      std::shuffle(labels.negative.begin() + num_hard, labels.negative.end(),
                   rng.engine());
      labels.negative.resize(static_cast<size_t>(num_neg));
    } else {
      std::shuffle(labels.negative.begin(), labels.negative.end(),
                   rng.engine());
    }

    for (int64_t idx : labels.positive) {
      cls_indices.push_back(bi * a + idx);
      cls_labels.push_back(1.0f);
      const vision::BoxDelta d =
          vision::encode_delta(anchors[static_cast<size_t>(idx)], target);
      const int64_t base = (bi * a + idx) * 4;
      reg_indices.insert(reg_indices.end(),
                         {base, base + 1, base + 2, base + 3});
      reg_targets.insert(reg_targets.end(), {d.dx, d.dy, d.dw, d.dh});
    }
    for (int64_t idx : labels.negative) {
      cls_indices.push_back(bi * a + idx);
      cls_labels.push_back(0.0f);
    }
  }

  DetectionLoss loss;
  ag::Variable sampled_scores = ag::gather_flat(out.scores, cls_indices);
  loss.cls = ag::bce_with_logits(
      sampled_scores,
      Tensor({static_cast<int64_t>(cls_labels.size())}, cls_labels));

  if (reg_indices.empty()) {
    loss.reg = ag::Variable::constant(Tensor::scalar(0.0f));
  } else {
    ag::Variable sampled_deltas = ag::gather_flat(out.deltas, reg_indices);
    // Normalise by the sampled batch size as in eq. (8)'s 1/N.
    const float inv_n = 1.0f / static_cast<float>(std::max<size_t>(
                                   cls_indices.size(), 1));
    loss.reg = ag::mul_scalar(
        ag::smooth_l1(sampled_deltas,
                      Tensor({static_cast<int64_t>(reg_targets.size())},
                             reg_targets)),
        inv_n);
  }
  return loss;
}

std::vector<vision::Box> decode_top1(const DetectionHead::Output& out,
                                     const std::vector<vision::Box>& anchors,
                                     const YolloConfig& config) {
  const int64_t b = out.scores.size(0);
  const int64_t a = out.scores.size(1);
  std::vector<vision::Box> boxes;
  boxes.reserve(static_cast<size_t>(b));
  const float* scores = out.scores.value().data();
  const float* deltas = out.deltas.value().data();
  for (int64_t bi = 0; bi < b; ++bi) {
    const float* row = scores + bi * a;
    int64_t best = 0;
    for (int64_t i = 1; i < a; ++i) {
      if (row[i] > row[best]) best = i;
    }
    const float* d = deltas + (bi * a + best) * 4;
    const vision::Box decoded = vision::decode_delta(
        anchors[static_cast<size_t>(best)],
        vision::BoxDelta{d[0], d[1], d[2], d[3]});
    boxes.push_back(vision::clip_box(decoded,
                                     static_cast<float>(config.img_w),
                                     static_cast<float>(config.img_h)));
  }
  return boxes;
}

}  // namespace yollo::core
