// End-to-end training and evaluation harness for YOLLO.
//
// Mirrors the paper's §4.2 recipe: Adam, end-to-end fine-tuning of the
// backbone and the word embeddings together with everything else, word
// vectors initialised from Word2Vec. Learning rate and step counts are
// scaled to this machine (the paper trains 30 epochs on 8 GPUs).
#pragma once

#include <vector>

#include "core/yollo.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace yollo::core {

struct TrainConfig {
  int64_t epochs = 8;
  int64_t batch_size = 8;
  float lr = 3e-3f;
  float grad_clip = 10.0f;
  int64_t max_steps = -1;  // cap total optimiser steps (quick runs); -1 = off
  int64_t log_every = 5;   // curve sampling period in steps
  uint64_t seed = 99;
  bool verbose = false;

  // --- fault tolerance (see runtime/checkpoint.h) ---------------------------
  // Directory for atomic full-state checkpoints; empty disables
  // checkpointing entirely.
  std::string checkpoint_dir;
  // Write a checkpoint every N steps (0 = never, even when a dir is set —
  // the dir is then only used for divergence rollbacks, if one was written
  // by an earlier run).
  int64_t checkpoint_every = 0;
  // Resume from the newest intact checkpoint in checkpoint_dir (falls back
  // to `previous` when `latest` is corrupt; starts fresh when neither
  // loads). Resumption is bit-exact: model, Adam moments, RNG stream, and
  // step/epoch counters all restore.
  bool resume = false;
  // Divergence guard: a step whose loss is non-finite or whose pre-clip
  // gradient norm is non-finite or above `explode_norm` is skipped (no
  // optimiser update). After `divergence_patience` consecutive bad steps
  // the run rolls back to the last checkpoint instead of continuing from a
  // possibly-poisoned state.
  float explode_norm = 1e6f;
  int64_t divergence_patience = 3;
};

// One point of the Figure-4 training curve.
struct CurvePoint {
  int64_t step = 0;
  float total = 0.0f;
  float att = 0.0f;
  float cls = 0.0f;
  float reg = 0.0f;
};

struct TrainResult {
  std::vector<CurvePoint> curve;
  double seconds = 0.0;
  int64_t steps = 0;
  // --- training stability (reported by benches alongside speed) -------------
  float final_loss = 0.0f;    // total loss of the last applied step
  int64_t skipped_steps = 0;  // steps rejected by the divergence guard
  int64_t rollbacks = 0;      // checkpoint rollbacks the guard triggered
  bool resumed = false;       // run continued from a checkpoint
  int64_t start_step = 0;     // first step of this run (> 0 when resumed)
};

// Train the model on a sample list (typically dataset.train()).
TrainResult train_yollo(YolloModel& model,
                        const std::vector<data::GroundingSample>& samples,
                        const TrainConfig& config);

// Run inference over a split and pair each prediction with its ground truth.
// Queries are padded/truncated to the model's own max_query_len, which makes
// cross-dataset evaluation (Table 2's generalisation rows) well-defined.
std::vector<eval::Prediction> evaluate_yollo(
    YolloModel& model, const std::vector<data::GroundingSample>& samples,
    int64_t batch_size = 16);

// Rebuild BatchNorm running statistics by streaming `batches` training-mode
// forward passes (no optimiser). Needed after loading a legacy checkpoint
// that predates buffer serialisation; harmless otherwise.
void recalibrate_batchnorm(YolloModel& model,
                           const std::vector<data::GroundingSample>& samples,
                           int64_t batches = 16, int64_t batch_size = 16);

// Convenience used by several benches: build a model for a dataset (vocab +
// max query length), optionally with Word2Vec-initialised embeddings.
struct BuildOptions {
  YolloConfig config;
  bool pretrain_embeddings = true;
  int64_t corpus_scenes = 150;  // Word2Vec corpus size
};
std::unique_ptr<YolloModel> build_yollo(const data::GroundingDataset& dataset,
                                        const data::Vocab& vocab,
                                        BuildOptions options);

}  // namespace yollo::core
