// yollo::plan — static forward-plan compiler with arena memory planning
// (DESIGN.md §14).
//
// A Plan is the grad-free forward of one (model, batch-size) pair recorded
// once and frozen: a flat, topologically ordered op list with pre-resolved
// shapes, pre-bound parameter storage, pre-resolved kernel geometry (GEMM
// dispatch, fused linear epilogues, collapsed broadcast loops) and every
// intermediate assigned a fixed offset into a single arena allocation by
// liveness analysis. Steady-state planned forwards therefore perform zero
// heap allocations and zero shape/dispatch work: the executor is one loop
// over raw-pointer kernel calls.
//
// Correctness contract: planned execution is bitwise identical to the
// dynamic eager path at the same inputs and thread count. This is enforced
// structurally — the executor calls the same raw kernels
// (yollo::kernels::*, yollo::gemm/batched_gemm, conv2d_forward_into) the
// eager wrappers call, and elementwise chains are fused per element in the
// recorded op order, which cannot change any individual float computation.
//
// Recording is fail-closed: any op the recorder has no structural record of
// (see autograd/trace.h) marks the trace unplannable and the caller keeps
// the dynamic path. Arena construction charges the active PoolScope budget
// exactly once (tensor/arena.h); a refused charge surfaces as
// PoolBudgetExceeded, which callers convert into dynamic-path degradation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/arena.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"

#include "autograd/trace.h"

namespace yollo::plan {

// --- global switch -----------------------------------------------------------
// Planned execution is on by default; YOLLO_PLAN=0 in the environment is the
// escape hatch. set_enabled overrides both (tests flip it to compare paths).
bool enabled();
void set_enabled(bool enabled);

// --- plan IR -----------------------------------------------------------------

// One buffer the plan knows about. External slots (bound parameters and
// recorded constants) keep a Tensor handle: the pointer is resolved once and
// the handle keeps the storage alive; in-place parameter loads and running-
// stat updates flow through automatically. Arena slots get a fixed offset.
struct Slot {
  Shape shape;          // shape at definition
  int64_t numel = 0;
  bool external = false;
  Tensor bound;         // keepalive + pointer for external slots
  int64_t offset = -1;  // arena offset (floats) for non-external slots
  int32_t def = -1;     // producing op index; -1 = live from the prologue
  int32_t last_use = -1;
  bool is_input = false;   // refilled by the prologue each execution
  bool is_output = false;  // live until the caller consumed it
};

// One fused-elementwise stage: acc is the op's output buffer, updated in
// recorded op order. Operand-consuming codes read args[operand].
struct EltStage {
  enum Code : uint8_t {
    kLoad,       // acc = x
    kAdd,        // acc += x
    kSub,        // acc -= x
    kRSub,       // acc = x - acc
    kMul,        // acc *= x
    kDiv,        // acc /= x
    kRDiv,       // acc = x / acc
    kAddScalar,  // acc += s
    kMulScalar,  // acc *= s
    kPowScalar,  // acc = pow(acc, s)
    kRelu,       // acc = acc > 0 ? acc : 0
    kSigmoid,    // acc = 1 / (1 + exp(-acc))
  };
  Code code = kLoad;
  int32_t operand = -1;
  float scalar = 0.0f;
};

enum class OpKind : uint8_t {
  kEltwise,
  kPermute,
  kCopyRows,  // narrow
  kConcat,
  kGather,    // embedding lookup; ids = the runtime token stream
  kGemm,      // single GEMM (2-D, collapsed 3-D×2-D, or fused linear)
  kBatchedGemm,
  kSumAxis,
  kSoftmax,
  kConv2d,
};

struct ConcatPart {
  int32_t arg = 0;      // index into Op::args
  int64_t dst_off = 0;  // element offset of this part's first row
  int64_t run = 0;      // elements copied per row (part extent · inner)
};

// Flat op record. One struct covers every kind; only the fields of the
// op's kind are meaningful. Geometry is frozen at compile time; in_ptr /
// out_ptr are resolved against the arena and external bindings so the
// executor never touches a Slot.
struct Op {
  OpKind kind = OpKind::kEltwise;
  std::vector<int32_t> args;     // input slot ids
  std::vector<Shape> arg_shapes; // operand view shapes at the use site
  int32_t out = -1;
  Shape out_shape;

  std::vector<const float*> in_ptr;  // resolved, parallel to args
  float* out_ptr = nullptr;

  // kEltwise
  std::vector<EltStage> stages;
  int64_t elt_run = 1;                  // collapsed contiguous suffix length
  int64_t elt_prefix = 1;               // product of remaining prefix dims
  std::vector<int64_t> elt_prefix_dims;
  std::vector<int64_t> elt_prefix_strides;  // per-arg × per-prefix-dim
  std::vector<uint8_t> elt_arg_bcast;       // per-arg: broadcast over the run

  // kPermute
  std::vector<int64_t> perm_out_shape;
  std::vector<int64_t> perm_strides;
  int64_t numel = 0;

  // kCopyRows (narrow)
  int64_t cp_src_off = 0, cp_src_stride = 0, cp_rows = 0, cp_run = 0;

  // kConcat: per-part contiguous-source rows into a strided destination
  std::vector<ConcatPart> parts;
  int64_t cat_rows = 0;        // outer
  int64_t cat_dst_stride = 0;  // total extent · inner

  // kGather
  int64_t g_extent = 0, g_inner = 0, g_count = 0;

  // kGemm / kBatchedGemm (bias/relu only for the fused linear form)
  bool trans_a = false, trans_b = false, relu = false;
  int64_t m = 0, n = 0, k = 0;
  int64_t batch = 1, a_stride = 0, b_stride = 0, c_stride = 0;
  int32_t bias_arg = -1;

  // kSumAxis / kSoftmax
  int64_t outer = 0, extent = 0, inner = 0;

  // kConv2d
  Conv2dSpec conv;
  int64_t cn = 0, ch = 0, cw = 0;
  int32_t cols_arg = -1;  // index into args of the im2col workspace slot
};

// --- the compiled plan -------------------------------------------------------

class Plan {
 public:
  // Movable-from ExecGuard returned by try_execute: truthy when the plan ran,
  // and holds the execution lock so the caller can read the output pointers
  // before another thread's execution overwrites the arena.
  class ExecGuard {
   public:
    ExecGuard() = default;
    ExecGuard(ExecGuard&& o) noexcept
        : plan_(o.plan_), lock_(std::move(o.lock_)) {
      o.plan_ = nullptr;
    }
    ExecGuard& operator=(ExecGuard&& o) noexcept {
      plan_ = o.plan_;
      lock_ = std::move(o.lock_);
      o.plan_ = nullptr;
      return *this;
    }
    explicit operator bool() const { return plan_ != nullptr; }
    const float* scores() const;
    const float* deltas() const;
    const Shape& scores_shape() const;
    const Shape& deltas_shape() const;
    // Backbone features captured as a third plan output (when the plan was
    // compiled with one): the serve feature cache clones them out of the
    // arena while the guard is held. null/empty when the plan carries none.
    bool has_features() const;
    const float* features() const;
    const Shape& features_shape() const;

   private:
    friend class Plan;
    ExecGuard(Plan* plan, std::unique_lock<std::mutex> lock)
        : plan_(plan), lock_(std::move(lock)) {}
    Plan* plan_ = nullptr;
    std::unique_lock<std::mutex> lock_;
  };

  // Runs the planned forward for `images`/`tokens` (which must match the
  // recorded batch geometry). Returns an empty guard without blocking when
  // another thread is executing this plan (the caller falls back to the
  // dynamic path). Throws ExecCancelled at op boundaries when the caller's
  // ExecContext is cancelled. Allocation-free after warmup.
  ExecGuard try_execute(const Tensor& images,
                        const std::vector<int64_t>& tokens);

  int64_t batch() const { return batch_; }
  int64_t arena_bytes() const { return arena_ ? arena_->bytes() : 0; }
  int64_t num_ops() const { return static_cast<int64_t>(ops_.size()); }

  // Layout introspection for tests: every non-external slot as
  // (offset, numel, def, last_use). Liveness-overlapping entries must be
  // spatially disjoint.
  struct SlotExtent {
    int64_t offset, numel;
    int32_t def, last_use;
  };
  std::vector<SlotExtent> arena_layout() const;

 private:
  friend class Recorder;
  Plan() = default;
  void execute_locked(const Tensor& images, const std::vector<int64_t>& tokens);
  void run_eltwise(const Op& op) const;

  std::vector<Op> ops_;
  std::vector<Slot> slots_;
  std::unique_ptr<Arena> arena_;
  std::mutex exec_mu_;

  int64_t batch_ = 0, img_h_ = 0, img_w_ = 0;
  int64_t mask_m_ = 0, mask_n_ = 0;  // pair-mask geometry
  int64_t tokens_count_ = 0;         // expected tokens.size() per execution
  float* coords_ptr_ = nullptr;      // CoordConv input slot (may be null)
  float* mask_ptr_ = nullptr;        // pair-mask input slot (may be null)
  int32_t scores_slot_ = -1, deltas_slot_ = -1;
  int32_t feat_slot_ = -1;  // optional third output (backbone features)
  Shape scores_shape_, deltas_shape_;  // output view shapes (post-reshape)
  Shape feat_shape_;
};

// --- the recorder ------------------------------------------------------------

// Observes one grad-free eager forward through the autograd trace hooks and
// compiles the op stream into a Plan. Keeps every recorded tensor alive for
// its own lifetime so storage pointers cannot be recycled (and therefore
// cannot collide) while recording.
class Recorder final : public ag::trace::Sink {
 public:
  Recorder();
  ~Recorder() override;

  // The runtime token stream of the recorded call; a gather whose indices
  // match it byte-for-byte replays from the caller's tokens, any other
  // gather is unplannable.
  void set_tokens(const std::vector<int64_t>& tokens);

  // Compiles the recorded trace. `scores`/`deltas` are the forward's output
  // tensors (their storage must be recorded op results). `features`, when
  // non-null, pins a third output (the backbone feature map) so executions
  // can serve the feature cache straight from the arena; it must also be a
  // recorded op result. Returns nullptr with `*why` filled when the trace
  // was unplannable; throws PoolBudgetExceeded when the arena charge is
  // refused.
  std::shared_ptr<Plan> compile(const Tensor& scores, const Tensor& deltas,
                                std::string* why,
                                const Tensor* features = nullptr);

  bool unplannable() const { return unplannable_; }
  const std::string& reason() const { return reason_; }

  // ag::trace::Sink
  void on_binary(const char* op, const Tensor& a, const Tensor& b,
                 const Tensor& out) override;
  void on_unary(const char* op, const Tensor& a, const Tensor& out) override;
  void on_unary_scalar(const char* op, const Tensor& a, float s,
                       const Tensor& out) override;
  void on_permute(const Tensor& a, const std::vector<int64_t>& order,
                  const Tensor& out) override;
  void on_narrow(const Tensor& a, int64_t axis, int64_t start, int64_t length,
                 const Tensor& out) override;
  void on_concat(const std::vector<Tensor>& parts, int64_t axis,
                 const Tensor& out) override;
  void on_gather_rows(const Tensor& table, const std::vector<int64_t>& ids,
                      const Tensor& out) override;
  void on_matmul(const Tensor& a, bool trans_a, const Tensor& b, bool trans_b,
                 const Tensor& out) override;
  void on_linear(const Tensor& x, const Tensor& w, const Tensor& bias,
                 bool relu, const Tensor& out) override;
  void on_sum_axis(const Tensor& a, int64_t axis, bool keepdim,
                   const Tensor& out) override;
  void on_softmax(const Tensor& a, int64_t axis, const Tensor& out) override;
  void on_conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
                 const Conv2dSpec& spec, const Tensor& out) override;
  void on_input(const char* name, const Tensor& t) override;
  void on_result(const char* op_name, const Tensor& out) override;

 private:
  int32_t slot_of(const Tensor& t);         // intern operand (new → external)
  int32_t def_slot(const Tensor& out);      // intern a fresh op output
  Op& push(OpKind kind, const Tensor& out);
  void add_arg(Op& op, const Tensor& t);
  void set_unplannable(std::string reason);

  struct RecSlot {
    Tensor held;  // keepalive; pointer identity for the whole recording
    Shape shape;
    bool external = false;
    bool is_input = false;
    const char* input_name = nullptr;
  };

  std::vector<RecSlot> slots_;
  std::vector<Op> ops_;
  std::unordered_map<const float*, int32_t> by_ptr_;
  std::vector<int64_t> tokens_;
  bool have_tokens_ = false;
  bool unplannable_ = false;
  std::string reason_;
};

}  // namespace yollo::plan
