// Recorder: ag::trace::Sink that turns one observed grad-free forward into
// plan IR. Record-time work mirrors each eager wrapper's dispatch exactly
// (GEMM case selection, axis splits, narrow/concat row geometry) so the
// executor replays the identical raw kernel calls.
#include <cstring>
#include <string>
#include <utility>

#include "plan/plan.h"
#include "tensor/shape.h"

namespace yollo::plan {

namespace {

int64_t prod(const Shape& s, size_t lo, size_t hi) {
  int64_t p = 1;
  for (size_t d = lo; d < hi; ++d) p *= s[d];
  return p;
}

}  // namespace

Recorder::Recorder() = default;
Recorder::~Recorder() = default;

void Recorder::set_tokens(const std::vector<int64_t>& tokens) {
  tokens_ = tokens;
  have_tokens_ = true;
}

void Recorder::set_unplannable(std::string reason) {
  if (unplannable_) return;
  unplannable_ = true;
  reason_ = std::move(reason);
}

int32_t Recorder::slot_of(const Tensor& t) {
  auto it = by_ptr_.find(t.data());
  if (it != by_ptr_.end()) return it->second;
  // Never seen this storage produced: a parameter or recorded constant.
  // The held handle keeps the storage alive (pointer identity is stable
  // for the recorder's whole lifetime) and becomes the plan's binding.
  const int32_t id = static_cast<int32_t>(slots_.size());
  slots_.push_back(RecSlot{t, t.shape(), /*external=*/true, false, nullptr});
  by_ptr_.emplace(t.data(), id);
  return id;
}

int32_t Recorder::def_slot(const Tensor& out) {
  auto it = by_ptr_.find(out.data());
  if (it != by_ptr_.end()) {
    // An op "produced" storage we already track: in-place mutation of a
    // recorded buffer. No eval-path op does this; refuse rather than risk
    // a stale-value replay.
    set_unplannable("op redefines recorded storage");
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(slots_.size());
  slots_.push_back(RecSlot{out, out.shape(), /*external=*/false, false,
                           nullptr});
  by_ptr_.emplace(out.data(), id);
  return id;
}

Op& Recorder::push(OpKind kind, const Tensor& out) {
  ops_.emplace_back();
  Op& op = ops_.back();
  op.kind = kind;
  op.out = def_slot(out);
  op.out_shape = out.shape();
  return op;
}

void Recorder::add_arg(Op& op, const Tensor& t) {
  op.args.push_back(slot_of(t));
  op.arg_shapes.push_back(t.shape());
}

// --- elementwise -------------------------------------------------------------

void Recorder::on_binary(const char* opname, const Tensor& a, const Tensor& b,
                         const Tensor& out) {
  if (unplannable_) return;
  EltStage::Code code;
  if (std::strcmp(opname, "add") == 0) {
    code = EltStage::kAdd;
  } else if (std::strcmp(opname, "sub") == 0) {
    code = EltStage::kSub;
  } else if (std::strcmp(opname, "mul") == 0) {
    code = EltStage::kMul;
  } else if (std::strcmp(opname, "div") == 0) {
    code = EltStage::kDiv;
  } else {
    set_unplannable(std::string("unknown binary op ") + opname);
    return;
  }
  Op& op = push(OpKind::kEltwise, out);
  add_arg(op, a);
  add_arg(op, b);
  op.stages.push_back(EltStage{EltStage::kLoad, 0, 0.0f});
  op.stages.push_back(EltStage{code, 1, 0.0f});
}

void Recorder::on_unary(const char* opname, const Tensor& a,
                        const Tensor& out) {
  if (unplannable_) return;
  EltStage::Code code;
  if (std::strcmp(opname, "relu") == 0) {
    code = EltStage::kRelu;
  } else if (std::strcmp(opname, "sigmoid") == 0) {
    code = EltStage::kSigmoid;
  } else {
    set_unplannable(std::string("unknown unary op ") + opname);
    return;
  }
  Op& op = push(OpKind::kEltwise, out);
  add_arg(op, a);
  op.stages.push_back(EltStage{EltStage::kLoad, 0, 0.0f});
  op.stages.push_back(EltStage{code, -1, 0.0f});
}

void Recorder::on_unary_scalar(const char* opname, const Tensor& a, float s,
                               const Tensor& out) {
  if (unplannable_) return;
  EltStage::Code code;
  if (std::strcmp(opname, "add_scalar") == 0) {
    code = EltStage::kAddScalar;
  } else if (std::strcmp(opname, "mul_scalar") == 0) {
    code = EltStage::kMulScalar;
  } else if (std::strcmp(opname, "pow_scalar") == 0) {
    code = EltStage::kPowScalar;
  } else {
    set_unplannable(std::string("unknown scalar op ") + opname);
    return;
  }
  Op& op = push(OpKind::kEltwise, out);
  add_arg(op, a);
  op.stages.push_back(EltStage{EltStage::kLoad, 0, 0.0f});
  op.stages.push_back(EltStage{code, -1, s});
}

// --- data movement -----------------------------------------------------------

void Recorder::on_permute(const Tensor& a, const std::vector<int64_t>& order,
                          const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kPermute, out);
  add_arg(op, a);
  // Source strides permuted into output order — exactly what
  // Tensor::permute hands permute_into.
  const Strides src = contiguous_strides(a.shape());
  op.perm_out_shape = out.shape();
  op.perm_strides.resize(order.size());
  for (size_t d = 0; d < order.size(); ++d) {
    op.perm_strides[d] = src[static_cast<size_t>(order[d])];
  }
  op.numel = out.numel();
}

void Recorder::on_narrow(const Tensor& a, int64_t axis, int64_t start,
                         int64_t length, const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kCopyRows, out);
  add_arg(op, a);
  const Shape& s = a.shape();
  const size_t ax = static_cast<size_t>(axis);
  const int64_t inner = prod(s, ax + 1, s.size());
  op.cp_rows = prod(s, 0, ax);
  op.cp_src_off = start * inner;
  op.cp_src_stride = s[ax] * inner;
  op.cp_run = length * inner;
}

void Recorder::on_concat(const std::vector<Tensor>& parts, int64_t axis,
                         const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kConcat, out);
  const Shape& os = out.shape();
  const size_t ax = static_cast<size_t>(axis);
  const int64_t inner = prod(os, ax + 1, os.size());
  op.cat_rows = prod(os, 0, ax);
  op.cat_dst_stride = os[ax] * inner;
  int64_t offset = 0;
  for (const Tensor& part : parts) {
    ConcatPart p;
    p.arg = static_cast<int32_t>(op.args.size());
    add_arg(op, part);
    p.dst_off = offset * inner;
    p.run = part.shape()[ax] * inner;
    offset += part.shape()[ax];
    op.parts.push_back(p);
  }
}

void Recorder::on_gather_rows(const Tensor& table,
                              const std::vector<int64_t>& ids,
                              const Tensor& out) {
  if (unplannable_) return;
  // Only the token-stream gather (the embedding lookup) replays: its ids
  // are re-supplied by the caller at execution time. Any other gather has
  // indices baked into the recorded call and cannot be trusted to repeat.
  if (!have_tokens_ || ids != tokens_) {
    set_unplannable("gather over non-token indices");
    return;
  }
  Op& op = push(OpKind::kGather, out);
  add_arg(op, table);
  op.g_extent = table.shape()[0];
  op.g_inner = table.numel() / op.g_extent;
  op.g_count = static_cast<int64_t>(ids.size());
}

// --- GEMM family -------------------------------------------------------------

void Recorder::on_matmul(const Tensor& a, bool trans_a, const Tensor& b,
                         bool trans_b, const Tensor& out) {
  if (unplannable_) return;
  // Mirror batched_matmul's dispatch so the executor issues the identical
  // gemm/batched_gemm call the eager path issued.
  if (a.ndim() == 2 && b.ndim() == 2) {
    Op& op = push(OpKind::kGemm, out);
    add_arg(op, a);
    add_arg(op, b);
    op.trans_a = trans_a;
    op.trans_b = trans_b;
    op.m = trans_a ? a.size(1) : a.size(0);
    op.k = trans_a ? a.size(0) : a.size(1);
    op.n = trans_b ? b.size(0) : b.size(1);
    return;
  }
  if (a.ndim() == 3 && b.ndim() == 2 && !trans_a) {
    // Collapsed to one GEMM over [batch·m, k]; the contiguous output is the
    // 3-D result.
    Op& op = push(OpKind::kGemm, out);
    add_arg(op, a);
    add_arg(op, b);
    op.trans_a = false;
    op.trans_b = trans_b;
    op.m = a.size(0) * a.size(1);
    op.k = a.size(2);
    op.n = trans_b ? b.size(0) : b.size(1);
    return;
  }
  if (a.ndim() == 3 && (b.ndim() == 3 || b.ndim() == 2)) {
    const bool b_shared = b.ndim() == 2;
    const int64_t ar = a.size(1), ac = a.size(2);
    const int64_t br = b_shared ? b.size(0) : b.size(1);
    const int64_t bc = b_shared ? b.size(1) : b.size(2);
    Op& op = push(OpKind::kBatchedGemm, out);
    add_arg(op, a);
    add_arg(op, b);
    op.trans_a = trans_a;
    op.trans_b = trans_b;
    op.batch = a.size(0);
    op.m = trans_a ? ac : ar;
    op.k = trans_a ? ar : ac;
    op.n = trans_b ? br : bc;
    op.a_stride = ar * ac;
    op.b_stride = b_shared ? 0 : br * bc;
    op.c_stride = op.m * op.n;
    return;
  }
  set_unplannable("matmul with unsupported ranks");
}

void Recorder::on_linear(const Tensor& x, const Tensor& w, const Tensor& bias,
                         bool relu, const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kGemm, out);
  add_arg(op, x);
  add_arg(op, w);
  op.trans_a = false;
  op.trans_b = false;
  op.m = x.size(0);
  op.k = x.size(1);
  op.n = w.size(1);
  op.relu = relu;
  if (bias.defined()) {
    op.bias_arg = static_cast<int32_t>(op.args.size());
    add_arg(op, bias);
  }
}

// --- axis reductions ---------------------------------------------------------

void Recorder::on_sum_axis(const Tensor& a, int64_t axis, bool /*keepdim*/,
                           const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kSumAxis, out);
  add_arg(op, a);
  const Shape& s = a.shape();
  const size_t ax = static_cast<size_t>(axis);
  op.outer = prod(s, 0, ax);
  op.extent = s[ax];
  op.inner = prod(s, ax + 1, s.size());
}

void Recorder::on_softmax(const Tensor& a, int64_t axis, const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kSoftmax, out);
  add_arg(op, a);
  const Shape& s = a.shape();
  const size_t ax = static_cast<size_t>(axis);
  op.outer = prod(s, 0, ax);
  op.extent = s[ax];
  op.inner = prod(s, ax + 1, s.size());
}

// --- convolution -------------------------------------------------------------

void Recorder::on_conv2d(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, const Conv2dSpec& spec,
                         const Tensor& out) {
  if (unplannable_) return;
  Op& op = push(OpKind::kConv2d, out);
  add_arg(op, input);
  add_arg(op, weight);  // viewed as [Cout, Cin·kh·kw]; storage is the same
  if (bias.defined()) {
    op.bias_arg = static_cast<int32_t>(op.args.size());
    add_arg(op, bias);
  }
  op.conv = spec;
  op.cn = input.size(0);
  op.ch = input.size(2);
  op.cw = input.size(3);
  // Dedicated im2col workspace slot: no backing tensor, no pointer — it is
  // live only inside this op (compile() infers its interval from use sites).
  const int64_t oh = spec.out_height(op.ch);
  const int64_t ow = spec.out_width(op.cw);
  const int64_t patch = spec.in_channels * spec.kernel_h * spec.kernel_w;
  const int32_t ws = static_cast<int32_t>(slots_.size());
  slots_.push_back(RecSlot{Tensor(), {op.cn, patch, oh * ow},
                           /*external=*/false, false, nullptr});
  op.cols_arg = static_cast<int32_t>(op.args.size());
  op.args.push_back(ws);
  op.arg_shapes.push_back(slots_.back().shape);
}

// --- inputs and the safety net ----------------------------------------------

void Recorder::on_input(const char* name, const Tensor& t) {
  if (unplannable_) return;
  auto it = by_ptr_.find(t.data());
  int32_t id;
  if (it != by_ptr_.end()) {
    id = it->second;
    if (slots_[static_cast<size_t>(id)].external) {
      // Registered earlier as an operand constant; promote to input.
      slots_[static_cast<size_t>(id)].external = false;
    }
  } else {
    id = static_cast<int32_t>(slots_.size());
    slots_.push_back(RecSlot{t, t.shape(), /*external=*/false, false,
                             nullptr});
    by_ptr_.emplace(t.data(), id);
  }
  slots_[static_cast<size_t>(id)].is_input = true;
  slots_[static_cast<size_t>(id)].input_name = name;
}

void Recorder::on_result(const char* op_name, const Tensor& out) {
  if (unplannable_) return;
  if (by_ptr_.find(out.data()) != by_ptr_.end()) return;  // hooked, or alias
  if (std::strcmp(op_name, "reshape") == 0) {
    // A reshape of storage we have not seen — an alias of an unrecorded
    // leaf (e.g. a parameter viewed under a broadcast-friendly shape).
    // Register it as an external binding.
    const int32_t id = static_cast<int32_t>(slots_.size());
    slots_.push_back(RecSlot{out, out.shape(), /*external=*/true, false,
                             nullptr});
    by_ptr_.emplace(out.data(), id);
    return;
  }
  // An op produced storage no hook reported: the trace has a hole, so a
  // replay would silently skip computation. Fail closed.
  set_unplannable(std::string("unhooked op '") + op_name + "'");
}

}  // namespace yollo::plan
