// Plan compilation (fusion, liveness, arena assignment, pointer resolution)
// and the zero-allocation executor.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/plan.h"
#include "tensor/conv.h"
#include "tensor/exec.h"
#include "tensor/gemm.h"
#include "tensor/kernels.h"
#include "tensor/parallel.h"
#include "tensor/shape.h"

namespace yollo::plan {

namespace {

std::atomic<int> g_enabled{-1};  // -1 = read YOLLO_PLAN on first query

constexpr int kMaxEltStages = 16;
constexpr int kMaxEltArgs = 16;
constexpr int64_t kAlignFloats = 16;  // 64-byte lines
constexpr int64_t kEltGrain = 32768;  // the eager elementwise grain

int64_t align_up(int64_t v) {
  return (v + kAlignFloats - 1) & ~(kAlignFloats - 1);
}

int64_t prod(const Shape& s, size_t lo, size_t hi) {
  int64_t p = 1;
  for (size_t d = lo; d < hi; ++d) p *= s[d];
  return p;
}

// Apply an op's stage program to output elements [lo, hi) of one prefix
// block. `base` is the block's first output element; `offs` are per-arg
// element offsets for this block (null means all zero). Per element the
// stages run in recorded op order, so every float operation matches the
// eager path's op-at-a-time execution exactly.
void apply_stages(const Op& op, const int64_t* offs, float* base, int64_t lo,
                  int64_t hi) {
  for (const EltStage& st : op.stages) {
    float* acc = base;
    switch (st.code) {
      case EltStage::kLoad:
      case EltStage::kAdd:
      case EltStage::kSub:
      case EltStage::kRSub:
      case EltStage::kMul:
      case EltStage::kDiv:
      case EltStage::kRDiv: {
        const size_t a = static_cast<size_t>(st.operand);
        const float* x = op.in_ptr[a] + (offs != nullptr ? offs[a] : 0);
        const bool bc = op.elt_arg_bcast[a] != 0;
        switch (st.code) {
          case EltStage::kLoad:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] = v;
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] = x[i];
            }
            break;
          case EltStage::kAdd:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] += v;
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] += x[i];
            }
            break;
          case EltStage::kSub:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] -= v;
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] -= x[i];
            }
            break;
          case EltStage::kRSub:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] = v - acc[i];
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] = x[i] - acc[i];
            }
            break;
          case EltStage::kMul:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] *= v;
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] *= x[i];
            }
            break;
          case EltStage::kDiv:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] /= v;
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] /= x[i];
            }
            break;
          case EltStage::kRDiv:
            if (bc) {
              const float v = x[0];
              for (int64_t i = lo; i < hi; ++i) acc[i] = v / acc[i];
            } else {
              for (int64_t i = lo; i < hi; ++i) acc[i] = x[i] / acc[i];
            }
            break;
          default:
            break;
        }
        break;
      }
      case EltStage::kAddScalar:
        for (int64_t i = lo; i < hi; ++i) acc[i] += st.scalar;
        break;
      case EltStage::kMulScalar:
        for (int64_t i = lo; i < hi; ++i) acc[i] *= st.scalar;
        break;
      case EltStage::kPowScalar:
        for (int64_t i = lo; i < hi; ++i) acc[i] = std::pow(acc[i], st.scalar);
        break;
      case EltStage::kRelu:
        for (int64_t i = lo; i < hi; ++i) acc[i] = acc[i] > 0.0f ? acc[i] : 0.0f;
        break;
      case EltStage::kSigmoid:
        for (int64_t i = lo; i < hi; ++i) {
          acc[i] = 1.0f / (1.0f + std::exp(-acc[i]));
        }
        break;
    }
  }
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("YOLLO_PLAN");
    v = (e != nullptr && e[0] == '0' && e[1] == '\0') ? 0 : 1;
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- executor ----------------------------------------------------------------

void Plan::run_eltwise(const Op& op) const {
  if (op.elt_prefix == 1) {
    // Fully collapsed: one contiguous run, chunked like the eager
    // elementwise kernels (chunking cannot change per-element results).
    parallel_for(0, op.elt_run, kEltGrain, [&](int64_t lo, int64_t hi) {
      apply_stages(op, nullptr, op.out_ptr, lo, hi);
    });
    return;
  }
  const size_t nd = op.elt_prefix_dims.size();
  const size_t nargs = op.args.size();
  parallel_for(0, op.elt_prefix, 1, [&](int64_t plo, int64_t phi) {
    int64_t offs[kMaxEltArgs];
    for (int64_t p = plo; p < phi; ++p) {
      // Decode the prefix index into per-arg base offsets (row-major).
      for (size_t a = 0; a < nargs; ++a) offs[a] = 0;
      int64_t rem = p;
      for (size_t d = nd; d-- > 0;) {
        const int64_t c = rem % op.elt_prefix_dims[d];
        rem /= op.elt_prefix_dims[d];
        for (size_t a = 0; a < nargs; ++a) {
          offs[a] += c * op.elt_prefix_strides[a * nd + d];
        }
      }
      apply_stages(op, offs, op.out_ptr + p * op.elt_run, 0, op.elt_run);
    }
  });
}

void Plan::execute_locked(const Tensor& images,
                          const std::vector<int64_t>& tokens) {
  OBS_SPAN("plan.execute");
  ExecContext* ctx = ExecContext::current();
  // Prologue: refill the input slots. Identical fills to the dynamic
  // forward (the model calls the same kernels).
  if (coords_ptr_ != nullptr) {
    kernels::fill_coord_channels(images.data(), coords_ptr_, batch_, img_h_,
                                 img_w_);
  }
  if (mask_ptr_ != nullptr) {
    kernels::fill_pair_mask(tokens.data(), batch_, mask_m_, mask_n_,
                            mask_ptr_);
  }
  for (const Op& op : ops_) {
    if (ctx != nullptr) ctx->throw_if_cancelled();
    switch (op.kind) {
      case OpKind::kEltwise:
        run_eltwise(op);
        break;
      case OpKind::kPermute:
        kernels::permute_into(op.in_ptr[0], op.out_ptr,
                              static_cast<int64_t>(op.perm_out_shape.size()),
                              op.perm_out_shape.data(), op.perm_strides.data(),
                              op.numel);
        break;
      case OpKind::kCopyRows:
        kernels::copy_rows(op.in_ptr[0], op.cp_src_off, op.cp_src_stride,
                           op.out_ptr, 0, op.cp_run, op.cp_rows, op.cp_run);
        break;
      case OpKind::kConcat:
        for (const ConcatPart& p : op.parts) {
          kernels::copy_rows(op.in_ptr[static_cast<size_t>(p.arg)], 0, p.run,
                             op.out_ptr, p.dst_off, op.cat_dst_stride,
                             op.cat_rows, p.run);
        }
        break;
      case OpKind::kGather:
        kernels::gather_rows_into(op.in_ptr[0], op.g_extent, op.g_inner,
                                  tokens.data(), op.g_count, op.out_ptr);
        break;
      case OpKind::kGemm: {
        GemmEpilogue ep;
        ep.bias = op.bias_arg >= 0
                      ? op.in_ptr[static_cast<size_t>(op.bias_arg)]
                      : nullptr;
        ep.relu = op.relu;
        gemm(op.trans_a, op.trans_b, op.m, op.n, op.k, op.in_ptr[0],
             op.in_ptr[1], op.out_ptr, ep);
        break;
      }
      case OpKind::kBatchedGemm:
        batched_gemm(op.trans_a, op.trans_b, op.batch, op.m, op.n, op.k,
                     op.in_ptr[0], op.a_stride, op.in_ptr[1], op.b_stride,
                     op.out_ptr, op.c_stride);
        break;
      case OpKind::kSumAxis:
        kernels::sum_axis_into(op.in_ptr[0], op.out_ptr, op.outer, op.extent,
                               op.inner);
        break;
      case OpKind::kSoftmax:
        kernels::softmax_into(op.in_ptr[0], op.out_ptr, op.outer, op.extent,
                              op.inner);
        break;
      case OpKind::kConv2d:
        // The cols workspace is an arena slot; in_ptr is const-qualified
        // only because most args are read-only.
        conv2d_forward_into(
            op.in_ptr[0], op.cn, op.ch, op.cw, op.in_ptr[1],
            op.bias_arg >= 0 ? op.in_ptr[static_cast<size_t>(op.bias_arg)]
                             : nullptr,
            op.conv,
            const_cast<float*>(op.in_ptr[static_cast<size_t>(op.cols_arg)]),
            op.out_ptr);
        break;
    }
  }
}

Plan::ExecGuard Plan::try_execute(const Tensor& images,
                                  const std::vector<int64_t>& tokens) {
  std::unique_lock<std::mutex> lk(exec_mu_, std::try_to_lock);
  if (!lk.owns_lock()) return {};
  if (images.ndim() != 4 || images.size(0) != batch_ ||
      images.size(2) != img_h_ || images.size(3) != img_w_ ||
      static_cast<int64_t>(tokens.size()) != tokens_count_) {
    return {};
  }
  execute_locked(images, tokens);
  return ExecGuard(this, std::move(lk));
}

const float* Plan::ExecGuard::scores() const {
  return plan_->arena_->base() +
         plan_->slots_[static_cast<size_t>(plan_->scores_slot_)].offset;
}

const float* Plan::ExecGuard::deltas() const {
  return plan_->arena_->base() +
         plan_->slots_[static_cast<size_t>(plan_->deltas_slot_)].offset;
}

const Shape& Plan::ExecGuard::scores_shape() const {
  return plan_->scores_shape_;
}

const Shape& Plan::ExecGuard::deltas_shape() const {
  return plan_->deltas_shape_;
}

bool Plan::ExecGuard::has_features() const {
  return plan_ != nullptr && plan_->feat_slot_ >= 0;
}

const float* Plan::ExecGuard::features() const {
  if (plan_->feat_slot_ < 0) return nullptr;
  return plan_->arena_->base() +
         plan_->slots_[static_cast<size_t>(plan_->feat_slot_)].offset;
}

const Shape& Plan::ExecGuard::features_shape() const {
  return plan_->feat_shape_;
}

std::vector<Plan::SlotExtent> Plan::arena_layout() const {
  std::vector<SlotExtent> out;
  for (const Slot& s : slots_) {
    if (s.external || s.offset < 0) continue;
    out.push_back(SlotExtent{s.offset, s.numel, s.def, s.last_use});
  }
  return out;
}

// --- compilation -------------------------------------------------------------

std::shared_ptr<Plan> Recorder::compile(const Tensor& scores,
                                        const Tensor& deltas,
                                        std::string* why,
                                        const Tensor* features) {
  OBS_SPAN("plan.compile");
  auto fail = [&](const std::string& r) -> std::shared_ptr<Plan> {
    if (why != nullptr) *why = r;
    return nullptr;
  };
  if (unplannable_) return fail(reason_);
  if (ops_.empty()) return fail("empty trace");

  const auto si = by_ptr_.find(scores.data());
  const auto di = by_ptr_.find(deltas.data());
  if (si == by_ptr_.end() || di == by_ptr_.end()) {
    return fail("forward outputs were not recorded");
  }
  const int32_t scores_slot = si->second;
  const int32_t deltas_slot = di->second;
  if (slots_[static_cast<size_t>(scores_slot)].external ||
      slots_[static_cast<size_t>(deltas_slot)].external) {
    return fail("forward outputs are not op results");
  }
  int32_t feat_slot = -1;
  if (features != nullptr) {
    const auto fi = by_ptr_.find(features->data());
    if (fi == by_ptr_.end() ||
        slots_[static_cast<size_t>(fi->second)].external) {
      return fail("feature output was not recorded as an op result");
    }
    feat_slot = fi->second;
  }

  const size_t n_slots = slots_.size();
  std::vector<Op> ops = std::move(ops_);

  // --- elementwise fusion ----------------------------------------------------
  // Splice a producer's stage program into its single consumer when the
  // producer is elementwise, its output feeds nothing else, and every shape
  // involved is exactly equal (no broadcast or view reinterpretation across
  // the boundary — those would change the element mapping). The fused slot
  // is dead afterwards: no arena space, no pass over memory.
  std::vector<int32_t> producer(n_slots, -1);
  for (size_t i = 0; i < ops.size(); ++i) {
    producer[static_cast<size_t>(ops[i].out)] = static_cast<int32_t>(i);
  }
  std::vector<int32_t> uses(n_slots, 0);
  for (const Op& op : ops) {
    for (int32_t a : op.args) ++uses[static_cast<size_t>(a)];
  }
  ++uses[static_cast<size_t>(scores_slot)];
  ++uses[static_cast<size_t>(deltas_slot)];
  if (feat_slot >= 0) ++uses[static_cast<size_t>(feat_slot)];

  std::vector<char> dead(ops.size(), 0);

  auto fusible_into = [&](const Op& e, size_t arg_pos) -> int32_t {
    const int32_t slot = e.args[arg_pos];
    const RecSlot& rs = slots_[static_cast<size_t>(slot)];
    if (rs.is_input || uses[static_cast<size_t>(slot)] != 1) return -1;
    const int32_t p = producer[static_cast<size_t>(slot)];
    if (p < 0 || dead[static_cast<size_t>(p)]) return -1;
    const Op& po = ops[static_cast<size_t>(p)];
    if (po.kind != OpKind::kEltwise) return -1;
    // Exact shape equality at the boundary: producer's definition shape,
    // the consumer's view of it, and the consumer's output.
    if (po.out_shape != rs.shape || e.arg_shapes[arg_pos] != rs.shape ||
        e.out_shape != rs.shape) {
      return -1;
    }
    if (po.stages.size() + e.stages.size() - 1 >
            static_cast<size_t>(kMaxEltStages) ||
        po.args.size() + e.args.size() > static_cast<size_t>(kMaxEltArgs)) {
      return -1;
    }
    return p;
  };

  // Splice producer p in place of consumer stage `replaced` (which must be
  // the accumulator-producing stage): new program = producer stages, then
  // the consumer's remaining stages with `tail_op` applied for the swapped
  // commutative form when requested.
  auto splice = [&](Op& e, int32_t p, size_t arg_pos, bool commute_swap) {
    Op& po = ops[static_cast<size_t>(p)];
    std::vector<int32_t> nargs = po.args;
    std::vector<Shape> nshapes = po.arg_shapes;
    std::vector<EltStage> nst = po.stages;
    auto remap = [&](int32_t old_operand) -> int32_t {
      const int32_t idx = static_cast<int32_t>(nargs.size());
      nargs.push_back(e.args[static_cast<size_t>(old_operand)]);
      nshapes.push_back(e.arg_shapes[static_cast<size_t>(old_operand)]);
      return idx;
    };
    if (!commute_swap) {
      // e.stages[0] is the Load of the fused slot; keep the rest.
      for (size_t k = 1; k < e.stages.size(); ++k) {
        EltStage st = e.stages[k];
        if (st.operand >= 0) st.operand = remap(st.operand);
        nst.push_back(st);
      }
    } else {
      // e = {Load(other), Op(fused)} with Op commutative: run the producer
      // into the accumulator, then apply Op with the other operand.
      EltStage st = e.stages[1];
      st.operand = remap(e.stages[0].operand);
      nst.push_back(st);
    }
    --uses[static_cast<size_t>(e.args[arg_pos])];
    dead[static_cast<size_t>(p)] = 1;
    e.args = std::move(nargs);
    e.arg_shapes = std::move(nshapes);
    e.stages = std::move(nst);
  };

  for (size_t i = 0; i < ops.size(); ++i) {
    Op& e = ops[i];
    if (e.kind != OpKind::kEltwise || dead[i]) continue;
    // Primary: fuse the producer of the Load operand.
    const size_t load_pos = static_cast<size_t>(e.stages[0].operand);
    int32_t p = fusible_into(e, load_pos);
    if (p >= 0) {
      splice(e, p, load_pos, /*commute_swap=*/false);
      continue;
    }
    // Secondary: two-stage commutative op whose *right* operand is fusible.
    if (e.stages.size() == 2 && e.stages[1].operand >= 0 &&
        (e.stages[1].code == EltStage::kAdd ||
         e.stages[1].code == EltStage::kMul)) {
      const size_t rhs_pos = static_cast<size_t>(e.stages[1].operand);
      p = fusible_into(e, rhs_pos);
      if (p >= 0) splice(e, p, rhs_pos, /*commute_swap=*/true);
    }
  }

  // Compact away fused producers.
  std::vector<Op> final_ops;
  final_ops.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!dead[i]) final_ops.push_back(std::move(ops[i]));
  }

  // --- dead-code elimination -------------------------------------------------
  // The forward also produces values predict/infer never read (the per-module
  // attention maps carried for training-time supervision). Walk backward from
  // scores/deltas and keep only contributing ops; anything else would occupy
  // an unplaced slot and execute for nothing.
  {
    std::vector<uint8_t> live(n_slots, 0);
    live[static_cast<size_t>(scores_slot)] = 1;
    live[static_cast<size_t>(deltas_slot)] = 1;
    if (feat_slot >= 0) live[static_cast<size_t>(feat_slot)] = 1;
    std::vector<Op> kept;
    kept.reserve(final_ops.size());
    for (size_t i = final_ops.size(); i-- > 0;) {
      Op& op = final_ops[i];
      if (!live[static_cast<size_t>(op.out)]) continue;
      for (int32_t a : op.args) live[static_cast<size_t>(a)] = 1;
      kept.push_back(std::move(op));
    }
    std::reverse(kept.begin(), kept.end());
    final_ops = std::move(kept);
  }

  // --- assemble the plan -----------------------------------------------------
  std::shared_ptr<Plan> plan(new Plan());
  plan->ops_ = std::move(final_ops);
  plan->slots_.resize(n_slots);
  for (size_t s = 0; s < n_slots; ++s) {
    Slot& ps = plan->slots_[s];
    ps.shape = slots_[s].shape;
    ps.numel = yollo::numel(ps.shape);
    ps.external = slots_[s].external;
    ps.is_input = slots_[s].is_input;
    if (ps.external) ps.bound = slots_[s].held;
  }
  plan->slots_[static_cast<size_t>(scores_slot)].is_output = true;
  plan->slots_[static_cast<size_t>(deltas_slot)].is_output = true;
  plan->scores_slot_ = scores_slot;
  plan->deltas_slot_ = deltas_slot;
  plan->scores_shape_ = scores.shape();
  plan->deltas_shape_ = deltas.shape();
  if (feat_slot >= 0) {
    plan->slots_[static_cast<size_t>(feat_slot)].is_output = true;
    plan->feat_slot_ = feat_slot;
    plan->feat_shape_ = features->shape();
  }

  // --- liveness --------------------------------------------------------------
  const int32_t num_ops = static_cast<int32_t>(plan->ops_.size());
  std::vector<int32_t> first_use(n_slots, -1);
  for (int32_t i = 0; i < num_ops; ++i) {
    Op& op = plan->ops_[static_cast<size_t>(i)];
    plan->slots_[static_cast<size_t>(op.out)].def = i;
    for (int32_t a : op.args) {
      Slot& s = plan->slots_[static_cast<size_t>(a)];
      s.last_use = std::max(s.last_use, i);
      if (first_use[static_cast<size_t>(a)] < 0) {
        first_use[static_cast<size_t>(a)] = i;
      }
    }
  }
  for (size_t s = 0; s < n_slots; ++s) {
    Slot& ps = plan->slots_[s];
    if (!ps.external && !ps.is_input && ps.def < 0 && ps.last_use >= 0) {
      // A workspace slot (conv im2col): live only across its using op.
      ps.def = first_use[s];
    }
    if (ps.is_output) ps.last_use = num_ops;
  }

  // --- arena assignment (first-fit over sorted live intervals) ---------------
  std::vector<int32_t> order;
  for (size_t s = 0; s < n_slots; ++s) {
    const Slot& ps = plan->slots_[s];
    if (ps.external) continue;
    if (ps.last_use < 0 && !ps.is_output) continue;  // dead (fused away)
    order.push_back(static_cast<int32_t>(s));
  }
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const Slot& sa = plan->slots_[static_cast<size_t>(a)];
    const Slot& sb = plan->slots_[static_cast<size_t>(b)];
    const int32_t da = sa.is_input ? -1 : sa.def;
    const int32_t db = sb.is_input ? -1 : sb.def;
    if (da != db) return da < db;
    if (sa.numel != sb.numel) return sa.numel > sb.numel;
    return a < b;
  });
  struct Placed {
    int64_t off, sz;
    int32_t lo, hi;
  };
  std::vector<Placed> placed;
  std::vector<Placed> overlap;
  int64_t total = 0;
  for (int32_t id : order) {
    Slot& s = plan->slots_[static_cast<size_t>(id)];
    const int32_t lo = s.is_input ? -1 : s.def;
    const int32_t hi = s.last_use;
    const int64_t sz = std::max<int64_t>(align_up(s.numel), kAlignFloats);
    overlap.clear();
    for (const Placed& p : placed) {
      if (p.lo <= hi && lo <= p.hi) overlap.push_back(p);
    }
    std::sort(overlap.begin(), overlap.end(),
              [](const Placed& a, const Placed& b) { return a.off < b.off; });
    int64_t off = 0;
    for (const Placed& p : overlap) {
      if (off + sz <= p.off) break;
      off = std::max(off, p.off + p.sz);
    }
    s.offset = off;
    placed.push_back(Placed{off, sz, lo, hi});
    total = std::max(total, off + sz);
  }

  // Charges the caller's pool budget exactly once; PoolBudgetExceeded
  // propagates to the plan cache, which degrades to the dynamic path.
  plan->arena_ = std::make_unique<Arena>(total);
  float* base = plan->arena_->base();

  // --- pointer resolution ----------------------------------------------------
  for (Op& op : plan->ops_) {
    op.in_ptr.resize(op.args.size());
    for (size_t a = 0; a < op.args.size(); ++a) {
      const Slot& s = plan->slots_[static_cast<size_t>(op.args[a])];
      op.in_ptr[a] = s.external ? s.bound.data() : base + s.offset;
    }
    op.out_ptr = base + plan->slots_[static_cast<size_t>(op.out)].offset;
  }

  // --- elementwise geometry --------------------------------------------------
  for (Op& op : plan->ops_) {
    if (op.kind != OpKind::kEltwise) continue;
    const Shape& os = op.out_shape;
    const size_t rank = os.size();
    const Strides cs = contiguous_strides(os);
    const size_t nargs = op.args.size();
    std::vector<Strides> bstr(nargs);
    for (size_t a = 0; a < nargs; ++a) {
      bstr[a] = broadcast_strides(op.arg_shapes[a], os);
    }
    // Smallest d0 so that over [d0, rank) every arg is either uniformly
    // contiguous or uniformly broadcast (extent-1 dims are wildcards).
    size_t d0 = rank;
    std::vector<uint8_t> bcast(nargs, 0);
    for (size_t cand = rank; cand-- > 0;) {
      bool ok = true;
      std::vector<uint8_t> cb(nargs, 0);
      for (size_t a = 0; a < nargs && ok; ++a) {
        bool contig = true, bc = true;
        for (size_t d = cand; d < rank; ++d) {
          if (os[d] == 1) continue;
          if (bstr[a][d] != cs[d]) contig = false;
          if (bstr[a][d] != 0) bc = false;
        }
        if (!contig && !bc) {
          ok = false;
        } else {
          cb[a] = contig ? 0 : 1;  // fully-broadcast args re-read one value
        }
      }
      if (!ok) break;
      d0 = cand;
      bcast = cb;
    }
    op.elt_run = prod(os, d0, rank);
    op.elt_prefix = prod(os, 0, d0);
    op.elt_prefix_dims.assign(os.begin(),
                              os.begin() + static_cast<int64_t>(d0));
    op.elt_prefix_strides.assign(nargs * d0, 0);
    for (size_t a = 0; a < nargs; ++a) {
      for (size_t d = 0; d < d0; ++d) {
        op.elt_prefix_strides[a * d0 + d] = bstr[a][d];
      }
    }
    op.elt_arg_bcast = bcast;
  }

  // --- input bindings --------------------------------------------------------
  for (size_t s = 0; s < n_slots; ++s) {
    const Slot& ps = plan->slots_[s];
    if (!ps.is_input) continue;
    const char* name = slots_[s].input_name;
    float* ptr = base + ps.offset;
    if (name != nullptr && std::strcmp(name, "with_coords") == 0) {
      plan->coords_ptr_ = ptr;
      plan->batch_ = ps.shape[0];
      plan->img_h_ = ps.shape[2];
      plan->img_w_ = ps.shape[3];
    } else if (name != nullptr && std::strcmp(name, "pair_mask") == 0) {
      plan->mask_ptr_ = ptr;
    }
  }
  if (plan->coords_ptr_ == nullptr) {
    return fail("missing with_coords input binding");
  }
  if (!have_tokens_) return fail("no token stream recorded");
  plan->tokens_count_ = static_cast<int64_t>(tokens_.size());
  if (plan->mask_ptr_ != nullptr) {
    // Mask geometry: [b, m+n, m+n] with n words per batch row.
    for (size_t s = 0; s < n_slots; ++s) {
      if (plan->slots_[s].is_input && slots_[s].input_name != nullptr &&
          std::strcmp(slots_[s].input_name, "pair_mask") == 0) {
        const int64_t kk = plan->slots_[s].shape[1];
        plan->mask_n_ = plan->tokens_count_ / plan->batch_;
        plan->mask_m_ = kk - plan->mask_n_;
        break;
      }
    }
  }

  static obs::Counter& compiles =
      obs::MetricsRegistry::global().counter("plan.compiles");
  compiles.inc();
  return plan;
}

}  // namespace yollo::plan
