#include "eval/metrics.h"

#include <chrono>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace yollo::eval {

double accuracy_at(const std::vector<Prediction>& preds, float eta) {
  if (preds.empty()) return 0.0;
  int64_t hits = 0;
  for (const Prediction& p : preds) {
    hits += vision::iou(p.predicted, p.truth) > eta;
  }
  return static_cast<double>(hits) / static_cast<double>(preds.size());
}

double coco_style_accuracy(const std::vector<Prediction>& preds) {
  double total = 0.0;
  int count = 0;
  for (float eta = 0.5f; eta < 0.951f; eta += 0.05f) {
    total += accuracy_at(preds, eta);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

double mean_iou(const std::vector<Prediction>& preds) {
  if (preds.empty()) return 0.0;
  double total = 0.0;
  for (const Prediction& p : preds) {
    total += vision::iou(p.predicted, p.truth);
  }
  return total / static_cast<double>(preds.size());
}

MetricRow compute_metrics(const std::vector<Prediction>& preds) {
  MetricRow row;
  row.acc = coco_style_accuracy(preds);
  row.acc50 = accuracy_at(preds, 0.5f);
  row.acc75 = accuracy_at(preds, 0.75f);
  row.miou = mean_iou(preds);
  return row;
}

Stopwatch::Stopwatch() { reset(); }

void Stopwatch::reset() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Stopwatch::elapsed_seconds() const {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  return static_cast<double>(now - start_ns_) * 1e-9;
}

double time_per_call(const std::function<void()>& fn, int64_t iters,
                     int64_t warmup) {
  for (int64_t i = 0; i < warmup; ++i) fn();
  Stopwatch watch;
  for (int64_t i = 0; i < iters; ++i) fn();
  return watch.elapsed_seconds() / static_cast<double>(iters);
}

TableReporter::TableReporter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TableReporter::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("TableReporter: row width " +
                                std::to_string(cells.size()) +
                                " != column count " +
                                std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TableReporter::print(const std::string& title) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::cout << "| ";
    for (size_t c = 0; c < cells.size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c] << " | ";
    }
    std::cout << "\n";
  };
  print_row(columns_);
  std::cout << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    std::cout << std::string(widths[c] + 2, '-') << "|";
  }
  std::cout << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

void TableReporter::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("TableReporter: cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace yollo::eval
