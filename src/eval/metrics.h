// Grounding evaluation metrics (paper §4.3, Table 3) and reporting helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "vision/box.h"

namespace yollo::eval {

// One grounding prediction paired with its ground truth.
struct Prediction {
  vision::Box predicted;
  vision::Box truth;
};

// Fraction of predictions with IoU > eta (the paper's ACC@eta).
double accuracy_at(const std::vector<Prediction>& preds, float eta);

// Mean of ACC@eta for eta in {0.5, 0.55, ..., 0.95} (the paper's "ACC").
double coco_style_accuracy(const std::vector<Prediction>& preds);

// Mean IoU over all predictions (the paper's MIOU).
double mean_iou(const std::vector<Prediction>& preds);

// Full metric row for Table 3.
struct MetricRow {
  double acc = 0.0;       // averaged ACC@0.5..0.95
  double acc50 = 0.0;     // ACC@0.5
  double acc75 = 0.0;     // ACC@0.75
  double miou = 0.0;
};
MetricRow compute_metrics(const std::vector<Prediction>& preds);

// --- timing -----------------------------------------------------------------

// Wall-clock stopwatch for the inference-latency experiments (Table 5).
class Stopwatch {
 public:
  Stopwatch();
  void reset();
  double elapsed_seconds() const;

 private:
  int64_t start_ns_;
};

// Mean seconds per call of `fn` over `iters` calls after `warmup` calls.
double time_per_call(const std::function<void()>& fn, int64_t iters,
                     int64_t warmup = 1);

// --- reporting ---------------------------------------------------------------

// Accumulates rows and prints a fixed-width table like the paper's.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  // Render to stdout with a title line.
  void print(const std::string& title) const;
  // Write as CSV.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Format a double with fixed precision (helper for reporters).
std::string fmt(double value, int precision = 2);

}  // namespace yollo::eval
