// Continuous batching + feature cache acceptance bench (DESIGN.md §15).
//
// Part 1 — burst. The full request burst is offered up-front and drained
// through ONE worker at batch_max 1 vs 8. One worker, not four: this box
// may expose a single core, and multi-worker scheduling noise on a shared
// core swamps the batching signal we are pinning down (the serving suites
// measure multi-worker behaviour separately). The throughput clock starts
// only after the worker reports warmed — charging per-size plan
// compilation to the measured window is exactly the artefact that made
// the greedy coalescer read as 0.78x. Trials are interleaved (b1, b8, b1,
// b8, ...) and the best of each is reported, so a CPU-frequency or
// page-cache hiccup cannot land on one configuration only.
// Acceptance: batch_max 8 throughput >= 1.0x batch_max 1.
//
// Part 2 — smart gallery. One image asked many different queries, the
// workload the content-addressed backbone feature cache exists for. Cold
// = cache disabled (every request pays the backbone); warm = cache on and
// primed (every request hits and runs only the query-dependent half).
// Acceptance: warm p50 >= 2x faster than cold.
//
// The five-term accounting invariant (submitted == served + rejected +
// deadline_exceeded + failed + cancelled) is checked on every service this
// binary constructs; any violation makes the run exit non-zero.
//
// Usage: bench_serve_batch [json-path]   (default: BENCH_serve_batch.json)
// YOLLO_BENCH_SCALE=quick shrinks the request counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "data/renderer.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void wait_for_warm(serve::InferenceService& service, int64_t workers) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::seconds(120);
  while (service.counters().workers_warmed < workers &&
         Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

bool invariant_holds(const serve::ServiceCounters& c) {
  const bool ok = c.submitted == c.served + c.rejected +
                                     c.deadline_exceeded + c.failed +
                                     c.cancelled;
  if (!ok) {
    std::fprintf(stderr,
                 "FIVE-TERM INVARIANT BROKEN: submitted=%lld served=%lld "
                 "rejected=%lld deadline_exceeded=%lld failed=%lld "
                 "cancelled=%lld\n",
                 static_cast<long long>(c.submitted),
                 static_cast<long long>(c.served),
                 static_cast<long long>(c.rejected),
                 static_cast<long long>(c.deadline_exceeded),
                 static_cast<long long>(c.failed),
                 static_cast<long long>(c.cancelled));
  }
  return ok;
}

struct BurstPoint {
  double wall_sec = 0.0;
  double throughput = 0.0;  // answered per second
  double p50 = 0.0;
  double p95 = 0.0;
  int64_t answered = 0;
  int64_t batches = 0;
  int64_t max_batch = 0;
  serve::ServiceCounters counters;
  obs::MetricsSnapshot metrics;
};

BurstPoint run_burst(core::YolloModel& model, const data::Vocab& vocab,
                     const std::vector<Tensor>& images,
                     const std::vector<std::string>& queries,
                     int64_t batch_max, int64_t requests) {
  serve::ServeConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = requests;  // admission never rejects for capacity
  sc.batch_max = batch_max;
  sc.feature_cache_mb = 0;  // part 1 isolates batching from caching
  serve::InferenceService service(model, vocab, sc, nullptr);
  wait_for_warm(service, sc.num_workers);

  const Clock::time_point start = Clock::now();
  std::vector<std::future<serve::GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    serve::GroundRequest request;
    request.image = images[static_cast<size_t>(i) % images.size()];
    request.query = queries[static_cast<size_t>(i) % queries.size()];
    futures.push_back(service.submit(std::move(request)));
  }
  BurstPoint point;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& future : futures) {
    const serve::GroundResponse response = future.get();
    if (response.status.answered()) {
      ++point.answered;
      latencies.push_back(response.latency_ms);
    }
  }
  point.wall_sec =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  point.metrics = service.metrics_snapshot();
  point.counters = serve::counters_from_snapshot(point.metrics);
  point.batches = point.counters.batches_coalesced;
  point.max_batch = point.counters.max_batch;
  point.throughput =
      static_cast<double>(point.answered) / std::max(point.wall_sec, 1e-9);
  std::sort(latencies.begin(), latencies.end());
  point.p50 = percentile(latencies, 0.50);
  point.p95 = percentile(latencies, 0.95);
  return point;
}

struct GalleryPoint {
  double p50 = 0.0;
  double p95 = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double hit_ratio = 0.0;
  serve::ServiceCounters counters;
};

// One image, `requests` distinct queries, sequential ground() calls so
// each latency sample is pure per-request cost with no queueing component.
GalleryPoint run_gallery(core::YolloModel& model, const data::Vocab& vocab,
                         const Tensor& image,
                         const std::vector<std::string>& queries,
                         int64_t requests, bool warm) {
  serve::ServeConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 8;
  sc.batch_max = 1;
  sc.feature_cache_mb = warm ? 32 : 0;
  serve::InferenceService service(model, vocab, sc, nullptr);
  wait_for_warm(service, sc.num_workers);

  if (warm) {
    // Prime: the first sighting of the image pays the backbone and fills
    // the cache; every measured request below is then a hit.
    serve::GroundRequest prime;
    prime.image = image;
    prime.query = queries.front();
    (void)service.ground(std::move(prime));
  }

  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    serve::GroundRequest request;
    request.image = image;
    request.query = queries[static_cast<size_t>(i) % queries.size()];
    const serve::GroundResponse response =
        service.ground(std::move(request));
    if (response.status.answered()) {
      latencies.push_back(response.latency_ms);
    }
  }
  service.stop();

  GalleryPoint point;
  point.counters = service.counters();
  point.cache_hits = point.counters.cache_hits;
  point.cache_misses = point.counters.cache_misses;
  const int64_t lookups = point.cache_hits + point.cache_misses;
  point.hit_ratio = lookups > 0 ? static_cast<double>(point.cache_hits) /
                                      static_cast<double>(lookups)
                                : 0.0;
  std::sort(latencies.begin(), latencies.end());
  point.p50 = percentile(latencies, 0.50);
  point.p95 = percentile(latencies, 0.95);
  return point;
}

void print_burst(const char* name, const BurstPoint& point) {
  std::printf("  %-12s %7.1f req/s  p50 %7.2f ms  p95 %7.2f ms  "
              "(%lld coalesced forwards, largest %lld)\n",
              name, point.throughput, point.p50, point.p95,
              static_cast<long long>(point.batches),
              static_cast<long long>(point.max_batch));
}

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  using namespace yollo;

  const char* json_path = argc > 1 ? argv[1] : "BENCH_serve_batch.json";
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t burst_requests = scale.quick ? 64 : 256;
  const int64_t gallery_requests = scale.quick ? 32 : 96;
  const int trials = 3;
  const int64_t batch = 8;

  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = bench::bench_dataset_config(0, scale);
  dc.num_images = scale.quick ? 16 : 32;
  const data::GroundingDataset dataset(dc, vocab);

  // Latency does not depend on the weights, so the model is untrained.
  core::YolloConfig cfg;
  cfg.img_h = dc.img_h;
  cfg.img_w = dc.img_w;
  cfg.max_query_len = dataset.max_query_len();
  Rng rng(cfg.seed);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  // Pre-render outside every measured window: producing images on the
  // submitting thread would bill renderer time to the serve throughput.
  std::vector<Tensor> images;
  std::vector<std::string> queries;
  for (const data::GroundingSample& sample : dataset.train()) {
    images.push_back(data::render_scene(sample.scene));
    queries.push_back(sample.query_text);
  }

  bool invariants_ok = true;

  std::printf("== Serve burst: batch_max 1 vs %lld (1 worker, %lld "
              "requests, best of %d interleaved trials) ==\n",
              static_cast<long long>(batch),
              static_cast<long long>(burst_requests), trials);
  BurstPoint best1, best8;
  for (int trial = 0; trial < trials; ++trial) {
    BurstPoint b1 =
        run_burst(model, vocab, images, queries, 1, burst_requests);
    BurstPoint b8 =
        run_burst(model, vocab, images, queries, batch, burst_requests);
    invariants_ok = invariant_holds(b1.counters) && invariants_ok;
    invariants_ok = invariant_holds(b8.counters) && invariants_ok;
    std::printf("  trial %d: b1 %.1f req/s, b%lld %.1f req/s (%.2fx)\n",
                trial + 1, b1.throughput, static_cast<long long>(batch),
                b8.throughput,
                b8.throughput / std::max(b1.throughput, 1e-9));
    if (b1.throughput > best1.throughput) best1 = std::move(b1);
    if (b8.throughput > best8.throughput) best8 = std::move(b8);
  }
  const double gain =
      best8.throughput / std::max(best1.throughput, 1e-9);
  print_burst("batch_max=1", best1);
  print_burst("batch_max=8", best8);
  std::printf("  throughput gain: %.2fx %s\n", gain,
              gain >= 1.0 ? "(>= 1.0x: batching no longer regresses)"
                          : "(WARNING: below 1.0x)");
  std::printf("  formation p50 by batch size:");
  std::vector<std::pair<int64_t, double>> formation;
  for (int64_t k = 1; k <= batch; ++k) {
    const obs::HistogramSnapshot* h = best8.metrics.histogram(
        "serve.formation_ms_b" + std::to_string(k));
    if (h != nullptr && h->count > 0) {
      formation.emplace_back(k, h->quantile(0.50));
      std::printf("  b%lld %.3fms", static_cast<long long>(k),
                  h->quantile(0.50));
    }
  }
  std::printf("\n");

  std::printf("\n== Smart gallery: one image, %lld queries ==\n",
              static_cast<long long>(gallery_requests));
  const GalleryPoint cold = run_gallery(model, vocab, images.front(),
                                        queries, gallery_requests, false);
  const GalleryPoint warm = run_gallery(model, vocab, images.front(),
                                        queries, gallery_requests, true);
  invariants_ok = invariant_holds(cold.counters) && invariants_ok;
  invariants_ok = invariant_holds(warm.counters) && invariants_ok;
  const double speedup = cold.p50 / std::max(warm.p50, 1e-9);
  std::printf(
      "  cold (no cache):  p50 %7.2f ms  p95 %7.2f ms\n"
      "  warm (cache hit): p50 %7.2f ms  p95 %7.2f ms  "
      "(hit ratio %.1f%%)\n"
      "  speedup warm vs cold: %.2fx %s\n",
      cold.p50, cold.p95, warm.p50, warm.p95, warm.hit_ratio * 100.0,
      speedup,
      speedup >= 2.0 ? "(>= 2x: cached requests skip the backbone)"
                     : "(WARNING: below 2x)");

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  const auto emit_burst = [&](const char* name, const BurstPoint& point,
                              const char* tail) {
    std::fprintf(json,
                 "    \"%s\": {\"throughput_rps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"answered\": %lld, "
                 "\"coalesced_forwards\": %lld, \"max_batch\": %lld}%s\n",
                 name, point.throughput, point.p50, point.p95,
                 static_cast<long long>(point.answered),
                 static_cast<long long>(point.batches),
                 static_cast<long long>(point.max_batch), tail);
  };
  std::fprintf(json,
               "{\n  \"img_h\": %lld,\n  \"img_w\": %lld,\n"
               "  \"serve_burst\": {\n"
               "    \"workers\": 1,\n    \"requests\": %lld,\n"
               "    \"trials\": %d,\n",
               static_cast<long long>(cfg.img_h),
               static_cast<long long>(cfg.img_w),
               static_cast<long long>(burst_requests), trials);
  emit_burst("batch_max_1", best1, ",");
  emit_burst("batch_max_8", best8, ",");
  std::fprintf(json, "    \"throughput_gain_vs_batch_max_1\": %.3f,\n"
               "    \"formation_p50_ms\": {",
               gain);
  for (size_t i = 0; i < formation.size(); ++i) {
    std::fprintf(json, "%s\"b%lld\": %.4f", i == 0 ? "" : ", ",
                 static_cast<long long>(formation[i].first),
                 formation[i].second);
  }
  std::fprintf(json,
               "}\n  },\n  \"smart_gallery\": {\n"
               "    \"requests\": %lld,\n"
               "    \"cold_p50_ms\": %.3f,\n    \"cold_p95_ms\": %.3f,\n"
               "    \"warm_p50_ms\": %.3f,\n    \"warm_p95_ms\": %.3f,\n"
               "    \"speedup_warm_vs_cold\": %.3f,\n"
               "    \"cache_hits\": %lld,\n    \"cache_misses\": %lld,\n"
               "    \"cache_hit_ratio\": %.4f\n  },\n"
               "  \"invariant_ok\": %s\n}\n",
               static_cast<long long>(gallery_requests), cold.p50, cold.p95,
               warm.p50, warm.p95, speedup,
               static_cast<long long>(warm.cache_hits),
               static_cast<long long>(warm.cache_misses), warm.hit_ratio,
               invariants_ok ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path);

  if (!invariants_ok) {
    std::fprintf(stderr, "accounting invariant violated; failing the run\n");
    return 1;
  }
  return 0;
}
