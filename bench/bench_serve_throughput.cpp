// Serving-layer throughput — latency percentiles and rejection rate vs
// offered load.
//
// Drives yollo::serve::InferenceService with paced open-loop traffic at
// increasing offered rates (plus one unpaced burst) and reports, per rate:
// answered/rejected counts, the rejection rate the bounded admission queue
// produced, p50/p95/p99 latency of answered requests, and the queue
// high-water mark. Inference cost does not depend on the weights, so the
// model is untrained (weights from init); queries and scenes come from the
// bench dataset generator.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common.h"
#include "data/renderer.h"
#include "serve/service.h"

namespace yollo {
namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct LoadPoint {
  int64_t offered_per_sec = 0;  // 0 = unpaced burst
  int64_t submitted = 0;
  int64_t answered = 0;
  int64_t degraded = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t failed = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  int64_t queue_hwm = 0;
  double wall_sec = 0.0;
};

LoadPoint run_load(core::YolloModel& model, const data::Vocab& vocab,
                   const std::vector<data::GroundingSample>& samples,
                   baseline::TwoStagePipeline* fallback,
                   int64_t offered_per_sec, int64_t num_requests) {
  serve::ServeConfig sc;
  sc.num_workers = 4;
  sc.queue_capacity = 64;
  sc.max_retries = 1;
  serve::InferenceService service(model, vocab, sc, fallback);

  const auto pace = offered_per_sec > 0
                        ? std::chrono::microseconds(1000000 / offered_per_sec)
                        : std::chrono::microseconds(0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serve::GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    const data::GroundingSample& sample =
        samples[static_cast<size_t>(i) % samples.size()];
    serve::GroundRequest request;
    request.image = data::render_scene(sample.scene);
    request.query = sample.query_text;
    futures.push_back(service.submit(std::move(request)));
    if (pace.count() > 0) std::this_thread::sleep_for(pace);
  }

  LoadPoint point;
  point.offered_per_sec = offered_per_sec;
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  for (auto& future : futures) {
    const serve::GroundResponse response = future.get();
    if (response.status.answered()) {
      latencies.push_back(response.latency_ms);
    }
  }
  point.wall_sec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  service.stop();

  const serve::ServiceCounters counters = service.counters();
  point.submitted = counters.submitted;
  point.answered = counters.served;
  point.degraded = counters.degraded;
  point.rejected = counters.rejected;
  point.deadline = counters.deadline_exceeded;
  point.failed = counters.failed;
  point.queue_hwm = counters.queue_high_water;
  std::sort(latencies.begin(), latencies.end());
  point.p50 = percentile(latencies, 0.50);
  point.p95 = percentile(latencies, 0.95);
  point.p99 = percentile(latencies, 0.99);
  return point;
}

}  // namespace
}  // namespace yollo

int main() {
  using namespace yollo;

  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t num_requests = scale.quick ? 120 : 400;

  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = bench::bench_dataset_config(0, scale);
  dc.num_images = scale.quick ? 40 : 120;
  const data::GroundingDataset dataset(dc, vocab);

  core::YolloConfig cfg;
  cfg.img_h = dc.img_h;
  cfg.img_w = dc.img_w;
  cfg.max_query_len = dataset.max_query_len();
  Rng rng(cfg.seed);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  // Untrained baseline fallback tier (the degradation path's cost profile
  // is what matters here, not its accuracy).
  baseline::ProposerConfig pcfg;
  pcfg.img_h = dc.img_h;
  pcfg.img_w = dc.img_w;
  Rng prng(11);
  baseline::RegionProposalNetwork rpn(pcfg, prng);
  rpn.set_training(false);
  baseline::MatcherConfig mcfg;
  mcfg.vocab_size = vocab.size();
  baseline::ListenerMatcher listener(mcfg, prng);
  listener.set_training(false);
  baseline::SpeakerMatcher speaker(mcfg, prng);
  speaker.set_training(false);
  baseline::TwoStagePipeline fallback(rpn, listener, speaker,
                                      baseline::MatchMode::kListener);

  std::printf(
      "== Serving throughput vs offered load "
      "(4 workers, queue 64, %lld requests/point) ==\n",
      static_cast<long long>(num_requests));
  std::printf(
      "%10s %9s %8s %8s %6s %9s %9s %9s %6s %9s\n", "offered/s", "submitted",
      "answered", "rejected", "rej%", "p50(ms)", "p95(ms)", "p99(ms)", "qhwm",
      "ach/s");

  std::vector<int64_t> rates = scale.quick
                                   ? std::vector<int64_t>{100, 800, 0}
                                   : std::vector<int64_t>{50, 200, 800, 3200, 0};
  for (const int64_t rate : rates) {
    const LoadPoint point = run_load(model, vocab, dataset.train(), &fallback,
                                     rate, num_requests);
    const double rej_pct =
        100.0 * static_cast<double>(point.rejected) /
        static_cast<double>(std::max<int64_t>(1, point.submitted));
    const double achieved =
        static_cast<double>(point.answered) / std::max(point.wall_sec, 1e-9);
    char offered[24];
    if (rate > 0) {
      std::snprintf(offered, sizeof(offered), "%lld",
                    static_cast<long long>(rate));
    } else {
      std::snprintf(offered, sizeof(offered), "burst");
    }
    std::printf("%10s %9lld %8lld %8lld %5.1f%% %9.2f %9.2f %9.2f %6lld %9.1f\n",
                offered, static_cast<long long>(point.submitted),
                static_cast<long long>(point.answered),
                static_cast<long long>(point.rejected), rej_pct, point.p50,
                point.p95, point.p99,
                static_cast<long long>(point.queue_hwm), achieved);
  }
  std::printf(
      "\n(bounded queue rejects instead of buffering: past saturation the\n"
      " rejection rate absorbs the excess load and answered latency stays\n"
      " bounded by the queue capacity instead of growing without limit)\n");
  return 0;
}
