// Table 4 — Rel2Att ablations: full model vs no self-attention vs no
// co-attention (the corresponding relation-map blocks are zeroed, exactly as
// described in §4.4).
//
// Paper shape: full YOLLO ~91/91/90; removing self-attention costs ~30-40
// points; removing co-attention is worst (~35 ACC@0.5) because the model
// can no longer see the query at all — it falls back to dataset bias.
#include <cstdio>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  eval::TableReporter table({"Method", "SynthRef val", "SynthRef TestA",
                             "SynthRef TestB", "SynthRef+ val",
                             "SynthRef+ TestA", "SynthRef+ TestB",
                             "SynthRefG val"});

  struct Variant {
    const char* label;
    const char* tag_suffix;
    bool self_attention;
    bool co_attention;
    bool reuse_main;  // full model reuses the Table-2 checkpoints
  };
  const Variant variants[] = {
      {"YOLLO", "", true, true, true},
      {"YOLLO (no self-attention)", "_noself", false, true, false},
      {"YOLLO (no co-attention)", "_noco", true, false, false},
  };

  for (const Variant& variant : variants) {
    std::vector<std::string> cells = {variant.label};
    for (int which = 0; which < 3; ++which) {
      const data::GroundingDataset dataset(
          bench::bench_dataset_config(which, scale), vocab);
      core::YolloConfig cfg;
      cfg.use_self_attention = variant.self_attention;
      cfg.use_co_attention = variant.co_attention;
      const std::string tag = "yollo_" + bench::bench_dataset_name(which) +
                              variant.tag_suffix;
      const int64_t steps =
          variant.reuse_main ? scale.yollo_steps : scale.ablation_steps;
      bench::TrainedYollo trained =
          bench::get_trained_yollo(dataset, vocab, tag, cfg, steps, scale);

      std::vector<const std::vector<data::GroundingSample>*> splits;
      if (which == 2) {
        splits = {&dataset.val()};
      } else {
        splits = {&dataset.val(), &dataset.test_a(), &dataset.test_b()};
      }
      for (const auto* split : splits) {
        const auto preds =
            bench::capped_eval_yollo(*trained.model, *split, scale);
        cells.push_back(eval::fmt(100.0 * eval::accuracy_at(preds, 0.5f)));
      }
    }
    table.add_row(cells);
  }

  table.print("Table 4 — Rel2Att ablations, ACC@0.5 (%)");
  table.write_csv(bench::cache_dir() + "/table4.csv");
  std::printf(
      "\nPaper reference: full 91.6 / no-self ~60 / no-co ~35 on RefCOCO\n"
      "val. Expected ordering here: full > no-self > no-co, with no-co\n"
      "collapsing to query-independent (dataset-bias) grounding.\n"
      "CSV written to %s/table4.csv\n",
      bench::cache_dir().c_str());
  return 0;
}
