// Shared infrastructure for the per-table/per-figure benchmark binaries.
//
// Every bench binary is standalone-runnable; trained models and training
// curves are cached on disk (default ./bench_cache) so that the full bench
// suite (`for b in build/bench/*; do $b; done`) trains each model exactly
// once no matter which binary runs first.
//
// Scale: set YOLLO_BENCH_SCALE=quick for a fast smoke run (smaller datasets,
// fewer steps); the default "full" scale produces the EXPERIMENTS.md
// numbers.
#pragma once

#include <memory>
#include <string>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace yollo::bench {

struct BenchScale {
  bool quick = false;
  int64_t num_images = 1600;      // images per dataset
  int64_t yollo_steps = 1200;     // main training budget
  int64_t ablation_steps = 450;   // Table-4 variants
  int64_t rpn_steps = 300;        // stage-i proposer
  int64_t matcher_steps = 800;    // listener / speaker (per-sample steps)
  int64_t eval_cap = 200;         // max samples evaluated per split

  static BenchScale from_env();
};

// The three benchmark datasets (SynthRef / SynthRef+ / SynthRefG) at bench
// scale: 48x72 canvases, fixed seeds.
data::DatasetConfig bench_dataset_config(int which, const BenchScale& scale);
std::string bench_dataset_name(int which);

// Cache directory (created on demand); override with YOLLO_BENCH_CACHE.
std::string cache_dir();

// --- train-or-load ------------------------------------------------------------

struct TrainedYollo {
  std::unique_ptr<core::YolloModel> model;
  std::vector<core::CurvePoint> curve;  // empty when loaded without curve
  bool from_cache = false;
};

// Train (or load from cache) a YOLLO model for `dataset`, tagged by `tag`
// (e.g. "yollo_SynthRef", "yollo_SynthRef_noself"). The YolloConfig ablation
// switches come from `config`; geometry fields are filled from the dataset.
TrainedYollo get_trained_yollo(const data::GroundingDataset& dataset,
                               const data::Vocab& vocab,
                               const std::string& tag,
                               core::YolloConfig config, int64_t max_steps,
                               const BenchScale& scale);

struct TrainedTwoStage {
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;
  bool from_cache = false;
};

// Train (or load) the full two-stage baseline stack on `dataset`.
TrainedTwoStage get_trained_two_stage(const data::GroundingDataset& dataset,
                                      const data::Vocab& vocab,
                                      const std::string& tag,
                                      const BenchScale& scale);

// Evaluate with the split capped at scale.eval_cap samples.
std::vector<eval::Prediction> capped_eval_yollo(
    core::YolloModel& model, const std::vector<data::GroundingSample>& split,
    const BenchScale& scale);
std::vector<eval::Prediction> capped_eval_two_stage(
    baseline::TwoStagePipeline& pipeline,
    const std::vector<data::GroundingSample>& split, int64_t max_query_len,
    const BenchScale& scale);

// Write / read a training curve CSV (step,total,att,cls,reg).
void save_curve(const std::vector<core::CurvePoint>& curve,
                const std::string& path);
std::vector<core::CurvePoint> load_curve(const std::string& path);

}  // namespace yollo::bench
