// Table 5 — inference-speed comparison (google-benchmark).
//
// Paper rows: speaker 1.235s (+0.291 proposal time), listener 1.332
// (+0.293), speaker+listener 1.547 (+0.289), YOLLO ResNet-50 0.065, YOLLO
// ResNet-101 0.103 — i.e. one-stage is ~20-30x faster because the two-stage
// pipeline runs a per-proposal matching network on top of the proposer.
//
// Here the same five pipelines are timed end-to-end per grounding query on
// this machine (plus the stage-i proposal time separately, mirroring the
// parenthesised column). Latency does not depend on the weights, so models
// are timed as constructed; the summary at the end prints the speed-up
// ratios that reproduce the paper's headline claim.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "core/yollo.h"
#include "data/renderer.h"
#include "data/vocab.h"

namespace {

using namespace yollo;

constexpr int64_t kImgH = 48;
constexpr int64_t kImgW = 72;
constexpr int64_t kQueryLen = 8;

struct Fixture {
  data::Vocab vocab = data::Vocab::grounding_vocab();
  Tensor image;                         // [3, H, W]
  Tensor batched;                       // [1, 3, H, W]
  std::vector<int64_t> tokens;

  std::unique_ptr<core::YolloModel> yollo_r50;
  std::unique_ptr<core::YolloModel> yollo_r101;
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;

  Fixture() {
    Rng rng(123);
    data::SceneSamplerConfig scfg = data::SceneSamplerConfig::refcoco_style();
    scfg.width = kImgW;
    scfg.height = kImgH;
    const data::Scene scene = data::sample_scene(scfg, rng);
    image = data::render_scene(scene);
    batched = image.reshape({1, 3, kImgH, kImgW});
    tokens = data::pad_to(vocab.encode("the small red circle"), kQueryLen);

    core::YolloConfig ycfg;
    ycfg.img_h = kImgH;
    ycfg.img_w = kImgW;
    ycfg.max_query_len = kQueryLen;
    yollo_r50 = std::make_unique<core::YolloModel>(ycfg, vocab.size(), rng);
    yollo_r50->set_training(false);

    core::YolloConfig ycfg101 = ycfg;
    ycfg101.backbone = vision::BackboneConfig::r101_lite();
    yollo_r101 =
        std::make_unique<core::YolloModel>(ycfg101, vocab.size(), rng);
    yollo_r101->set_training(false);

    baseline::ProposerConfig pcfg;
    pcfg.img_h = kImgH;
    pcfg.img_w = kImgW;
    rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, rng);
    rpn->set_training(false);

    baseline::MatcherConfig mcfg;
    mcfg.vocab_size = vocab.size();
    listener = std::make_unique<baseline::ListenerMatcher>(mcfg, rng);
    speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, rng);
    listener->set_training(false);
    speaker->set_training(false);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_TwoStage_ProposalStage(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.rpn->propose(f.batched));
  }
}
BENCHMARK(BM_TwoStage_ProposalStage)->Unit(benchmark::kMillisecond);

void run_two_stage(benchmark::State& state, baseline::MatchMode mode) {
  Fixture& f = fixture();
  baseline::TwoStagePipeline pipeline(*f.rpn, *f.listener, *f.speaker, mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.ground(f.image, f.tokens));
  }
}

void BM_TwoStage_Listener(benchmark::State& state) {
  run_two_stage(state, baseline::MatchMode::kListener);
}
BENCHMARK(BM_TwoStage_Listener)->Unit(benchmark::kMillisecond);

void BM_TwoStage_Speaker(benchmark::State& state) {
  run_two_stage(state, baseline::MatchMode::kSpeaker);
}
BENCHMARK(BM_TwoStage_Speaker)->Unit(benchmark::kMillisecond);

void BM_TwoStage_SpeakerListener(benchmark::State& state) {
  run_two_stage(state, baseline::MatchMode::kEnsemble);
}
BENCHMARK(BM_TwoStage_SpeakerListener)->Unit(benchmark::kMillisecond);

void BM_YOLLO_R50Lite(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.yollo_r50->predict(f.batched, f.tokens));
  }
}
BENCHMARK(BM_YOLLO_R50Lite)->Unit(benchmark::kMillisecond);

void BM_YOLLO_R101Lite(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.yollo_r101->predict(f.batched, f.tokens));
  }
}
BENCHMARK(BM_YOLLO_R101Lite)->Unit(benchmark::kMillisecond);

// Summary mirroring the paper's table layout (seconds + speed-up ratios).
void print_summary() {
  Fixture& f = fixture();
  auto time_of = [](const std::function<void()>& fn) {
    return eval::time_per_call(fn, 5, 1);
  };
  const double proposal =
      time_of([&] { f.rpn->propose(f.batched); });
  baseline::TwoStagePipeline listener_pipe(*f.rpn, *f.listener, *f.speaker,
                                           baseline::MatchMode::kListener);
  baseline::TwoStagePipeline speaker_pipe(*f.rpn, *f.listener, *f.speaker,
                                          baseline::MatchMode::kSpeaker);
  baseline::TwoStagePipeline both_pipe(*f.rpn, *f.listener, *f.speaker,
                                       baseline::MatchMode::kEnsemble);
  const double listener_t =
      time_of([&] { listener_pipe.ground(f.image, f.tokens); });
  const double speaker_t =
      time_of([&] { speaker_pipe.ground(f.image, f.tokens); });
  const double both_t = time_of([&] { both_pipe.ground(f.image, f.tokens); });
  const double y50 = time_of([&] { f.yollo_r50->predict(f.batched, f.tokens); });
  const double y101 =
      time_of([&] { f.yollo_r101->predict(f.batched, f.tokens); });

  std::printf("\n== Table 5 — inference seconds per query ==\n");
  std::printf("| %-28s | %-22s |\n", "Models", "Seconds");
  std::printf("|------------------------------|------------------------|\n");
  std::printf("| %-28s | %.4f (+%.4f)        |\n", "speaker",
              speaker_t - proposal, proposal);
  std::printf("| %-28s | %.4f (+%.4f)        |\n", "listener",
              listener_t - proposal, proposal);
  std::printf("| %-28s | %.4f (+%.4f)        |\n", "speaker+listener",
              both_t - proposal, proposal);
  std::printf("| %-28s | %.4f                 |\n", "YOLLO (r50-lite C4)",
              y50);
  std::printf("| %-28s | %.4f                 |\n", "YOLLO (r101-lite C4)",
              y101);
  std::printf(
      "\nSpeed-ups over YOLLO r50-lite: speaker %.1fx, listener %.1fx,\n"
      "speaker+listener %.1fx (paper reports ~20-30x).\n",
      speaker_t / y50, listener_t / y50, both_t / y50);
}

}  // namespace

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  print_summary();
  return 0;
}
