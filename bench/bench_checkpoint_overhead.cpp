// Checkpoint overhead — what fault tolerance costs per training step.
//
// Trains the same small model three ways (no checkpointing, every 20 steps,
// every 5 steps), reports seconds/step and the overhead percentage, plus
// the raw save/load latency and on-disk size of one full-state checkpoint.
// Also reports the stability counters now carried by TrainResult.
#include <cstdio>
#include <filesystem>

#include "common.h"
#include "eval/metrics.h"
#include "optim/optim.h"
#include "runtime/checkpoint.h"

namespace yollo {
namespace {

struct RunStats {
  double sec_per_step = 0.0;
  core::TrainResult result;
};

RunStats timed_run(const data::GroundingDataset& dataset,
                   const data::Vocab& vocab, int64_t checkpoint_every,
                   const std::string& dir, int64_t steps) {
  core::BuildOptions options;
  options.config.num_rel2att = 2;
  options.pretrain_embeddings = false;
  auto model = core::build_yollo(dataset, vocab, options);

  core::TrainConfig tc;
  tc.epochs = 100000;  // step-capped
  tc.max_steps = steps;
  tc.batch_size = 16;
  tc.checkpoint_every = checkpoint_every;
  if (checkpoint_every > 0) tc.checkpoint_dir = dir;

  RunStats stats;
  stats.result = core::train_yollo(*model, dataset.train(), tc);
  stats.sec_per_step =
      stats.result.seconds / static_cast<double>(stats.result.steps);
  return stats;
}

}  // namespace
}  // namespace yollo

int main() {
  using namespace yollo;

  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t steps = scale.quick ? 60 : 200;
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(
      bench::bench_dataset_config(0, scale), vocab);
  const std::string dir = bench::cache_dir() + "/ckpt_overhead";

  std::printf("== Checkpoint overhead (%lld steps, batch 16) ==\n",
              static_cast<long long>(steps));

  const RunStats base = timed_run(dataset, vocab, 0, dir, steps);
  const RunStats sparse = timed_run(dataset, vocab, 20, dir, steps);
  const RunStats dense = timed_run(dataset, vocab, 5, dir, steps);

  auto report = [&](const char* name, const RunStats& s) {
    std::printf(
        "%-18s %8.2f ms/step  (+%5.1f%%)  final loss %.4f  "
        "skipped %lld  rollbacks %lld\n",
        name, s.sec_per_step * 1e3,
        100.0 * (s.sec_per_step / base.sec_per_step - 1.0),
        s.result.final_loss, static_cast<long long>(s.result.skipped_steps),
        static_cast<long long>(s.result.rollbacks));
  };
  report("no checkpoints", base);
  report("every 20 steps", sparse);
  report("every 5 steps", dense);

  // Raw save / load latency and file size for one full-state checkpoint.
  core::BuildOptions options;
  options.config.num_rel2att = 2;
  options.pretrain_embeddings = false;
  auto model = core::build_yollo(dataset, vocab, options);
  optim::Adam adam(model->parameters(), 1e-3f);
  runtime::CheckpointManager mgr(dir);
  runtime::TrainState state;
  state.step = steps;

  eval::Stopwatch save_watch;
  mgr.save(*model, adam, state);
  const double save_ms = save_watch.elapsed_seconds() * 1e3;

  eval::Stopwatch load_watch;
  runtime::TrainState loaded;
  mgr.load_latest(*model, adam, loaded);
  const double load_ms = load_watch.elapsed_seconds() * 1e3;

  const auto bytes = std::filesystem::file_size(mgr.latest_path());
  std::printf(
      "\ncheckpoint file: %.2f MiB  save %.2f ms  load %.2f ms  "
      "(params %lld)\n",
      static_cast<double>(bytes) / (1024.0 * 1024.0), save_ms, load_ms,
      static_cast<long long>(model->parameter_count()));
  return 0;
}
