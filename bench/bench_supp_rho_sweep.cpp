// Supplementary — the paper's §4.3 future-work claim, tested.
//
// "ACC@0.75 is lower mainly because we set the anchors with IoU greater
// than rho_high = 0.5 as the positive samples ... we believe that we can
// improve the performance under ACC and ACC@0.75 by setting rho_high to a
// properly larger value, e.g. 0.7, but we leave this to the future work."
//
// This bench runs that future work: YOLLO trained with rho_high in
// {0.5, 0.6, 0.7} under the ablation budget, reporting the full Table-3
// metric row for each. Expected shape: higher rho_high trades a little
// ACC@0.5 for better localisation quality (ACC@0.75 / mIoU) — or reveals
// the forced-positive fallback dominating when 0.7-IoU anchors get rare.
#include <cstdio>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(bench::bench_dataset_config(0, scale),
                                       vocab);

  eval::TableReporter table(
      {"rho_high", "ACC", "ACC@0.5", "ACC@0.75", "MIOU"});

  const float rhos[] = {0.5f, 0.6f, 0.7f};
  for (float rho : rhos) {
    core::YolloConfig cfg;
    cfg.rho_high = rho;
    const std::string tag =
        "yollo_SynthRef_rho" + std::to_string(static_cast<int>(rho * 100));
    bench::TrainedYollo trained = bench::get_trained_yollo(
        dataset, vocab, tag, cfg, scale.ablation_steps, scale);
    const auto preds =
        bench::capped_eval_yollo(*trained.model, dataset.val(), scale);
    const eval::MetricRow row = eval::compute_metrics(preds);
    table.add_row({eval::fmt(rho, 2), eval::fmt(100.0 * row.acc),
                   eval::fmt(100.0 * row.acc50),
                   eval::fmt(100.0 * row.acc75),
                   eval::fmt(100.0 * row.miou)});
  }

  table.print("Supplementary — rho_high sweep on SynthRef val (paper §4.3 "
              "future work)");
  table.write_csv(bench::cache_dir() + "/supp_rho_sweep.csv");
  return 0;
}
