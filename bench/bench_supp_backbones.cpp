// Supplementary — backbone ablation (paper footnote 1).
//
// "We also evaluate our model by with VGGNet as the backbone, where we do
// not observe a big drop." This bench trains YOLLO with a plain VGG-style
// (non-residual) backbone under the Table-4 training budget and compares it
// to the residual r50-lite model, expecting a modest (not catastrophic)
// difference, plus the r101-lite depth variant for completeness.
#include <cstdio>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(bench::bench_dataset_config(0, scale),
                                       vocab);

  eval::TableReporter table(
      {"Backbone", "Params", "val ACC@0.5", "val mIoU"});

  struct Variant {
    const char* label;
    vision::BackboneConfig backbone;
    const char* tag;
    int64_t steps;
  };
  const bench::BenchScale& s = scale;
  const Variant variants[] = {
      // The main model reuses the shared Table-2 checkpoint; the others
      // train at the ablation budget.
      {"r50-lite (residual)", vision::BackboneConfig::r50_lite(),
       "yollo_SynthRef", s.yollo_steps},
      {"vgg-lite (plain convs)", vision::BackboneConfig::vgg_lite(),
       "yollo_SynthRef_vgg", s.ablation_steps},
      {"r101-lite (3x deeper)", vision::BackboneConfig::r101_lite(),
       "yollo_SynthRef_r101", s.ablation_steps},
  };

  for (const Variant& variant : variants) {
    core::YolloConfig cfg;
    cfg.backbone = variant.backbone;
    bench::TrainedYollo trained = bench::get_trained_yollo(
        dataset, vocab, variant.tag, cfg, variant.steps, scale);
    const auto preds =
        bench::capped_eval_yollo(*trained.model, dataset.val(), scale);
    table.add_row({variant.label,
                   std::to_string(trained.model->parameter_count()),
                   eval::fmt(100.0 * eval::accuracy_at(preds, 0.5f)),
                   eval::fmt(eval::mean_iou(preds), 3)});
  }

  table.print("Supplementary — backbone variants on SynthRef");
  table.write_csv(bench::cache_dir() + "/supp_backbones.csv");
  std::printf(
      "\nPaper footnote 1: switching ResNet -> VGG backbone shows no big\n"
      "drop. Expected shape: vgg-lite within a modest margin of r50-lite\n"
      "(note the vgg/r101 rows train at the smaller ablation budget).\n");
  return 0;
}
