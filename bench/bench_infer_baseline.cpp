// Baseline measurement for BENCH_infer.json: the previous revision's
// inference path.
//
// This file is NOT built as part of the current tree. scripts/run_benchmarks.sh
// extracts the baseline revision from git (YOLLO_BASELINE_REV, the
// preceding perf PR's merge commit), copies this harness in, builds it
// against that tree, and runs it. It therefore uses only APIs that every
// candidate baseline revision has: eval-mode predict() and the
// InferenceService. The workload (dataset, image size, query, iteration
// counts, serve burst) mirrors bench_infer_latency.cpp exactly so the two
// JSON files are directly comparable.
//
// Usage: bench_infer_baseline [json-path]   (YOLLO_BENCH_SCALE honoured)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "common.h"
#include "data/renderer.h"
#include "serve/service.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  using namespace yollo;

  const char* json_path = argc > 1 ? argv[1] : "BENCH_baseline.json";
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t iters = scale.quick ? 15 : 40;
  const int64_t serve_requests = scale.quick ? 64 : 256;

  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = bench::bench_dataset_config(0, scale);
  dc.num_images = scale.quick ? 40 : 120;
  const data::GroundingDataset dataset(dc, vocab);

  core::YolloConfig cfg;
  cfg.img_h = dc.img_h;
  cfg.img_w = dc.img_w;
  cfg.max_query_len = dataset.max_query_len();
  Rng rng(cfg.seed);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);  // predict() requires caller-set eval mode here

  const data::GroundingSample& sample = dataset.train().front();
  const Tensor image = data::render_scene(sample.scene)
                           .reshape({1, 3, cfg.img_h, cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(sample.tokens, cfg.max_query_len);

  // Single-image predict: grad-on forward + decode, fresh allocations.
  for (int i = 0; i < 3; ++i) model.predict(image, tokens);  // warmup
  std::vector<double> per_image;
  per_image.reserve(static_cast<size_t>(iters));
  double total = 0.0;
  for (int64_t i = 0; i < iters; ++i) {
    const Clock::time_point start = Clock::now();
    model.predict(image, tokens);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    per_image.push_back(ms);
    total += ms;
  }
  std::sort(per_image.begin(), per_image.end());
  const double p50 = percentile(per_image, 0.50);
  const double p95 = percentile(per_image, 0.95);
  const double mean = total / static_cast<double>(iters);

  // Serve burst: same offered load as bench_infer_latency (4 workers, whole
  // burst admitted); this service runs one image per forward.
  serve::ServeConfig sc;
  sc.num_workers = 4;
  sc.queue_capacity = serve_requests;
  serve::InferenceService service(model, vocab, sc, nullptr);
  const Clock::time_point start = Clock::now();
  std::vector<std::future<serve::GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(serve_requests));
  for (int64_t i = 0; i < serve_requests; ++i) {
    const data::GroundingSample& s =
        dataset.train()[static_cast<size_t>(i) % dataset.train().size()];
    serve::GroundRequest request;
    request.image = data::render_scene(s.scene);
    request.query = s.query_text;
    futures.push_back(service.submit(std::move(request)));
  }
  int64_t answered = 0;
  for (auto& future : futures) {
    if (future.get().status.answered()) ++answered;
  }
  const double wall_sec =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  const double throughput =
      static_cast<double>(answered) / std::max(wall_sec, 1e-9);

  std::printf("baseline predict: p50 %.2f ms  p95 %.2f ms  mean %.2f ms\n",
              p50, p95, mean);
  std::printf("baseline serve:   %.1f req/s (%lld/%lld answered)\n",
              throughput, static_cast<long long>(answered),
              static_cast<long long>(serve_requests));

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"predict_p50_ms\": %.4f,\n  \"predict_p95_ms\": %.4f,\n"
               "  \"predict_mean_ms\": %.4f,\n  \"serve_throughput_rps\": "
               "%.2f,\n  \"serve_answered\": %lld,\n  \"serve_requests\": "
               "%lld\n}\n",
               p50, p95, mean, throughput, static_cast<long long>(answered),
               static_cast<long long>(serve_requests));
  std::fclose(json);
  std::printf("wrote %s\n", json_path);
  return 0;
}
