// Supplementary — per-category breakdown of grounding accuracy.
//
// The paper splits tests only into TestA (people) / TestB (others); a
// per-category breakdown is the natural supplementary analysis and probes
// whether the model's accuracy is uniform across object categories or
// dominated by easy shapes. Also reports accuracy bucketed by target size,
// the classic detection-analysis axis (small targets cover one stride-8
// cell and are hardest).
#include <array>
#include <cstdio>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(bench::bench_dataset_config(0, scale),
                                       vocab);
  core::YolloConfig cfg;
  bench::TrainedYollo trained = bench::get_trained_yollo(
      dataset, vocab, "yollo_SynthRef", cfg, scale.yollo_steps, scale);
  core::YolloModel& model = *trained.model;

  // Evaluate the validation split once, remembering each sample's category
  // and size class.
  struct Bucket {
    int64_t total = 0;
    int64_t hits = 0;
    double iou_sum = 0.0;
  };
  std::array<Bucket, data::kNumShapes> by_shape;
  std::array<Bucket, data::kNumSizes> by_size;

  const auto& split = dataset.val();
  const int64_t n =
      std::min<int64_t>(static_cast<int64_t>(split.size()), scale.eval_cap);
  const auto preds = core::evaluate_yollo(
      model, std::vector<data::GroundingSample>(split.begin(),
                                                split.begin() + n));
  for (int64_t i = 0; i < n; ++i) {
    const data::GroundingSample& s = split[static_cast<size_t>(i)];
    const float overlap =
        vision::iou(preds[static_cast<size_t>(i)].predicted, s.target_box());
    const data::SceneObject& target = s.scene.objects[s.target_index];
    auto& shape_bucket = by_shape[static_cast<size_t>(target.shape)];
    auto& size_bucket = by_size[static_cast<size_t>(target.size)];
    for (Bucket* b : {&shape_bucket, &size_bucket}) {
      ++b->total;
      b->hits += overlap > 0.5f;
      b->iou_sum += overlap;
    }
  }

  eval::TableReporter shapes({"Category", "#samples", "ACC@0.5", "mIoU"});
  for (int i = 0; i < data::kNumShapes; ++i) {
    const Bucket& b = by_shape[static_cast<size_t>(i)];
    if (b.total == 0) continue;
    shapes.add_row(
        {data::shape_name(static_cast<data::ShapeType>(i)),
         std::to_string(b.total),
         eval::fmt(100.0 * b.hits / std::max<int64_t>(b.total, 1)),
         eval::fmt(b.iou_sum / std::max<int64_t>(b.total, 1), 3)});
  }
  shapes.print("Supplementary — SynthRef val accuracy by target category");
  shapes.write_csv(bench::cache_dir() + "/supp_categories.csv");

  eval::TableReporter sizes({"Target size", "#samples", "ACC@0.5", "mIoU"});
  for (int i = 0; i < data::kNumSizes; ++i) {
    const Bucket& b = by_size[static_cast<size_t>(i)];
    if (b.total == 0) continue;
    sizes.add_row(
        {data::size_name(static_cast<data::SizeClass>(i)),
         std::to_string(b.total),
         eval::fmt(100.0 * b.hits / std::max<int64_t>(b.total, 1)),
         eval::fmt(b.iou_sum / std::max<int64_t>(b.total, 1), 3)});
  }
  sizes.print("Supplementary — SynthRef val accuracy by target size");
  sizes.write_csv(bench::cache_dir() + "/supp_sizes.csv");

  std::printf(
      "\nExpected shape: larger targets ground more accurately (small ones\n"
      "span a single stride-8 cell); person-analogue (circle) accuracy\n"
      "mirrors the TestA column of Table 2.\n");
  return 0;
}
