// Figure 4 — training curves on the three datasets.
//
// Paper: loss-vs-iteration curves for RefCOCO (red), RefCOCO+ (green),
// RefCOCOg (blue), converging within ~5000 iterations. This bench trains
// (or loads from cache) the same three models as Table 2 and prints the
// curves as an ASCII plot plus a combined CSV for external plotting. The
// expected shape: all three losses drop steeply within the first ~10% of
// steps and flatten, mirroring the paper's fast convergence.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common.h"

using namespace yollo;

namespace {

// Downsample a curve to `n` points (simple striding).
std::vector<core::CurvePoint> downsample(
    const std::vector<core::CurvePoint>& curve, size_t n) {
  if (curve.size() <= n) return curve;
  std::vector<core::CurvePoint> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(curve[i * curve.size() / n]);
  }
  out.push_back(curve.back());
  return out;
}

void ascii_plot(const std::vector<std::vector<core::CurvePoint>>& curves,
                const std::vector<std::string>& names) {
  constexpr int kRows = 16;
  constexpr int kCols = 72;
  float max_loss = 0.0f;
  int64_t max_step = 1;
  for (const auto& curve : curves) {
    for (const auto& p : curve) {
      max_loss = std::max(max_loss, std::min(p.total, 20.0f));
      max_step = std::max(max_step, p.step);
    }
  }
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  const char marks[] = {'r', 'g', 'b'};  // paper's colour coding
  for (size_t c = 0; c < curves.size(); ++c) {
    for (const auto& p : curves[c]) {
      const int col = static_cast<int>((kCols - 1) *
                                       static_cast<double>(p.step) / max_step);
      const float loss = std::min(p.total, 20.0f);
      int row = kRows - 1 -
                static_cast<int>((kRows - 1) * loss / std::max(max_loss, 1e-6f));
      row = std::clamp(row, 0, kRows - 1);
      canvas[static_cast<size_t>(row)][static_cast<size_t>(col)] =
          marks[c % 3];
    }
  }
  std::printf("\nloss\n");
  for (int r = 0; r < kRows; ++r) {
    const float level = max_loss * (kRows - 1 - r) / (kRows - 1);
    std::printf("%6.2f |%s\n", level, canvas[static_cast<size_t>(r)].c_str());
  }
  std::printf("       +%s\n", std::string(kCols, '-').c_str());
  std::printf("        0%*lld steps\n", kCols - 1,
              static_cast<long long>(max_step));
  for (size_t c = 0; c < names.size(); ++c) {
    std::printf("        %c = %s\n", marks[c % 3], names[c].c_str());
  }
}

}  // namespace

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  std::vector<std::vector<core::CurvePoint>> curves;
  std::vector<std::string> names;
  for (int which = 0; which < 3; ++which) {
    const data::GroundingDataset dataset(
        bench::bench_dataset_config(which, scale), vocab);
    core::YolloConfig cfg;
    bench::TrainedYollo trained = bench::get_trained_yollo(
        dataset, vocab, "yollo_" + bench::bench_dataset_name(which), cfg,
        scale.yollo_steps, scale);
    curves.push_back(downsample(trained.curve, 72));
    names.push_back(bench::bench_dataset_name(which));
  }

  ascii_plot(curves, names);

  // Combined CSV: step,loss per dataset (blank where a curve has no point).
  const std::string csv_path = bench::cache_dir() + "/fig4_curves.csv";
  std::ofstream csv(csv_path);
  csv << "dataset,step,total,att,cls,reg\n";
  for (size_t c = 0; c < curves.size(); ++c) {
    for (const auto& p : curves[c]) {
      csv << names[c] << ',' << p.step << ',' << p.total << ',' << p.att
          << ',' << p.cls << ',' << p.reg << '\n';
    }
  }
  std::printf(
      "\nFigure 4 reproduction: all curves should drop steeply early and\n"
      "flatten (paper: converged within 5000 of ~16k iterations).\n"
      "CSV written to %s\n",
      csv_path.c_str());

  // Quantify "fast convergence": loss at 20%% of steps vs final loss.
  for (size_t c = 0; c < curves.size(); ++c) {
    if (curves[c].size() < 5) continue;
    const float first = curves[c].front().total;
    const float at20 = curves[c][curves[c].size() / 5].total;
    const float last = curves[c].back().total;
    std::printf("%10s: first %.2f -> 20%%-mark %.2f -> final %.2f\n",
                names[c].c_str(), first, at20, last);
  }
  return 0;
}
