// Inference-engine latency — what each layer of the grad-free execution
// path buys (DESIGN.md §9).
//
// Part 1 measures the same single-image forward four ways:
//   grad_on       autograd graph recorded (the pre-refactor predict cost)
//   no_grad       ag::NoGradGuard — ops return plain leaves, no graph
//   no_grad_pool  + a long-lived PoolScope recycling tensor storage
//   predict       the production entry point (no-grad + pool + decode)
// and a batched forward at batch 8 (per-image cost). Part 2 drives the
// serving layer with the same burst of requests at batch_max 1 vs 8.
//
// The acceptance baseline is the previous perf PR's inference path, whose
// kernels each new perf PR also rewrites — measuring the current binary's
// grad_on mode would credit the baseline with those kernel wins. So
// scripts/run_benchmarks.sh builds the baseline revision from git, runs
// bench_infer_baseline on the identical workload, and passes the measured
// numbers here via --baseline_* flags; they land in the JSON as
// "baseline_prev" together with the speedups against them.
//
// Usage: bench_infer_latency [json-path]
//          [--baseline_predict_p50_ms=X] [--baseline_predict_p95_ms=X]
//          [--baseline_serve_rps=X] [--baseline_rev=SHA]
// (default json-path: BENCH_infer.json in the current directory;
// scripts/run_benchmarks.sh runs it from the repo root).
// YOLLO_BENCH_SCALE=quick shrinks the iteration counts.
//
// Alongside the latency JSON this writes METRICS_infer.json — a yollo::obs
// snapshot merging the global registry (gemm/conv/autograd counters when
// YOLLO_OBS=1) with the serve bursts' registries — and, when YOLLO_OBS=1,
// TRACE_infer.json with chrome://tracing spans for the kernel and serve
// stages.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.h"
#include "data/renderer.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/service.h"
#include "tensor/pool.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
};

// Time `iters` runs of `fn`; per-image latency is the run latency divided
// by `images_per_run` (for the batched mode).
LatencyStats time_runs(int64_t iters, int64_t images_per_run,
                       const std::function<void()>& fn) {
  for (int i = 0; i < 3; ++i) fn();  // warmup (also primes the pool)
  std::vector<double> per_image;
  per_image.reserve(static_cast<size_t>(iters));
  double total = 0.0;
  for (int64_t i = 0; i < iters; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count() /
        static_cast<double>(images_per_run);
    per_image.push_back(ms);
    total += ms;
  }
  std::sort(per_image.begin(), per_image.end());
  LatencyStats stats;
  stats.p50 = percentile(per_image, 0.50);
  stats.p95 = percentile(per_image, 0.95);
  stats.mean = total / static_cast<double>(iters);
  return stats;
}

struct ServePoint {
  double wall_sec = 0.0;
  double throughput = 0.0;  // answered per second
  double p50 = 0.0;
  double p95 = 0.0;
  int64_t answered = 0;
  int64_t batches = 0;
  int64_t max_batch = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_ratio = 0.0;  // hits / lookups; 0 when the cache is off
  // p50 batch-formation latency (enqueue of the batch head to dispatch)
  // per formed batch size, from the serve.formation_ms_b<k> histograms.
  std::vector<std::pair<int64_t, double>> formation_p50_ms;
  obs::MetricsSnapshot metrics;  // the service's registry after stop()
};

// Block until every worker reports warmed (plans compiled). The throughput
// clock must start after this: charging plan compilation to the measured
// window penalises whichever configuration compiles more per-size plans —
// that artefact is what made batch_max 8 read as 0.78x of batch_max 1.
void wait_for_warm(serve::InferenceService& service, int64_t workers) {
  const Clock::time_point give_up =
      Clock::now() + std::chrono::seconds(120);
  while (service.counters().workers_warmed < workers &&
         Clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// `cache_mb` stays 0 for the batching comparison: the cache favours small
// batch_max on a repeat-heavy burst (a solo request probes late enough to
// hit; a deep batch probes its repeats while the first sighting is still
// in flight and misses), so enabling it on both sides would confound the
// batch_max 1 vs 8 headline. The cached configuration runs separately.
ServePoint run_serve_burst(core::YolloModel& model, const data::Vocab& vocab,
                           const std::vector<data::GroundingSample>& samples,
                           int64_t batch_max, int64_t num_requests,
                           int64_t cache_mb) {
  serve::ServeConfig sc;
  sc.num_workers = 4;
  sc.queue_capacity = num_requests;  // admit the whole burst: same offered
  sc.batch_max = batch_max;          // load reaches the workers either way
  sc.feature_cache_mb = cache_mb;
  serve::InferenceService service(model, vocab, sc, nullptr);
  wait_for_warm(service, sc.num_workers);

  const Clock::time_point start = Clock::now();
  std::vector<std::future<serve::GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    const data::GroundingSample& sample =
        samples[static_cast<size_t>(i) % samples.size()];
    serve::GroundRequest request;
    request.image = data::render_scene(sample.scene);
    request.query = sample.query_text;
    futures.push_back(service.submit(std::move(request)));
  }
  std::vector<double> latencies;
  latencies.reserve(futures.size());
  ServePoint point;
  for (auto& future : futures) {
    const serve::GroundResponse response = future.get();
    if (response.status.answered()) {
      ++point.answered;
      latencies.push_back(response.latency_ms);
    }
  }
  point.wall_sec =
      std::chrono::duration<double>(Clock::now() - start).count();
  service.stop();
  point.metrics = service.metrics_snapshot();
  const serve::ServiceCounters counters =
      serve::counters_from_snapshot(point.metrics);
  point.batches = counters.batches_coalesced;
  point.max_batch = counters.max_batch;
  point.cache_hits = counters.cache_hits;
  point.cache_misses = counters.cache_misses;
  const int64_t lookups = point.cache_hits + point.cache_misses;
  point.cache_hit_ratio =
      lookups > 0 ? static_cast<double>(point.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  for (int64_t k = 1; k <= batch_max; ++k) {
    const obs::HistogramSnapshot* h = point.metrics.histogram(
        "serve.formation_ms_b" + std::to_string(k));
    if (h != nullptr && h->count > 0) {
      point.formation_p50_ms.emplace_back(k, h->quantile(0.50));
    }
  }
  point.throughput =
      static_cast<double>(point.answered) / std::max(point.wall_sec, 1e-9);
  std::sort(latencies.begin(), latencies.end());
  point.p50 = percentile(latencies, 0.50);
  point.p95 = percentile(latencies, 0.95);
  return point;
}

void print_row(const char* name, const LatencyStats& stats, double base_p50) {
  std::printf("%14s %10.2f %10.2f %10.2f %9.2fx\n", name, stats.p50,
              stats.p95, stats.mean, base_p50 / std::max(stats.p50, 1e-9));
}

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  using namespace yollo;

  const char* json_path = "BENCH_infer.json";
  double baseline_p50 = 0.0, baseline_p95 = 0.0, baseline_rps = 0.0;
  std::string baseline_rev;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto flag_value = [&](const char* prefix) -> const char* {
      const size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = flag_value("--baseline_predict_p50_ms=")) {
      baseline_p50 = std::atof(v);
    } else if (const char* v = flag_value("--baseline_predict_p95_ms=")) {
      baseline_p95 = std::atof(v);
    } else if (const char* v = flag_value("--baseline_serve_rps=")) {
      baseline_rps = std::atof(v);
    } else if (const char* v = flag_value("--baseline_rev=")) {
      baseline_rev = v;
    } else {
      json_path = arg;
    }
  }
  const bool have_baseline = baseline_p50 > 0.0;
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t iters = scale.quick ? 15 : 40;
  const int64_t batch = 8;
  const int64_t serve_requests = scale.quick ? 64 : 256;

  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = bench::bench_dataset_config(0, scale);
  dc.num_images = scale.quick ? 40 : 120;
  const data::GroundingDataset dataset(dc, vocab);

  // Latency does not depend on the weights, so the model is untrained.
  core::YolloConfig cfg;
  cfg.img_h = dc.img_h;
  cfg.img_w = dc.img_w;
  cfg.max_query_len = dataset.max_query_len();
  Rng rng(cfg.seed);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  const data::GroundingSample& sample = dataset.train().front();
  const Tensor image = data::render_scene(sample.scene)
                           .reshape({1, 3, cfg.img_h, cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(sample.tokens, cfg.max_query_len);

  Tensor batch_images({batch, 3, cfg.img_h, cfg.img_w});
  std::vector<int64_t> batch_tokens;
  const int64_t plane = 3 * cfg.img_h * cfg.img_w;
  for (int64_t i = 0; i < batch; ++i) {
    std::copy(image.data(), image.data() + plane,
              batch_images.data() + i * plane);
    batch_tokens.insert(batch_tokens.end(), tokens.begin(), tokens.end());
  }

  std::printf("== Inference-engine latency (%lldx%lld, %lld iters) ==\n",
              static_cast<long long>(cfg.img_h),
              static_cast<long long>(cfg.img_w),
              static_cast<long long>(iters));
  std::printf("%14s %10s %10s %10s %10s\n", "mode", "p50(ms)", "p95(ms)",
              "mean(ms)", "speedup");

  const LatencyStats grad_on = time_runs(
      iters, 1, [&] { model.forward(image, tokens); });
  const LatencyStats no_grad = time_runs(iters, 1, [&] {
    ag::NoGradGuard guard;
    model.forward(image, tokens);
  });
  LatencyStats no_grad_pool;
  {
    PoolScope pool;  // long-lived, as a serve worker holds it
    ag::NoGradGuard guard;
    no_grad_pool = time_runs(iters, 1, [&] { model.forward(image, tokens); });
  }
  const LatencyStats predict = time_runs(
      iters, 1, [&] { model.predict(image, tokens); });
  LatencyStats batched;
  {
    PoolScope pool;
    batched = time_runs(iters, batch, [&] {
      model.predict(batch_images, batch_tokens);
    });
  }

  print_row("grad_on", grad_on, grad_on.p50);
  print_row("no_grad", no_grad, grad_on.p50);
  print_row("no_grad_pool", no_grad_pool, grad_on.p50);
  print_row("predict", predict, grad_on.p50);
  print_row("batched_8", batched, grad_on.p50);
  if (have_baseline) {
    std::printf("%14s %10.2f %10.2f %10s %9s  (measured at %s)\n",
                "prev_predict", baseline_p50, baseline_p95, "-", "1.00x",
                baseline_rev.empty() ? "pre-refactor rev"
                                     : baseline_rev.c_str());
    std::printf("  speedup vs prev-revision baseline: predict %.2fx, "
                "no_grad_pool %.2fx, batched_8 %.2fx\n",
                baseline_p50 / std::max(predict.p50, 1e-9),
                baseline_p50 / std::max(no_grad_pool.p50, 1e-9),
                baseline_p50 / std::max(batched.p50, 1e-9));
  }

  std::printf("\n== Serve burst: batch_max 1 vs %lld (4 workers, %lld "
              "requests, best of 3 interleaved trials) ==\n",
              static_cast<long long>(batch),
              static_cast<long long>(serve_requests));
  // Four workers time-sharing this box swing single-trial throughput by
  // ±20%; interleaved trials with best-of-3 per configuration keep a
  // scheduler hiccup from landing on one side of the comparison.
  ServePoint serve1, serve8;
  for (int trial = 0; trial < 3; ++trial) {
    ServePoint b1 =
        run_serve_burst(model, vocab, dataset.train(), 1, serve_requests, 0);
    ServePoint b8 = run_serve_burst(model, vocab, dataset.train(), batch,
                                    serve_requests, 0);
    if (b1.throughput > serve1.throughput) serve1 = std::move(b1);
    if (b8.throughput > serve8.throughput) serve8 = std::move(b8);
  }
  // Third configuration: same burst with the backbone feature cache on,
  // for the hit ratio the repeat-heavy workload earns (the burst cycles
  // the dataset, so roughly every later repeat of an image can hit).
  const ServePoint serve8c = run_serve_burst(
      model, vocab, dataset.train(), batch, serve_requests, 32);
  std::printf(
      "  batch_max=1: %6.1f req/s  p50 %7.2f ms  p95 %7.2f ms\n"
      "  batch_max=%lld: %6.1f req/s  p50 %7.2f ms  p95 %7.2f ms  "
      "(%lld coalesced forwards, largest %lld)\n"
      "  throughput gain: %.2fx\n",
      serve1.throughput, serve1.p50, serve1.p95,
      static_cast<long long>(batch), serve8.throughput, serve8.p50,
      serve8.p95, static_cast<long long>(serve8.batches),
      static_cast<long long>(serve8.max_batch),
      serve8.throughput / std::max(serve1.throughput, 1e-9));
  std::printf("  batch_max=%lld + feature cache: %6.1f req/s  p50 %7.2f ms"
              "  (cache hit ratio %.1f%%)\n",
              static_cast<long long>(batch), serve8c.throughput, serve8c.p50,
              serve8c.cache_hit_ratio * 100.0);
  std::printf("  formation p50 by batch size (batch_max=%lld run):",
              static_cast<long long>(batch));
  for (const std::pair<int64_t, double>& f : serve8.formation_p50_ms) {
    std::printf("  b%lld %.3fms", static_cast<long long>(f.first), f.second);
  }
  std::printf("\n");
  if (have_baseline && baseline_rps > 0.0) {
    std::printf("  vs prev-revision service (%.1f req/s): %.2fx\n", baseline_rps,
                serve8.throughput / baseline_rps);
  }

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  const auto emit = [&](const char* name, const LatencyStats& stats,
                        const char* tail) {
    std::fprintf(json,
                 "    \"%s\": {\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                 "\"mean_ms\": %.4f}%s\n",
                 name, stats.p50, stats.p95, stats.mean, tail);
  };
  std::fprintf(json, "{\n  \"img_h\": %lld,\n  \"img_w\": %lld,\n"
               "  \"iters\": %lld,\n  \"single_image\": {\n",
               static_cast<long long>(cfg.img_h),
               static_cast<long long>(cfg.img_w),
               static_cast<long long>(iters));
  emit("grad_on", grad_on, ",");
  emit("no_grad", no_grad, ",");
  emit("no_grad_pool", no_grad_pool, ",");
  emit("predict", predict, ",");
  emit("batched_8_per_image", batched, "");
  std::fprintf(json,
               "  },\n  \"speedup_no_grad_pool_vs_grad_on\": %.3f,\n"
               "  \"speedup_batched_8_vs_grad_on\": %.3f,\n",
               grad_on.p50 / std::max(no_grad_pool.p50, 1e-9),
               grad_on.p50 / std::max(batched.p50, 1e-9));
  if (have_baseline) {
    std::fprintf(
        json,
        "  \"baseline_prev\": {\n"
        "    \"rev\": \"%s\",\n"
        "    \"predict_p50_ms\": %.4f,\n"
        "    \"predict_p95_ms\": %.4f,\n"
        "    \"serve_throughput_rps\": %.2f,\n"
        "    \"speedup_predict_vs_prev\": %.3f,\n"
        "    \"speedup_no_grad_pool_vs_prev\": %.3f,\n"
        "    \"speedup_batched_8_vs_prev\": %.3f\n  },\n",
        baseline_rev.c_str(), baseline_p50, baseline_p95, baseline_rps,
        baseline_p50 / std::max(predict.p50, 1e-9),
        baseline_p50 / std::max(no_grad_pool.p50, 1e-9),
        baseline_p50 / std::max(batched.p50, 1e-9));
  }
  const auto emit_serve = [&](const char* name, const ServePoint& point,
                              const char* tail) {
    std::fprintf(json,
                 "    \"%s\": {\"throughput_rps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p95_ms\": %.3f, \"answered\": %lld, "
                 "\"coalesced_forwards\": %lld, \"max_batch\": %lld, "
                 "\"cache_hit_ratio\": %.4f, \"formation_p50_ms\": {",
                 name, point.throughput, point.p50, point.p95,
                 static_cast<long long>(point.answered),
                 static_cast<long long>(point.batches),
                 static_cast<long long>(point.max_batch),
                 point.cache_hit_ratio);
    for (size_t i = 0; i < point.formation_p50_ms.size(); ++i) {
      std::fprintf(json, "%s\"b%lld\": %.4f", i == 0 ? "" : ", ",
                   static_cast<long long>(point.formation_p50_ms[i].first),
                   point.formation_p50_ms[i].second);
    }
    std::fprintf(json, "}}%s\n", tail);
  };
  std::fprintf(json, "  \"serve_burst\": {\n");
  emit_serve("batch_max_1", serve1, ",");
  emit_serve("batch_max_8", serve8, ",");
  emit_serve("batch_max_8_cached", serve8c, ",");
  std::fprintf(json, "    \"requests\": %lld,\n    \"workers\": 4,\n"
               "    \"throughput_gain_vs_batch_max_1\": %.3f",
               static_cast<long long>(serve_requests),
               serve8.throughput / std::max(serve1.throughput, 1e-9));
  if (have_baseline && baseline_rps > 0.0) {
    std::fprintf(json, ",\n    \"throughput_gain_vs_prev\": %.3f",
                 serve8.throughput / baseline_rps);
  }
  std::fprintf(json, "\n  }\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path);

  // Observability artefacts next to the latency JSON: a merged metrics
  // snapshot always (global registry = kernel/autograd counters, plus the
  // per-service registries from both serve bursts), and a chrome://tracing
  // file when YOLLO_OBS=1 turned the span hooks on.
  std::string out_dir(json_path);
  const size_t slash = out_dir.find_last_of('/');
  out_dir = slash == std::string::npos ? std::string()
                                       : out_dir.substr(0, slash + 1);
  obs::MetricsSnapshot metrics = obs::MetricsRegistry::global().snapshot();
  metrics.merge(serve1.metrics);
  metrics.merge(serve8.metrics);
  metrics.merge(serve8c.metrics);
  const std::string metrics_path = out_dir + "METRICS_infer.json";
  if (metrics.write_json(metrics_path)) {
    std::printf("wrote %s\n", metrics_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
  }
  if (obs::enabled()) {
    const std::string trace_path = out_dir + "TRACE_infer.json";
    if (obs::dump_trace(trace_path)) {
      std::printf("wrote %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    }
  }
  return 0;
}
