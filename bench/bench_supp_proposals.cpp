// Supplementary — the two-stage recall/latency trade-off.
//
// The paper's related-work section notes that fast proposal models "have to
// increase the number of proposals to improve the recall rate", and its
// intro blames two-stage inaccuracy on the proposal recall ceiling and its
// slowness on per-proposal matching. This bench quantifies both sides on
// the trained stage-i proposer: target recall@0.5 and end-to-end listener
// latency as the proposal budget grows. Expected shape: recall saturates
// while latency keeps climbing roughly linearly — the trade-off YOLLO's
// one-stage design removes.
#include <cstdio>

#include "common.h"
#include "data/renderer.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(bench::bench_dataset_config(0, scale),
                                       vocab);
  bench::TrainedTwoStage stack = bench::get_trained_two_stage(
      dataset, vocab, "twostage_SynthRef", scale);
  stack.rpn->set_training(false);
  stack.listener->set_training(false);

  // Recall of the target box among top-N proposals, over capped val.
  const int64_t n_eval = std::min<int64_t>(
      static_cast<int64_t>(dataset.val().size()), scale.eval_cap / 2);
  const int64_t budgets[] = {1, 2, 4, 8, 16, 32};

  eval::TableReporter table(
      {"# proposals", "target recall@0.5", "listener ms/query"});
  for (int64_t budget : budgets) {
    int64_t hits = 0;
    for (int64_t i = 0; i < n_eval; ++i) {
      const data::GroundingSample& s =
          dataset.val()[static_cast<size_t>(i)];
      const Tensor image = data::render_scene(s.scene).reshape(
          {1, 3, s.scene.height, s.scene.width});
      for (const baseline::Proposal& p : stack.rpn->propose(image, budget)) {
        if (vision::iou(p.box, s.target_box()) >= 0.5f) {
          ++hits;
          break;
        }
      }
    }
    const double recall =
        static_cast<double>(hits) / static_cast<double>(n_eval);

    // Listener latency at this budget: score `budget` proposals per query.
    const data::GroundingSample& probe = dataset.val().front();
    const Tensor image = data::render_scene(probe.scene);
    const Tensor batched =
        image.reshape({1, 3, probe.scene.height, probe.scene.width});
    const auto proposals = stack.rpn->propose(batched, budget);
    const double seconds = eval::time_per_call(
        [&] {
          stack.listener->score_proposals(image, proposals, probe.tokens);
        },
        /*iters=*/5, /*warmup=*/1);

    table.add_row({std::to_string(budget), eval::fmt(100.0 * recall),
                   eval::fmt(seconds * 1e3)});
  }

  table.print(
      "Supplementary — proposal budget vs recall ceiling vs matching cost");
  table.write_csv(bench::cache_dir() + "/supp_proposals.csv");
  std::printf(
      "\nExpected shape: recall saturates well below 100%% while matching\n"
      "latency grows ~linearly with the budget — the two-stage trade-off\n"
      "the paper's one-stage design eliminates.\n");
  return 0;
}
