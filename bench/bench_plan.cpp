// Static forward-plan benchmark (DESIGN.md §14): what compiling the
// grad-free forward into an arena-backed plan buys over the dynamic path.
//
// Measures, on one model at the bench canvas geometry:
//   predict  planned vs dynamic p50/p95 per image, batch 1 and batch 4
//   infer    the serve-style forward (long-lived worker PoolScope) planned
//            vs dynamic, batch 1
// and reports the memory trade: the plan arenas' resident bytes against the
// dynamic path's pool outstanding bytes for the same workload.
//
// The acceptance line (ISSUE 8) is planned predict p50 >= 1.15x faster than
// the dynamic path in the same binary; "speedup_predict_p50" in the JSON is
// that ratio.
//
// Usage: bench_plan [json-path]   (default ./BENCH_plan.json)
// YOLLO_BENCH_SCALE=quick shrinks the iteration counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/yollo.h"
#include "plan/plan.h"
#include "tensor/pool.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct LatencyStats {
  double p50 = 0.0;
  double p95 = 0.0;
};

LatencyStats time_runs(int64_t iters, int64_t images_per_run,
                       const std::function<void()>& fn) {
  for (int i = 0; i < 3; ++i) fn();  // warmup: plan compile, pool, scratch
  std::vector<double> per_image;
  per_image.reserve(static_cast<size_t>(iters));
  for (int64_t i = 0; i < iters; ++i) {
    const Clock::time_point start = Clock::now();
    fn();
    per_image.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count() /
        static_cast<double>(images_per_run));
  }
  std::sort(per_image.begin(), per_image.end());
  return LatencyStats{percentile(per_image, 0.50),
                      percentile(per_image, 0.95)};
}

int run(const char* json_path) {
  const bool quick = [] {
    const char* s = std::getenv("YOLLO_BENCH_SCALE");
    return s != nullptr && std::string(s) == "quick";
  }();
  const int64_t iters = quick ? 30 : 200;

  // Bench canvas geometry (the SynthRef datasets render 48x72).
  core::YolloConfig cfg;
  cfg.img_h = 48;
  cfg.img_w = 72;
  cfg.max_query_len = 8;
  Rng rng(20260809);
  core::YolloModel model(cfg, 200, rng);
  model.set_training(false);

  const int64_t batches[] = {1, 4};
  struct Mode {
    LatencyStats planned, dynamic;
  };
  Mode predict_stats[2];

  Rng irng(7);
  for (int bi = 0; bi < 2; ++bi) {
    const int64_t b = batches[bi];
    const Tensor images = Tensor::rand({b, 3, cfg.img_h, cfg.img_w}, irng);
    std::vector<int64_t> tokens;
    for (int64_t i = 0; i < b * cfg.max_query_len; ++i) {
      tokens.push_back(3 + (i % 40));
    }
    plan::set_enabled(true);
    model.warm_plan(b);
    predict_stats[bi].planned =
        time_runs(iters, b, [&] { model.predict(images, tokens); });
    plan::set_enabled(false);
    predict_stats[bi].dynamic =
        time_runs(iters, b, [&] { model.predict(images, tokens); });
    plan::set_enabled(true);
  }

  // Serve-style forward: infer() under a long-lived worker pool, batch 1.
  const Tensor simg = Tensor::rand({1, 3, cfg.img_h, cfg.img_w}, irng);
  const std::vector<int64_t> stok(static_cast<size_t>(cfg.max_query_len), 3);
  LatencyStats infer_planned, infer_dynamic;
  int64_t arena_bytes = 0;
  int64_t pool_bytes = 0;
  {
    PoolScope worker_pool;
    plan::set_enabled(true);
    model.warm_plan(1);
    infer_planned = time_runs(iters, 1, [&] { model.infer(simg, stok); });
    arena_bytes = model.plan_cache_stats().arena_bytes;
    plan::set_enabled(false);
    infer_dynamic = time_runs(iters, 1, [&] { model.infer(simg, stok); });
    pool_bytes = worker_pool.outstanding_bytes();
    plan::set_enabled(true);
  }

  const double speedup_p50 =
      predict_stats[0].planned.p50 > 0.0
          ? predict_stats[0].dynamic.p50 / predict_stats[0].planned.p50
          : 0.0;

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"img_h\": %lld,\n  \"img_w\": %lld,\n"
               "  \"iters\": %lld,\n",
               static_cast<long long>(cfg.img_h),
               static_cast<long long>(cfg.img_w),
               static_cast<long long>(iters));
  for (int bi = 0; bi < 2; ++bi) {
    std::fprintf(
        json,
        "  \"predict_batch%lld\": {\n"
        "    \"planned_p50_ms\": %.4f,\n    \"planned_p95_ms\": %.4f,\n"
        "    \"dynamic_p50_ms\": %.4f,\n    \"dynamic_p95_ms\": %.4f,\n"
        "    \"speedup_p50\": %.3f\n  },\n",
        static_cast<long long>(batches[bi]), predict_stats[bi].planned.p50,
        predict_stats[bi].planned.p95, predict_stats[bi].dynamic.p50,
        predict_stats[bi].dynamic.p95,
        predict_stats[bi].planned.p50 > 0.0
            ? predict_stats[bi].dynamic.p50 / predict_stats[bi].planned.p50
            : 0.0);
  }
  std::fprintf(
      json,
      "  \"infer_pooled\": {\n"
      "    \"planned_p50_ms\": %.4f,\n    \"planned_p95_ms\": %.4f,\n"
      "    \"dynamic_p50_ms\": %.4f,\n    \"dynamic_p95_ms\": %.4f\n  },\n"
      "  \"arena_bytes\": %lld,\n  \"pool_outstanding_bytes\": %lld,\n"
      "  \"speedup_predict_p50\": %.3f\n}\n",
      infer_planned.p50, infer_planned.p95, infer_dynamic.p50,
      infer_dynamic.p95, static_cast<long long>(arena_bytes),
      static_cast<long long>(pool_bytes), speedup_p50);
  std::fclose(json);

  std::printf(
      "bench_plan: predict b1 planned p50 %.4f ms vs dynamic %.4f ms "
      "(%.2fx); b4 planned %.4f vs dynamic %.4f; arena %lld B, pool %lld B\n",
      predict_stats[0].planned.p50, predict_stats[0].dynamic.p50, speedup_p50,
      predict_stats[1].planned.p50, predict_stats[1].dynamic.p50,
      static_cast<long long>(arena_bytes), static_cast<long long>(pool_bytes));
  return 0;
}

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  return yollo::run(argc > 1 ? argv[1] : "BENCH_plan.json");
}
