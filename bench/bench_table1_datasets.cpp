// Table 1 — dataset statistics.
//
// Paper: #images / #queries / #targets for RefCOCO, RefCOCO+, RefCOCOg,
// plus the §4.1 prose statistics (average query length ~3.6 vs ~8.43 words,
// average same-category object count ~3.9 vs ~1.6). This bench builds the
// three synthetic substitutes at bench scale and prints the same rows; the
// prose statistics are the ones the substitution is required to preserve.
#include <cstdio>

#include "common.h"
#include "eval/metrics.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  eval::TableReporter table({"Dataset", "# images", "# queries", "# targets",
                             "avg |query|", "avg same-type"});
  std::printf("Reproducing Table 1 (dataset statistics); paper reference:\n");
  std::printf("  RefCOCO  19,994 img / 142,209 q / 50,000 t, |q|~3.6, 3.9 same-type\n");
  std::printf("  RefCOCO+ 19,992 img / 141,564 q / 49,856 t, |q|~3.6, 3.9 same-type\n");
  std::printf("  RefCOCOg 26,711 img /  85,474 q / 49,822 t, |q|~8.4, 1.6 same-type\n");

  for (int which = 0; which < 3; ++which) {
    const data::GroundingDataset dataset(
        bench::bench_dataset_config(which, scale), vocab);
    const data::DatasetStats st = dataset.stats();
    table.add_row({bench::bench_dataset_name(which),
                   std::to_string(st.num_images),
                   std::to_string(st.num_queries),
                   std::to_string(st.num_targets), eval::fmt(st.avg_query_len),
                   eval::fmt(st.avg_same_type)});
  }
  table.print("Table 1 (synthetic substitutes)");
  table.write_csv(bench::cache_dir() + "/table1.csv");
  std::printf("\nCSV written to %s/table1.csv\n", bench::cache_dir().c_str());
  return 0;
}
