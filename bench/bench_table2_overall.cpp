// Table 2 — overall ACC@0.5 comparison and cross-dataset generalisation.
//
// Paper rows: two-stage baselines (MMI, CMN, speaker/listener/reinforcer
// variants, ...) versus YOLLO on RefCOCO{,+,g} val/TestA/TestB, plus YOLLO
// trained on one dataset and tested on the others. We reproduce the
// *structure*: three two-stage pipelines (listener / speaker / ensemble on
// trained RPN proposals) versus YOLLO on the three synthetic datasets, plus
// the 3x3 generalisation block. The expected shape: YOLLO beats every
// two-stage pipeline on its home dataset, and cross-dataset rows degrade
// gracefully (most towards SynthRef+, whose queries avoid location words).
#include <cstdio>
#include <vector>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  // Build the three datasets once.
  std::vector<std::unique_ptr<data::GroundingDataset>> datasets;
  for (int which = 0; which < 3; ++which) {
    datasets.push_back(std::make_unique<data::GroundingDataset>(
        bench::bench_dataset_config(which, scale), vocab));
  }

  eval::TableReporter table({"Method", "SynthRef val", "SynthRef TestA",
                             "SynthRef TestB", "SynthRef+ val",
                             "SynthRef+ TestA", "SynthRef+ TestB",
                             "SynthRefG val"});

  auto row_for = [&](const std::string& name,
                     const std::function<std::vector<eval::Prediction>(
                         const std::vector<data::GroundingSample>&,
                         int64_t)>& eval_split) {
    std::vector<std::string> cells = {name};
    for (int which = 0; which < 3; ++which) {
      const data::GroundingDataset& ds = *datasets[which];
      std::vector<const std::vector<data::GroundingSample>*> splits;
      if (which == 2) {
        splits = {&ds.val()};
      } else {
        splits = {&ds.val(), &ds.test_a(), &ds.test_b()};
      }
      for (const auto* split : splits) {
        const auto preds = eval_split(*split, ds.max_query_len());
        cells.push_back(eval::fmt(100.0 * eval::accuracy_at(preds, 0.5f)));
      }
    }
    table.add_row(cells);
  };

  // --- two-stage baselines (trained on SynthRef, like the paper's
  // proposal-based baselines which all consume COCO-trained proposals).
  bench::TrainedTwoStage two_stage = bench::get_trained_two_stage(
      *datasets[0], vocab, "twostage_SynthRef", scale);
  two_stage.rpn->set_training(false);
  two_stage.listener->set_training(false);
  two_stage.speaker->set_training(false);
  for (baseline::MatchMode mode :
       {baseline::MatchMode::kListener, baseline::MatchMode::kSpeaker,
        baseline::MatchMode::kEnsemble}) {
    baseline::TwoStagePipeline pipeline(*two_stage.rpn, *two_stage.listener,
                                        *two_stage.speaker, mode);
    row_for(std::string("two-stage ") + baseline::match_mode_name(mode),
            [&](const std::vector<data::GroundingSample>& split,
                int64_t max_len) {
              return bench::capped_eval_two_stage(pipeline, split, max_len,
                                                  scale);
            });
  }

  // --- YOLLO trained on each dataset, evaluated everywhere (generalisation
  // block included).
  std::vector<bench::TrainedYollo> models;
  for (int which = 0; which < 3; ++which) {
    core::YolloConfig cfg;
    models.push_back(bench::get_trained_yollo(
        *datasets[which], vocab,
        "yollo_" + bench::bench_dataset_name(which), cfg, scale.yollo_steps,
        scale));
  }
  for (int trained_on = 0; trained_on < 3; ++trained_on) {
    core::YolloModel& model = *models[static_cast<size_t>(trained_on)].model;
    row_for("YOLLO (trained on " + bench::bench_dataset_name(trained_on) + ")",
            [&](const std::vector<data::GroundingSample>& split, int64_t) {
              return bench::capped_eval_yollo(model, split, scale);
            });
  }

  table.print("Table 2 — ACC@0.5 (%), two-stage baselines vs YOLLO");
  table.write_csv(bench::cache_dir() + "/table2.csv");
  std::printf(
      "\nExpected shape vs paper: YOLLO tops every column on its home\n"
      "dataset (paper: 91.6/91.8/91.5 vs best two-stage 73.8); cross-dataset\n"
      "rows remain competitive but lower (paper: e.g. 68.3 on RefCOCO when\n"
      "trained on RefCOCO+).\nCSV written to %s/table2.csv\n",
      bench::cache_dir().c_str());
  return 0;
}
