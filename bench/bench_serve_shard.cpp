// Sharded-router capacity and chaos benchmark.
//
// Open-loop load generation (Poisson arrivals on an absolute schedule — the
// generator never slows down because the server is slow, which is what
// exposes the latency knee that closed-loop drivers hide) against
// yollo::serve::Router, in three parts:
//
//   1. latency-vs-offered-load sweep, 1 shard vs 3 shards, to locate the
//      knee: the highest offered rate each fleet sustains with >= 99% of
//      requests answered inside the SLO deadline;
//   2. an SLO report line per fleet (p99 of answered latency at the knee);
//   3. a chaos leg per fault mode (kill / poison / slow): one of the three
//      shards is broken mid-run while the generator keeps offering load.
//      Every request must resolve with a typed status (zero lost), the
//      router accounting invariant must hold exactly, and post-failure
//      throughput must stay >= (N-1)/N of the healthy window.
//
// Usage: bench_serve_shard [json-path]   (default: BENCH_serve_shard.json)
// YOLLO_BENCH_SCALE=quick shrinks the sweep for smoke runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "data/renderer.h"
#include "serve/router.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct Workload {
  const data::GroundingDataset* dataset = nullptr;
  std::vector<Tensor> images;  // pre-rendered: generation must be cheap
  std::vector<std::string> queries;

  serve::RouteRequest request(size_t i) const {
    serve::RouteRequest req;
    req.image = images[i % images.size()];  // storage shared, no copy
    req.query = queries[i % queries.size()];
    req.image_id = "bench-" + std::to_string(i % images.size());
    return req;
  }
};

serve::RouterConfig fleet_config(int64_t num_shards) {
  serve::RouterConfig rc;
  rc.num_shards = num_shards;
  rc.shard.num_workers = 2;
  rc.shard.queue_capacity = 64;
  rc.shard.max_retries = 1;
  return rc;
}

struct LoadPoint {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  // answered per second of wall time
  int64_t submitted = 0;
  int64_t answered = 0;
  int64_t degraded = 0;
  int64_t rejected = 0;
  int64_t deadline = 0;
  int64_t failed = 0;
  int64_t hedges = 0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  // Time-to-verdict for deadline-missed requests: p95 latency of
  // kDeadlineExceeded responses. With cooperative cancellation a doomed
  // forward aborts at a kernel checkpoint right after the deadline; without
  // it the verdict waits for the full (injected) forward.
  double dl_p95 = 0.0;
  double wall_sec = 0.0;
  bool invariant_ok = false;
  bool slo_ok = false;  // >= 99% answered inside the deadline
};

// One open-loop run: Poisson arrivals at `offered_rps` against `router`.
// `on_request` (optional) fires once after `chaos_at` submissions — the
// chaos legs use it to break a shard mid-run from a side thread.
LoadPoint run_open_loop(serve::Router& router, const Workload& load,
                        double offered_rps, int64_t num_requests,
                        int64_t deadline_ms, uint64_t seed,
                        int64_t chaos_at = -1,
                        void (*chaos)(serve::Router&) = nullptr,
                        std::vector<int64_t>* windows = nullptr,
                        std::vector<double>* window_answered = nullptr) {
  Rng arrivals(seed);
  std::vector<std::future<serve::RouteResponse>> futures;
  futures.reserve(static_cast<size_t>(num_requests));
  std::thread chaos_thread;

  const Clock::time_point start = Clock::now();
  Clock::time_point next = start;
  for (int64_t i = 0; i < num_requests; ++i) {
    // Exponential inter-arrival: an absolute schedule, so a stalled server
    // faces a growing backlog instead of a politely pausing generator.
    const double u =
        std::max(1e-9, 1.0 - static_cast<double>(arrivals.uniform()));
    next += std::chrono::microseconds(
        static_cast<int64_t>(-std::log(u) / offered_rps * 1e6));
    std::this_thread::sleep_until(next);
    if (i == chaos_at && chaos != nullptr) {
      // kill_shard blocks while the victim drains; a side thread keeps the
      // generator open-loop through the failure.
      chaos_thread = std::thread([&router, chaos] { chaos(router); });
    }
    serve::RouteRequest request = load.request(static_cast<size_t>(i));
    request.deadline_ms = deadline_ms;
    futures.push_back(router.submit(std::move(request)));
  }

  LoadPoint point;
  point.offered_rps = offered_rps;
  std::vector<double> latencies;
  std::vector<double> dl_latencies;
  latencies.reserve(futures.size());
  int64_t lost = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].wait_for(std::chrono::minutes(5)) !=
        std::future_status::ready) {
      ++lost;  // must stay 0: the router contract says every future resolves
      continue;
    }
    const serve::RouteResponse response = futures[i].get();
    if (response.status.code == serve::StatusCode::kDeadlineExceeded) {
      dl_latencies.push_back(response.latency_ms);
    }
    if (response.status.answered()) {
      latencies.push_back(response.latency_ms);
      if (windows != nullptr) {
        // Per-window goodput for the chaos legs (windowed by submit index).
        for (size_t w = 0; w < windows->size(); ++w) {
          if (static_cast<int64_t>(i) < (*windows)[w]) {
            (*window_answered)[w] += 1.0;
            break;
          }
        }
      }
    }
  }
  point.wall_sec =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (chaos_thread.joinable()) chaos_thread.join();

  const serve::RouterCounters counters = router.counters();
  point.submitted = counters.submitted;
  point.answered = counters.served;
  point.degraded = counters.degraded;
  point.rejected = counters.rejected;
  point.deadline = counters.deadline_exceeded;
  point.failed = counters.failed;
  point.hedges = counters.hedges_launched;
  point.invariant_ok =
      lost == 0 &&
      counters.served + counters.rejected + counters.deadline_exceeded +
              counters.failed ==
          counters.submitted;
  point.achieved_rps =
      static_cast<double>(point.answered) / std::max(point.wall_sec, 1e-9);
  std::sort(latencies.begin(), latencies.end());
  point.p50 = percentile(latencies, 0.50);
  point.p95 = percentile(latencies, 0.95);
  point.p99 = percentile(latencies, 0.99);
  std::sort(dl_latencies.begin(), dl_latencies.end());
  point.dl_p95 = percentile(dl_latencies, 0.95);
  const int64_t in_slo = point.answered;  // answers past deadline are typed
  point.slo_ok = point.submitted > 0 &&
                 static_cast<double>(in_slo) >=
                     0.99 * static_cast<double>(point.submitted);
  return point;
}

void print_point(const char* fleet, const LoadPoint& p) {
  std::printf(
      "%8s %9.0f %9.1f %9lld %8lld %8lld %8lld %9.2f %9.2f %9.2f  %s%s\n",
      fleet, p.offered_rps, p.achieved_rps,
      static_cast<long long>(p.submitted), static_cast<long long>(p.answered),
      static_cast<long long>(p.rejected + p.failed),
      static_cast<long long>(p.deadline), p.p50, p.p95, p.p99,
      p.slo_ok ? "slo-ok" : "SLO-MISS", p.invariant_ok ? "" : " INVARIANT!");
}

void json_point(FILE* json, const LoadPoint& p, const char* indent,
                bool last) {
  std::fprintf(json,
               "%s{\"offered_rps\": %.0f, \"achieved_rps\": %.1f, "
               "\"submitted\": %lld, \"answered\": %lld, \"degraded\": %lld, "
               "\"rejected\": %lld, \"deadline_exceeded\": %lld, "
               "\"failed\": %lld, \"hedges\": %lld, "
               "\"p50_ms\": %.2f, \"p95_ms\": %.2f, \"p99_ms\": %.2f, "
               "\"slo_ok\": %s, \"invariant_ok\": %s}%s\n",
               indent, p.offered_rps, p.achieved_rps,
               static_cast<long long>(p.submitted),
               static_cast<long long>(p.answered),
               static_cast<long long>(p.degraded),
               static_cast<long long>(p.rejected),
               static_cast<long long>(p.deadline),
               static_cast<long long>(p.failed),
               static_cast<long long>(p.hedges), p.p50, p.p95, p.p99,
               p.slo_ok ? "true" : "false",
               p.invariant_ok ? "true" : "false", last ? "" : ",");
}

// --- chaos legs -------------------------------------------------------------

void chaos_kill(serve::Router& router) { router.kill_shard(1); }

void chaos_poison(serve::Router& router) {
  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 1000000;
  router.shard_injector(1)->configure(fc);
}

void chaos_slow(serve::Router& router) {
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 200;
  fc.slow_forward_count = 1000000;
  router.shard_injector(1)->configure(fc);
}

struct ChaosResult {
  LoadPoint point;
  double healthy_rps = 0.0;       // goodput before the fault
  double post_failure_rps = 0.0;  // goodput after the fault landed
  double ratio = 0.0;
  bool throughput_ok = false;  // ratio >= (N-1)/N within tolerance
};

ChaosResult run_chaos(core::YolloModel& model, const data::Vocab& vocab,
                      baseline::TwoStagePipeline* fallback,
                      const Workload& load, double offered_rps,
                      int64_t num_requests, int64_t deadline_ms,
                      void (*chaos)(serve::Router&), uint64_t seed,
                      bool cancellation = true) {
  serve::RouterConfig rc = fleet_config(3);
  rc.shard.enable_cancellation = cancellation;
  serve::Router router(model, vocab, rc, fallback);
  // Windows by submit index: [0, third) healthy, [third, 2*third) the fault
  // lands and the router reacts, [2*third, end) post-failure steady state.
  const int64_t third = num_requests / 3;
  std::vector<int64_t> windows = {third, 2 * third, num_requests};
  std::vector<double> window_answered(windows.size(), 0.0);
  ChaosResult result;
  result.point =
      run_open_loop(router, load, offered_rps, num_requests, deadline_ms,
                    seed, /*chaos_at=*/third, chaos, &windows,
                    &window_answered);
  router.stop();
  const double window_sec =
      static_cast<double>(third) / std::max(offered_rps, 1e-9);
  result.healthy_rps = window_answered[0] / window_sec;
  result.post_failure_rps = window_answered[2] / window_sec;
  result.ratio =
      result.post_failure_rps / std::max(result.healthy_rps, 1e-9);
  // (N-1)/N with a small tolerance for windowing noise at bench scale.
  result.throughput_ok = result.ratio >= (2.0 / 3.0) * 0.9;
  return result;
}

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  using namespace yollo;

  const char* json_path = "BENCH_serve_shard.json";
  if (argc > 1) json_path = argv[1];
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const int64_t sweep_requests = scale.quick ? 150 : 500;
  const int64_t chaos_requests = scale.quick ? 240 : 900;

  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = bench::bench_dataset_config(0, scale);
  dc.num_images = scale.quick ? 24 : 64;
  const data::GroundingDataset dataset(dc, vocab);

  core::YolloConfig cfg;
  cfg.img_h = dc.img_h;
  cfg.img_w = dc.img_w;
  cfg.max_query_len = dataset.max_query_len();
  Rng rng(cfg.seed);
  core::YolloModel model(cfg, vocab.size(), rng);
  model.set_training(false);

  baseline::ProposerConfig pcfg;
  pcfg.img_h = dc.img_h;
  pcfg.img_w = dc.img_w;
  Rng prng(11);
  baseline::RegionProposalNetwork rpn(pcfg, prng);
  rpn.set_training(false);
  baseline::MatcherConfig mcfg;
  mcfg.vocab_size = vocab.size();
  baseline::ListenerMatcher listener(mcfg, prng);
  listener.set_training(false);
  baseline::SpeakerMatcher speaker(mcfg, prng);
  speaker.set_training(false);
  baseline::TwoStagePipeline fallback(rpn, listener, speaker,
                                      baseline::MatchMode::kListener);

  Workload load;
  load.dataset = &dataset;
  for (const data::GroundingSample& sample : dataset.train()) {
    load.images.push_back(data::render_scene(sample.scene));
    load.queries.push_back(sample.query_text);
    if (load.images.size() >= 48) break;
  }

  // Calibrate. Unloaded p50 (sequential requests) sets the SLO deadline;
  // actual capacity comes from a saturating burst, NOT from p50 arithmetic —
  // the model's forwards use intra-op parallelism, so concurrent workers
  // contend for the same cores and real capacity is well below
  // workers / p50.
  double p50_unloaded;
  {
    serve::Router probe(model, vocab, fleet_config(1), &fallback);
    std::vector<double> lat;
    for (int i = 0; i < 30; ++i) {
      const serve::RouteResponse r =
          probe.route(load.request(static_cast<size_t>(i)));
      if (r.status.answered()) lat.push_back(r.latency_ms);
    }
    probe.stop();
    std::sort(lat.begin(), lat.end());
    p50_unloaded = std::max(0.5, percentile(lat, 0.50));
  }
  // Deadline = ~20x the unloaded p50: far enough out that sub-knee Poisson
  // bursts (queueing of a few service times) do not miss, close enough that
  // a saturated fleet's unbounded queue delay does.
  const int64_t slo_deadline_ms =
      std::max<int64_t>(40, static_cast<int64_t>(20.0 * p50_unloaded));

  // Measured capacity: how fast a fleet drains an unpaced, deadline-free
  // backlog (queue 64 absorbs it; submission paced just enough not to trip
  // admission rejections).
  const auto measure_capacity = [&](int64_t num_shards) {
    serve::Router router(model, vocab, fleet_config(num_shards), &fallback);
    const int64_t n = scale.quick ? 80 : 160;
    std::vector<std::future<serve::RouteResponse>> futures;
    const Clock::time_point start = Clock::now();
    for (int64_t i = 0; i < n; ++i) {
      futures.push_back(router.submit(load.request(static_cast<size_t>(i))));
      if ((i + 1) % 32 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    int64_t answered = 0;
    for (auto& f : futures) {
      if (f.get().status.answered()) ++answered;
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    router.stop();
    return static_cast<double>(answered) / std::max(wall, 1e-9);
  };
  const double one_shard_cap = measure_capacity(1);
  const double three_shard_cap = measure_capacity(3);

  std::printf("== Sharded serving: open-loop sweep ==\n");
  std::printf("unloaded p50 %.2f ms, SLO deadline %lld ms, measured capacity "
              "%.0f rps (1 shard) / %.0f rps (3 shards)\n\n",
              p50_unloaded, static_cast<long long>(slo_deadline_ms),
              one_shard_cap, three_shard_cap);
  std::printf("%8s %9s %9s %9s %8s %8s %8s %9s %9s %9s\n", "fleet",
              "offer/s", "ach/s", "submitted", "answered", "rej+fail",
              "dl-miss", "p50(ms)", "p95(ms)", "p99(ms)");

  const std::vector<double> fractions =
      scale.quick ? std::vector<double>{0.5, 1.5, 2.5}
                  : std::vector<double>{0.15, 0.3, 0.6, 1.0, 1.5, 2.25, 3.0};
  std::vector<LoadPoint> one_shard, three_shard;
  for (const double f : fractions) {
    const double rate = f * one_shard_cap;
    {
      serve::Router router(model, vocab, fleet_config(1), &fallback);
      one_shard.push_back(run_open_loop(router, load, rate, sweep_requests,
                                        slo_deadline_ms, 42));
      router.stop();
      print_point("1-shard", one_shard.back());
    }
    {
      serve::Router router(model, vocab, fleet_config(3), &fallback);
      three_shard.push_back(run_open_loop(router, load, rate, sweep_requests,
                                          slo_deadline_ms, 43));
      router.stop();
      print_point("3-shard", three_shard.back());
    }
  }

  // The knee: highest offered rate each fleet sustained inside the SLO.
  const auto knee = [](const std::vector<LoadPoint>& points) {
    double best = 0.0;
    const LoadPoint* at = nullptr;
    for (const LoadPoint& p : points) {
      if (p.slo_ok && p.offered_rps > best) {
        best = p.offered_rps;
        at = &p;
      }
    }
    return std::make_pair(best, at);
  };
  const auto [knee1, knee1_at] = knee(one_shard);
  const auto [knee3, knee3_at] = knee(three_shard);
  std::printf("\nknee: 1-shard %.0f rps, 3-shard %.0f rps "
              "(p99 %.2f / %.2f ms < %lld ms deadline)\n",
              knee1, knee3, knee1_at != nullptr ? knee1_at->p99 : 0.0,
              knee3_at != nullptr ? knee3_at->p99 : 0.0,
              static_cast<long long>(slo_deadline_ms));

  // Chaos legs at half the 3-shard capacity: the surviving 2/3 fleet
  // (~0.67 x capacity) can absorb that in full, so any post-failure
  // throughput loss is the router's fault, not physics. The chaos deadline
  // gets transition headroom — the leg's SLO is availability (every request
  // answered), not tail latency.
  const double chaos_rate = 0.5 * three_shard_cap;
  const int64_t chaos_deadline_ms = 3 * slo_deadline_ms;
  std::printf("\n== Chaos: one of 3 shards broken mid-run (%.0f rps "
              "offered) ==\n", chaos_rate);
  struct Leg {
    const char* name;
    void (*fault)(serve::Router&);
  };
  const Leg legs[] = {{"kill", chaos_kill},
                      {"poison", chaos_poison},
                      {"slow", chaos_slow}};
  std::vector<ChaosResult> chaos_results;
  for (const Leg& leg : legs) {
    ChaosResult result =
        run_chaos(model, vocab, &fallback, load, chaos_rate, chaos_requests,
                  chaos_deadline_ms, leg.fault, 1234);
    std::printf("%8s healthy %7.1f rps -> post-failure %7.1f rps "
                "(ratio %.2f, need >= 0.60)  lost=%s invariant=%s\n",
                leg.name, result.healthy_rps, result.post_failure_rps,
                result.ratio, result.point.invariant_ok ? "0" : "SOME",
                result.point.invariant_ok ? "ok" : "VIOLATED");
    chaos_results.push_back(result);
  }

  // Cancellation A/B on the slow leg. A slow shard is the worst chaos mode
  // for goodput: a killed shard is routed around, but a slow one keeps
  // accepting work and wedges its workers for the full injected sleep. With
  // cooperative cancellation the deadline aborts the forward at a kernel
  // checkpoint and the worker is back serving; without it every poisoned
  // forward holds a worker hostage to the end. Same seed, same load, the
  // only variable is enable_cancellation.
  std::printf("\n== Chaos A/B: slow shard, cancellation off vs on ==\n");
  const ChaosResult slow_off =
      run_chaos(model, vocab, &fallback, load, chaos_rate, chaos_requests,
                chaos_deadline_ms, chaos_slow, 1234, /*cancellation=*/false);
  const ChaosResult slow_on =
      run_chaos(model, vocab, &fallback, load, chaos_rate, chaos_requests,
                chaos_deadline_ms, chaos_slow, 1234, /*cancellation=*/true);
  std::printf("     off healthy %7.1f rps -> post-failure %7.1f rps "
              "(ratio %.2f)  dl-verdict p95 %7.2f ms  invariant=%s\n",
              slow_off.healthy_rps, slow_off.post_failure_rps, slow_off.ratio,
              slow_off.point.dl_p95,
              slow_off.point.invariant_ok ? "ok" : "VIOLATED");
  std::printf("      on healthy %7.1f rps -> post-failure %7.1f rps "
              "(ratio %.2f)  dl-verdict p95 %7.2f ms  invariant=%s\n",
              slow_on.healthy_rps, slow_on.post_failure_rps, slow_on.ratio,
              slow_on.point.dl_p95,
              slow_on.point.invariant_ok ? "ok" : "VIOLATED");
  // The pinned claim is time-to-verdict: a request doomed on the slow shard
  // resolves right after its deadline when cancellation aborts the forward
  // at a checkpoint, versus only after the full injected sleep (plus queue
  // wait) without. The goodput ratio is reported but only held to a wide
  // non-regression band — post-failure goodput is dominated by the router
  // draining the slow shard, which both modes enjoy, so the ratio delta is
  // windowing noise at bench scale.
  const bool verdict_ok =
      slow_off.point.dl_p95 <= 0.0 ||  // no deadline misses to compare
      slow_on.point.dl_p95 < 0.9 * slow_off.point.dl_p95;
  const bool cancel_ab_ok = slow_off.point.invariant_ok &&
                            slow_on.point.invariant_ok && verdict_ok &&
                            slow_on.ratio + 0.15 >= slow_off.ratio;
  std::printf("cancellation: dl-verdict p95 %.2f -> %.2f ms, ratio delta "
              "%+.2f (%s)\n",
              slow_off.point.dl_p95, slow_on.point.dl_p95,
              slow_on.ratio - slow_off.ratio,
              cancel_ab_ok ? "ok" : "REGRESSION");

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json,
               "{\n  \"img_h\": %lld,\n  \"img_w\": %lld,\n"
               "  \"workers_per_shard\": 2,\n  \"queue_capacity\": 64,\n"
               "  \"unloaded_p50_ms\": %.3f,\n"
               "  \"slo_deadline_ms\": %lld,\n",
               static_cast<long long>(cfg.img_h),
               static_cast<long long>(cfg.img_w), p50_unloaded,
               static_cast<long long>(slo_deadline_ms));
  std::fprintf(json, "  \"sweep\": {\n    \"one_shard\": [\n");
  for (size_t i = 0; i < one_shard.size(); ++i) {
    json_point(json, one_shard[i], "      ", i + 1 == one_shard.size());
  }
  std::fprintf(json, "    ],\n    \"three_shard\": [\n");
  for (size_t i = 0; i < three_shard.size(); ++i) {
    json_point(json, three_shard[i], "      ", i + 1 == three_shard.size());
  }
  std::fprintf(json,
               "    ]\n  },\n"
               "  \"knee\": {\"one_shard_rps\": %.0f, \"three_shard_rps\": "
               "%.0f},\n"
               "  \"slo\": {\"deadline_ms\": %lld, \"one_shard_p99_ms\": "
               "%.2f, \"three_shard_p99_ms\": %.2f},\n",
               knee1, knee3, static_cast<long long>(slo_deadline_ms),
               knee1_at != nullptr ? knee1_at->p99 : 0.0,
               knee3_at != nullptr ? knee3_at->p99 : 0.0);
  std::fprintf(json, "  \"chaos\": {\n");
  for (size_t i = 0; i < chaos_results.size(); ++i) {
    const ChaosResult& r = chaos_results[i];
    std::fprintf(json,
                 "    \"%s\": {\"offered_rps\": %.0f, \"healthy_rps\": %.1f, "
                 "\"post_failure_rps\": %.1f, \"ratio\": %.3f, "
                 "\"throughput_ok\": %s, \"zero_lost\": %s, "
                 "\"invariant_ok\": %s, \"submitted\": %lld, "
                 "\"answered\": %lld, \"degraded\": %lld, "
                 "\"deadline_exceeded\": %lld, \"hedges\": %lld}%s\n",
                 legs[i].name, chaos_rate, r.healthy_rps, r.post_failure_rps,
                 r.ratio, r.throughput_ok ? "true" : "false",
                 r.point.invariant_ok ? "true" : "false",
                 r.point.invariant_ok ? "true" : "false",
                 static_cast<long long>(r.point.submitted),
                 static_cast<long long>(r.point.answered),
                 static_cast<long long>(r.point.degraded),
                 static_cast<long long>(r.point.deadline),
                 static_cast<long long>(r.point.hedges),
                 i + 1 == chaos_results.size() ? "" : ",");
  }
  std::fprintf(json, "  },\n");
  const auto json_ab = [&](const char* name, const ChaosResult& r,
                           bool last) {
    std::fprintf(json,
                 "    \"%s\": {\"healthy_rps\": %.1f, "
                 "\"post_failure_rps\": %.1f, \"ratio\": %.3f, "
                 "\"deadline_verdict_p95_ms\": %.2f, "
                 "\"invariant_ok\": %s}%s\n",
                 name, r.healthy_rps, r.post_failure_rps, r.ratio,
                 r.point.dl_p95, r.point.invariant_ok ? "true" : "false",
                 last ? "" : ",");
  };
  std::fprintf(json, "  \"chaos_cancellation_ab\": {\n");
  json_ab("slow_off", slow_off, false);
  json_ab("slow_on", slow_on, false);
  std::fprintf(json, "    \"ratio_delta\": %.3f,\n    \"improved_ok\": %s\n",
               slow_on.ratio - slow_off.ratio,
               cancel_ab_ok ? "true" : "false");
  std::fprintf(json, "  }\n}\n");
  std::fclose(json);
  std::printf("\nwrote %s\n", json_path);

  bool ok = cancel_ab_ok;
  for (const ChaosResult& r : chaos_results) {
    ok = ok && r.point.invariant_ok && r.throughput_ok;
  }
  return ok ? 0 : 1;
}
