// Table 3 — evaluation under different metrics: ACC (0.5:0.05:0.95 sweep),
// ACC@0.5, ACC@0.75, and MIOU for every split of every dataset.
//
// Paper shape: ACC@0.5 is high (~90), ACC@0.75 and the averaged ACC are
// substantially lower (the paper attributes this to training positives at
// rho_high = 0.5), MIOU sits between. The same ordering
// (ACC@0.5 > MIOU ~ ACC > ACC@0.75-ish) should appear here.
#include <cstdio>

#include "common.h"

using namespace yollo;

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  eval::TableReporter table(
      {"Dataset", "Split", "ACC", "ACC@0.5", "ACC@0.75", "MIOU"});

  for (int which = 0; which < 3; ++which) {
    const data::GroundingDataset dataset(
        bench::bench_dataset_config(which, scale), vocab);
    core::YolloConfig cfg;
    bench::TrainedYollo trained = bench::get_trained_yollo(
        dataset, vocab, "yollo_" + bench::bench_dataset_name(which), cfg,
        scale.yollo_steps, scale);

    struct SplitRef {
      const char* name;
      const std::vector<data::GroundingSample>* samples;
    };
    std::vector<SplitRef> splits = {{"Val", &dataset.val()}};
    if (which != 2) {
      splits.push_back({"TestA", &dataset.test_a()});
      splits.push_back({"TestB", &dataset.test_b()});
    }
    for (const SplitRef& split : splits) {
      const auto preds =
          bench::capped_eval_yollo(*trained.model, *split.samples, scale);
      const eval::MetricRow row = eval::compute_metrics(preds);
      table.add_row({bench::bench_dataset_name(which), split.name,
                     eval::fmt(100.0 * row.acc), eval::fmt(100.0 * row.acc50),
                     eval::fmt(100.0 * row.acc75),
                     eval::fmt(100.0 * row.miou)});
    }
  }

  table.print("Table 3 — YOLLO under different evaluation metrics");
  table.write_csv(bench::cache_dir() + "/table3.csv");
  std::printf(
      "\nPaper reference (RefCOCO val): ACC 49.4, ACC@0.5 91.6, ACC@0.75\n"
      "(lower; gated by rho_high=0.5 positives), MIOU 47.4. Expected shape:\n"
      "ACC@0.5 > MIOU, ACC > ACC@0.75.\nCSV written to %s/table3.csv\n",
      bench::cache_dir().c_str());
  return 0;
}
