#include "common.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace yollo::bench {

BenchScale BenchScale::from_env() {
  BenchScale scale;
  const char* env = std::getenv("YOLLO_BENCH_SCALE");
  if (env && std::string(env) == "quick") {
    scale.quick = true;
    scale.num_images = 200;
    scale.yollo_steps = 250;
    scale.ablation_steps = 150;
    scale.rpn_steps = 120;
    scale.matcher_steps = 300;
    scale.eval_cap = 80;
  }
  return scale;
}

data::DatasetConfig bench_dataset_config(int which, const BenchScale& scale) {
  data::DatasetConfig cfg;
  switch (which) {
    case 0:
      cfg = data::DatasetConfig::synthref(scale.num_images, /*seed=*/1234);
      break;
    case 1:
      cfg = data::DatasetConfig::synthref_plus(scale.num_images,
                                               /*seed=*/2345);
      break;
    default:
      cfg = data::DatasetConfig::synthrefg(scale.num_images, /*seed=*/3456);
      break;
  }
  cfg.img_h = 48;
  cfg.img_w = 72;
  return cfg;
}

std::string bench_dataset_name(int which) {
  switch (which) {
    case 0:
      return "SynthRef";
    case 1:
      return "SynthRef+";
    default:
      return "SynthRefG";
  }
}

std::string cache_dir() {
  const char* env = std::getenv("YOLLO_BENCH_CACHE");
  std::string dir = env ? env : "bench_cache";
  std::filesystem::create_directories(dir);
  return dir;
}

TrainedYollo get_trained_yollo(const data::GroundingDataset& dataset,
                               const data::Vocab& vocab,
                               const std::string& tag,
                               core::YolloConfig config, int64_t max_steps,
                               const BenchScale& scale) {
  const std::string params_path = cache_dir() + "/" + tag + ".params";
  const std::string curve_path = cache_dir() + "/" + tag + ".curve.csv";

  core::BuildOptions options;
  options.config = config;
  options.corpus_scenes = scale.quick ? 60 : 150;
  TrainedYollo out;
  out.model = core::build_yollo(dataset, vocab, options);

  if (std::filesystem::exists(params_path)) {
    const bool had_buffers = nn::load_parameters(*out.model, params_path);
    if (!had_buffers) {
      // Legacy checkpoint without BatchNorm running statistics: rebuild
      // them from a few training-mode passes before evaluating.
      std::printf("[cache] %s: legacy file, recalibrating BatchNorm...\n",
                  tag.c_str());
      core::recalibrate_batchnorm(*out.model, dataset.train());
      nn::save_parameters(*out.model, params_path);  // upgrade in place
    }
    out.curve = load_curve(curve_path);
    out.from_cache = true;
    std::printf("[cache] loaded %s\n", tag.c_str());
    return out;
  }

  std::printf("[train] %s: %lld steps on %zu samples...\n", tag.c_str(),
              static_cast<long long>(max_steps), dataset.train().size());
  std::fflush(stdout);
  core::TrainConfig tc;
  tc.epochs = 10000;  // step-capped
  tc.max_steps = max_steps;
  tc.batch_size = 16;
  tc.lr = 6e-3f;
  tc.log_every = 10;
  tc.seed = 99;
  const core::TrainResult result =
      core::train_yollo(*out.model, dataset.train(), tc);
  std::printf("[train] %s done in %.0f s\n", tag.c_str(), result.seconds);
  std::fflush(stdout);
  out.curve = result.curve;
  nn::save_parameters(*out.model, params_path);
  save_curve(result.curve, curve_path);
  return out;
}

TrainedTwoStage get_trained_two_stage(const data::GroundingDataset& dataset,
                                      const data::Vocab& vocab,
                                      const std::string& tag,
                                      const BenchScale& scale) {
  const std::string rpn_path = cache_dir() + "/" + tag + "_rpn.params";
  const std::string listener_path =
      cache_dir() + "/" + tag + "_listener.params";
  const std::string speaker_path = cache_dir() + "/" + tag + "_speaker.params";

  TrainedTwoStage out;
  baseline::ProposerConfig pcfg;
  pcfg.img_h = dataset.config().img_h;
  pcfg.img_w = dataset.config().img_w;
  baseline::MatcherConfig mcfg;
  mcfg.vocab_size = vocab.size();
  Rng rng(17);
  out.rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, rng);
  out.listener = std::make_unique<baseline::ListenerMatcher>(mcfg, rng);
  out.speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, rng);

  if (std::filesystem::exists(rpn_path) &&
      std::filesystem::exists(listener_path) &&
      std::filesystem::exists(speaker_path)) {
    const bool had_buffers = nn::load_parameters(*out.rpn, rpn_path);
    nn::load_parameters(*out.listener, listener_path);
    nn::load_parameters(*out.speaker, speaker_path);
    if (!had_buffers) {
      std::printf("[cache] %s: legacy file, recalibrating RPN BatchNorm...\n",
                  tag.c_str());
      baseline::recalibrate_rpn(*out.rpn, dataset.train());
      nn::save_parameters(*out.rpn, rpn_path);
    }
    out.from_cache = true;
    std::printf("[cache] loaded %s (rpn + matchers)\n", tag.c_str());
    return out;
  }

  std::printf("[train] %s: RPN (%lld steps)...\n", tag.c_str(),
              static_cast<long long>(scale.rpn_steps));
  std::fflush(stdout);
  baseline::RpnTrainConfig rtc;
  rtc.epochs = 10000;
  rtc.max_steps = scale.rpn_steps;
  rtc.batch_size = 16;
  baseline::train_rpn(*out.rpn, dataset.train(), rtc);
  std::printf("  proposal recall@0.5: %.3f\n",
              baseline::proposal_recall(
                  *out.rpn, dataset.val(),
                  0.5f));
  std::fflush(stdout);

  std::printf("[train] %s: listener (%lld samples)...\n", tag.c_str(),
              static_cast<long long>(scale.matcher_steps));
  std::fflush(stdout);
  baseline::MatcherTrainConfig ltc;
  ltc.epochs = 10000;
  ltc.max_steps = scale.matcher_steps;
  baseline::train_listener(*out.listener, *out.rpn, dataset.train(), ltc);

  std::printf("[train] %s: speaker (%lld samples)...\n", tag.c_str(),
              static_cast<long long>(scale.matcher_steps));
  std::fflush(stdout);
  baseline::MatcherTrainConfig stc;
  stc.epochs = 10000;
  stc.max_steps = scale.matcher_steps;
  baseline::train_speaker(*out.speaker, dataset.train(), stc);

  nn::save_parameters(*out.rpn, rpn_path);
  nn::save_parameters(*out.listener, listener_path);
  nn::save_parameters(*out.speaker, speaker_path);
  return out;
}

namespace {

template <typename T>
std::vector<T> cap(const std::vector<T>& v, int64_t n) {
  if (static_cast<int64_t>(v.size()) <= n) return v;
  return std::vector<T>(v.begin(), v.begin() + n);
}

}  // namespace

std::vector<eval::Prediction> capped_eval_yollo(
    core::YolloModel& model, const std::vector<data::GroundingSample>& split,
    const BenchScale& scale) {
  return core::evaluate_yollo(model, cap(split, scale.eval_cap));
}

std::vector<eval::Prediction> capped_eval_two_stage(
    baseline::TwoStagePipeline& pipeline,
    const std::vector<data::GroundingSample>& split, int64_t max_query_len,
    const BenchScale& scale) {
  return baseline::evaluate_two_stage(pipeline, cap(split, scale.eval_cap),
                                      max_query_len);
}

void save_curve(const std::vector<core::CurvePoint>& curve,
                const std::string& path) {
  std::ofstream out(path);
  out << "step,total,att,cls,reg\n";
  for (const core::CurvePoint& p : curve) {
    out << p.step << ',' << p.total << ',' << p.att << ',' << p.cls << ','
        << p.reg << '\n';
  }
}

std::vector<core::CurvePoint> load_curve(const std::string& path) {
  std::vector<core::CurvePoint> curve;
  std::ifstream in(path);
  if (!in) return curve;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    core::CurvePoint p;
    std::istringstream row(line);
    char comma;
    row >> p.step >> comma >> p.total >> comma >> p.att >> comma >> p.cls >>
        comma >> p.reg;
    curve.push_back(p);
  }
  return curve;
}

}  // namespace yollo::bench
