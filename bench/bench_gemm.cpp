// GEMM runtime throughput — what the blocked/packed kernel buys over the
// retained naive kernel (DESIGN.md §10), on the GEMM shapes the model
// actually runs.
//
// Per shape, three single-thread variants:
//   naive          gemm_reference (the pre-runtime i-k-j kernel)
//   blocked        the packed register-tiled kernel
//   blocked_fused  same, with the bias+ReLU epilogue fused into the
//                  output pass (naive runs them as a separate sweep)
// plus the blocked kernel at YOLLO_BENCH_THREADS workers (default 4) to
// show the parallel_for partitioning. On a single-core host the mt row
// measures scheduling overhead, not speedup.
//
// Usage: bench_gemm [json-path]   (default BENCH_gemm.json; YOLLO_BENCH_SCALE
// honoured). scripts/run_benchmarks.sh writes it at the repo root.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/parallel.h"
#include "tensor/pool.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace yollo {
namespace {

using Clock = std::chrono::steady_clock;

// The GEMMs one forward of the (64x96) model decomposes into, via im2col
// (m = Cout, k = Cin*kh*kw, n = out_h*out_w) and the Rel2Att stack, plus a
// reference square.
struct BenchShape {
  const char* label;
  int64_t m, n, k;
};
const BenchShape kShapes[] = {
    {"conv_stem", 12, 6144, 27},      // 3ch 64x96 -> 12ch
    {"conv_stage1", 16, 1536, 108},   // 12ch 32x48 -> 16ch
    {"conv_stage2", 24, 384, 144},    // 16ch 16x24 -> 24ch
    {"conv_stage3", 48, 96, 432},     // 48ch residual block, 8x12
    {"rel2att_ffn", 896, 64, 48},     // batch 8 x (96+16) tokens, FFN hidden
    {"relation_map", 112, 112, 48},   // X1 X2^T per image
    {"square_256", 256, 256, 256},
};

// Best-of-`rounds` GFLOP/s for `fn`, each round long enough to dominate
// timer noise.
double measure_gflops(int64_t flops_per_call, const std::function<void()>& fn,
                      int rounds, double min_round_sec) {
  fn();  // warmup / first-touch
  const int64_t calls = std::max<int64_t>(
      1, static_cast<int64_t>(min_round_sec * 2e9 /
                              static_cast<double>(flops_per_call)));
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    const Clock::time_point start = Clock::now();
    for (int64_t i = 0; i < calls; ++i) fn();
    const double sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double gflops = static_cast<double>(flops_per_call) *
                          static_cast<double>(calls) / sec / 1e9;
    best = std::max(best, gflops);
  }
  return best;
}

struct ShapeResult {
  const BenchShape* shape = nullptr;
  double naive = 0.0;
  double blocked = 0.0;
  double blocked_fused = 0.0;
  double blocked_mt = 0.0;
};

}  // namespace
}  // namespace yollo

int main(int argc, char** argv) {
  using namespace yollo;

  const char* json_path = argc > 1 ? argv[1] : "BENCH_gemm.json";
  const char* scale_env = std::getenv("YOLLO_BENCH_SCALE");
  const bool quick = scale_env != nullptr && std::strcmp(scale_env, "quick") == 0;
  const int rounds = quick ? 2 : 3;
  const double min_round_sec = quick ? 0.05 : 0.25;
  const char* threads_env = std::getenv("YOLLO_BENCH_THREADS");
  const int mt_threads =
      threads_env != nullptr ? std::max(1, std::atoi(threads_env)) : 4;

  Rng rng(2026);
  PoolScope pool;  // recycle the packing buffers, as the model's callers do
  std::vector<ShapeResult> results;

  std::printf("== GEMM throughput, GFLOP/s (best of %d) ==\n", rounds);
  std::printf("%14s %18s %8s %9s %9s %12s %11s\n", "shape", "m x n x k",
              "naive", "blocked", "fused", "blocked(x" , "speedup");
  for (const BenchShape& s : kShapes) {
    Tensor a({s.m, s.k});
    Tensor b({s.k, s.n});
    Tensor bias({s.n});
    Tensor c({s.m, s.n});
    for (Tensor* t : {&a, &b, &bias}) {
      float* p = t->data();
      for (int64_t i = 0; i < t->numel(); ++i) p[i] = rng.uniform(-1.0f, 1.0f);
    }
    const int64_t flops = 2 * s.m * s.n * s.k;
    GemmEpilogue fused;
    fused.bias = bias.data();
    fused.relu = true;

    ShapeResult r;
    r.shape = &s;
    set_num_threads(1);
    r.naive = measure_gflops(
        flops,
        [&] {
          gemm_reference(false, false, s.m, s.n, s.k, a.data(), b.data(),
                         c.data(), fused);
        },
        rounds, min_round_sec);
    r.blocked = measure_gflops(
        flops,
        [&] { gemm(false, false, s.m, s.n, s.k, a.data(), b.data(), c.data()); },
        rounds, min_round_sec);
    r.blocked_fused = measure_gflops(
        flops,
        [&] {
          gemm(false, false, s.m, s.n, s.k, a.data(), b.data(), c.data(),
               fused);
        },
        rounds, min_round_sec);
    set_num_threads(mt_threads);
    r.blocked_mt = measure_gflops(
        flops,
        [&] { gemm(false, false, s.m, s.n, s.k, a.data(), b.data(), c.data()); },
        rounds, min_round_sec);
    set_num_threads(1);
    results.push_back(r);

    char dims[32];
    std::snprintf(dims, sizeof(dims), "%lld x %lld x %lld",
                  static_cast<long long>(s.m), static_cast<long long>(s.n),
                  static_cast<long long>(s.k));
    std::printf("%14s %18s %8.2f %9.2f %9.2f %9.2f(x%d) %10.2fx\n", s.label,
                dims, r.naive, r.blocked, r.blocked_fused, r.blocked_mt,
                mt_threads, r.blocked / std::max(r.naive, 1e-9));
  }

  double log_sum = 0.0;
  for (const ShapeResult& r : results) {
    log_sum += std::log(r.blocked / std::max(r.naive, 1e-9));
  }
  const double geomean =
      std::exp(log_sum / static_cast<double>(results.size()));
  std::printf("geomean speedup blocked vs naive: %.2fx\n", geomean);

  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json, "{\n  \"threads_mt\": %d,\n  \"shapes\": [\n",
               mt_threads);
  for (size_t i = 0; i < results.size(); ++i) {
    const ShapeResult& r = results[i];
    std::fprintf(
        json,
        "    {\"label\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
        "\"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
        "\"blocked_fused_gflops\": %.3f, \"blocked_mt_gflops\": %.3f, "
        "\"speedup_blocked_vs_naive\": %.3f}%s\n",
        r.shape->label, static_cast<long long>(r.shape->m),
        static_cast<long long>(r.shape->n), static_cast<long long>(r.shape->k),
        r.naive, r.blocked, r.blocked_fused, r.blocked_mt,
        r.blocked / std::max(r.naive, 1e-9), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n  \"geomean_speedup_blocked_vs_naive\": %.3f\n}\n",
               geomean);
  std::fclose(json);
  std::printf("wrote %s\n", json_path);
  return 0;
}
