// Figure 5 — qualitative results: attention masks and predicted boxes.
//
// Paper: rendered images with the Rel2Att attention mask highlighted and the
// predicted box drawn; notably, changing the query on the SAME image moves
// both the attended area and the box ("left most toilet" vs "right urinal").
// This bench grounds several validation queries with the trained SynthRef
// model, writes PPM/PGM dumps, prints ASCII attention maps, and — the key
// qualitative check — finds images with two different queries and reports
// how the prediction moves between them.
#include <cstdio>
#include <map>

#include "common.h"
#include "data/renderer.h"

using namespace yollo;

namespace {

void print_ascii_attention(const Tensor& amap) {
  static const char* kShades = " .:-=+*#%@";
  const float peak = std::max(max_value(amap), 1e-6f);
  for (int64_t y = 0; y < amap.size(0); ++y) {
    std::printf("    ");
    for (int64_t x = 0; x < amap.size(1); ++x) {
      const int level = std::min<int>(
          9, static_cast<int>(10.0f * amap.at({y, x}) / peak));
      std::printf("%c%c", kShades[level], kShades[level]);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const bench::BenchScale scale = bench::BenchScale::from_env();
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  const data::GroundingDataset dataset(bench::bench_dataset_config(0, scale),
                                       vocab);
  core::YolloConfig cfg;
  bench::TrainedYollo trained = bench::get_trained_yollo(
      dataset, vocab, "yollo_SynthRef", cfg, scale.yollo_steps, scale);
  core::YolloModel& model = *trained.model;
  model.set_training(false);

  auto ground = [&](const data::GroundingSample& s, const std::string& stem,
                    bool verbose) {
    Tensor image = data::render_scene(s.scene);
    const auto tokens =
        data::pad_to(s.tokens, model.config().max_query_len);
    const auto out = model.forward(
        image.reshape({1, 3, s.scene.height, s.scene.width}), tokens);
    core::DetectionHead::Output head_out{out.scores, out.deltas};
    const vision::Box pred =
        core::decode_top1(head_out, model.anchors(), model.config())[0];
    const Tensor amap = model.attention_map(out, 0);
    if (verbose) {
      std::printf("\nquery: \"%s\"  (IoU with truth: %.2f)\n",
                  s.query_text.c_str(), vision::iou(pred, s.target_box()));
      print_ascii_attention(amap);
    }
    data::draw_box_outline(image, pred, data::Rgb{1.0f, 0.05f, 0.05f});
    data::draw_box_outline(image, s.target_box(),
                           data::Rgb{0.05f, 1.0f, 0.05f});
    data::write_ppm(image, bench::cache_dir() + "/" + stem + ".ppm");
    data::write_pgm(amap, bench::cache_dir() + "/" + stem + "_att.pgm");
    return pred;
  };

  // Part 1: a gallery of qualitative results.
  std::printf("== Figure 5 — qualitative attention masks + predictions ==\n");
  const int gallery = std::min<int>(6, static_cast<int>(dataset.val().size()));
  for (int i = 0; i < gallery; ++i) {
    ground(dataset.val()[static_cast<size_t>(i)], "fig5_sample" +
                                                      std::to_string(i),
           /*verbose=*/true);
  }

  // Part 2: the paper's query-swap check — same image, different queries.
  std::map<int64_t, std::vector<size_t>> by_image;
  for (size_t i = 0; i < dataset.val().size(); ++i) {
    by_image[dataset.val()[i].image_id].push_back(i);
  }
  int pairs = 0;
  int moved = 0;
  for (const auto& [image_id, indices] : by_image) {
    if (indices.size() < 2 || pairs >= 5) continue;
    const data::GroundingSample& a = dataset.val()[indices[0]];
    const data::GroundingSample& b = dataset.val()[indices[1]];
    if (a.target_index == b.target_index) continue;
    const vision::Box pa = ground(
        a, "fig5_pair" + std::to_string(pairs) + "a", /*verbose=*/false);
    const vision::Box pb = ground(
        b, "fig5_pair" + std::to_string(pairs) + "b", /*verbose=*/false);
    const float overlap = vision::iou(pa, pb);
    std::printf(
        "\nimage %lld: \"%s\" vs \"%s\" -> prediction IoU between the two "
        "queries: %.2f %s\n",
        static_cast<long long>(image_id), a.query_text.c_str(),
        b.query_text.c_str(), overlap,
        overlap < 0.5f ? "(moved with the query)" : "(did NOT move)");
    moved += overlap < 0.5f;
    ++pairs;
  }
  if (pairs > 0) {
    std::printf(
        "\nQuery-swap summary: prediction moved for %d of %d same-image "
        "query pairs\n(paper Fig. 5: the box follows the query).\n",
        moved, pairs);
  }
  std::printf("PPM/PGM dumps written to %s/fig5_*.{ppm,pgm}\n",
              bench::cache_dir().c_str());
  return 0;
}
