// Tests for the YOLLO core: gt masks, attention loss, Rel2Att, detection
// head, and the assembled model.
#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/renderer.h"
#include "test_util.h"

namespace yollo::core {
namespace {

using ag::Variable;

YolloConfig small_config() {
  YolloConfig cfg;
  cfg.img_h = 48;
  cfg.img_w = 72;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 2;
  return cfg;
}

TEST(GtMaskTest, UniformMassInsideBox) {
  // Box covering grid cells (1..2, 1..2) on a 4x6 grid at stride 8.
  const vision::Box target{8, 8, 16, 16};
  const Tensor mask = make_gt_mask(target, 4, 6, 8);
  EXPECT_EQ(mask.numel(), 24);
  EXPECT_NEAR(sum(mask).item(), 1.0f, 1e-5f);
  // 4 interior cells share the mass.
  EXPECT_FLOAT_EQ(mask[1 * 6 + 1], 0.25f);
  EXPECT_FLOAT_EQ(mask[2 * 6 + 2], 0.25f);
  EXPECT_FLOAT_EQ(mask[0], 0.0f);
}

TEST(GtMaskTest, TinyBoxFallsBackToNearestCell) {
  const vision::Box tiny{17, 17, 2, 2};  // covers no cell centre
  const Tensor mask = make_gt_mask(tiny, 4, 6, 8);
  EXPECT_NEAR(sum(mask).item(), 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(max_value(mask), 1.0f);  // all mass on one cell
}

TEST(GtMaskTest, MassAlwaysNormalised) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const vision::Box box{rng.uniform(0, 60), rng.uniform(0, 36),
                          rng.uniform(2, 30), rng.uniform(2, 24)};
    const Tensor mask = make_gt_mask(box, 6, 9, 8);
    EXPECT_NEAR(sum(mask).item(), 1.0f, 1e-4f);
    EXPECT_GE(min_value(mask), 0.0f);
  }
}

TEST(AttentionLossTest, PerfectAttentionHitsEntropyFloor) {
  // When softmax(att) equals the gt mask, the CE equals the mask's entropy.
  Tensor gt({1, 4}, {0.5f, 0.5f, 0.0f, 0.0f});
  // Logits whose softmax is (0.5, 0.5, ~0, ~0).
  Variable att = Variable::constant(Tensor({1, 4}, {10, 10, -10, -10}));
  const float loss = attention_loss(att, gt).value().item();
  EXPECT_NEAR(loss, std::log(2.0f), 1e-3f);
  // Attention on the wrong cells is much worse.
  Variable bad = Variable::constant(Tensor({1, 4}, {-10, -10, 10, 10}));
  EXPECT_GT(attention_loss(bad, gt).value().item(), 5.0f);
}

TEST(AttentionLossTest, GradCheck) {
  Rng rng(4);
  Tensor gt({2, 5});
  gt.at({0, 1}) = 1.0f;
  gt.at({1, 3}) = 0.5f;
  gt.at({1, 4}) = 0.5f;
  std::vector<Variable> leaves{Variable::param(Tensor::randn({2, 5}, rng))};
  yollo::testing::check_gradients(
      [&gt](std::vector<Variable>& v) { return attention_loss(v[0], gt); },
      leaves);
}

TEST(Rel2AttTest, OutputShapesAndAttSplit) {
  YolloConfig cfg = small_config();
  Rng rng(5);
  Rel2Att module(cfg, 48, cfg.word_dim, rng);
  const int64_t b = 2, m = cfg.num_regions(), n = cfg.max_query_len;
  Variable v = Variable::constant(Tensor::randn({b, m, 48}, rng));
  Variable t = Variable::constant(Tensor::randn({b, n, cfg.word_dim}, rng));
  const Rel2Att::Output out = module.forward(v, t, Tensor());
  EXPECT_EQ(out.v.shape(), (Shape{b, m, 48}));
  EXPECT_EQ(out.t.shape(), (Shape{b, n, cfg.word_dim}));
  EXPECT_EQ(out.att_v.shape(), (Shape{b, m}));
  EXPECT_EQ(out.att_t.shape(), (Shape{b, n}));
}

TEST(Rel2AttTest, PairMaskZeroesPadInteractions) {
  const int64_t b = 1, m = 3, n = 2;
  // Token 0 real, token 1 PAD.
  const Tensor mask = Rel2Att::make_pair_mask({1.0f, 0.0f}, b, m, n);
  EXPECT_EQ(mask.shape(), (Shape{b, m + n, m + n}));
  // image-image stays 1.
  EXPECT_FLOAT_EQ(mask.at({0, 0, 2}), 1.0f);
  // image-realword stays 1.
  EXPECT_FLOAT_EQ(mask.at({0, 0, 3}), 1.0f);
  // image-PAD is zero, both directions.
  EXPECT_FLOAT_EQ(mask.at({0, 0, 4}), 0.0f);
  EXPECT_FLOAT_EQ(mask.at({0, 4, 0}), 0.0f);
  // PAD-PAD is zero.
  EXPECT_FLOAT_EQ(mask.at({0, 4, 4}), 0.0f);
}

TEST(Rel2AttTest, NoCoAttentionMakesAttentionQueryInvariant) {
  YolloConfig cfg = small_config();
  cfg.use_co_attention = false;
  Rng rng(6);
  Rel2Att module(cfg, 48, cfg.word_dim, rng);
  const int64_t m = cfg.num_regions(), n = cfg.max_query_len;
  Variable v = Variable::constant(Tensor::randn({1, m, 48}, rng));
  Variable t1 = Variable::constant(Tensor::randn({1, n, cfg.word_dim}, rng));
  Variable t2 = Variable::constant(Tensor::randn({1, n, cfg.word_dim}, rng));
  const Tensor a1 = module.forward(v, t1, Tensor()).att_v.value();
  const Tensor a2 = module.forward(v, t2, Tensor()).att_v.value();
  EXPECT_TRUE(allclose(a1, a2, 1e-5f, 1e-6f))
      << "image attention must ignore the query when co-attention is ablated";
}

TEST(Rel2AttTest, WithCoAttentionAttentionIsQuerySensitive) {
  YolloConfig cfg = small_config();
  Rng rng(7);
  Rel2Att module(cfg, 48, cfg.word_dim, rng);
  const int64_t m = cfg.num_regions(), n = cfg.max_query_len;
  Variable v = Variable::constant(Tensor::randn({1, m, 48}, rng));
  Variable t1 = Variable::constant(Tensor::randn({1, n, cfg.word_dim}, rng));
  Variable t2 = Variable::constant(Tensor::randn({1, n, cfg.word_dim}, rng));
  const Tensor a1 = module.forward(v, t1, Tensor()).att_v.value();
  const Tensor a2 = module.forward(v, t2, Tensor()).att_v.value();
  EXPECT_GT(max_abs_diff(a1, a2), 1e-4f);
}

TEST(Rel2AttTest, NoSelfAttentionZeroesVvContribution) {
  // With self-attention ablated AND an all-PAD query, att_v must be exactly
  // zero: every relation-map entry feeding it is masked out.
  YolloConfig cfg = small_config();
  cfg.use_self_attention = false;
  Rng rng(8);
  Rel2Att module(cfg, 48, cfg.word_dim, rng);
  const int64_t m = cfg.num_regions(), n = cfg.max_query_len;
  Variable v = Variable::constant(Tensor::randn({1, m, 48}, rng));
  Variable t = Variable::constant(Tensor::randn({1, n, cfg.word_dim}, rng));
  const Tensor pair_mask = Rel2Att::make_pair_mask(
      std::vector<float>(static_cast<size_t>(n), 0.0f), 1, m, n);
  const Tensor att = module.forward(v, t, pair_mask).att_v.value();
  EXPECT_NEAR(max_value(abs(att)), 0.0f, 1e-6f);
}

TEST(DetectionHeadTest, OutputShapesMatchAnchors) {
  YolloConfig cfg = small_config();
  Rng rng(9);
  DetectionHead head(cfg, 48, rng);
  EXPECT_EQ(static_cast<int64_t>(head.anchors().size()), cfg.num_anchors());
  Variable feat = Variable::constant(
      Tensor::randn({2, 48, cfg.grid_h(), cfg.grid_w()}, rng));
  const DetectionHead::Output out = head.forward(feat);
  EXPECT_EQ(out.scores.shape(), (Shape{2, cfg.num_anchors()}));
  EXPECT_EQ(out.deltas.shape(), (Shape{2, cfg.num_anchors(), 4}));
}

TEST(DetectionHeadTest, ScoreOrderingMatchesAnchorOrdering) {
  // Put a spike in the cls conv bias of anchor k*, all else zero weights:
  // every cell's anchor k* gets the top score, and decode_top1 must return a
  // box near the corresponding anchor.
  YolloConfig cfg = small_config();
  Rng rng(10);
  DetectionHead head(cfg, 8, rng);
  for (auto* p : head.parameters()) p->value().zero();
  // cls bias: favour anchor index 4 within each cell.
  auto named = head.named_parameters();
  for (auto& np : named) {
    if (np.name == "cls.bias") np.param->value()[4] = 5.0f;
  }
  Variable feat =
      Variable::constant(Tensor::zeros({1, 8, cfg.grid_h(), cfg.grid_w()}));
  const DetectionHead::Output out = head.forward(feat);
  const int64_t best = argmax_flat(out.scores.value());
  EXPECT_EQ(best % cfg.anchors.anchors_per_cell(), 4);
  const auto boxes = decode_top1(out, head.anchors(), cfg);
  // Zero deltas -> decoded box equals the anchor (clipped).
  const vision::Box anchor = head.anchors()[static_cast<size_t>(best)];
  EXPECT_GT(vision::iou(boxes[0],
                        vision::clip_box(anchor, static_cast<float>(cfg.img_w),
                                         static_cast<float>(cfg.img_h))),
            0.99f);
}

TEST(DetectionLossTest, LossesAreFiniteAndPositive) {
  YolloConfig cfg = small_config();
  Rng rng(11);
  DetectionHead head(cfg, 16, rng);
  Variable feat = Variable::constant(
      Tensor::randn({2, 16, cfg.grid_h(), cfg.grid_w()}, rng));
  const DetectionHead::Output out = head.forward(feat);
  const std::vector<vision::Box> targets = {{10, 10, 16, 14},
                                            {40, 20, 20, 20}};
  const DetectionLoss loss =
      detection_loss(out, head.anchors(), targets, cfg, rng);
  EXPECT_TRUE(std::isfinite(loss.cls.value().item()));
  EXPECT_TRUE(std::isfinite(loss.reg.value().item()));
  EXPECT_GT(loss.cls.value().item(), 0.0f);
  EXPECT_GE(loss.reg.value().item(), 0.0f);
}

TEST(YolloModelTest, ForwardShapes) {
  YolloConfig cfg = small_config();
  Rng rng(12);
  YolloModel model(cfg, 40, rng);
  Tensor images = Tensor::randn({2, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(2 * cfg.max_query_len, 3);
  const YolloModel::Output out = model.forward(images, tokens);
  EXPECT_EQ(out.scores.shape(), (Shape{2, cfg.num_anchors()}));
  EXPECT_EQ(out.deltas.shape(), (Shape{2, cfg.num_anchors(), 4}));
  EXPECT_EQ(out.att_v.shape(), (Shape{2, cfg.num_regions()}));
  EXPECT_EQ(out.att_v_all.size(), static_cast<size_t>(cfg.num_rel2att));
}

TEST(YolloModelTest, RejectsWrongTokenCount) {
  YolloConfig cfg = small_config();
  Rng rng(13);
  YolloModel model(cfg, 40, rng);
  Tensor images = Tensor::randn({1, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(3, 1);  // wrong: needs max_query_len
  EXPECT_THROW(model.forward(images, tokens), std::invalid_argument);
}

TEST(YolloModelTest, AttentionMapIsDistribution) {
  YolloConfig cfg = small_config();
  Rng rng(14);
  YolloModel model(cfg, 40, rng);
  model.set_training(false);
  Tensor images = Tensor::randn({1, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(cfg.max_query_len, 2);
  const auto out = model.forward(images, tokens);
  const Tensor amap = model.attention_map(out, 0);
  EXPECT_EQ(amap.shape(), (Shape{cfg.grid_h(), cfg.grid_w()}));
  EXPECT_NEAR(sum(amap).item(), 1.0f, 1e-4f);
  EXPECT_GE(min_value(amap), 0.0f);
}

TEST(YolloModelTest, PredictionsAreInsideImage) {
  YolloConfig cfg = small_config();
  Rng rng(15);
  YolloModel model(cfg, 40, rng);
  model.set_training(false);
  Tensor images = Tensor::randn({3, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(3 * cfg.max_query_len, 1);
  for (const vision::Box& b : model.predict(images, tokens)) {
    EXPECT_GE(b.x, 0.0f);
    EXPECT_GE(b.y, 0.0f);
    EXPECT_LE(b.x2(), static_cast<float>(cfg.img_w) + 1e-3f);
    EXPECT_LE(b.y2(), static_cast<float>(cfg.img_h) + 1e-3f);
  }
}

TEST(YolloModelTest, QueryChangesPrediction) {
  YolloConfig cfg = small_config();
  Rng rng(16);
  YolloModel model(cfg, 40, rng);
  model.set_training(false);
  Tensor images = Tensor::randn({1, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> q1(cfg.max_query_len, 0);
  std::vector<int64_t> q2(cfg.max_query_len, 0);
  q1[0] = 5;
  q1[1] = 7;
  q2[0] = 11;
  q2[1] = 13;
  const auto o1 = model.forward(images, q1);
  const auto o2 = model.forward(images, q2);
  EXPECT_GT(max_abs_diff(o1.att_v.value(), o2.att_v.value()), 1e-6f);
  EXPECT_GT(max_abs_diff(o1.scores.value(), o2.scores.value()), 1e-7f);
}

TEST(YolloModelTest, TotalLossCombinesPerEquation9) {
  YolloConfig cfg = small_config();
  cfg.lambda_reg = 2.0f;
  Rng rng(17);
  YolloModel model(cfg, 40, rng);
  Tensor images = Tensor::randn({1, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(cfg.max_query_len, 2);
  const auto out = model.forward(images, tokens);
  Rng loss_rng(1);
  const auto losses =
      model.compute_loss(out, {vision::Box{10, 10, 16, 16}}, loss_rng);
  EXPECT_NEAR(losses.total.value().item(),
              losses.att.value().item() + losses.cls.value().item() +
                  2.0f * losses.reg.value().item(),
              1e-3f);
}

TEST(YolloModelTest, SaveLoadReproducesOutputs) {
  YolloConfig cfg = small_config();
  Rng rng1(18), rng2(19);
  YolloModel a(cfg, 40, rng1);
  YolloModel b(cfg, 40, rng2);
  const std::string path = ::testing::TempDir() + "/yollo.bin";
  nn::save_parameters(a, path);
  nn::load_parameters(b, path);
  a.set_training(false);
  b.set_training(false);
  Rng rng(20);
  Tensor images = Tensor::randn({1, 3, cfg.img_h, cfg.img_w}, rng);
  std::vector<int64_t> tokens(cfg.max_query_len, 4);
  EXPECT_TRUE(allclose(a.forward(images, tokens).scores.value(),
                       b.forward(images, tokens).scores.value()));
}

TEST(YolloModelTest, InitWordEmbeddingsValidatesShape) {
  YolloConfig cfg = small_config();
  Rng rng(21);
  YolloModel model(cfg, 40, rng);
  EXPECT_THROW(model.init_word_embeddings(Tensor::zeros({39, cfg.word_dim})),
               std::invalid_argument);
  model.init_word_embeddings(Tensor::zeros({40, cfg.word_dim}));  // ok
}

TEST(TrainerTest, ShortTrainingReducesLoss) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(25, /*seed=*/9);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  BuildOptions options;
  options.config.num_rel2att = 2;
  options.pretrain_embeddings = false;
  auto model = build_yollo(dataset, vocab, options);
  TrainConfig tc;
  tc.epochs = 100;
  tc.max_steps = 30;
  tc.batch_size = 8;
  tc.log_every = 1;
  const TrainResult result = train_yollo(*model, dataset.train(), tc);
  ASSERT_GE(result.curve.size(), 10u);
  // Average of the last 5 curve points must be well below the first point.
  float late = 0.0f;
  for (size_t i = result.curve.size() - 5; i < result.curve.size(); ++i) {
    late += result.curve[i].total;
  }
  late /= 5.0f;
  EXPECT_LT(late, result.curve.front().total * 0.8f);
}

TEST(TrainerTest, EvaluatePairsEverySample) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(15, /*seed=*/10);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  BuildOptions options;
  options.config.num_rel2att = 1;
  options.pretrain_embeddings = false;
  auto model = build_yollo(dataset, vocab, options);
  const auto preds = evaluate_yollo(*model, dataset.val(), 4);
  EXPECT_EQ(preds.size(), dataset.val().size());
}

}  // namespace
}  // namespace yollo::core
