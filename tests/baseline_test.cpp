// Tests for the two-stage baseline: crop/geometry utilities, RPN proposer,
// listener/speaker matchers, and the assembled pipeline.
#include <cmath>

#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "data/renderer.h"

namespace yollo::baseline {
namespace {

ProposerConfig small_proposer_config() {
  ProposerConfig cfg;
  cfg.img_h = 48;
  cfg.img_w = 72;
  return cfg;
}

TEST(CropResizeTest, IdentityCropPreservesContent) {
  Rng rng(1);
  Tensor image = Tensor::rand({3, 16, 16}, rng);
  const Tensor crop =
      crop_resize(image, vision::Box{0, 0, 16, 16}, /*size=*/16);
  EXPECT_EQ(crop.shape(), (Shape{1, 3, 16, 16}));
  // Bilinear resampling at the same resolution reproduces interior pixels.
  EXPECT_NEAR(crop.at({0, 0, 8, 8}), image.at({0, 8, 8}), 1e-4f);
  EXPECT_NEAR(crop.at({0, 2, 5, 11}), image.at({2, 5, 11}), 1e-4f);
}

TEST(CropResizeTest, ZoomsIntoSubregion) {
  // Image with a bright quadrant: cropping that quadrant yields high mean.
  Tensor image({3, 20, 20});
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t y = 0; y < 10; ++y) {
      for (int64_t x = 0; x < 10; ++x) image.at({c, y, x}) = 1.0f;
    }
  }
  const Tensor bright = crop_resize(image, vision::Box{0, 0, 10, 10}, 8);
  const Tensor dark = crop_resize(image, vision::Box{10, 10, 10, 10}, 8);
  EXPECT_GT(mean(bright).item(), 0.9f);
  EXPECT_LT(mean(dark).item(), 0.1f);
}

TEST(CropResizeTest, OutOfBoundsBoxIsClipped) {
  Rng rng(2);
  Tensor image = Tensor::rand({3, 10, 10}, rng);
  const Tensor crop =
      crop_resize(image, vision::Box{-5, -5, 30, 30}, /*size=*/6);
  for (int64_t i = 0; i < crop.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(crop[i]));
  }
}

TEST(BoxGeometryTest, NormalisedDescriptor) {
  const Tensor g = box_geometry(vision::Box{18, 12, 36, 24}, 72, 48);
  EXPECT_EQ(g.numel(), 5);
  EXPECT_FLOAT_EQ(g[0], 0.5f);   // cx / W
  EXPECT_FLOAT_EQ(g[1], 0.5f);   // cy / H
  EXPECT_FLOAT_EQ(g[2], 0.5f);   // w / W
  EXPECT_FLOAT_EQ(g[3], 0.5f);   // h / H
  EXPECT_FLOAT_EQ(g[4], 0.25f);  // area fraction
}

TEST(ProposerTest, ForwardShapesAndProposeBounds) {
  ProposerConfig cfg = small_proposer_config();
  Rng rng(3);
  RegionProposalNetwork rpn(cfg, rng);
  rpn.set_training(false);
  Tensor image = Tensor::rand({1, 3, cfg.img_h, cfg.img_w}, rng);
  const auto out = rpn.forward(image);
  const int64_t num_anchors =
      cfg.grid_h() * cfg.grid_w() * cfg.anchors.anchors_per_cell();
  EXPECT_EQ(out.scores.shape(), (Shape{1, num_anchors}));
  EXPECT_EQ(out.deltas.shape(), (Shape{1, num_anchors, 4}));

  const auto proposals = rpn.propose(image);
  EXPECT_GT(proposals.size(), 0u);
  EXPECT_LE(static_cast<int64_t>(proposals.size()), cfg.max_proposals);
  for (const Proposal& p : proposals) {
    EXPECT_GE(p.box.x, 0.0f);
    EXPECT_LE(p.box.x2(), static_cast<float>(cfg.img_w) + 1e-3f);
  }
  // NMS guarantee: no two kept proposals overlap above the threshold.
  for (size_t i = 0; i < proposals.size(); ++i) {
    for (size_t j = i + 1; j < proposals.size(); ++j) {
      EXPECT_LE(vision::iou(proposals[i].box, proposals[j].box),
                cfg.nms_iou + 1e-4f);
    }
  }
}

TEST(ProposerTest, ProposalsOrderedByObjectness) {
  ProposerConfig cfg = small_proposer_config();
  Rng rng(4);
  RegionProposalNetwork rpn(cfg, rng);
  rpn.set_training(false);
  Tensor image = Tensor::rand({1, 3, cfg.img_h, cfg.img_w}, rng);
  const auto proposals = rpn.propose(image);
  for (size_t i = 1; i < proposals.size(); ++i) {
    EXPECT_GE(proposals[i - 1].objectness, proposals[i].objectness);
  }
}

TEST(ProposerTest, ShortTrainingReducesLoss) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(20, /*seed=*/11);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  ProposerConfig cfg = small_proposer_config();
  Rng rng(5);
  RegionProposalNetwork rpn(cfg, rng);

  // Measure loss on a fixed batch before and after a short training run.
  auto fixed_loss = [&]() {
    std::vector<int64_t> idx = {0, 1, 2, 3};
    const Tensor images = data::render_batch(dataset.train(), idx);
    std::vector<const data::Scene*> scenes;
    for (int64_t i : idx) {
      scenes.push_back(&dataset.train()[static_cast<size_t>(i)].scene);
    }
    Rng loss_rng(7);
    const auto out = rpn.forward(images);
    return rpn.compute_loss(out, scenes, loss_rng).value().item();
  };
  const float before = fixed_loss();
  RpnTrainConfig tc;
  tc.epochs = 100;
  tc.max_steps = 25;
  train_rpn(rpn, dataset.train(), tc);
  const float after = fixed_loss();
  EXPECT_LT(after, before);
}

MatcherConfig small_matcher_config(const data::Vocab& vocab) {
  MatcherConfig cfg;
  cfg.vocab_size = vocab.size();
  return cfg;
}

TEST(ListenerTest, ScoresOnePerProposal) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  MatcherConfig cfg = small_matcher_config(vocab);
  Rng rng(6);
  ListenerMatcher listener(cfg, rng);
  listener.set_training(false);
  Tensor image = Tensor::rand({3, 48, 72}, rng);
  std::vector<Proposal> proposals = {{vision::Box{5, 5, 12, 12}, 0.9f},
                                     {vision::Box{30, 10, 16, 16}, 0.7f},
                                     {vision::Box{50, 25, 10, 14}, 0.5f}};
  const auto scores =
      listener.score_proposals(image, proposals, vocab.encode("red circle"));
  EXPECT_EQ(scores.shape(), (Shape{3}));
  // Scores must differ across proposals (different crops/geometry).
  EXPECT_GT(max_value(scores.value()) - min_value(scores.value()), 1e-6f);
}

TEST(ListenerTest, QueryAffectsScores) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  MatcherConfig cfg = small_matcher_config(vocab);
  Rng rng(7);
  ListenerMatcher listener(cfg, rng);
  listener.set_training(false);
  Tensor image = Tensor::rand({3, 48, 72}, rng);
  std::vector<Proposal> proposals = {{vision::Box{5, 5, 12, 12}, 0.9f},
                                     {vision::Box{30, 10, 16, 16}, 0.7f}};
  const Tensor s1 =
      listener.score_proposals(image, proposals, vocab.encode("red circle"))
          .value();
  const Tensor s2 =
      listener
          .score_proposals(image, proposals, vocab.encode("large blue square"))
          .value();
  EXPECT_GT(max_abs_diff(s1, s2), 1e-6f);
}

TEST(SpeakerTest, LogLikelihoodIsNegativeAndFinite) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  MatcherConfig cfg = small_matcher_config(vocab);
  Rng rng(8);
  SpeakerMatcher speaker(cfg, rng);
  speaker.set_training(false);
  Tensor image = Tensor::rand({3, 48, 72}, rng);
  const auto ll = speaker.query_log_likelihood(
      image, vision::Box{10, 10, 16, 16}, vocab.encode("small green ring"));
  EXPECT_TRUE(std::isfinite(ll.value().item()));
  EXPECT_LT(ll.value().item(), 0.0f);  // log-probability
}

TEST(SpeakerTest, TrainingRaisesLikelihoodOfSeenQueries) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(15, /*seed=*/12);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  MatcherConfig cfg = small_matcher_config(vocab);
  Rng rng(9);
  SpeakerMatcher speaker(cfg, rng);
  const auto& s = dataset.train()[0];
  const Tensor image = data::render_scene(s.scene);
  const float before =
      speaker.query_log_likelihood(image, s.target_box(), s.tokens)
          .value()
          .item();
  MatcherTrainConfig tc;
  tc.epochs = 3;
  tc.max_steps = 60;
  train_speaker(speaker, dataset.train(), tc);
  speaker.set_training(false);
  const float after =
      speaker.query_log_likelihood(image, s.target_box(), s.tokens)
          .value()
          .item();
  EXPECT_GT(after, before);
}

TEST(PipelineTest, GroundReturnsBoxInsideImage) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  ProposerConfig pcfg = small_proposer_config();
  MatcherConfig mcfg = small_matcher_config(vocab);
  Rng rng(10);
  RegionProposalNetwork rpn(pcfg, rng);
  ListenerMatcher listener(mcfg, rng);
  SpeakerMatcher speaker(mcfg, rng);
  rpn.set_training(false);
  listener.set_training(false);
  speaker.set_training(false);
  Tensor image = Tensor::rand({3, 48, 72}, rng);
  for (MatchMode mode :
       {MatchMode::kListener, MatchMode::kSpeaker, MatchMode::kEnsemble}) {
    TwoStagePipeline pipeline(rpn, listener, speaker, mode);
    const vision::Box box = pipeline.ground(image, vocab.encode("red circle"));
    EXPECT_GE(box.x, 0.0f);
    EXPECT_GE(box.y, 0.0f);
    EXPECT_LE(box.x2(), 72.0f + 1e-3f);
    EXPECT_LE(box.y2(), 48.0f + 1e-3f);
  }
}

TEST(PipelineTest, ModeNames) {
  EXPECT_STREQ(match_mode_name(MatchMode::kListener), "listener");
  EXPECT_STREQ(match_mode_name(MatchMode::kSpeaker), "speaker");
  EXPECT_STREQ(match_mode_name(MatchMode::kEnsemble), "speaker+listener");
}

TEST(PipelineTest, EvaluateCoversSplit) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(10, /*seed=*/13);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  ProposerConfig pcfg = small_proposer_config();
  MatcherConfig mcfg = small_matcher_config(vocab);
  Rng rng(11);
  RegionProposalNetwork rpn(pcfg, rng);
  ListenerMatcher listener(mcfg, rng);
  SpeakerMatcher speaker(mcfg, rng);
  rpn.set_training(false);
  listener.set_training(false);
  speaker.set_training(false);
  TwoStagePipeline pipeline(rpn, listener, speaker, MatchMode::kListener);
  const auto preds =
      evaluate_two_stage(pipeline, dataset.val(), dataset.max_query_len());
  EXPECT_EQ(preds.size(), dataset.val().size());
}

TEST(ProposerTest, RecallOfUntrainedRpnIsLow) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();
  data::DatasetConfig dc = data::DatasetConfig::synthref(10, /*seed=*/14);
  dc.img_h = 48;
  dc.img_w = 72;
  const data::GroundingDataset dataset(dc, vocab);
  ProposerConfig cfg = small_proposer_config();
  Rng rng(12);
  RegionProposalNetwork rpn(cfg, rng);
  const double recall = proposal_recall(rpn, dataset.val());
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
}

}  // namespace
}  // namespace yollo::baseline
