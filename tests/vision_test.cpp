// Tests for the vision substrate: boxes, IoU, NMS, anchors, backbone.
#include <cmath>

#include <gtest/gtest.h>

#include "vision/anchors.h"
#include "vision/backbone.h"
#include "vision/box.h"

namespace yollo::vision {
namespace {

TEST(BoxTest, Accessors) {
  Box b{10, 20, 30, 40};
  EXPECT_FLOAT_EQ(b.cx(), 25.0f);
  EXPECT_FLOAT_EQ(b.cy(), 40.0f);
  EXPECT_FLOAT_EQ(b.x2(), 40.0f);
  EXPECT_FLOAT_EQ(b.y2(), 60.0f);
  EXPECT_FLOAT_EQ(b.area(), 1200.0f);
  Box c = Box::from_center(25, 40, 30, 40);
  EXPECT_FLOAT_EQ(c.x, 10.0f);
  EXPECT_FLOAT_EQ(c.y, 20.0f);
}

TEST(BoxTest, IouBasics) {
  Box a{0, 0, 10, 10};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0f);                       // self
  EXPECT_FLOAT_EQ(iou(a, Box{20, 20, 5, 5}), 0.0f);       // disjoint
  EXPECT_FLOAT_EQ(iou(a, Box{5, 0, 10, 10}), 50.0f / 150.0f);  // half overlap
  EXPECT_FLOAT_EQ(iou(a, Box{0, 0, 0, 0}), 0.0f);         // degenerate
}

TEST(BoxTest, IouIsSymmetricAndBounded) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Box a{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(1, 30),
          rng.uniform(1, 30)};
    Box b{rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(1, 30),
          rng.uniform(1, 30)};
    const float ab = iou(a, b);
    EXPECT_FLOAT_EQ(ab, iou(b, a));
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f);
  }
}

TEST(BoxTest, ContainedBoxIou) {
  Box outer{0, 0, 20, 20};
  Box inner{5, 5, 10, 10};
  EXPECT_FLOAT_EQ(iou(outer, inner), 100.0f / 400.0f);
}

TEST(BoxTest, ClipBox) {
  Box b{-5, -5, 20, 20};
  Box c = clip_box(b, 10, 10);
  EXPECT_FLOAT_EQ(c.x, 0.0f);
  EXPECT_FLOAT_EQ(c.y, 0.0f);
  EXPECT_FLOAT_EQ(c.w, 10.0f);
  EXPECT_FLOAT_EQ(c.h, 10.0f);
}

TEST(BoxDeltaTest, EncodeDecodeRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Box anchor = Box::from_center(rng.uniform(10, 80), rng.uniform(10, 50),
                                  rng.uniform(8, 30), rng.uniform(8, 30));
    Box target = Box::from_center(rng.uniform(10, 80), rng.uniform(10, 50),
                                  rng.uniform(5, 35), rng.uniform(5, 35));
    const Box back = decode_delta(anchor, encode_delta(anchor, target));
    EXPECT_NEAR(back.x, target.x, 1e-3f);
    EXPECT_NEAR(back.y, target.y, 1e-3f);
    EXPECT_NEAR(back.w, target.w, 1e-3f);
    EXPECT_NEAR(back.h, target.h, 1e-3f);
  }
}

TEST(BoxDeltaTest, ZeroDeltaIsIdentity) {
  Box anchor{10, 10, 20, 20};
  Box out = decode_delta(anchor, BoxDelta{});
  EXPECT_NEAR(iou(anchor, out), 1.0f, 1e-5f);
}

TEST(BoxDeltaTest, DecodeClampsExtremeSizes) {
  Box anchor{10, 10, 20, 20};
  Box out = decode_delta(anchor, BoxDelta{0, 0, 100.0f, 100.0f});
  EXPECT_TRUE(std::isfinite(out.w));
  EXPECT_TRUE(std::isfinite(out.h));
}

TEST(NmsTest, SuppressesOverlapsKeepsBestFirst) {
  std::vector<Box> boxes = {
      {0, 0, 10, 10}, {1, 1, 10, 10}, {30, 30, 10, 10}, {0, 0, 10, 10}};
  std::vector<float> scores = {0.8f, 0.9f, 0.5f, 0.2f};
  const auto keep = nms(boxes, scores, 0.5f);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 1);  // highest score
  EXPECT_EQ(keep[1], 2);  // distinct region
}

TEST(NmsTest, MaxKeepLimits) {
  std::vector<Box> boxes = {{0, 0, 5, 5}, {20, 0, 5, 5}, {40, 0, 5, 5}};
  std::vector<float> scores = {0.1f, 0.9f, 0.5f};
  const auto keep = nms(boxes, scores, 0.5f, /*max_keep=*/2);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0], 1);
  EXPECT_EQ(keep[1], 2);
}

TEST(AnchorTest, CountAndCoverage) {
  AnchorConfig cfg;
  const auto anchors = generate_anchors(cfg, 8, 12);
  EXPECT_EQ(anchors.size(), 8u * 12u * 9u);
  // First anchor centres on the first cell centre.
  EXPECT_FLOAT_EQ(anchors[0].cx(), 4.0f);
  EXPECT_FLOAT_EQ(anchors[0].cy(), 4.0f);
  // Aspect ratios preserve area within a scale triple.
  EXPECT_NEAR(anchors[0].area(), anchors[1].area(), 1.0f);
  EXPECT_NEAR(anchors[1].area(), anchors[2].area(), 1.0f);
}

TEST(AnchorTest, EveryModerateBoxHasAGoodAnchor) {
  // Property: any reasonably-sized box inside the canvas should overlap
  // some anchor with IoU >= 0.3, otherwise training signals vanish.
  AnchorConfig cfg;
  const auto anchors = generate_anchors(cfg, 8, 12);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const float w = rng.uniform(9.0f, 40.0f);
    const float h = rng.uniform(9.0f, 40.0f);
    const float x = rng.uniform(0.0f, 96.0f - w);
    const float y = rng.uniform(0.0f, 64.0f - h);
    const Box target{x, y, w, h};
    float best = 0.0f;
    for (const Box& a : anchors) best = std::max(best, iou(a, target));
    EXPECT_GE(best, 0.3f) << "box " << x << "," << y << " " << w << "x" << h;
  }
}

TEST(AnchorTest, LabelsPartitionByIoU) {
  AnchorConfig cfg;
  const auto anchors = generate_anchors(cfg, 8, 12);
  const Box target{40, 24, 20, 16};
  const AnchorLabels labels = label_anchors(anchors, target, 0.5f, 0.25f);
  EXPECT_FALSE(labels.positive.empty());
  EXPECT_FALSE(labels.negative.empty());
  for (int64_t idx : labels.positive) {
    EXPECT_GE(iou(anchors[static_cast<size_t>(idx)], target), 0.25f);
  }
  for (int64_t idx : labels.negative) {
    EXPECT_LE(iou(anchors[static_cast<size_t>(idx)], target), 0.25f);
  }
  // Positive and negative sets are disjoint.
  for (int64_t p : labels.positive) {
    for (int64_t n : labels.negative) EXPECT_NE(p, n);
  }
}

TEST(AnchorTest, TinyTargetStillGetsForcedPositive) {
  AnchorConfig cfg;
  const auto anchors = generate_anchors(cfg, 8, 12);
  const Box tiny{1, 1, 3, 3};  // below every anchor scale
  const AnchorLabels labels = label_anchors(anchors, tiny, 0.5f, 0.25f);
  ASSERT_EQ(labels.positive.size(), 1u);  // forced best-IoU anchor
}

TEST(BackboneTest, OutputGeometryStride8) {
  Rng rng(10);
  vision::Backbone net(BackboneConfig::r50_lite(), rng);
  ag::Variable img = ag::Variable::constant(Tensor::randn({2, 3, 64, 96}, rng));
  ag::Variable feat = net.forward(img);
  EXPECT_EQ(feat.shape(),
            (Shape{2, BackboneConfig::r50_lite().out_channels(), 8, 12}));
}

TEST(BackboneTest, DeeperVariantHasMoreParameters) {
  Rng rng(11);
  vision::Backbone shallow(BackboneConfig::r50_lite(), rng);
  vision::Backbone deep(BackboneConfig::r101_lite(), rng);
  EXPECT_GT(deep.parameter_count(), shallow.parameter_count());
}

TEST(BackboneTest, GradientsReachStem) {
  Rng rng(12);
  vision::Backbone net(BackboneConfig::r50_lite(), rng);
  ag::Variable img = ag::Variable::constant(Tensor::randn({1, 3, 16, 16}, rng));
  ag::Variable feat = net.forward(img);
  ag::sum(ag::square(feat)).backward();
  bool any_nonzero = false;
  const auto params = net.parameters();
  ASSERT_FALSE(params.empty());
  for (ag::Variable* p : params) {
    if (p->has_grad() && max_value(abs(p->grad())) > 0.0f) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  // Specifically the first (stem) parameter must receive gradient.
  EXPECT_TRUE(params.front()->has_grad());
}

TEST(BackboneTest, EvalModeIsDeterministic) {
  Rng rng(13);
  vision::Backbone net(BackboneConfig::r50_lite(), rng);
  net.set_training(false);
  ag::Variable img = ag::Variable::constant(Tensor::randn({1, 3, 32, 32}, rng));
  Tensor a = net.forward(img).value();
  Tensor b = net.forward(img).value();
  EXPECT_TRUE(allclose(a, b));
}

}  // namespace
}  // namespace yollo::vision

// -- appended: backbone variants --------------------------------------------
namespace yollo::vision {
namespace {

TEST(BackboneTest, VggVariantSameGeometryFewerParams) {
  Rng rng(20);
  Backbone res(BackboneConfig::r50_lite(), rng);
  Backbone vgg(BackboneConfig::vgg_lite(), rng);
  ag::Variable img = ag::Variable::constant(Tensor::randn({1, 3, 32, 48}, rng));
  EXPECT_EQ(vgg.forward(img).shape(), res.forward(img).shape());
  // Plain blocks drop the projection convolutions.
  EXPECT_LT(vgg.parameter_count(), res.parameter_count());
}

TEST(BackboneTest, VggVariantTrainsGradients) {
  Rng rng(21);
  Backbone vgg(BackboneConfig::vgg_lite(), rng);
  ag::Variable img = ag::Variable::constant(Tensor::randn({1, 3, 16, 16}, rng));
  ag::sum(ag::square(vgg.forward(img))).backward();
  int with_grad = 0;
  for (auto* p : vgg.parameters()) with_grad += p->has_grad();
  EXPECT_GT(with_grad, 0);
}

TEST(BackboneConfigTest, PresetNames) {
  EXPECT_EQ(BackboneConfig::r50_lite().name, "r50-lite");
  EXPECT_EQ(BackboneConfig::r101_lite().name, "r101-lite");
  EXPECT_EQ(BackboneConfig::vgg_lite().name, "vgg-lite");
  EXPECT_FALSE(BackboneConfig::vgg_lite().residual);
  EXPECT_EQ(BackboneConfig::r50_lite().stride(), 8);
}

}  // namespace
}  // namespace yollo::vision
