// Static forward-plan tests (DESIGN.md §14): bitwise plan-vs-dynamic
// equivalence, arena liveness non-overlap, plan-cache behaviour, typed
// cancellation through the planned path, the zero-allocation steady-state
// contract, and concurrent workers sharing one plan (the TSan leg).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/yollo.h"
#include "plan/plan.h"
#include "tensor/exec.h"
#include "tensor/pool.h"

// --- global allocation probe -------------------------------------------------
// The zero-allocation acceptance test replaces global operator new/delete
// with counting malloc shims. Compiled out under ASan/TSan, whose own
// new/delete interceptors this would displace.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define YOLLO_ALLOC_PROBE 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define YOLLO_ALLOC_PROBE 0
#else
#define YOLLO_ALLOC_PROBE 1
#endif
#else
#define YOLLO_ALLOC_PROBE 1
#endif

#if YOLLO_ALLOC_PROBE
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};
inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t sz) {
  note_alloc();
  void* p = std::malloc(sz ? sz : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz) { return ::operator new(sz); }
void* operator new(std::size_t sz, std::align_val_t al) {
  note_alloc();
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (sz + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz, std::align_val_t al) {
  return ::operator new(sz, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // YOLLO_ALLOC_PROBE

namespace yollo {
namespace {

core::YolloConfig small_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

// Restores the plan switch on scope exit so a failing test cannot leak a
// disabled planner into the rest of the binary.
struct PlanSwitch {
  explicit PlanSwitch(bool on) : saved(plan::enabled()) {
    plan::set_enabled(on);
  }
  ~PlanSwitch() { plan::set_enabled(saved); }
  bool saved;
};

Tensor test_images(int64_t batch, const core::YolloConfig& cfg,
                   uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand({batch, 3, cfg.img_h, cfg.img_w}, rng);
}

std::vector<int64_t> test_tokens(int64_t batch, const core::YolloConfig& cfg) {
  std::vector<int64_t> tokens;
  for (int64_t i = 0; i < batch * cfg.max_query_len; ++i) {
    tokens.push_back(3 + (i % 20));
  }
  return tokens;
}

// --- bitwise equivalence -----------------------------------------------------

TEST(PlanTest, BitwiseIdenticalToDynamicAcrossBatchSizes) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);

  // Odd / prime / block-straddling batch sizes: anything that could expose a
  // collapsed-loop or chunk-boundary difference between the two executors.
  for (int64_t batch : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{5},
                        int64_t{7}}) {
    const Tensor images = test_images(batch, cfg, 1000 + batch);
    const std::vector<int64_t> tokens = test_tokens(batch, cfg);

    core::YolloModel::RawForward planned, dynamic;
    {
      PlanSwitch on(true);
      planned = model.raw_forward(images, tokens);
    }
    {
      PlanSwitch off(false);
      dynamic = model.raw_forward(images, tokens);
    }
    ASSERT_TRUE(planned.planned) << "batch " << batch;
    ASSERT_FALSE(dynamic.planned) << "batch " << batch;
    ASSERT_EQ(planned.scores.shape(), dynamic.scores.shape());
    ASSERT_EQ(planned.deltas.shape(), dynamic.deltas.shape());
    EXPECT_EQ(std::memcmp(planned.scores.data(), dynamic.scores.data(),
                          sizeof(float) *
                              static_cast<size_t>(planned.scores.numel())),
              0)
        << "scores differ at batch " << batch;
    EXPECT_EQ(std::memcmp(planned.deltas.data(), dynamic.deltas.data(),
                          sizeof(float) *
                              static_cast<size_t>(planned.deltas.numel())),
              0)
        << "deltas differ at batch " << batch;
  }
}

TEST(PlanTest, PredictBitwiseIdenticalWithPlanDisabled) {
  // End-to-end YOLLO_PLAN=0 fallback: the boxes out of predict() must be
  // exactly the boxes the planned path produces.
  const core::YolloConfig cfg = small_config();
  Rng rng(99);
  core::YolloModel model(cfg, 40, rng);
  const Tensor images = test_images(2, cfg, 7);
  const std::vector<int64_t> tokens = test_tokens(2, cfg);

  std::vector<vision::Box> with_plan, without_plan;
  {
    PlanSwitch on(true);
    with_plan = model.predict(images, tokens);
    EXPECT_TRUE(model.planned(2));
  }
  {
    PlanSwitch off(false);
    without_plan = model.predict(images, tokens);
  }
  ASSERT_EQ(with_plan.size(), without_plan.size());
  for (size_t i = 0; i < with_plan.size(); ++i) {
    EXPECT_EQ(with_plan[i].x, without_plan[i].x);
    EXPECT_EQ(with_plan[i].y, without_plan[i].y);
    EXPECT_EQ(with_plan[i].w, without_plan[i].w);
    EXPECT_EQ(with_plan[i].h, without_plan[i].h);
  }
}

// --- arena liveness ----------------------------------------------------------

TEST(PlanTest, ArenaSlotsWithOverlappingLivenessAreDisjoint) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  PlanSwitch on(true);
  model.warm_plan(3);
  std::shared_ptr<plan::Plan> p = model.cached_plan(3);
  ASSERT_NE(p, nullptr);

  const std::vector<plan::Plan::SlotExtent> layout = p->arena_layout();
  ASSERT_FALSE(layout.empty());
  const int64_t arena_floats =
      p->arena_bytes() / static_cast<int64_t>(sizeof(float));
  for (const auto& s : layout) {
    EXPECT_GE(s.offset, 0);
    EXPECT_LE(s.offset + s.numel, arena_floats);
  }
  // Inclusive live intervals [def, last_use]: any two slots whose intervals
  // intersect must occupy disjoint arena ranges; a shared byte would let one
  // op's output silently corrupt another live value.
  for (size_t i = 0; i < layout.size(); ++i) {
    for (size_t j = i + 1; j < layout.size(); ++j) {
      const auto& a = layout[i];
      const auto& b = layout[j];
      const bool live_overlap = a.def <= b.last_use && b.def <= a.last_use;
      if (!live_overlap) continue;
      const bool mem_overlap =
          a.offset < b.offset + b.numel && b.offset < a.offset + a.numel;
      EXPECT_FALSE(mem_overlap)
          << "slots " << i << " and " << j << " are live together at ["
          << a.offset << "," << a.offset + a.numel << ") vs [" << b.offset
          << "," << b.offset + b.numel << ")";
    }
  }
}

// --- plan cache --------------------------------------------------------------

TEST(PlanTest, CacheMissCompileHitAndInvalidate) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  PlanSwitch on(true);

  const Tensor b1 = test_images(1, cfg, 1);
  const std::vector<int64_t> t1 = test_tokens(1, cfg);
  EXPECT_FALSE(model.planned(1));

  model.predict(b1, t1);  // miss -> record+compile
  core::YolloModel::PlanCacheStats s = model.plan_cache_stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.compiles, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_GT(s.arena_bytes, 0);
  EXPECT_TRUE(model.planned(1));

  model.predict(b1, t1);  // hit
  s = model.plan_cache_stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.compiles, 1);

  // A different batch size is a different plan: miss + compile, not a hit.
  const Tensor b2 = test_images(2, cfg, 2);
  model.predict(b2, test_tokens(2, cfg));
  s = model.plan_cache_stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.compiles, 2);
  EXPECT_EQ(s.entries, 2);

  model.invalidate_plans();
  EXPECT_FALSE(model.planned(1));
  EXPECT_FALSE(model.planned(2));
  EXPECT_EQ(model.plan_cache_stats().entries, 0);
  EXPECT_EQ(model.plan_cache_stats().arena_bytes, 0);

  model.predict(b1, t1);  // recompiles after invalidation
  s = model.plan_cache_stats();
  EXPECT_EQ(s.compiles, 3);
  EXPECT_TRUE(model.planned(1));
}

// --- cancellation ------------------------------------------------------------

TEST(PlanTest, CancelledContextYieldsTypedKCancelledOnPlannedPath) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  PlanSwitch on(true);
  model.warm_plan(1);
  ASSERT_TRUE(model.planned(1));

  const Tensor images = test_images(1, cfg, 5);
  const std::vector<int64_t> tokens = test_tokens(1, cfg);

  ExecContext ctx;
  ctx.arm();
  ctx.cancel(CancelCause::kCancelled);
  ExecContext::Scope scope(&ctx);
  const core::YolloModel::InferOutcome outcome = model.infer(images, tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kCancelled);

  // Re-armed context: the same cached plan serves the retry.
  ctx.arm();
  const core::YolloModel::InferOutcome retry = model.infer(images, tokens);
  EXPECT_TRUE(retry.ok());
}

// --- zero-allocation steady state -------------------------------------------

TEST(PlanTest, SteadyStatePlannedForwardAllocatesNothing) {
#if YOLLO_ALLOC_PROBE
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  PlanSwitch on(true);
  const Tensor images = test_images(2, cfg, 11);
  const std::vector<int64_t> tokens = test_tokens(2, cfg);

  // Warm up: compile the plan, spin up the thread pool, size the GEMM pack
  // scratch. Two runs so every lazily-grown buffer has reached steady state.
  model.warm_plan(2);
  ASSERT_TRUE(model.run_planned(images, tokens));
  ASSERT_TRUE(model.run_planned(images, tokens));

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  const bool ran = model.run_planned(images, tokens);
  g_count_allocs.store(false, std::memory_order_relaxed);

  ASSERT_TRUE(ran);
  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0)
      << "steady-state planned forward must not touch the heap";
#else
  GTEST_SKIP() << "allocation probe disabled under sanitizers";
#endif
}

// --- concurrency (the TSan leg) ----------------------------------------------

TEST(PlanTest, ConcurrentWorkersSharingOnePlanStayCorrect) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  // Pin eval mode: the per-call EvalModeGuard save/restore is not designed
  // for concurrent callers on one model (serve gives each worker a replica);
  // with the flag already false the guards are value-neutral.
  model.set_training(false);
  PlanSwitch on(true);
  model.warm_plan(1);
  ASSERT_TRUE(model.planned(1));

  const Tensor images = test_images(1, cfg, 21);
  const std::vector<int64_t> tokens = test_tokens(1, cfg);
  const std::vector<vision::Box> expect = model.predict(images, tokens);
  ASSERT_EQ(expect.size(), 1u);

  // Four workers hammer the same cached plan. The plan's execution lock
  // admits one at a time; losers take the dynamic path — either way every
  // result must be bitwise the single-threaded answer.
  constexpr int kWorkers = 4;
  constexpr int kIters = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const core::YolloModel::InferOutcome o = model.infer(images, tokens);
        if (!o.ok() || o.boxes.size() != 1 || o.boxes[0].x != expect[0].x ||
            o.boxes[0].y != expect[0].y || o.boxes[0].w != expect[0].w ||
            o.boxes[0].h != expect[0].h) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace yollo
