// Autograd tests: backward correctness of every op, verified analytically
// for simple cases and by finite differences for the rest.
#include <cmath>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "test_util.h"

namespace yollo {
namespace {

using ag::Variable;
using yollo::testing::check_gradients;

TEST(VariableTest, LeafBasics) {
  Variable v = Variable::param(Tensor::from_vector({1, 2, 3}));
  EXPECT_TRUE(v.requires_grad());
  EXPECT_FALSE(v.has_grad());
  Variable c = Variable::constant(Tensor::from_vector({1}));
  EXPECT_FALSE(c.requires_grad());
  Variable d = v.detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_EQ(d.value().data(), v.value().data());  // shares data storage
}

TEST(VariableTest, SimpleChainBackward) {
  Variable x = Variable::param(Tensor::scalar(3.0f));
  Variable y = ag::mul(x, x);  // x^2
  Variable z = ag::add_scalar(ag::mul_scalar(y, 2.0f), 1.0f);  // 2x^2+1
  z.backward();
  EXPECT_FLOAT_EQ(z.value().item(), 19.0f);
  EXPECT_FLOAT_EQ(x.grad().item(), 12.0f);  // dz/dx = 4x
}

TEST(VariableTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x = Variable::param(Tensor::scalar(2.0f));
  ag::mul(x, x).backward();
  EXPECT_FLOAT_EQ(x.grad().item(), 4.0f);
  ag::mul(x, x).backward();
  EXPECT_FLOAT_EQ(x.grad().item(), 8.0f);  // accumulated
  x.zero_grad();
  EXPECT_FALSE(x.has_grad());
}

TEST(VariableTest, DiamondGraphSumsBothPaths) {
  // z = x*x + x*x must give dz/dx = 4x even though x feeds two paths.
  Variable x = Variable::param(Tensor::scalar(5.0f));
  Variable a = ag::mul(x, x);
  Variable b = ag::mul(x, x);
  Variable z = ag::add(a, b);
  z.backward();
  EXPECT_FLOAT_EQ(x.grad().item(), 20.0f);
}

TEST(VariableTest, BackwardRequiresScalar) {
  Variable x = Variable::param(Tensor::ones({3}));
  EXPECT_THROW(x.backward(), std::logic_error);
}

TEST(VariableTest, GraphSizeCountsReachableNodes) {
  Variable x = Variable::param(Tensor::scalar(1.0f));
  Variable y = ag::add(ag::mul(x, x), x);
  EXPECT_EQ(ag::graph_size(y), 3);  // x, mul, add
}

TEST(VariableTest, DeepChainDoesNotOverflowStack) {
  Variable x = Variable::param(Tensor::scalar(1.0f));
  Variable y = x;
  for (int i = 0; i < 20000; ++i) y = ag::add_scalar(y, 0.0f);
  y.backward();
  EXPECT_FLOAT_EQ(x.grad().item(), 1.0f);
}

// ---- finite-difference checks for every differentiable op -----------------

TEST(GradCheck, AddSubMulDivWithBroadcast) {
  Rng rng(11);
  std::vector<Variable> leaves{
      Variable::param(Tensor::randn({2, 3}, rng)),
      Variable::param(Tensor::randn({1, 3}, rng)),
  };
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable s = ag::add(v[0], v[1]);
        s = ag::mul(s, v[0]);
        s = ag::sub(s, v[1]);
        Variable safe = ag::add_scalar(ag::sigmoid(v[1]), 1.0f);  // >1
        s = ag::div(s, safe);
        return ag::sum(s);
      },
      leaves);
}

TEST(GradCheck, UnaryOps) {
  Rng rng(12);
  std::vector<Variable> leaves{
      Variable::param(Tensor::rand({2, 4}, rng, 0.3f, 2.0f))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable a = ag::log(v[0]);
        Variable b = ag::exp(ag::mul_scalar(v[0], 0.3f));
        Variable c = ag::sqrt(v[0]);
        Variable d = ag::tanh(v[0]);
        Variable e = ag::sigmoid(v[0]);
        Variable f = ag::square(v[0]);
        return ag::sum(
            ag::add(a, ag::add(b, ag::add(c, ag::add(d, ag::add(e, f))))));
      },
      leaves);
}

TEST(GradCheck, ReluAwayFromKink) {
  std::vector<Variable> leaves{
      Variable::param(Tensor::from_vector({-2.0f, -0.7f, 0.8f, 3.0f}))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::mul(ag::relu(v[0]), v[0]));
      },
      leaves);
}

TEST(GradCheck, PowScalar) {
  Rng rng(13);
  std::vector<Variable> leaves{
      Variable::param(Tensor::rand({3, 2}, rng, 0.5f, 2.0f))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::pow_scalar(v[0], -0.5f));
      },
      leaves);
}

TEST(GradCheck, MatmulBothOperands) {
  Rng rng(14);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({3, 4}, rng)),
                               Variable::param(Tensor::randn({4, 2}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::square(ag::matmul(v[0], v[1])));
      },
      leaves);
}

TEST(GradCheck, BatchedMatmul) {
  Rng rng(15);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({2, 3, 4}, rng)),
                               Variable::param(Tensor::randn({2, 4, 2}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::square(ag::matmul(v[0], v[1])));
      },
      leaves);
}

TEST(GradCheck, ReshapeTransposeNarrowConcat) {
  Rng rng(16);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({2, 6}, rng)),
                               Variable::param(Tensor::randn({3, 4}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable a = ag::reshape(v[0], {3, 4});
        Variable b = ag::transpose(v[1], 0, 1);  // [4,3]
        Variable c = ag::concat({a, ag::transpose(b, 0, 1)}, 0);  // [6,4]
        Variable d = ag::narrow(c, 0, 1, 4);
        return ag::sum(ag::square(d));
      },
      leaves);
}

TEST(GradCheck, SelectRowsAndGatherFlat) {
  Rng rng(17);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({5, 3}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable rows = ag::select_rows(v[0], {4, 0, 4, 2});
        Variable flat = ag::gather_flat(v[0], {0, 7, 14, 7});
        return ag::add(ag::sum(ag::square(rows)), ag::sum(ag::square(flat)));
      },
      leaves);
}

TEST(GradCheck, SumMeanAxes) {
  Rng rng(18);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({3, 4, 2}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable s0 = ag::sum(v[0], 0);
        Variable m1 = ag::mean(v[0], 1, /*keepdim=*/true);
        Variable m2 = ag::mean(v[0], 2);
        return ag::add(ag::sum(ag::square(s0)),
                       ag::add(ag::sum(ag::square(m1)), ag::mean(m2)));
      },
      leaves);
}

TEST(GradCheck, SoftmaxAndLogSoftmax) {
  Rng rng(19);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({3, 5}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable s = ag::softmax(v[0], 1);
        Variable ls = ag::log_softmax(v[0], 1);
        Variable w = Variable::constant(
            Tensor::arange(15).reshape({3, 5}));
        return ag::add(ag::sum(ag::mul(s, w)), ag::sum(ag::mul(ls, w)));
      },
      leaves);
}

TEST(GradCheck, SoftmaxOverMiddleAxis) {
  Rng rng(20);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({2, 4, 3}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable s = ag::softmax(v[0], 1);
        return ag::sum(ag::square(s));
      },
      leaves);
}

TEST(GradCheck, SmoothL1) {
  Rng rng(21);
  Tensor target = Tensor::randn({4, 3}, rng);
  // Keep predictions away from the |d| = 1 kink where the finite difference
  // straddles the two branches.
  Tensor init = yollo::add(target.clone(), Tensor::full({4, 3}, 0.4f));
  init.at({0, 0}) = target.at({0, 0}) + 2.5f;   // linear branch
  init.at({1, 1}) = target.at({1, 1}) - 3.0f;   // linear branch, negative
  std::vector<Variable> leaves{Variable::param(init)};
  check_gradients(
      [&target](std::vector<Variable>& v) {
        return ag::smooth_l1(v[0], target);
      },
      leaves);
}

TEST(GradCheck, BceWithLogits) {
  Rng rng(22);
  Tensor targets({6}, {1, 0, 1, 1, 0, 0});
  std::vector<Variable> leaves{Variable::param(Tensor::randn({6}, rng))};
  check_gradients(
      [&targets](std::vector<Variable>& v) {
        return ag::bce_with_logits(v[0], targets);
      },
      leaves);
}

TEST(GradCheck, Conv2dAllInputs) {
  Rng rng(23);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel_h = spec.kernel_w = 3;
  spec.stride_h = spec.stride_w = 2;
  spec.pad_h = spec.pad_w = 1;
  std::vector<Variable> leaves{
      Variable::param(Tensor::randn({2, 2, 5, 6}, rng)),
      Variable::param(Tensor::randn({3, 2, 3, 3}, rng)),
      Variable::param(Tensor::randn({3}, rng))};
  // Sum-of-squares over a conv output loses fp32 precision under central
  // differences; use a larger step and tolerance.
  check_gradients(
      [&spec](std::vector<Variable>& v) {
        return ag::mul_scalar(
            ag::sum(ag::square(ag::conv2d(v[0], v[1], v[2], spec))), 0.1f);
      },
      leaves, /*eps=*/3e-2f, /*tol=*/6e-2f);
}

TEST(GradCheck, GlobalAvgPool) {
  Rng rng(25);
  std::vector<Variable> leaves{
      Variable::param(Tensor::randn({2, 3, 4, 4}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::square(ag::global_avg_pool(v[0])));
      },
      leaves);
}

TEST(GradCheck, BroadcastToExplicit) {
  Rng rng(26);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({1, 3}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        Variable b = ag::broadcast_to(v[0], {4, 3});
        return ag::sum(ag::square(b));
      },
      leaves);
}

TEST(MaxPoolGrad, RoutesToArgmaxOnly) {
  // Deterministic input where the pooled max is unique per window: the
  // analytic gradient must land exactly on those positions.
  Tensor x({1, 1, 4, 4}, {1, 2, 5, 6,    //
                          3, 9, 7, 8,    //
                          4, 10, 13, 14, //
                          11, 12, 15, 16});
  Variable vx = Variable::param(x);
  Variable y = ag::max_pool2x2(vx);
  ag::sum(y).backward();
  EXPECT_FLOAT_EQ(vx.grad().at({0, 0, 1, 1}), 1.0f);   // 9
  EXPECT_FLOAT_EQ(vx.grad().at({0, 0, 1, 3}), 1.0f);   // 8
  EXPECT_FLOAT_EQ(vx.grad().at({0, 0, 3, 1}), 1.0f);   // 12
  EXPECT_FLOAT_EQ(vx.grad().at({0, 0, 3, 3}), 1.0f);   // 16
  EXPECT_FLOAT_EQ(sum(vx.grad()).item(), 4.0f);
}

TEST(DropoutTest, IdentityInEvalOrZeroP) {
  Rng rng(30);
  Variable x = Variable::param(Tensor::randn({4, 4}, rng));
  Variable eval_out = ag::dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(allclose(eval_out.value(), x.value()));
  Variable zero_p = ag::dropout(x, 0.0f, rng, /*training=*/true);
  EXPECT_TRUE(allclose(zero_p.value(), x.value()));
}

TEST(DropoutTest, TrainingScalesSurvivors) {
  Rng rng(31);
  Variable x = Variable::param(Tensor::ones({1000}));
  Variable y = ag::dropout(x, 0.5f, rng, /*training=*/true);
  int zeros = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    const float v = y.value()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    zeros += v == 0.0f;
  }
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

TEST(EmbeddingGrad, ScatterAddsDuplicates) {
  Variable w = Variable::param(Tensor::ones({4, 2}));
  Variable e = ag::embedding(w, {1, 1, 3});
  ag::sum(e).backward();
  EXPECT_FLOAT_EQ(w.grad().at({1, 0}), 2.0f);
  EXPECT_FLOAT_EQ(w.grad().at({3, 1}), 1.0f);
  EXPECT_FLOAT_EQ(w.grad().at({0, 0}), 0.0f);
}

}  // namespace
}  // namespace yollo
