// Continuous-batching scheduler tests (DESIGN.md §15): the burst-throughput
// regression that motivated the rewrite (BENCH_infer.json serve_burst:
// batch_max 8 ran at 0.78x of batch_max 1 under the greedy coalescer),
// slack-forced solo dispatch for near-deadline stragglers, the adaptive
// batch-size target's shrink/grow rules under injected slow forwards, and
// the five-term accounting invariant under a concurrent metrics poller.
//
// Suite names deliberately contain "Batch" so `ctest -R 'serve|cache|batch'`
// selects everything here.
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "runtime/fault.h"
#include "serve/service.h"
#include "test_util.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_TSAN_BUILD 1
#endif

namespace yollo::serve {
namespace {

#ifdef YOLLO_TSAN_BUILD
constexpr int kTimeScale = 8;
#else
constexpr int kTimeScale = 1;
#endif

struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

core::YolloConfig tiny_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

// Untrained model + untrained two-stage fallback (scheduler behaviour does
// not depend on grounding accuracy) — the serve_test harness, trimmed.
struct BatchHarness {
  data::Vocab vocab = data::Vocab::grounding_vocab();
  core::YolloConfig cfg = tiny_config();
  Rng rng{123};
  core::YolloModel model{cfg, vocab.size(), rng};

  baseline::ProposerConfig pcfg;
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;
  std::unique_ptr<baseline::TwoStagePipeline> pipeline;

  BatchHarness() {
    model.set_training(false);
    pcfg.img_h = cfg.img_h;
    pcfg.img_w = cfg.img_w;
    pcfg.max_proposals = 8;
    Rng prng(7);
    rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, prng);
    rpn->set_training(false);
    baseline::MatcherConfig mcfg;
    mcfg.patch = 16;
    mcfg.emb_dim = 16;
    mcfg.word_dim = 16;
    mcfg.vocab_size = vocab.size();
    listener = std::make_unique<baseline::ListenerMatcher>(mcfg, prng);
    listener->set_training(false);
    speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, prng);
    speaker->set_training(false);
    pipeline = std::make_unique<baseline::TwoStagePipeline>(
        *rpn, *listener, *speaker, baseline::MatchMode::kListener);
  }

  Tensor image(uint64_t seed = 5) {
    Rng r(seed);
    return Tensor::rand({3, cfg.img_h, cfg.img_w}, r);
  }

  GroundRequest request(const std::string& query = "red circle",
                        uint64_t seed = 5) {
    GroundRequest req;
    req.image = image(seed);
    req.query = query;
    return req;
  }
};

// Poll until every worker reports plan warm-up complete: the same gauge the
// burst benchmark waits on before starting its clock, so a throughput
// measurement never charges warm-up compiles to the serving path.
void wait_for_warm(const InferenceService& service, int64_t workers) {
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::seconds(30ll * kTimeScale);
  while (service.counters().workers_warmed < workers) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "workers never finished plan warm-up";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(ServeBatchTest, WarmupGaugeReachesWorkerCount) {
  FaultGuard guard;
  BatchHarness h;
  ServeConfig sc;
  sc.num_workers = 3;
  sc.batch_max = 4;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());
  wait_for_warm(service, 3);
  EXPECT_EQ(service.counters().workers_warmed, 3);
}

// --- the 0.78x burst regression, pinned in-tree ------------------------------

namespace {
struct BurstResult {
  double rps = 0.0;
  ServiceCounters counters;
};

BurstResult run_burst(BatchHarness& h, int64_t batch_max, int64_t requests) {
  ServeConfig sc;
  // One worker, deep queue: batching efficiency is measured directly
  // (formed batches vs solo forwards over identical work), not through the
  // scheduling noise of several workers time-sharing the same cores.
  sc.num_workers = 1;
  sc.queue_capacity = requests;
  sc.batch_max = batch_max;
  sc.feature_cache_mb = 0;  // isolate the scheduler from the cache
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());
  wait_for_warm(service, sc.num_workers);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<GroundResponse>> futures;
  futures.reserve(static_cast<size_t>(requests));
  for (int64_t i = 0; i < requests; ++i) {
    futures.push_back(service.submit(
        h.request("red circle", static_cast<uint64_t>(100 + i % 7))));
  }
  int64_t ok = 0;
  for (auto& f : futures) {
    if (f.get().status.answered()) ++ok;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(ok, requests);

  BurstResult result;
  result.rps = static_cast<double>(requests) / secs;
  result.counters = service.counters();
  return result;
}
}  // namespace

TEST(ServeBatchTest, BurstOf256Batch8ThroughputAtLeastBatch1) {
  FaultGuard guard;
  BatchHarness h;
  constexpr int64_t kBurst = 256;

  // Regression pin for BENCH_infer.json serve_burst batch_max 8 at 0.78x of
  // batch_max 1: with slack-aware formation, warm workers, and the fused
  // per-image conv workspace, batching a deadline-free backlog must never
  // cost throughput. Interleave three trials per configuration and compare
  // the best of each (peak capacity, immune to one noisy slice of a shared
  // box); the 10% tolerance absorbs machine noise, not the 22% regression
  // class this test exists to catch.
  double best_b1 = 0.0, best_b8 = 0.0;
  ServiceCounters last_b1, last_b8;
  for (int run = 0; run < 3; ++run) {
    const BurstResult b1 = run_burst(h, 1, kBurst);
    const BurstResult b8 = run_burst(h, 8, kBurst);
    best_b1 = std::max(best_b1, b1.rps);
    best_b8 = std::max(best_b8, b8.rps);
    last_b1 = b1.counters;
    last_b8 = b8.counters;
  }

  EXPECT_GE(best_b8, best_b1 * 0.9)
      << "batched burst slower than solo: " << best_b8 << " vs " << best_b1
      << " req/s";

  // batch_max 1 must never coalesce; batch_max 8 must actually batch the
  // backlog (a 256-deep deadline-free queue over 4 workers).
  EXPECT_EQ(last_b1.batches_coalesced, 0);
  EXPECT_GT(last_b8.batches_coalesced, 0);
  EXPECT_GT(last_b8.max_batch, 1);
  EXPECT_LE(last_b8.max_batch, 8);
  testing::expect_serve_invariant(last_b1);
  testing::expect_serve_invariant(last_b8);
}

// --- slack-forced solo dispatch ---------------------------------------------

TEST(ServeBatchTest, NearDeadlineStragglersDispatchSoloAndAreCounted) {
  FaultGuard guard;
  BatchHarness h;
  // Same shape as serve_test's NearDeadlineRequestRunsSoloNotCoalesced, but
  // this suite additionally pins the scheduler's solo_dispatches counter:
  // slack-forced solo runs must be visible, not inferred from the absence
  // of coalescing.
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 250 * kTimeScale;
  fc.slow_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 4;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // Prime the solo cost model with one ~250ms sample.
  EXPECT_TRUE(service.ground(h.request("red circle", 1)).status.ok());

  // Block the worker and queue three requests whose slack at dequeue
  // (~150ms of a 300ms budget) cannot cover a predicted 2-wide forward.
  auto blocker = service.submit(h.request("red circle", 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(100 * kTimeScale));
  std::vector<std::future<GroundResponse>> queued;
  for (uint64_t i = 0; i < 3; ++i) {
    GroundRequest near_deadline = h.request("red circle", 40 + i);
    near_deadline.deadline_ms = 300 * kTimeScale;
    queued.push_back(service.submit(std::move(near_deadline)));
  }

  EXPECT_TRUE(blocker.get().status.ok());
  for (auto& future : queued) {
    const GroundResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batches_coalesced, 0);
  EXPECT_EQ(counters.batched_requests, 0);
  EXPECT_GE(counters.solo_dispatches, 1);
  EXPECT_EQ(counters.deadline_exceeded, 0);
  testing::expect_serve_invariant(counters);
}

// --- adaptive target: shrink on deadline miss, regrow on deep queue ---------

TEST(ServeBatchTest, AdaptiveTargetShrinksOnMissedBatchThenRegrows) {
  FaultGuard guard;
  BatchHarness h;

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 2;
  sc.max_retries = 1;
  sc.breaker_threshold = 100;  // keep the breaker out of this test
  // Let the injected slow forward run to completion instead of being
  // cancelled at the riders' deadline — the shrink rule needs the batch to
  // finish late, deterministically.
  sc.enable_cancellation = false;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());
  wait_for_warm(service, 1);
  EXPECT_EQ(service.counters().batch_target, 2);  // starts at batch_max

  // Seed the solo cost EWMA with one fast clean forward, so the slow batch
  // below reads as a deadline miss, not as cold-start noise.
  EXPECT_TRUE(service.ground(h.request("red circle", 1)).status.ok());

  // Blocker: two slow+failed attempts (~600ms total, neither feeds the cost
  // model — a faulted forward is not a cost sample) ending in a degraded
  // answer. While it runs, two riders queue with budgets that cover the
  // wait but not a 300ms batched forward on top of it.
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300 * kTimeScale;
  fc.slow_forward_count = 3;
  fc.fail_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  auto blocker = service.submit(h.request("red circle", 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(25 * kTimeScale));
  std::vector<std::future<GroundResponse>> riders;
  for (uint64_t i = 0; i < 2; ++i) {
    GroundRequest req = h.request("red circle", 50 + i);
    req.deadline_ms = 700 * kTimeScale;
    riders.push_back(service.submit(std::move(req)));
  }
  EXPECT_TRUE(blocker.get().status.answered());
  for (auto& f : riders) (void)f.get();

  ServiceCounters counters = service.counters();
  EXPECT_GE(counters.sched_shrinks, 1)
      << "a batched forward that missed its riders' deadlines must step the "
         "target down";
  EXPECT_EQ(counters.batch_target, 1);

  // Regrow: a deep deadline-free backlog of fast forwards must step the
  // target back up after the patience window.
  std::vector<std::future<GroundResponse>> backlog;
  for (uint64_t i = 0; i < 12; ++i) {
    backlog.push_back(service.submit(h.request("red circle", 80 + i)));
  }
  for (auto& f : backlog) {
    EXPECT_TRUE(f.get().status.answered());
  }
  counters = service.counters();
  EXPECT_GE(counters.sched_grows, 1)
      << "a sustained deep queue must grow the target back";
  testing::expect_serve_invariant(counters);
}

TEST(ServeBatchTest, AdaptiveEscapeHatchPinsTarget) {
  FaultGuard guard;
  BatchHarness h;
  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 4;
  sc.adaptive_batching = false;  // YOLLO_BATCH_ADAPTIVE=0 sets the same flag
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());
  wait_for_warm(service, 1);

  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(
        service.ground(h.request("red circle", static_cast<uint64_t>(i)))
            .status.ok());
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batch_target, 4);  // pinned at batch_max
  EXPECT_EQ(counters.sched_shrinks, 0);
  EXPECT_EQ(counters.sched_grows, 0);
}

// --- accounting invariant under a concurrent poller -------------------------

TEST(ServeBatchTest, FiveTermInvariantHoldsUnderConcurrentPoller) {
  FaultGuard guard;
  BatchHarness h;

  // A scoped injector bound to this service's workers: a few transient
  // faults mid-run exercise retry/degrade while the poller watches.
  runtime::FaultInjector injector;
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 6;
  injector.configure(fc);

  ServeConfig sc;
  sc.num_workers = 4;
  sc.queue_capacity = 24;  // small enough that the burst overloads it
  sc.batch_max = 8;
  sc.feature_cache_mb = 8;
  sc.fault_injector = &injector;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  std::atomic<bool> done{false};
  std::atomic<int64_t> polls{0};
  std::thread poller([&] {
    while (!done.load(std::memory_order_acquire)) {
      const ServiceCounters c = service.counters();
      // Mid-run every snapshot must be coherent: terminal counters can
      // never outrun submissions (both sides move under the service lock).
      EXPECT_LE(c.served + c.rejected + c.deadline_exceeded + c.failed +
                    c.cancelled,
                c.submitted);
      EXPECT_GE(c.served, c.degraded);
      polls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 40;
  std::vector<std::future<GroundResponse>> futures[kSubmitters];
  std::vector<std::shared_ptr<CancelToken>> tokens;
  std::mutex tokens_mu;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        GroundRequest req =
            h.request("red circle", static_cast<uint64_t>(t * 100 + i % 5));
        switch (i % 4) {
          case 1:  // tight deadline: may expire in the queue
            req.deadline_ms = 2 * kTimeScale;
            break;
          case 2: {  // cancellable: half get cancelled below
            req.cancel = std::make_shared<CancelToken>();
            std::lock_guard<std::mutex> lock(tokens_mu);
            tokens.push_back(req.cancel);
            break;
          }
          default:
            break;
        }
        futures[t].push_back(service.submit(std::move(req)));
      }
    });
  }
  for (auto& th : submitters) th.join();
  {
    std::lock_guard<std::mutex> lock(tokens_mu);
    for (size_t i = 0; i < tokens.size(); i += 2) tokens[i]->cancel();
  }

  int64_t resolved = 0;
  for (auto& fs : futures) {
    for (auto& f : fs) {
      (void)f.get();
      ++resolved;
    }
  }
  done.store(true, std::memory_order_release);
  poller.join();
  service.stop();

  EXPECT_EQ(resolved, kSubmitters * kPerThread);
  EXPECT_GT(polls.load(), 0);
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.submitted, kSubmitters * kPerThread);
  testing::expect_serve_invariant(c);
}

// --- scenario table (config-map fixture from test_util.h) -------------------

class ServeBatchScenarioTest
    : public ::testing::TestWithParam<testing::ServeScenario> {};

TEST_P(ServeBatchScenarioTest, BatchingCountersMatchScenario) {
  FaultGuard guard;
  BatchHarness h;
  const testing::ServeScenario& scenario = GetParam();

  const testing::ServeScenarioOutcome out = testing::run_serve_scenario(
      h.model, h.vocab, h.pipeline.get(), scenario, /*requests=*/24,
      /*distinct_images=*/4, kTimeScale);

  if (scenario.batch_max == 1) {
    EXPECT_EQ(out.counters.batches_coalesced, 0) << scenario.name;
    EXPECT_EQ(out.counters.batched_requests, 0) << scenario.name;
  } else {
    EXPECT_LE(out.counters.max_batch, scenario.batch_max) << scenario.name;
  }
  EXPECT_LE(out.counters.batch_target, scenario.batch_max) << scenario.name;
  EXPECT_GE(out.counters.batch_target, 1) << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(
    ServeScenarios, ServeBatchScenarioTest,
    ::testing::ValuesIn(testing::serve_scenario_table()),
    [](const ::testing::TestParamInfo<yollo::testing::ServeScenario>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace yollo::serve
