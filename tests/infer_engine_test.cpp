// Inference-engine tests: the grad-free execution path (GradMode /
// NoGradGuard), the storage pool behind the Tensor factories, and batched
// forward equivalence — the three layers that make predict()/infer() fast
// without changing what they compute.
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/yollo.h"
#include "runtime/fault.h"
#include "tensor/pool.h"
#include "test_util.h"

namespace yollo {
namespace {

using ag::Variable;
using yollo::testing::check_gradients;

// --- GradMode / NoGradGuard -------------------------------------------------

TEST(GradModeTest, DefaultsOnAndGuardNestsAndRestores) {
  EXPECT_TRUE(ag::GradMode::enabled());
  {
    ag::NoGradGuard outer;
    EXPECT_FALSE(ag::GradMode::enabled());
    {
      ag::NoGradGuard inner;  // nested guard is a no-op, not a toggle
      EXPECT_FALSE(ag::GradMode::enabled());
    }
    EXPECT_FALSE(ag::GradMode::enabled());  // inner exit must not re-enable
  }
  EXPECT_TRUE(ag::GradMode::enabled());
}

TEST(GradModeTest, GuardIsThreadLocal) {
  ag::NoGradGuard guard;
  ASSERT_FALSE(ag::GradMode::enabled());
  bool other_thread_enabled = false;
  std::thread([&] {
    // A fresh thread starts with gradients on, regardless of this thread's
    // guard...
    other_thread_enabled = ag::GradMode::enabled();
    // ...and its own guard must not leak back either.
    ag::NoGradGuard local;
  }).join();
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_FALSE(ag::GradMode::enabled());  // still under this thread's guard
}

TEST(GradModeTest, NoGraphIsRecordedUnderNoGrad) {
  Variable x = Variable::param(Tensor::scalar(3.0f));
  Variable y;
  {
    ag::NoGradGuard guard;
    y = ag::add_scalar(ag::mul(x, x), 1.0f);
  }
  EXPECT_FLOAT_EQ(y.value().item(), 10.0f);  // value identical to grad-on
  EXPECT_FALSE(y.requires_grad());
  // The result is a single leaf: no parents, no backward closure, no saved
  // tensors — the whole point of the no-grad path.
  EXPECT_EQ(ag::graph_size(y), 1);
}

TEST(GradModeTest, BackwardOnNoGradResultFailsLoudly) {
  Variable x = Variable::param(Tensor::scalar(2.0f));
  Variable y;
  {
    ag::NoGradGuard guard;
    y = ag::mul(x, x);
  }
  EXPECT_THROW(y.backward(), std::logic_error);
  // x is untouched: nothing flowed back.
  EXPECT_FALSE(x.has_grad());
}

TEST(GradModeTest, GradientsStillCorrectWithGradOn) {
  // The make_op refactor must not change grad-on behaviour: re-verify a
  // composite by finite differences after toggling a guard on and off.
  { ag::NoGradGuard cycle; }
  Rng rng(17);
  std::vector<Variable> leaves{Variable::param(Tensor::randn({2, 3}, rng)),
                               Variable::param(Tensor::randn({2, 3}, rng))};
  check_gradients(
      [](std::vector<Variable>& v) {
        return ag::sum(ag::mul(ag::add(v[0], v[1]), ag::relu(v[0])));
      },
      leaves);
}

// --- StoragePool ------------------------------------------------------------

TEST(PoolTest, InactiveWithoutScope) {
  EXPECT_FALSE(PoolScope::active());
  {
    PoolScope scope;
    EXPECT_TRUE(PoolScope::active());
  }
  EXPECT_FALSE(PoolScope::active());
}

TEST(PoolTest, RecyclesSameSizeStorage) {
  PoolScope pool;
  const float* first = nullptr;
  {
    Tensor a({4, 16});
    first = a.data();
  }  // a's storage drops its last reference -> free list
  Tensor b({64});  // same element count, different shape
  EXPECT_EQ(b.data(), first);  // LIFO reuse of the exact buffer
  const PoolStats stats = pool.stats();
  EXPECT_GE(stats.recycled, 1);
  EXPECT_GE(stats.hits, 1);
}

TEST(PoolTest, ReusedStorageIsZeroFilled) {
  PoolScope pool;
  {
    Tensor a({32});
    for (int64_t i = 0; i < a.numel(); ++i) a[i] = 123.0f;  // dirty it
  }
  Tensor b({32});
  for (int64_t i = 0; i < b.numel(); ++i) {
    ASSERT_EQ(b[i], 0.0f) << "recycled buffer leaked stale data at " << i;
  }
}

TEST(PoolTest, DifferentSizesDoNotCrossPollinate) {
  PoolScope pool;
  const float* small_ptr = nullptr;
  {
    Tensor small({8});
    small_ptr = small.data();
  }
  Tensor big({16});  // different size: must be a fresh allocation
  EXPECT_NE(big.data(), small_ptr);
  EXPECT_EQ(pool.stats().hits, 0);
}

TEST(PoolTest, NestedScopeJoinsTheOuterPool) {
  PoolScope outer;
  const float* ptr = nullptr;
  {
    PoolScope inner;  // passthrough: same pool as `outer`
    Tensor a({24});
    ptr = a.data();
  }  // inner exits; the buffer stays cached in the outer pool
  Tensor b({24});
  EXPECT_EQ(b.data(), ptr);
  EXPECT_GE(outer.stats().hits, 1);
}

TEST(PoolTest, TrimReleasesCachedBuffers) {
  PoolScope pool;
  const float* ptr = nullptr;
  {
    Tensor a({48});
    ptr = a.data();
  }
  ASSERT_GE(pool.stats().recycled, 1);
  pool.trim();
  Tensor b({48});
  // Not asserting inequality of pointers (the allocator may hand the same
  // block back) — but the acquisition must be a miss, not a hit.
  (void)ptr;
  EXPECT_EQ(pool.stats().hits, 0);
}

TEST(PoolTest, TensorsSafelyOutliveTheScope) {
  Tensor survivor;
  {
    PoolScope pool;
    survivor = Tensor({16});
    survivor[3] = 7.0f;
  }  // scope dies first; survivor's storage must free normally later
  EXPECT_FALSE(PoolScope::active());
  EXPECT_EQ(survivor[3], 7.0f);
  survivor = Tensor();  // release after the pool is gone: plain delete path
}

TEST(PoolTest, CrossThreadReleaseFallsBackToPlainFree) {
  PoolScope pool;
  Tensor t({40});
  // Move the last reference to another thread and drop it there: the
  // deleter must NOT push onto this thread's free list.
  std::thread([moved = std::move(t)]() mutable { moved = Tensor(); }).join();
  EXPECT_EQ(pool.stats().recycled, 0);
  Tensor fresh({40});
  EXPECT_EQ(pool.stats().hits, 0);
}

TEST(PoolTest, PooledTensorsAreIndistinguishable) {
  // Same ops, with and without a pool: bitwise-identical results.
  Rng rng1(99), rng2(99);
  Tensor plain_in = Tensor::randn({4, 8}, rng1);
  Tensor plain = matmul(plain_in, plain_in.transpose(0, 1));
  Tensor pooled;
  {
    PoolScope pool;
    Tensor in = Tensor::randn({4, 8}, rng2);
    // Run twice so the second pass consumes recycled storage.
    pooled = matmul(in, in.transpose(0, 1));
    pooled = matmul(in, in.transpose(0, 1));
  }
  ASSERT_EQ(plain.numel(), pooled.numel());
  EXPECT_EQ(std::memcmp(plain.data(), pooled.data(),
                        sizeof(float) * static_cast<size_t>(plain.numel())),
            0);
}

// --- batched forward equivalence & per-element isolation --------------------

core::YolloConfig small_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

TEST(BatchedInferTest, BatchOfKMatchesKSinglesBitwise) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);

  const int64_t k = 3;
  Rng irng(777);
  const Tensor images = Tensor::rand({k, 3, cfg.img_h, cfg.img_w}, irng);
  std::vector<int64_t> tokens;
  for (int64_t i = 0; i < k * cfg.max_query_len; ++i) {
    tokens.push_back(3 + (i % 20));
  }

  const std::vector<vision::Box> batched = model.predict(images, tokens);
  ASSERT_EQ(static_cast<int64_t>(batched.size()), k);

  const int64_t plane = 3 * cfg.img_h * cfg.img_w;
  for (int64_t i = 0; i < k; ++i) {
    Tensor single({1, 3, cfg.img_h, cfg.img_w});
    std::memcpy(single.data(), images.data() + i * plane,
                sizeof(float) * static_cast<size_t>(plane));
    const std::vector<int64_t> single_tokens(
        tokens.begin() + i * cfg.max_query_len,
        tokens.begin() + (i + 1) * cfg.max_query_len);
    const vision::Box alone = model.predict(single, single_tokens)[0];
    // Bitwise: every kernel iterates batch elements with identical inner
    // loops, so batching must not perturb a single float.
    EXPECT_EQ(batched[static_cast<size_t>(i)].x, alone.x) << "element " << i;
    EXPECT_EQ(batched[static_cast<size_t>(i)].y, alone.y) << "element " << i;
    EXPECT_EQ(batched[static_cast<size_t>(i)].w, alone.w) << "element " << i;
    EXPECT_EQ(batched[static_cast<size_t>(i)].h, alone.h) << "element " << i;
  }
}

TEST(BatchedInferTest, PredictLeavesTrainingModeUntouched) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);
  model.set_training(true);
  Rng irng(7);
  const Tensor image = Tensor::rand({1, 3, cfg.img_h, cfg.img_w}, irng);
  const std::vector<int64_t> tokens(static_cast<size_t>(cfg.max_query_len), 3);
  model.predict(image, tokens);
  EXPECT_TRUE(model.training());  // self-installed eval guard restored it
  EXPECT_TRUE(ag::GradMode::enabled());
  EXPECT_FALSE(PoolScope::active());
}

TEST(BatchedInferTest, NonFiniteElementIsIsolated) {
  const core::YolloConfig cfg = small_config();
  Rng rng(4321);
  core::YolloModel model(cfg, 40, rng);

  Rng irng(7);
  const Tensor images = Tensor::rand({2, 3, cfg.img_h, cfg.img_w}, irng);
  std::vector<int64_t> tokens(static_cast<size_t>(2 * cfg.max_query_len), 3);

  // Poison the forward: the injector corrupts the last batch element's
  // activations with NaN. The scan must flag element 1 and clear element 0.
  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);
  const core::YolloModel::InferOutcome outcome = model.infer(images, tokens);
  runtime::FaultInjector::instance().reset();
  ASSERT_EQ(outcome.element_errors.size(), 2u);
  EXPECT_TRUE(outcome.element_ok(0));   // healthy mate is unaffected
  EXPECT_FALSE(outcome.element_ok(1));  // poisoned element is flagged
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kNonFinite);
  EXPECT_TRUE(outcome.boxes.empty());  // batch-level view: not ok
  // The healthy element's box must be exactly what an unpoisoned run gives.
  const core::YolloModel::InferOutcome clean = model.infer(images, tokens);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(outcome.element_boxes[0].x, clean.element_boxes[0].x);
  EXPECT_EQ(outcome.element_boxes[0].y, clean.element_boxes[0].y);
  EXPECT_EQ(outcome.element_boxes[0].w, clean.element_boxes[0].w);
  EXPECT_EQ(outcome.element_boxes[0].h, clean.element_boxes[0].h);
}

}  // namespace
}  // namespace yollo
