// Serving-layer tests: typed error taxonomy, admission validation, the
// exception-free inference entry point, bounded-queue backpressure,
// deadlines at every stage, retry + circuit-breaker degradation to the
// baseline tier, and a multi-threaded stress run under injected faults.
//
// Every fault-driven branch is exercised through runtime::FaultInjector's
// inference-path hooks — the service must answer every request with a typed
// Status: zero crashes, zero hung requests.
//
// Counter assertions read the service's obs::MetricsRegistry snapshot
// (metrics_snapshot() / counters_from_snapshot) — one coherent cut of the
// accounting, the same path counters() and health() use.
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/matcher.h"
#include "baseline/proposer.h"
#include "nn/layers.h"
#include "runtime/fault.h"
#include "serve/service.h"
#include "serve/status.h"
#include "serve/validation.h"

// TSan slows real forward passes ~15x while injected wall-clock delays
// (slow_forward_ms) stay fixed; stretch the latency constants of the
// timing-sensitive tests so their ratios survive the race detector.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define YOLLO_TSAN_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__)
#define YOLLO_TSAN_BUILD 1
#endif

namespace yollo::serve {
namespace {

#ifdef YOLLO_TSAN_BUILD
constexpr int kTimeScale = 8;
#else
constexpr int kTimeScale = 1;
#endif

// A guard that always leaves the process-wide injector disarmed.
struct FaultGuard {
  FaultGuard() { runtime::FaultInjector::instance().reset(); }
  ~FaultGuard() { runtime::FaultInjector::instance().reset(); }
};

core::YolloConfig tiny_config() {
  core::YolloConfig cfg;
  cfg.img_h = 32;
  cfg.img_w = 48;
  cfg.max_query_len = 6;
  cfg.num_rel2att = 1;
  return cfg;
}

// Untrained model + untrained two-stage fallback tier: the service's
// behaviour under faults does not depend on grounding accuracy.
struct ServeHarness {
  data::Vocab vocab = data::Vocab::grounding_vocab();
  core::YolloConfig cfg = tiny_config();
  Rng rng{123};
  core::YolloModel model{cfg, vocab.size(), rng};

  baseline::ProposerConfig pcfg;
  std::unique_ptr<baseline::RegionProposalNetwork> rpn;
  std::unique_ptr<baseline::ListenerMatcher> listener;
  std::unique_ptr<baseline::SpeakerMatcher> speaker;
  std::unique_ptr<baseline::TwoStagePipeline> pipeline;

  ServeHarness() {
    model.set_training(false);
    pcfg.img_h = cfg.img_h;
    pcfg.img_w = cfg.img_w;
    pcfg.max_proposals = 8;
    Rng prng(7);
    rpn = std::make_unique<baseline::RegionProposalNetwork>(pcfg, prng);
    rpn->set_training(false);
    baseline::MatcherConfig mcfg;
    mcfg.patch = 16;
    mcfg.emb_dim = 16;
    mcfg.word_dim = 16;
    mcfg.vocab_size = vocab.size();
    listener = std::make_unique<baseline::ListenerMatcher>(mcfg, prng);
    listener->set_training(false);
    speaker = std::make_unique<baseline::SpeakerMatcher>(mcfg, prng);
    speaker->set_training(false);
    pipeline = std::make_unique<baseline::TwoStagePipeline>(
        *rpn, *listener, *speaker, baseline::MatchMode::kListener);
  }

  Tensor image(uint64_t seed = 5) {
    Rng r(seed);
    return Tensor::rand({3, cfg.img_h, cfg.img_w}, r);
  }

  GroundRequest request(const std::string& query = "red circle",
                        uint64_t seed = 5) {
    GroundRequest req;
    req.image = image(seed);
    req.query = query;
    return req;
  }
};

void expect_box_within(const vision::Box& box, const core::YolloConfig& cfg) {
  EXPECT_TRUE(std::isfinite(box.x) && std::isfinite(box.y) &&
              std::isfinite(box.w) && std::isfinite(box.h));
  EXPECT_GE(box.x, 0.0f);
  EXPECT_GE(box.y, 0.0f);
  EXPECT_LE(box.x2(), static_cast<float>(cfg.img_w) + 1e-4f);
  EXPECT_LE(box.y2(), static_cast<float>(cfg.img_h) + 1e-4f);
}

// --- status taxonomy --------------------------------------------------------

TEST(StatusTest, CodeNamesAndPredicates) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kDegraded), "DEGRADED");
  EXPECT_STREQ(status_code_name(StatusCode::kOverloaded), "OVERLOADED");

  EXPECT_TRUE(Status::ok_status().ok());
  EXPECT_TRUE(Status::ok_status().answered());
  EXPECT_FALSE(Status::degraded("x").ok());
  EXPECT_TRUE(Status::degraded("x").answered());
  EXPECT_FALSE(Status::overloaded("x").answered());
  EXPECT_EQ(Status::invalid_input("bad").to_string(), "INVALID_INPUT: bad");
}

// --- admission validation ---------------------------------------------------

TEST(ValidationTest, ImageShapeAndFiniteness) {
  Rng rng(1);
  EXPECT_TRUE(validate_image(Tensor::rand({3, 32, 48}, rng), 32, 48).ok());

  EXPECT_EQ(validate_image(Tensor(), 32, 48).code, StatusCode::kInvalidInput);
  EXPECT_EQ(validate_image(Tensor::rand({3, 48, 32}, rng), 32, 48).code,
            StatusCode::kInvalidInput);
  EXPECT_EQ(validate_image(Tensor::rand({1, 3, 32, 48}, rng), 32, 48).code,
            StatusCode::kInvalidInput);

  Tensor poisoned = Tensor::rand({3, 32, 48}, rng);
  poisoned[100] = std::numeric_limits<float>::quiet_NaN();
  const Status nan_status = validate_image(poisoned, 32, 48);
  EXPECT_EQ(nan_status.code, StatusCode::kInvalidInput);
  EXPECT_NE(nan_status.message.find("non-finite"), std::string::npos);

  poisoned[100] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(validate_image(poisoned, 32, 48).code, StatusCode::kInvalidInput);
}

TEST(ValidationTest, QueryNormalisationAndRejection) {
  const data::Vocab vocab = data::Vocab::grounding_vocab();

  const ValidatedQuery ok = validate_query("The RED circle!", vocab, 6);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.normalised, "the red circle");
  EXPECT_EQ(ok.known_words, 3);
  EXPECT_EQ(ok.unknown_words, 0);
  EXPECT_EQ(static_cast<int64_t>(ok.tokens.size()), 6);
  EXPECT_EQ(ok.tokens[3], data::Vocab::kPad);

  EXPECT_EQ(validate_query("", vocab, 6).status.code,
            StatusCode::kInvalidInput);
  EXPECT_EQ(validate_query("   ", vocab, 6).status.code,
            StatusCode::kInvalidInput);
  EXPECT_EQ(validate_query("?!...", vocab, 6).status.code,
            StatusCode::kInvalidInput);

  const ValidatedQuery unk = validate_query("florb zizzle", vocab, 6);
  EXPECT_EQ(unk.status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(unk.known_words, 0);
  EXPECT_EQ(unk.unknown_words, 2);

  // One known word is enough to ground on.
  const ValidatedQuery mixed = validate_query("florb circle", vocab, 6);
  EXPECT_TRUE(mixed.status.ok());
  EXPECT_EQ(mixed.known_words, 1);
  EXPECT_EQ(mixed.unknown_words, 1);
}

// --- replica construction ---------------------------------------------------

TEST(CopyModuleStateTest, ReplicaMatchesSourceOutputs) {
  Rng rng_a(11), rng_b(22);
  nn::FFN a(4, 8, 3, rng_a), b(4, 8, 3, rng_b);
  Rng data_rng(5);
  const Tensor x = Tensor::rand({2, 4}, data_rng);
  const Tensor before_a = a.forward(ag::Variable::constant(x)).value();
  const Tensor before_b = b.forward(ag::Variable::constant(x)).value();
  bool differed = false;
  for (int64_t i = 0; i < before_a.numel(); ++i) {
    if (before_a[i] != before_b[i]) differed = true;
  }
  EXPECT_TRUE(differed);

  nn::copy_module_state(b, a);
  const Tensor after_b = b.forward(ag::Variable::constant(x)).value();
  for (int64_t i = 0; i < before_a.numel(); ++i) {
    EXPECT_FLOAT_EQ(before_a[i], after_b[i]);
  }
}

// --- exception-free inference entry point -----------------------------------

TEST(InferTest, ValidInputYieldsClippedFiniteBox) {
  FaultGuard guard;
  ServeHarness h;
  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(h.vocab.encode("red circle"), h.cfg.max_query_len);
  const auto outcome = h.model.infer(batched, tokens);
  ASSERT_TRUE(outcome.ok()) << outcome.message;
  ASSERT_EQ(outcome.boxes.size(), 1u);
  expect_box_within(outcome.boxes[0], h.cfg);
}

TEST(InferTest, InvalidInputsAreTypedNotThrown) {
  FaultGuard guard;
  ServeHarness h;
  const std::vector<int64_t> tokens(static_cast<size_t>(h.cfg.max_query_len),
                                    data::Vocab::kUnk);

  // Wrong rank / shape.
  auto outcome = h.model.infer(h.image(), tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kInvalidInput);

  // Wrong token count.
  outcome = h.model.infer(h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w}),
                          std::vector<int64_t>{1, 2});
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kInvalidInput);

  // Out-of-vocabulary token id.
  std::vector<int64_t> bad_tokens = tokens;
  bad_tokens[0] = h.vocab.size() + 100;
  outcome = h.model.infer(h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w}),
                          bad_tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kInvalidInput);

  // Non-finite pixel.
  Tensor poisoned = h.image();
  poisoned[7] = std::numeric_limits<float>::quiet_NaN();
  outcome = h.model.infer(poisoned.reshape({1, 3, h.cfg.img_h, h.cfg.img_w}),
                          tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kInvalidInput);
}

TEST(InferTest, PoisonedForwardIsCaughtByFinitenessScan) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(h.vocab.encode("red circle"), h.cfg.max_query_len);
  auto outcome = h.model.infer(batched, tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kNonFinite);
  EXPECT_TRUE(outcome.boxes.empty());

  // The shot is consumed: the next forward is clean.
  outcome = h.model.infer(batched, tokens);
  EXPECT_TRUE(outcome.ok()) << outcome.message;
}

TEST(InferTest, TransientForwardFailureIsTyped) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  const Tensor batched = h.image().reshape({1, 3, h.cfg.img_h, h.cfg.img_w});
  const std::vector<int64_t> tokens =
      data::pad_to(h.vocab.encode("red circle"), h.cfg.max_query_len);
  auto outcome = h.model.infer(batched, tokens);
  EXPECT_EQ(outcome.error, core::YolloModel::InferError::kFault);
  EXPECT_NE(outcome.message.find("injected fault"), std::string::npos);

  outcome = h.model.infer(batched, tokens);
  EXPECT_TRUE(outcome.ok()) << outcome.message;
}

// --- single-box clipping regression -----------------------------------------

TEST(ClippingTest, BaselineGroundClipsToActualImageBounds) {
  FaultGuard guard;
  ServeHarness h;
  // An untrained proposer decodes arbitrary deltas; whatever stage-i emits,
  // the single-box inference path must hand back a box inside the image.
  const std::vector<int64_t> tokens =
      data::pad_to(h.vocab.encode("red circle"), h.cfg.max_query_len);
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const vision::Box box = h.pipeline->ground(h.image(seed), tokens);
    expect_box_within(box, h.cfg);
  }

  // Regression for the return-site clip itself: a proposal that leaks past
  // the frame (negative origin, width/height overshooting the canvas) must
  // come back fully contained once clipped against the *actual* image dims,
  // exactly as TwoStagePipeline::ground does.
  const vision::Box wild{-10.0f, -6.0f, 120.0f, 90.0f};
  const vision::Box clipped =
      vision::clip_box(wild, static_cast<float>(h.cfg.img_w),
                       static_cast<float>(h.cfg.img_h));
  expect_box_within(clipped, h.cfg);
  EXPECT_GE(clipped.x, 0.0f);
  EXPECT_GE(clipped.y, 0.0f);
  EXPECT_LE(clipped.x + clipped.w, static_cast<float>(h.cfg.img_w));
  EXPECT_LE(clipped.y + clipped.h, static_cast<float>(h.cfg.img_h));
}

// --- service behaviour ------------------------------------------------------

TEST(ServiceTest, ServesValidRequestAndCounts) {
  FaultGuard guard;
  ServeHarness h;
  ServeConfig sc;
  sc.num_workers = 2;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const GroundResponse response = service.ground(h.request("the red circle"));
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_EQ(response.normalised_query, "the red circle");
  expect_box_within(response.box, h.cfg);
  EXPECT_GE(response.latency_ms, 0.0);

  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.counter("serve.submitted"), 1);
  EXPECT_EQ(snap.counter("serve.served"), 1);
  EXPECT_EQ(snap.counter("serve.degraded"), 0);
  EXPECT_EQ(snap.counter("serve.rejected"), 0);
  // Stage latency histograms populated for the one request that ran.
  ASSERT_NE(snap.histogram("serve.latency_ms"), nullptr);
  EXPECT_EQ(snap.histogram("serve.latency_ms")->count, 1);
  ASSERT_NE(snap.histogram("serve.model_ms"), nullptr);
  EXPECT_GE(snap.histogram("serve.model_ms")->count, 1);
  // The legacy flat struct is a pure projection of the same snapshot.
  const ServiceCounters counters = counters_from_snapshot(snap);
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.served, 1);
  EXPECT_EQ(counters.degraded, 0);
  EXPECT_EQ(counters.rejected, 0);
}

TEST(ServiceTest, RejectsInvalidInputsAtAdmission) {
  FaultGuard guard;
  ServeHarness h;
  ServeConfig sc;
  sc.num_workers = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  EXPECT_EQ(service.ground(h.request("")).status.code,
            StatusCode::kInvalidInput);
  EXPECT_EQ(service.ground(h.request("florb zizzle")).status.code,
            StatusCode::kInvalidInput);

  GroundRequest bad_shape = h.request();
  bad_shape.image = Tensor::rand({3, 8, 8}, h.rng);
  EXPECT_EQ(service.ground(std::move(bad_shape)).status.code,
            StatusCode::kInvalidInput);

  GroundRequest nan_image = h.request();
  nan_image.image[0] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(service.ground(std::move(nan_image)).status.code,
            StatusCode::kInvalidInput);

  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.counter("serve.submitted"), 4);
  EXPECT_EQ(snap.counter("serve.rejected"), 4);
  EXPECT_EQ(snap.counter("serve.rejected_invalid"), 4);
  EXPECT_EQ(snap.counter("serve.served"), 0);
}

TEST(ServiceTest, BoundedQueueRejectsWithOverloaded) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.queue_capacity = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // First request occupies the single worker (slow forward); give it time
  // to be dequeued so the queue is empty again.
  auto first = service.submit(h.request());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Second request fills the queue's only slot.
  auto second = service.submit(h.request());
  // Admission is now saturated: typed rejection, immediately resolved.
  auto third = service.submit(h.request());
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const GroundResponse rejected = third.get();
  EXPECT_EQ(rejected.status.code, StatusCode::kOverloaded);
  EXPECT_NE(rejected.status.message.find("queue full"), std::string::npos);

  EXPECT_TRUE(first.get().status.answered());
  EXPECT_TRUE(second.get().status.answered());

  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.counter("serve.submitted"), 3);
  EXPECT_EQ(snap.counter("serve.rejected_overloaded"), 1);
  EXPECT_DOUBLE_EQ(snap.gauge("serve.queue_high_water"), 1.0);
  ASSERT_NE(snap.histogram("serve.queue_depth"), nullptr);
  EXPECT_GE(snap.histogram("serve.queue_depth")->count, 1);
}

TEST(ServiceTest, DeadlineCheckedAtEnqueue) {
  FaultGuard guard;
  ServeHarness h;
  ServeConfig sc;
  sc.num_workers = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest expired = h.request();
  expired.deadline_at =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  auto future = service.submit(std::move(expired));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get().status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.counters().deadline_exceeded, 1);
}

TEST(ServiceTest, DeadlineCheckedAtDequeueWhenStarvedInQueue) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // Occupies the worker for ~300ms.
  auto blocker = service.submit(h.request());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Starves in the queue past its 50ms budget.
  GroundRequest starved = h.request();
  starved.deadline_ms = 50;
  const GroundResponse response = service.ground(std::move(starved));
  EXPECT_EQ(response.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(response.status.message.find("queued"), std::string::npos);
  EXPECT_TRUE(blocker.get().status.answered());
}

TEST(ServiceTest, SlowForwardPastDeadlineIsTyped) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  GroundRequest slow = h.request();
  slow.deadline_ms = 50;
  const GroundResponse response = service.ground(std::move(slow));
  EXPECT_EQ(response.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.counters().deadline_exceeded, 1);
}

TEST(ServiceTest, RetryRecoversFromOneTransientFault) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const GroundResponse response = service.ground(h.request());
  EXPECT_TRUE(response.status.ok()) << response.status.to_string();
  EXPECT_EQ(response.retries, 1);
  expect_box_within(response.box, h.cfg);

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.served, 1);
  EXPECT_EQ(counters.degraded, 0);
  EXPECT_EQ(counters.retries, 1);
}

TEST(ServiceTest, PoisonedForwardDegradesToBaseline) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 2;  // first attempt + its retry
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const GroundResponse response = service.ground(h.request());
  EXPECT_EQ(response.status.code, StatusCode::kDegraded);
  EXPECT_TRUE(response.status.answered());
  EXPECT_NE(response.status.message.find("baseline"), std::string::npos);
  expect_box_within(response.box, h.cfg);

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.served, 1);
  EXPECT_EQ(counters.degraded, 1);
}

TEST(ServiceTest, NoFallbackMeansTypedInternalError) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 1;
  InferenceService service(h.model, h.vocab, sc, /*fallback=*/nullptr);

  const GroundResponse response = service.ground(h.request());
  EXPECT_EQ(response.status.code, StatusCode::kInternalError);
  EXPECT_NE(response.status.message.find("no baseline fallback"),
            std::string::npos);
  EXPECT_EQ(service.counters().failed, 1);
}

TEST(ServiceTest, CircuitBreakerTripsAndReprobes) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 1000;  // the model tier never succeeds
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 1;      // 2 attempts per tier entry
  sc.breaker_threshold = 2;
  sc.breaker_cooldown = 3;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // Sequential requests make the breaker arithmetic deterministic:
  //   r1, r2: tier fails -> consecutive = 2 -> breaker trips (cooldown 3)
  //   r3..r5: breaker open, straight to baseline
  //   r6:     probe fails -> re-trips
  for (int i = 0; i < 6; ++i) {
    const GroundResponse response = service.ground(h.request());
    EXPECT_EQ(response.status.code, StatusCode::kDegraded)
        << "request " << i << ": " << response.status.to_string();
    expect_box_within(response.box, h.cfg);
  }

  const ServiceCounters counters =
      counters_from_snapshot(service.metrics_snapshot());
  EXPECT_EQ(counters.served, 6);
  EXPECT_EQ(counters.degraded, 6);
  EXPECT_EQ(counters.breaker_trips, 2);
  // Tier entries: r1, r2, r6 (2 attempts each) = 3 retries counted.
  EXPECT_EQ(counters.retries, 3);
  EXPECT_TRUE(service.health().breaker_open);
}

TEST(ServiceTest, BreakerHalfOpenFailedProbeRetripsImmediately) {
  FaultGuard guard;
  ServeHarness h;
  // Exactly three failing forwards: two to trip the breaker, one for the
  // half-open probe. Every later forward is clean.
  runtime::FaultInjector::Config fc;
  fc.fail_forward_count = 3;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.max_retries = 0;  // one attempt per tier entry: shot accounting is exact
  sc.breaker_threshold = 2;
  sc.breaker_cooldown = 3;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // r1, r2: tier fails -> consecutive = 2 -> trip #1 (cooldown 3).
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(service.ground(h.request()).status.code, StatusCode::kDegraded);
  }
  EXPECT_TRUE(service.health().breaker_open);
  // r3..r5 ride out the cooldown on the baseline tier.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.ground(h.request()).status.code, StatusCode::kDegraded);
  }
  // r6 is the half-open probe; it consumes the third failing shot. Because
  // consecutive_failures_ survives the trip, ONE failed probe is >= the
  // threshold again and the breaker must re-trip immediately — not ride
  // through threshold-1 further model failures first.
  EXPECT_EQ(service.ground(h.request()).status.code, StatusCode::kDegraded);
  EXPECT_TRUE(service.health().breaker_open);
  EXPECT_EQ(service.counters().breaker_trips, 2);
  // r7..r9: the re-tripped cooldown, still baseline-only (no model
  // attempts: the fail shots are exhausted, so any forward would succeed —
  // a kDegraded answer here proves the breaker really is open again).
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.ground(h.request()).status.code, StatusCode::kDegraded);
  }
  // r10: the second probe runs clean and closes the breaker.
  const GroundResponse probe = service.ground(h.request());
  EXPECT_TRUE(probe.status.ok()) << probe.status.to_string();
  EXPECT_FALSE(service.health().breaker_open);
  EXPECT_EQ(service.counters().breaker_trips, 2);
}

TEST(ServiceTest, HealthSnapshotReflectsLifecycle) {
  FaultGuard guard;
  ServeHarness h;
  ServeConfig sc;
  sc.num_workers = 2;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  HealthSnapshot health = service.health();
  EXPECT_TRUE(health.accepting);
  EXPECT_FALSE(health.breaker_open);
  EXPECT_EQ(health.workers, 2);
  EXPECT_EQ(health.queue_depth, 0);

  service.stop();
  health = service.health();
  EXPECT_FALSE(health.accepting);

  // Post-stop submissions are typed rejections, not hangs.
  const GroundResponse response = service.ground(h.request());
  EXPECT_EQ(response.status.code, StatusCode::kOverloaded);
  EXPECT_NE(response.status.message.find("stopped"), std::string::npos);
}

// --- micro-batching ---------------------------------------------------------

TEST(ServiceBatchingTest, BacklogIsCoalescedAndEveryRequestAnswered) {
  FaultGuard guard;
  ServeHarness h;
  // Block the single worker for 300ms so a backlog builds up behind it.
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 4;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  auto blocker = service.submit(h.request("red circle", 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::future<GroundResponse>> queued;
  for (uint64_t i = 0; i < 3; ++i) {
    queued.push_back(service.submit(h.request("red circle", 10 + i)));
  }

  EXPECT_TRUE(blocker.get().status.ok());
  for (auto& future : queued) {
    const GroundResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    expect_box_within(response.box, h.cfg);
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batches_coalesced, 1);
  EXPECT_EQ(counters.batched_requests, 3);
  EXPECT_EQ(counters.max_batch, 3);
  EXPECT_EQ(counters.served, 4);
}

TEST(ServiceBatchingTest, BatchMaxOneDisablesCoalescing) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 1;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 1;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  auto blocker = service.submit(h.request());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::future<GroundResponse>> queued;
  for (uint64_t i = 0; i < 3; ++i) {
    queued.push_back(service.submit(h.request("red circle", 20 + i)));
  }
  EXPECT_TRUE(blocker.get().status.ok());
  for (auto& future : queued) EXPECT_TRUE(future.get().status.ok());
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batches_coalesced, 0);
  EXPECT_EQ(counters.batched_requests, 0);
  EXPECT_EQ(counters.served, 4);
}

TEST(ServiceBatchingTest, NearDeadlineRequestRunsSoloNotCoalesced) {
  FaultGuard guard;
  ServeHarness h;
  // Regression for the burst-batching latency cliff (BENCH_infer.json
  // serve_burst: batch_max 8 ran at 0.78x of batch_max 1): greedy
  // coalescing serialised near-deadline requests into k-wide forwards that
  // cost budget they did not have. The worker must fall back to solo
  // serving when the oldest queued request's slack is below the observed
  // model-stage p95.
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 250 * kTimeScale;
  fc.slow_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 4;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  // Prime serve.model_ms with one ~250ms sample so its p95 lands in the
  // 204.8..409.6ms bucket — every later slack below ~205ms trips the guard.
  EXPECT_TRUE(service.ground(h.request("red circle", 1)).status.ok());

  // Block the worker (second slow shot) and queue three requests behind it
  // whose slack at dequeue (~150ms of their 300ms budget) is under that
  // p95. Greedy coalescing would batch all three; the guard must serve
  // them one by one instead — and each solo forward is fast enough that
  // every one still answers kOk inside its budget.
  auto blocker = service.submit(h.request("red circle", 2));
  std::this_thread::sleep_for(std::chrono::milliseconds(100 * kTimeScale));
  std::vector<std::future<GroundResponse>> queued;
  for (uint64_t i = 0; i < 3; ++i) {
    GroundRequest near_deadline = h.request("red circle", 40 + i);
    near_deadline.deadline_ms = 300 * kTimeScale;
    queued.push_back(service.submit(std::move(near_deadline)));
  }

  EXPECT_TRUE(blocker.get().status.ok());
  for (auto& future : queued) {
    const GroundResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    expect_box_within(response.box, h.cfg);
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batches_coalesced, 0);
  EXPECT_EQ(counters.batched_requests, 0);
  EXPECT_EQ(counters.served, 5);
  EXPECT_EQ(counters.deadline_exceeded, 0);
}

TEST(ServiceBatchingTest, PoisonedElementDegradesOnlyItsOwnRequest) {
  FaultGuard guard;
  ServeHarness h;
  // Shot 1 (slow): blocks the worker so three requests queue up behind it.
  // Poison shot 1 lands on the blocker's forward; with max_retries = 0 it
  // degrades to the baseline. Poison shot 2 lands on the coalesced batch
  // forward and corrupts its LAST element only: the first two batch mates
  // must be served from the batch, the third salvaged individually (shots
  // exhausted by then, so its solo forward is clean and returns kOk).
  runtime::FaultInjector::Config fc;
  fc.slow_forward_ms = 300;
  fc.slow_forward_count = 1;
  fc.poison_forward_count = 2;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 1;
  sc.batch_max = 4;
  sc.max_retries = 0;
  sc.breaker_threshold = 100;  // keep the breaker out of this test
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  auto blocker = service.submit(h.request("red circle", 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::vector<std::future<GroundResponse>> queued;
  for (uint64_t i = 0; i < 3; ++i) {
    queued.push_back(service.submit(h.request("red circle", 30 + i)));
  }

  const GroundResponse blocked = blocker.get();
  EXPECT_EQ(blocked.status.code, StatusCode::kDegraded);
  for (auto& future : queued) {
    const GroundResponse response = future.get();
    // Batch mates ride the coalesced forward; the poisoned element is
    // salvaged solo — every one of them still ends kOk.
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    expect_box_within(response.box, h.cfg);
  }
  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.batches_coalesced, 1);
  EXPECT_EQ(counters.batched_requests, 3);
  EXPECT_EQ(counters.served, 4);
  EXPECT_EQ(counters.degraded, 1);  // only the blocker
}

// --- concurrency stress under injected faults -------------------------------

TEST(ServiceStressTest, MixedLoadUnderFaultsLosesNoRequest) {
  FaultGuard guard;
  ServeHarness h;
  runtime::FaultInjector::Config fc;
  fc.poison_forward_count = 20;
  fc.fail_forward_count = 20;
  runtime::FaultInjector::instance().configure(fc);

  ServeConfig sc;
  sc.num_workers = 4;
  sc.queue_capacity = 32;
  sc.max_retries = 1;
  sc.breaker_threshold = 4;
  sc.breaker_cooldown = 6;
  InferenceService service(h.model, h.vocab, sc, h.pipeline.get());

  const char* queries[] = {"red circle", "the large square",
                           "blue thing on the left", "small green triangle"};
  constexpr int kRequests = 220;

  // Concurrent stats poller: health() (and metrics_snapshot() underneath)
  // must hand back one coherent cut of the accounting — the sub-invariants
  // below hold in EVERY observation, not just after quiescence. Totals may
  // be behind `submitted` mid-flight (requests in the pipeline), never
  // ahead, and the taxonomy subsets always reconcile.
  std::atomic<bool> poll_stop{false};
  std::atomic<int64_t> poll_violations{0};
  std::atomic<int64_t> polls{0};
  std::thread poller;

  std::vector<std::future<GroundResponse>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    GroundRequest request;
    switch (i % 8) {
      case 6:  // invalid: alternate empty query / poisoned image
        if (i % 16 == 6) {
          request.image = h.image(static_cast<uint64_t>(i));
          request.query = "";
        } else {
          request.image = h.image(static_cast<uint64_t>(i));
          request.image[i % request.image.numel()] =
              std::numeric_limits<float>::quiet_NaN();
          request.query = queries[i % 4];
        }
        break;
      case 7:  // tight deadline: answered or typed deadline miss
        request.image = h.image(static_cast<uint64_t>(i));
        request.query = queries[i % 4];
        request.deadline_ms = (i % 16 == 7) ? 1 : 200;
        break;
      default:  // valid
        request.image = h.image(static_cast<uint64_t>(i));
        request.query = queries[i % 4];
        break;
    }
    if (i == 0) {
      poller = std::thread([&] {
        while (!poll_stop.load(std::memory_order_relaxed)) {
          const HealthSnapshot health = service.health();
          const ServiceCounters& c = health.counters;
          const bool coherent =
              c.rejected == c.rejected_invalid + c.rejected_overloaded &&
              c.degraded <= c.served &&
              c.served + c.rejected + c.deadline_exceeded + c.failed <=
                  c.submitted &&
              c.queue_high_water <= 32 && health.queue_depth <= 32;
          if (!coherent) poll_violations.fetch_add(1);
          polls.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      });
    }
    futures.push_back(service.submit(std::move(request)));
  }

  // Zero hung requests: every future resolves (generous bound for TSan).
  int64_t answered = 0, rejected = 0, deadline = 0, failed = 0;
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::minutes(5)),
              std::future_status::ready)
        << "a request was lost";
    const GroundResponse response = future.get();
    switch (response.status.code) {
      case StatusCode::kOk:
      case StatusCode::kDegraded:
        ++answered;
        expect_box_within(response.box, h.cfg);
        break;
      case StatusCode::kInvalidInput:
      case StatusCode::kOverloaded:
        ++rejected;
        break;
      case StatusCode::kDeadlineExceeded:
        ++deadline;
        break;
      case StatusCode::kInternalError:
        ++failed;
        break;
    }
  }
  poll_stop.store(true);
  poller.join();
  EXPECT_EQ(poll_violations.load(), 0)
      << "a stats poll observed the accounting mid-update";
  EXPECT_GE(polls.load(), 1);
  service.stop();

  // Counter invariant: every submitted request is accounted exactly once —
  // asserted on the raw registry snapshot and on the derived flat struct,
  // which must agree (both come from the same coherent cut).
  const obs::MetricsSnapshot snap = service.metrics_snapshot();
  EXPECT_EQ(snap.counter("serve.served") + snap.counter("serve.rejected") +
                snap.counter("serve.deadline_exceeded") +
                snap.counter("serve.failed"),
            snap.counter("serve.submitted"));
  const ServiceCounters counters = counters_from_snapshot(snap);
  const ServiceCounters via_legacy = service.counters();
  EXPECT_EQ(via_legacy.submitted, counters.submitted);
  EXPECT_EQ(via_legacy.served, counters.served);
  EXPECT_EQ(via_legacy.rejected, counters.rejected);
  EXPECT_EQ(via_legacy.deadline_exceeded, counters.deadline_exceeded);
  EXPECT_EQ(via_legacy.failed, counters.failed);
  EXPECT_EQ(counters.submitted, kRequests);
  EXPECT_EQ(counters.served + counters.rejected + counters.deadline_exceeded +
                counters.failed,
            counters.submitted);
  // Latency histogram covers at least every answered request (admission
  // rejections resolve before reaching the worker pipeline).
  ASSERT_NE(snap.histogram("serve.latency_ms"), nullptr);
  EXPECT_GE(snap.histogram("serve.latency_ms")->count, counters.served);
  EXPECT_EQ(counters.served, answered);
  EXPECT_EQ(counters.rejected, rejected);
  EXPECT_EQ(counters.deadline_exceeded, deadline);
  EXPECT_EQ(counters.failed, failed);
  EXPECT_EQ(counters.rejected, counters.rejected_invalid +
                                   counters.rejected_overloaded);
  EXPECT_GE(counters.served, 1);
  EXPECT_GE(counters.rejected_invalid, 1);
  // The injected faults must have driven real degradations or retries.
  EXPECT_GE(counters.degraded + counters.retries, 1);
}

}  // namespace
}  // namespace yollo::serve
