// Unit tests for the tensor core: shapes, broadcasting, views, kernels.
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "tensor/conv.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace yollo {
namespace {

TEST(ShapeTest, NumelAndStrides) {
  EXPECT_EQ(numel({2, 3, 4}), 24);
  EXPECT_EQ(numel({}), 1);
  EXPECT_EQ(numel({5, 0, 2}), 0);
  const Strides s = contiguous_strides({2, 3, 4});
  EXPECT_EQ(s, (Strides{12, 4, 1}));
}

TEST(ShapeTest, BroadcastShape) {
  EXPECT_EQ(broadcast_shape({2, 3}, {3}), (Shape{2, 3}));
  EXPECT_EQ(broadcast_shape({4, 1, 3}, {2, 1}), (Shape{4, 2, 3}));
  EXPECT_EQ(broadcast_shape({}, {5}), (Shape{5}));
  EXPECT_THROW(broadcast_shape({2, 3}, {4}), std::invalid_argument);
}

TEST(ShapeTest, BroadcastStridesZeroOnExpandedDims) {
  const Strides s = broadcast_strides({1, 3}, {4, 2, 3});
  EXPECT_EQ(s, (Strides{0, 0, 1}));
}

TEST(ShapeTest, NormalizeAxis) {
  EXPECT_EQ(normalize_axis(-1, 3), 2);
  EXPECT_EQ(normalize_axis(0, 3), 0);
  EXPECT_THROW(normalize_axis(3, 3), std::invalid_argument);
  EXPECT_THROW(normalize_axis(-4, 3), std::invalid_argument);
}

TEST(TensorTest, ConstructionAndFill) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(t[i], 0.0f);
  t.fill(2.5f);
  EXPECT_EQ(t[5], 2.5f);
  EXPECT_EQ(Tensor::ones({3}).at({1}), 1.0f);
  EXPECT_EQ(Tensor::full({2}, -4.0f)[0], -4.0f);
}

TEST(TensorTest, SharedStorageSemantics) {
  Tensor a({2, 2});
  Tensor b = a;  // shares storage
  b.fill(7.0f);
  EXPECT_EQ(a[0], 7.0f);
  Tensor c = a.clone();  // deep copy
  c.fill(1.0f);
  EXPECT_EQ(a[0], 7.0f);
}

TEST(TensorTest, ReshapeSharesAndValidates) {
  Tensor a = Tensor::arange(6);
  Tensor b = a.reshape({2, 3});
  b.at({1, 2}) = 42.0f;
  EXPECT_EQ(a[5], 42.0f);
  Tensor c = a.reshape({3, -1});
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_THROW(a.reshape({4, 2}), std::invalid_argument);
  EXPECT_THROW(a.reshape({-1, -1}), std::invalid_argument);
}

TEST(TensorTest, TransposeMaterialises) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  Tensor t = a.transpose(0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(t.at({0, 1}), a.at({1, 0}));
  EXPECT_EQ(t.at({2, 0}), a.at({0, 2}));
}

TEST(TensorTest, PermuteThreeAxes) {
  Tensor a = Tensor::arange(24).reshape({2, 3, 4});
  Tensor p = a.permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (Shape{4, 2, 3}));
  EXPECT_EQ(p.at({1, 1, 2}), a.at({1, 2, 1}));
}

TEST(TensorTest, NarrowCopiesSlice) {
  Tensor a = Tensor::arange(12).reshape({3, 4});
  Tensor n = a.narrow(0, 1, 2);
  EXPECT_EQ(n.shape(), (Shape{2, 4}));
  EXPECT_EQ(n.at({0, 0}), 4.0f);
  Tensor m = a.narrow(1, 2, 2);
  EXPECT_EQ(m.at({2, 1}), 11.0f);
  EXPECT_THROW(a.narrow(0, 2, 2), std::out_of_range);
}

TEST(TensorTest, IndexSelect) {
  Tensor a = Tensor::arange(12).reshape({4, 3});
  Tensor sel = a.index_select(0, {3, 0, 3});
  EXPECT_EQ(sel.shape(), (Shape{3, 3}));
  EXPECT_EQ(sel.at({0, 0}), 9.0f);
  EXPECT_EQ(sel.at({1, 2}), 2.0f);
  EXPECT_EQ(sel.at({2, 1}), 10.0f);
  EXPECT_THROW(a.index_select(0, {4}), std::out_of_range);
}

TEST(TensorTest, BroadcastTo) {
  Tensor a = Tensor::arange(3).reshape({1, 3});
  Tensor b = a.broadcast_to({2, 3});
  EXPECT_EQ(b.at({1, 2}), 2.0f);
  Tensor s = Tensor::scalar(5.0f);
  Tensor sb = s.broadcast_to({2, 2});
  EXPECT_EQ(sb.at({1, 1}), 5.0f);
}

TEST(TensorTest, ItemRequiresSingleElement) {
  EXPECT_EQ(Tensor::scalar(3.5f).item(), 3.5f);
  EXPECT_THROW(Tensor({2}).item(), std::logic_error);
}

TEST(ElementwiseTest, AddSubMulDiv) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor b = Tensor::from_vector({4, 5, 6});
  EXPECT_EQ((a + b).to_vector(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ((b - a).to_vector(), (std::vector<float>{3, 3, 3}));
  EXPECT_EQ((a * b).to_vector(), (std::vector<float>{4, 10, 18}));
  EXPECT_EQ((b / a).to_vector(), (std::vector<float>{4, 2.5f, 2}));
}

TEST(ElementwiseTest, BroadcastBinary) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  Tensor row = Tensor::from_vector({10, 20, 30}).reshape({1, 3});
  Tensor col = Tensor::from_vector({100, 200}).reshape({2, 1});
  Tensor r = a + row;
  EXPECT_EQ(r.at({1, 2}), 35.0f);
  Tensor c = a + col;
  EXPECT_EQ(c.at({0, 0}), 100.0f);
  EXPECT_EQ(c.at({1, 0}), 203.0f);
}

TEST(ElementwiseTest, ScalarAndUnary) {
  Tensor a = Tensor::from_vector({-1, 0, 4});
  EXPECT_EQ((a + 1.0f).to_vector(), (std::vector<float>{0, 1, 5}));
  EXPECT_EQ((a * 2.0f).to_vector(), (std::vector<float>{-2, 0, 8}));
  EXPECT_EQ(relu(a).to_vector(), (std::vector<float>{0, 0, 4}));
  EXPECT_EQ(abs(a).to_vector(), (std::vector<float>{1, 0, 4}));
  EXPECT_EQ(neg(a).to_vector(), (std::vector<float>{1, 0, -4}));
  EXPECT_FLOAT_EQ(sqrt(a)[2], 2.0f);
  EXPECT_EQ(clamp(a, -0.5f, 2.0f).to_vector(), (std::vector<float>{-0.5f, 0, 2}));
}

TEST(ElementwiseTest, InplaceOps) {
  Tensor a = Tensor::from_vector({1, 2});
  Tensor b = Tensor::from_vector({10, 20});
  add_inplace(a, b);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{11, 22}));
  axpy_inplace(a, 0.5f, b);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{16, 32}));
  scale_inplace(a, 0.25f);
  EXPECT_EQ(a.to_vector(), (std::vector<float>{4, 8}));
  Tensor wrong({3});
  EXPECT_THROW(add_inplace(a, wrong), std::invalid_argument);
}

TEST(MatmulTest, TwoDim) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  Tensor b = Tensor::arange(12).reshape({3, 4});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 4}));
  // Row 0 of a = [0,1,2]; col 0 of b = [0,4,8] -> 0*0+1*4+2*8 = 20.
  EXPECT_EQ(c.at({0, 0}), 20.0f);
  EXPECT_EQ(c.at({1, 3}), 3.0f * 3 + 4.0f * 7 + 5.0f * 11);
  EXPECT_THROW(matmul(a, a), std::invalid_argument);
}

TEST(MatmulTest, Batched) {
  Tensor a = Tensor::arange(12).reshape({2, 2, 3});
  Tensor b = Tensor::ones({2, 3, 2});
  Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(c.at({0, 0, 0}), 0.0f + 1 + 2);
  EXPECT_EQ(c.at({1, 1, 1}), 9.0f + 10 + 11);
}

TEST(ReduceTest, SumMeanFullAndAxis) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  EXPECT_EQ(sum(a).item(), 15.0f);
  EXPECT_FLOAT_EQ(mean(a).item(), 2.5f);
  Tensor s0 = sum(a, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_EQ(s0.to_vector(), (std::vector<float>{3, 5, 7}));
  Tensor s1 = sum(a, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_EQ(s1[0], 3.0f);
  EXPECT_EQ(s1[1], 12.0f);
  Tensor m1 = mean(a, 1);
  EXPECT_EQ(m1.to_vector(), (std::vector<float>{1, 4}));
}

TEST(ReduceTest, MaxAndArgmax) {
  Tensor a({2, 3}, {3, 9, 1, 7, 2, 8});
  Tensor mx = max(a, 1);
  EXPECT_EQ(mx.to_vector(), (std::vector<float>{9, 8}));
  Tensor am = argmax(a, 1);
  EXPECT_EQ(am.to_vector(), (std::vector<float>{1, 2}));
  EXPECT_EQ(argmax_flat(a), 1);
  EXPECT_EQ(max_value(a), 9.0f);
  EXPECT_EQ(min_value(a), 1.0f);
}

TEST(SoftmaxTest, RowsSumToOneAndInvariance) {
  Tensor a({2, 3}, {1, 2, 3, 1000, 1001, 1002});  // shift-invariance check
  Tensor s = softmax(a, 1);
  for (int64_t r = 0; r < 2; ++r) {
    float z = 0.0f;
    for (int64_t c = 0; c < 3; ++c) z += s.at({r, c});
    EXPECT_NEAR(z, 1.0f, 1e-5f);
  }
  // Both rows have the same relative logits, so the same probabilities.
  EXPECT_NEAR(s.at({0, 0}), s.at({1, 0}), 1e-5f);
  EXPECT_NEAR(s.at({0, 2}), s.at({1, 2}), 1e-5f);
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(7);
  Tensor a = Tensor::randn({3, 5}, rng);
  Tensor ls = log_softmax(a, 1);
  Tensor ref = log(softmax(a, 1));
  EXPECT_TRUE(allclose(ls, ref, 1e-4f, 1e-5f));
}

TEST(ConcatTest, AlongBothAxes) {
  Tensor a = Tensor::ones({2, 2});
  Tensor b = Tensor::zeros({1, 2});
  Tensor c = concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (Shape{3, 2}));
  EXPECT_EQ(c.at({2, 0}), 0.0f);
  Tensor d = concat({a, Tensor::full({2, 3}, 2.0f)}, 1);
  EXPECT_EQ(d.shape(), (Shape{2, 5}));
  EXPECT_EQ(d.at({1, 4}), 2.0f);
  EXPECT_THROW(concat({a, b}, 1), std::invalid_argument);
}

TEST(ReduceToShapeTest, SumsBroadcastDims) {
  Tensor g = Tensor::ones({4, 2, 3});
  Tensor r = reduce_to_shape(g, {2, 3});
  EXPECT_EQ(r.shape(), (Shape{2, 3}));
  EXPECT_EQ(r[0], 4.0f);
  Tensor r2 = reduce_to_shape(g, {1, 3});
  EXPECT_EQ(r2.shape(), (Shape{1, 3}));
  EXPECT_EQ(r2[0], 8.0f);
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.randint(0, 100), b.randint(0, 100));
  }
  Rng c(43);
  bool any_diff = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) any_diff |= (a2.uniform() != c.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(ConvTest, Identity1x1Kernel) {
  Rng rng(1);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 2;
  spec.kernel_h = spec.kernel_w = 1;
  spec.stride_h = spec.stride_w = 1;
  spec.pad_h = spec.pad_w = 0;
  // Identity weight: out c = in c.
  Tensor w({2, 2, 1, 1});
  w.at({0, 0, 0, 0}) = 1.0f;
  w.at({1, 1, 0, 0}) = 1.0f;
  Tensor y = conv2d_forward(x, w, Tensor(), spec);
  EXPECT_TRUE(allclose(y, x, 1e-6f, 1e-6f));
}

// Reference convolution written as the direct 7-loop formula.
Tensor conv2d_reference(const Tensor& x, const Tensor& w, const Tensor& b,
                        const Conv2dSpec& s) {
  const int64_t n = x.size(0), h = x.size(2), wi = x.size(3);
  const int64_t oh = s.out_height(h), ow = s.out_width(wi);
  Tensor y({n, s.out_channels, oh, ow});
  for (int64_t ni = 0; ni < n; ++ni)
    for (int64_t co = 0; co < s.out_channels; ++co)
      for (int64_t oy = 0; oy < oh; ++oy)
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = b.defined() ? b[co] : 0.0f;
          for (int64_t ci = 0; ci < s.in_channels; ++ci)
            for (int64_t ky = 0; ky < s.kernel_h; ++ky)
              for (int64_t kx = 0; kx < s.kernel_w; ++kx) {
                const int64_t iy = oy * s.stride_h + ky - s.pad_h;
                const int64_t ix = ox * s.stride_w + kx - s.pad_w;
                if (iy < 0 || iy >= h || ix < 0 || ix >= wi) continue;
                acc += x.at({ni, ci, iy, ix}) * w.at({co, ci, ky, kx});
              }
          y.at({ni, co, oy, ox}) = acc;
        }
  return y;
}

struct ConvCase {
  int64_t in_c, out_c, k, stride, pad, h, w, n;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, MatchesDirectReference) {
  const ConvCase cfg = GetParam();
  Rng rng(99);
  Tensor x = Tensor::randn({cfg.n, cfg.in_c, cfg.h, cfg.w}, rng);
  Tensor w = Tensor::randn({cfg.out_c, cfg.in_c, cfg.k, cfg.k}, rng);
  Tensor b = Tensor::randn({cfg.out_c}, rng);
  Conv2dSpec spec;
  spec.in_channels = cfg.in_c;
  spec.out_channels = cfg.out_c;
  spec.kernel_h = spec.kernel_w = cfg.k;
  spec.stride_h = spec.stride_w = cfg.stride;
  spec.pad_h = spec.pad_w = cfg.pad;
  Tensor got = conv2d_forward(x, w, b, spec);
  Tensor want = conv2d_reference(x, w, b, spec);
  EXPECT_TRUE(allclose(got, want, 1e-4f, 1e-4f))
      << "max diff " << max_abs_diff(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvParamTest,
    ::testing::Values(ConvCase{1, 1, 3, 1, 1, 5, 5, 1},
                      ConvCase{3, 4, 3, 1, 1, 6, 8, 2},
                      ConvCase{2, 3, 3, 2, 1, 8, 8, 1},
                      ConvCase{3, 2, 5, 2, 2, 9, 7, 2},
                      ConvCase{4, 4, 1, 1, 0, 4, 6, 3},
                      ConvCase{2, 2, 3, 3, 0, 9, 9, 1}));

TEST(ConvTest, Col2ImIsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining property
  // of the adjoint used in the backward pass.
  Rng rng(5);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 1;
  spec.kernel_h = spec.kernel_w = 3;
  spec.stride_h = spec.stride_w = 2;
  spec.pad_h = spec.pad_w = 1;
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  Tensor cx = im2col(x, spec);
  Tensor y = Tensor::randn(cx.shape(), rng);
  Tensor ay = col2im(y, spec, 6, 6);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cx.numel(); ++i) lhs += cx[i] * y[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += x[i] * ay[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(PoolTest, MaxPoolForwardAndBackward) {
  Tensor x({1, 1, 4, 4}, {1, 2, 5, 6,    //
                          3, 4, 7, 8,    //
                          9, 10, 13, 14, //
                          11, 12, 15, 16});
  MaxPoolResult res = max_pool2x2_forward(x);
  EXPECT_EQ(res.output.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_EQ(res.output.to_vector(), (std::vector<float>{4, 8, 12, 16}));
  Tensor go = Tensor::ones({1, 1, 2, 2});
  Tensor gi = max_pool2x2_backward(go, res.argmax, x.shape());
  // Gradient lands only on the max positions.
  EXPECT_EQ(gi.at({0, 0, 1, 1}), 1.0f);
  EXPECT_EQ(gi.at({0, 0, 0, 0}), 0.0f);
  EXPECT_EQ(sum(gi).item(), 4.0f);
}

TEST(PoolTest, GlobalAvgPool) {
  Tensor x = Tensor::arange(8).reshape({1, 2, 2, 2});
  Tensor y = global_avg_pool_forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 1.5f);
  EXPECT_FLOAT_EQ(y[1], 5.5f);
  Tensor gi = global_avg_pool_backward(Tensor::ones({1, 2}), x.shape());
  EXPECT_FLOAT_EQ(gi[0], 0.25f);
}

}  // namespace
}  // namespace yollo

// -- appended: view ops and edge cases ----------------------------------------
namespace yollo {
namespace {

TEST(TensorTest, UnsqueezeSqueezeRoundTrip) {
  Tensor a = Tensor::arange(6).reshape({2, 3});
  Tensor u = a.unsqueeze(1);
  EXPECT_EQ(u.shape(), (Shape{2, 1, 3}));
  EXPECT_EQ(u.squeeze(1).shape(), (Shape{2, 3}));
  Tensor tail = a.unsqueeze(-1);
  EXPECT_EQ(tail.shape(), (Shape{2, 3, 1}));
  EXPECT_THROW(a.squeeze(0), std::invalid_argument);  // extent 2, not 1
}

TEST(TensorTest, MapAppliesElementwise) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  Tensor doubled = a.map([](float x) { return 2 * x; });
  EXPECT_EQ(doubled.to_vector(), (std::vector<float>{2, 4, 6}));
  EXPECT_EQ(a.to_vector(), (std::vector<float>{1, 2, 3}));  // unchanged
}

TEST(TensorTest, IndexSelectMiddleAxis) {
  Tensor a = Tensor::arange(24).reshape({2, 4, 3});
  Tensor sel = a.index_select(1, {3, 1});
  EXPECT_EQ(sel.shape(), (Shape{2, 2, 3}));
  EXPECT_EQ(sel.at({0, 0, 0}), a.at({0, 3, 0}));
  EXPECT_EQ(sel.at({1, 1, 2}), a.at({1, 1, 2}));
}

TEST(TensorTest, CopyFromValidatesShape) {
  Tensor a({2, 2});
  Tensor b = Tensor::ones({2, 2});
  a.copy_from(b);
  EXPECT_EQ(a[3], 1.0f);
  Tensor c({4});
  EXPECT_THROW(a.copy_from(c), std::invalid_argument);
}

TEST(TensorTest, UndefinedTensorThrowsOnAccess) {
  Tensor t;
  EXPECT_FALSE(t.defined());
  EXPECT_THROW(t.data(), std::logic_error);
  EXPECT_THROW(t.clone(), std::logic_error);
  EXPECT_EQ(t.to_string(), "Tensor(undefined)");
}

TEST(TensorTest, ToStringTruncatesLargeTensors) {
  Tensor big = Tensor::zeros({100});
  const std::string s = big.to_string(/*max_per_dim=*/2);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(ConcatTest, ThreeDimMiddleAxis) {
  Tensor a = Tensor::ones({2, 1, 3});
  Tensor b = Tensor::full({2, 2, 3}, 2.0f);
  Tensor c = concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 3}));
  EXPECT_EQ(c.at({0, 0, 0}), 1.0f);
  EXPECT_EQ(c.at({1, 2, 2}), 2.0f);
}

TEST(ElementwiseTest, MinimumMaximumPow) {
  Tensor a = Tensor::from_vector({1, 4, 9});
  Tensor b = Tensor::from_vector({2, 3, 10});
  EXPECT_EQ(maximum(a, b).to_vector(), (std::vector<float>{2, 4, 10}));
  EXPECT_EQ(minimum(a, b).to_vector(), (std::vector<float>{1, 3, 9}));
  EXPECT_TRUE(allclose(pow(a, 0.5f), Tensor::from_vector({1, 2, 3})));
}

}  // namespace
}  // namespace yollo
