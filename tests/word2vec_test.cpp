// Tests for the Word2Vec pre-training substrate.
#include <fstream>

#include <gtest/gtest.h>

#include "data/vocab.h"
#include "word2vec/word2vec.h"

namespace yollo::word2vec {
namespace {

using data::Vocab;

TEST(Word2VecTest, EmbeddingShape) {
  Word2VecConfig cfg;
  cfg.dim = 16;
  Word2Vec model(50, cfg);
  EXPECT_EQ(model.embeddings().shape(), (Shape{50, 16}));
}

TEST(Word2VecTest, TrainingReducesLoss) {
  // Tiny corpus with strong co-occurrence structure.
  Word2VecConfig cfg;
  cfg.dim = 12;
  cfg.epochs = 1;
  cfg.seed = 1;
  std::vector<std::vector<int64_t>> corpus;
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    // Words 2..5 always co-occur; 6..9 always co-occur.
    if (rng.bernoulli(0.5f)) {
      corpus.push_back({2, 3, 4, 5});
    } else {
      corpus.push_back({6, 7, 8, 9});
    }
  }
  Word2Vec model(10, cfg);
  const float first = model.train(corpus);
  Word2VecConfig cfg10 = cfg;
  cfg10.epochs = 10;
  Word2Vec model10(10, cfg10);
  const float tenth = model10.train(corpus);
  EXPECT_LT(tenth, first);
}

TEST(Word2VecTest, CooccurringWordsEndUpSimilar) {
  Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 12;
  cfg.seed = 3;
  std::vector<std::vector<int64_t>> corpus;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    if (rng.bernoulli(0.5f)) {
      corpus.push_back({2, 3, 2, 3, 2, 3});
    } else {
      corpus.push_back({4, 5, 4, 5, 4, 5});
    }
  }
  Word2Vec model(6, cfg);
  model.train(corpus);
  // Words in the same cluster should be more similar than across clusters.
  EXPECT_GT(model.similarity(2, 3), model.similarity(2, 5));
  EXPECT_GT(model.similarity(4, 5), model.similarity(4, 3));
}

TEST(Word2VecTest, MostSimilarExcludesSelfAndRespectsK) {
  Word2VecConfig cfg;
  cfg.dim = 8;
  Word2Vec model(20, cfg);
  const auto sims = model.most_similar(5, 3);
  EXPECT_EQ(sims.size(), 3u);
  for (int64_t id : sims) {
    EXPECT_NE(id, 5);
    EXPECT_GT(id, Vocab::kUnk);
  }
}

TEST(Word2VecTest, PretrainGroundingEmbeddingsAlignsWithVocab) {
  Vocab vocab = Vocab::grounding_vocab();
  Word2VecConfig cfg;
  cfg.dim = 16;
  cfg.epochs = 2;
  const Tensor emb = pretrain_grounding_embeddings(vocab, cfg,
                                                   /*corpus_scenes=*/60);
  EXPECT_EQ(emb.shape(), (Shape{vocab.size(), 16}));
  // Colour words co-occur with shape nouns, so trained vectors must not be
  // all-zero (they start near zero and move during training).
  EXPECT_GT(max_value(abs(emb)), 0.05f);
}

}  // namespace
}  // namespace yollo::word2vec

// -- appended: persistence ----------------------------------------------------
namespace yollo::word2vec {
namespace {

TEST(Word2VecTest, SaveLoadEmbeddingsRoundTrip) {
  Rng rng(9);
  const Tensor emb = Tensor::randn({12, 6}, rng);
  const std::string path = ::testing::TempDir() + "/emb.bin";
  save_embeddings(emb, path);
  const Tensor back = load_embeddings(path);
  EXPECT_EQ(back.shape(), emb.shape());
  EXPECT_TRUE(allclose(back, emb));
}

TEST(Word2VecTest, LoadEmbeddingsRejectsMissingAndCorrupt) {
  EXPECT_THROW(load_embeddings("/nonexistent/emb.bin"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/bad.bin";
  { std::ofstream out(path, std::ios::binary); out << "xx"; }
  EXPECT_THROW(load_embeddings(path), std::runtime_error);
}

}  // namespace
}  // namespace yollo::word2vec
